"""``repro serve``: coalescing, streaming, replay, and the probes.

The service's load-bearing promise is the stampede case: N identical
concurrent submissions must cost exactly one underlying campaign
execution, with every client receiving the full NDJSON progress stream
and the same result.  These tests run the real asyncio server on an
ephemeral port and speak real HTTP/1.1 (chunked transfer decoded by
hand) — no test doubles between the client bytes and the handler.
"""

import asyncio
import json

import pytest

from repro import obs
from repro.engine.store import STORE
from repro.server import (
    CampaignServer,
    RequestError,
    canonical_request,
    request_fingerprint,
)

BENCH = """
INPUT(a)
INPUT(b)
INPUT(c)
g1 = AND(a, b)
g2 = XOR(g1, c)
OUTPUT(g2)
"""


@pytest.fixture(autouse=True)
def isolated_telemetry():
    """The server flips process-global switches (store, metrics);
    return both to their boot state around every test."""
    yield
    STORE.enabled = False
    STORE.clear()
    obs.reset()


async def _post_campaign(host, port, body):
    """POST /campaign and decode the chunked NDJSON stream."""
    reader, writer = await asyncio.open_connection(host, port)
    payload = json.dumps(body).encode()
    writer.write(
        b"POST /campaign HTTP/1.1\r\nHost: t\r\n"
        b"Content-Type: application/json\r\n"
        + f"Content-Length: {len(payload)}\r\n\r\n".encode()
        + payload
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, rest = raw.partition(b"\r\n\r\n")
    status = head.decode().splitlines()[0]
    if b"chunked" not in head:
        return status, [json.loads(rest)]
    lines, buf = [], rest
    while buf:
        size_line, _, buf = buf.partition(b"\r\n")
        size = int(size_line, 16)
        if size == 0:
            break
        chunk, buf = buf[:size], buf[size + 2:]
        lines.extend(json.loads(l) for l in chunk.decode().splitlines())
    return status, lines


async def _get(host, port, path):
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, body = raw.partition(b"\r\n\r\n")
    return head.decode().splitlines()[0], body.decode()


def _run(coro):
    return asyncio.run(coro)


async def _with_server(inner):
    server = CampaignServer(host="127.0.0.1", port=0)
    await server.start()
    try:
        return await inner(server)
    finally:
        await server.close()


class TestCoalescing:
    def test_concurrent_identical_submissions_execute_once(self):
        async def scenario(server):
            body = {"netlist": BENCH, "processes": 2, "transport": "fork"}
            results = await asyncio.gather(
                *[
                    _post_campaign(server.host, server.port, body)
                    for _ in range(8)
                ]
            )
            finals = []
            for status, lines in results:
                assert status.endswith("200 OK")
                assert lines[0]["event"] == "accepted"
                final = lines[-1]
                assert final["event"] == "result"
                assert "error" not in final
                # Every subscriber sees live campaign progress, not
                # just the terminal line.
                assert any(
                    l["event"] == "campaign.chunk" for l in lines
                ), [l["event"] for l in lines]
                finals.append(final)
            dispositions = [r[1][0]["disposition"] for r in results]
            assert dispositions.count("executed") == 1
            assert dispositions.count("coalesced") == 7
            assert server.executions == 1
            # All eight clients got the same statuses-bearing result.
            assert len({json.dumps(f, sort_keys=True) for f in finals}) == 1
            assert finals[0]["backend"].startswith("fork")
            return finals[0]

        result = _run(_with_server(scenario))
        assert result["faults"] > 0
        assert result["replayed"] is False

    def test_completed_campaign_replays_from_store(self):
        async def scenario(server):
            body = {"netlist": BENCH, "transport": "inline"}
            _status, first = await _post_campaign(
                server.host, server.port, body
            )
            _status, second = await _post_campaign(
                server.host, server.port, body
            )
            assert first[-1]["replayed"] is False
            assert second[-1]["replayed"] is True
            # Replay skipped the runtime but preserved the answer.
            for key in ("faults", "detected", "silent", "dangerous"):
                assert second[-1][key] == first[-1][key]
            assert server.executions == 2  # two jobs, one real campaign
            _status, metrics = await _get(
                server.host, server.port, "/metrics"
            )
            assert 'repro_store_hits_total{kind="campaign"} 1' in metrics
            return metrics

        _run(_with_server(scenario))

    def test_different_requests_do_not_coalesce(self):
        body_a = {"netlist": BENCH, "transport": "inline"}
        body_b = {"netlist": BENCH, "transport": "inline", "collapse": False}
        fp_a = request_fingerprint(canonical_request(body_a))
        fp_b = request_fingerprint(canonical_request(body_b))
        assert fp_a != fp_b


class TestHttpSurface:
    def test_metrics_endpoint_is_valid_prometheus(self):
        async def scenario(server):
            await _post_campaign(
                server.host,
                server.port,
                {"netlist": BENCH, "transport": "inline"},
            )
            return await _get(server.host, server.port, "/metrics")

        status, text = _run(_with_server(scenario))
        assert status.endswith("200 OK")
        parsed = obs.parse_prometheus(text)  # raises on malformed lines
        assert "repro_serve_jobs_total" in parsed
        assert "repro_store_misses_total" in parsed

    def test_healthz_reports_store_state(self):
        async def scenario(server):
            return await _get(server.host, server.port, "/healthz")

        status, body = _run(_with_server(scenario))
        assert status.endswith("200 OK")
        health = json.loads(body)
        assert health["ok"] is True
        assert health["store"]["enabled"] is True

    def test_unknown_route_is_404(self):
        async def scenario(server):
            return await _get(server.host, server.port, "/nope")

        status, _body = _run(_with_server(scenario))
        assert "404" in status

    def test_malformed_submissions_are_400(self):
        async def scenario(server):
            cases = [
                {"netlist": ""},
                {"netlist": BENCH, "transprot": "fork"},
                {"netlist": BENCH, "processes": 0},
                {"netlist": "this is not a netlist"},
            ]
            out = []
            for body in cases:
                status, lines = await _post_campaign(
                    server.host, server.port, body
                )
                out.append((body, status, lines))
            return out

        for body, status, lines in _run(_with_server(scenario)):
            if "not a netlist" in body["netlist"]:
                # Parse failures surface on the stream (the job was
                # accepted; the netlist just doesn't compile).
                assert "error" in lines[-1], (body, lines)
            else:
                assert "400" in status, (body, status)
                assert "error" in lines[0]


class TestSynthKind:
    SYNTH_BODY = {
        "kind": "synth",
        "spec": "and2",
        "seed": 2,
        "population": 24,
        "generations": 20,
        "max_gates": 16,
    }

    def test_synth_request_streams_generations_and_replays(self):
        async def scenario(server):
            status, lines = await _post_campaign(
                server.host, server.port, self.SYNTH_BODY
            )
            status2, lines2 = await _post_campaign(
                server.host, server.port, self.SYNTH_BODY
            )
            return status, lines, status2, lines2

        status, lines, status2, lines2 = _run(_with_server(scenario))
        assert "200" in status and "200" in status2
        events = {line.get("event") for line in lines}
        assert "synth.generation" in events
        assert "synth.report" in events
        result = lines[-1]
        assert result["event"] == "result"
        assert result["kind"] == "synth"
        assert result["converged"] is True
        assert result["replayed"] is False
        replay = lines2[-1]
        assert replay["replayed"] is True
        assert replay["best_fingerprint"] == result["best_fingerprint"]

    def test_synth_validation(self):
        with pytest.raises(RequestError, match="exactly one of"):
            canonical_request({"kind": "synth"})
        with pytest.raises(RequestError, match="exactly one of"):
            canonical_request(
                {"kind": "synth", "spec": "and2", "netlist": BENCH}
            )
        with pytest.raises(RequestError, match="unknown spec"):
            canonical_request({"kind": "synth", "spec": "nope"})
        with pytest.raises(RequestError, match="population"):
            canonical_request(
                {"kind": "synth", "spec": "and2", "population": 1}
            )
        with pytest.raises(RequestError, match="'kind' must be"):
            canonical_request({"kind": "weird", "netlist": BENCH})
        # Synth knobs on a plain campaign body are a client bug, not a
        # silent fork into a distinct fingerprint.
        with pytest.raises(RequestError, match="applies only to kind"):
            canonical_request({"netlist": BENCH, "spec": "and2"})

    def test_distinct_seeds_do_not_coalesce(self):
        one = canonical_request(self.SYNTH_BODY)
        two = canonical_request(dict(self.SYNTH_BODY, seed=3))
        assert request_fingerprint(one) != request_fingerprint(two)


class TestRequestCanonicalization:
    def test_defaults_are_filled(self):
        request = canonical_request({"netlist": BENCH})
        assert request["backend"] == "auto"
        assert request["collapse"] is True
        assert request["kind"] == "campaign"

    def test_unknown_fields_rejected(self):
        with pytest.raises(RequestError, match="transprot"):
            canonical_request({"netlist": BENCH, "transprot": "fork"})

    def test_fingerprint_ignores_key_order(self):
        one = canonical_request(
            {"netlist": BENCH, "backend": "auto", "collapse": True}
        )
        two = canonical_request(
            {"collapse": True, "netlist": BENCH, "backend": "auto"}
        )
        assert request_fingerprint(one) == request_fingerprint(two)
