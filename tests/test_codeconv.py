"""Tests for the code-conversion SCAL machine (Figure 4.5, Theorem 4.4)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.faults import enumerate_stem_faults
from repro.scal.codeconv import to_code_conversion
from repro.scal.translators import TranslatorFault
from repro.system.memory import MemoryFault, single_memory_faults
from repro.workloads.randomlogic import random_input_vectors, random_machine


class TestFunctional:
    def test_equivalence(self, detector, rng):
        cc = to_code_conversion(detector)
        vectors = random_input_vectors(rng, 1, 60)
        run = cc.run(vectors)
        assert not run.detected
        assert cc.decoded_outputs(run) == detector.run(vectors)

    def test_storage_cost_is_n_plus_1(self, detector):
        cc = to_code_conversion(detector)
        assert cc.flip_flop_count() == cc.encoding.width + 1 == 3

    def test_all_steps_alternate(self, detector, rng):
        cc = to_code_conversion(detector)
        run = cc.run(random_input_vectors(rng, 1, 30))
        assert all(step.alternates for step in run.steps)
        assert not any(run.checker_flags)

    @settings(max_examples=6, deadline=None)
    @given(st.randoms(use_true_random=False))
    def test_random_machines_equivalent(self, rnd):
        machine = random_machine(rnd, rnd.randint(2, 5))
        cc = to_code_conversion(machine)
        vectors = [(rnd.randint(0, 1),) for _ in range(40)]
        run = cc.run(vectors)
        assert not run.detected
        assert cc.decoded_outputs(run) == machine.run(vectors)

    def test_odd_state_width_machine(self, rng):
        """Five states -> 3 state bits: exercises the odd-word parity
        normalization end to end."""
        machine = random_machine(rng, 5)
        cc = to_code_conversion(machine)
        assert cc.encoding.width == 3
        vectors = random_input_vectors(rng, 1, 40)
        run = cc.run(vectors)
        assert not run.detected
        assert cc.decoded_outputs(run) == machine.run(vectors)


class TestFaultDetection:
    def _sweep(self, cc, reference, vectors, runner):
        """Assert: wrong decoded outputs are always accompanied by a
        detection (fault-secure), for every fault produced by runner."""
        undetected_wrong = []
        for label, run in runner:
            if cc.decoded_outputs(run) != reference and not run.detected:
                undetected_wrong.append(label)
        assert not undetected_wrong

    def test_combinational_faults(self, detector, rng):
        cc = to_code_conversion(detector)
        vectors = random_input_vectors(rng, 1, 40)
        reference = detector.run(vectors)
        runs = (
            (f.describe(), cc.run(vectors, comb_fault=f))
            for f in enumerate_stem_faults(cc.network, include_inputs=False)
        )
        self._sweep(cc, reference, vectors, runs)

    def test_alpt_faults(self, detector, rng):
        cc = to_code_conversion(detector)
        width = cc.encoding.width
        vectors = random_input_vectors(rng, 1, 40)
        reference = detector.run(vectors)
        sites = [(s, k) for s in "abcde" for k in range(width)]
        sites += [("f", 0), ("i", 0), ("h", 0), ("g", 0)]
        runs = (
            (f"alpt {s}[{k}] s/{v}", cc.run(vectors, alpt_fault=TranslatorFault(s, k, v)))
            for s, k in sites
            for v in (0, 1)
        )
        self._sweep(cc, reference, vectors, runs)

    def test_palt_faults(self, detector, rng):
        cc = to_code_conversion(detector)
        width = cc.encoding.width
        vectors = random_input_vectors(rng, 1, 40)
        reference = detector.run(vectors)
        sites = [(s, k) for s in "abcde" for k in range(width)]
        sites += [("f", 0), ("g", 0), ("h", 0)]
        runs = (
            (f"palt {s}[{k}] s/{v}", cc.run(vectors, palt_fault=TranslatorFault(s, k, v)))
            for s, k in sites
            for v in (0, 1)
        )
        self._sweep(cc, reference, vectors, runs)

    def test_memory_faults(self, detector, rng):
        cc = to_code_conversion(detector)
        vectors = random_input_vectors(rng, 1, 40)
        reference = detector.run(vectors)
        runs = (
            (mf.describe(), cc.run(vectors, memory_fault=mf))
            for mf in single_memory_faults(
                cc.encoding.width, cc.memory.address_bits
            )
        )
        self._sweep(cc, reference, vectors, runs)

    def test_memory_cell_fault_detected_by_code(self, detector):
        """A flipped stored state bit breaks the word's parity: the PALT
        1-out-of-2 code flags it on the next read."""
        cc = to_code_conversion(detector)
        vectors = [(0,), (1,), (0,), (1,), (1,), (0,)]
        run = cc.run(
            vectors,
            memory_fault=MemoryFault("data_line", 0, 1),
        )
        # Either the code checker fired or the run stayed correct.
        if cc.decoded_outputs(run) != detector.run(vectors):
            assert run.detected
