"""Parity suite for the fault-dropping ATPG driver (repro.engine.atpg).

The driver's whole value is that dropping, candidate batching, and
compaction are *accelerations*, never reclassifications: on every seed
circuit and a fixed-seed random-logic batch its final classification
map must be byte-identical to running the scalar ``Podem`` once per
collapsed fault.  The suite also pins the pattern seam the driver rides
(``chunk_pattern_bits`` across the vectorized / packed-fallback /
pointwise rungs), the degradation ladder, determinism, compaction
conservation, and the ``python -m repro atpg`` entry point.
"""

import json
import os
import random

import pytest

from repro.cli import main
from repro.core.atpg import Podem
from repro.core.collapse import collapse_stem_faults
from repro.engine import NetworkEngine, engine_for
from repro.engine.atpg import AtpgReport, run_atpg
from repro.engine.vectorized import chunk_pattern_bits, pack_pattern_masks
from repro.logic.benchfmt import load_bench, save_bench
from repro.logic.faults import StuckAt
from repro.workloads.benchcircuits import fig62_nand_network
from repro.workloads.fig34 import fig34_network, fig37_fixed_network
from repro.workloads.randomlogic import (
    random_array_network,
    random_mixed_network,
    random_nand_network,
)

pytestmark = pytest.mark.atpg

PARITY_SEED = 2026

DATA_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, "examples", "data"
)


def scalar_classifications(net, max_backtracks=2000):
    """The reference: one scalar PODEM search per collapsed fault."""
    podem = Podem(net, max_backtracks=max_backtracks)
    out = {}
    for fault in sorted(
        collapse_stem_faults(net), key=lambda f: (f.line, f.value)
    ):
        result = podem.generate_test_ex(fault)
        out[fault.describe()] = (
            "detected" if result.status == "test" else result.status
        )
    return out


def seed_networks():
    return [
        fig34_network(),
        fig37_fixed_network(),
        fig62_nand_network(),
    ]


def random_batch(count=6):
    rng = random.Random(PARITY_SEED)
    nets = []
    for _ in range(count):
        if rng.random() < 0.5:
            nets.append(
                random_nand_network(
                    rng, rng.randint(3, 5), rng.randint(6, 16),
                    n_outputs=rng.randint(1, 2),
                )
            )
        else:
            nets.append(
                random_mixed_network(
                    rng, rng.randint(3, 5), rng.randint(6, 16),
                    n_outputs=rng.randint(1, 2),
                )
            )
    return nets


# ----------------------------------------------------------------------
# the pattern-simulation seam
# ----------------------------------------------------------------------
class TestPatternSeam:
    def test_pack_pattern_masks_bit_convention(self):
        # patterns 0b01, 0b10, 0b11 over two inputs: mask i's bit j is
        # input i under pattern j.
        masks = pack_pattern_masks([1, 2, 3], 2)
        assert masks == [0b101, 0b110]

    @pytest.mark.parametrize(
        "backend", ["vectorized", "fallback", "pointwise"]
    )
    def test_rungs_match_truth_tables(self, backend, fig34):
        eng = engine_for(fig34)
        n = len(fig34.inputs)
        patterns = list(range(1 << n))
        faults = [
            StuckAt(line, v) for line in fig34.lines() for v in (0, 1)
        ]
        expected_base = tuple(eng.bitmask.output_bits(None))
        base = tuple(chunk_pattern_bits(eng, patterns, None, backend))
        assert base == expected_base
        rows = chunk_pattern_bits(eng, patterns, faults, backend)
        for fault, row in zip(faults, rows):
            assert tuple(row) == tuple(eng.bitmask.output_bits(fault))

    def test_partial_unordered_patterns(self, fig34):
        eng = engine_for(fig34)
        n = len(fig34.inputs)
        rng = random.Random(5)
        patterns = [rng.randrange(1 << n) for _ in range(11)]
        tables = tuple(eng.bitmask.output_bits(None))
        for backend in ("vectorized", "fallback", "pointwise"):
            base = chunk_pattern_bits(eng, patterns, None, backend)
            for pos, mask in enumerate(base):
                for j, p in enumerate(patterns):
                    assert (mask >> j) & 1 == (tables[pos] >> p) & 1

    def test_multiword_pattern_lists(self):
        # >64 patterns exercises the vectorized path's word chunking.
        rng = random.Random(17)
        net = random_mixed_network(rng, 6, 20, n_outputs=2)
        eng = engine_for(net)
        patterns = [rng.randrange(1 << 6) for _ in range(150)]
        faults = [StuckAt(line, 1) for line in list(net.lines())[:8]]
        results = {
            backend: (
                tuple(chunk_pattern_bits(eng, patterns, None, backend)),
                tuple(
                    tuple(row)
                    for row in chunk_pattern_bits(
                        eng, patterns, faults, backend
                    )
                ),
            )
            for backend in ("vectorized", "fallback", "pointwise")
        }
        assert (
            results["vectorized"]
            == results["fallback"]
            == results["pointwise"]
        )

    def test_unknown_backend_rejected(self, fig34):
        with pytest.raises(ValueError):
            chunk_pattern_bits(engine_for(fig34), [0], None, "bitmask")


# ----------------------------------------------------------------------
# classification parity: driver == scalar PODEM per collapsed fault
# ----------------------------------------------------------------------
class TestParity:
    @pytest.mark.parametrize("index", range(3))
    @pytest.mark.parametrize("backend", ["auto", "fallback"])
    def test_seed_circuits(self, index, backend):
        net = seed_networks()[index]
        expected = scalar_classifications(net)
        report = run_atpg(net, backend=backend)
        assert report.classifications == expected
        assert report.requested == len(expected)
        detected = {
            name
            for name, status in report.classifications.items()
            if status == "detected"
        }
        assert set(report.detected_by) == detected
        assert all(
            0 <= i < report.patterns_kept
            for i in report.detected_by.values()
        )

    def test_seed_circuit_pointwise_rung(self):
        net = seed_networks()[0]
        report = run_atpg(net, backend="pointwise")
        assert report.classifications == scalar_classifications(net)
        assert report.backend == "pointwise"

    @pytest.mark.parametrize("index", range(6))
    def test_fixed_seed_random_batch(self, index):
        net = random_batch()[index]
        expected = scalar_classifications(net)
        for backend in ("auto", "fallback"):
            report = run_atpg(net, backend=backend)
            assert report.classifications == expected, backend

    def test_packed_fallback_when_vectorized_absent(self, fig34):
        """The no-NumPy shape: an engine whose vectorized backend is
        None must resolve auto to the packed fallback silently, and an
        explicit vectorized request must degrade with a recorded
        reason.  (The CI tests-no-numpy job runs this whole suite with
        NumPy genuinely uninstalled.)"""
        class NoNumpyEngine(NetworkEngine):
            @property
            def vectorized(self):
                return None

        eng = NoNumpyEngine(fig34)
        auto = run_atpg(fig34, engine=eng)
        assert auto.backend == "fallback"
        assert auto.degradations == ()
        explicit = run_atpg(fig34, engine=eng, backend="vectorized")
        assert explicit.backend == "fallback"
        assert [(d.frm, d.to) for d in explicit.degradations] == [
            ("vectorized", "fallback")
        ]
        assert auto.classifications == scalar_classifications(fig34)
        assert explicit.classifications == auto.classifications


# ----------------------------------------------------------------------
# driver semantics: determinism, dropping, compaction, pairs, deadlines
# ----------------------------------------------------------------------
class TestDriver:
    def test_deterministic(self, fig34):
        a = run_atpg(fig34)
        b = run_atpg(fig34)
        assert a.patterns == b.patterns
        assert a.classifications == b.classifications
        assert a.detected_by == b.detected_by

    def test_dropping_saves_podem_searches(self, fig34):
        dropping = run_atpg(fig34)
        reference = run_atpg(fig34, drop=False, compact=False)
        assert dropping.classifications == reference.classifications
        assert dropping.targets < reference.targets
        assert dropping.dropped > 0
        assert reference.dropped == 0
        assert reference.patterns_kept == reference.detected

    def test_compaction_preserves_coverage(self, fig34):
        compacted = run_atpg(fig34)
        loose = run_atpg(fig34, compact=False)
        assert compacted.classifications == loose.classifications
        assert compacted.patterns_kept <= loose.patterns_kept
        # Every pattern the compacted report credits must really detect
        # the fault it covers, per the block backend.
        eng = engine_for(fig34)
        universe = {
            f.describe(): f for f in collapse_stem_faults(fig34)
        }
        for name, index in compacted.detected_by.items():
            pattern = compacted.patterns[index]
            base = eng.packed.pattern_bits([pattern], None)
            row = eng.packed.pattern_bits([pattern], [universe[name]])[0]
            assert any((b ^ r) & 1 for b, r in zip(base, row)), name

    def test_pairs_mode_emits_alternating_pairs(self, fig37):
        report = run_atpg(fig37, pairs=True)
        assert report.pairs
        # fig3.7 is the thesis's repaired self-checking network: every
        # collapsed fault is pair-testable.
        assert report.detected == report.requested
        n = len(fig37.inputs)
        full = (1 << n) - 1
        eng = engine_for(fig37)
        universe = {
            f.describe(): f for f in collapse_stem_faults(fig37)
        }
        for name, index in report.detected_by.items():
            x = report.patterns[index]
            pair = [x, x ^ full]
            base = eng.packed.pattern_bits(pair, None)
            row = eng.packed.pattern_bits(pair, [universe[name]])[0]
            good_alternates = any(
                ((b & 1) ^ ((b >> 1) & 1)) for b in base
            )
            faulty_nonalternating = any(
                ((b & 1) ^ ((b >> 1) & 1))
                and ((r & 1) == ((r >> 1) & 1))
                for b, r in zip(base, row)
            )
            assert good_alternates and faulty_nonalternating, name

    def test_candidate_budget_one_matches_scalar_patterns(self, fig34):
        """candidates=1 + no dropping is exactly the scalar generator:
        pattern k is the zero-filled test of the k-th surviving target."""
        report = run_atpg(fig34, drop=False, compact=False, candidates=1)
        podem = Podem(fig34)
        names = list(fig34.inputs)
        for fault in sorted(
            collapse_stem_faults(fig34), key=lambda f: (f.line, f.value)
        ):
            result = podem.generate_test_ex(fault)
            if result.status != "test":
                continue
            index = report.detected_by[fault.describe()]
            point = sum(
                (result.test[name] & 1) << i
                for i, name in enumerate(names)
            )
            assert report.patterns[index] == point

    def test_target_timeout_classifies_aborted(self, fig34):
        report = run_atpg(fig34, target_timeout=1e-12)
        assert report.aborted == report.requested
        assert report.patterns == ()

    def test_report_shape_and_coverage(self, fig34):
        report = run_atpg(fig34)
        assert isinstance(report, AtpgReport)
        assert 0.0 <= report.coverage() <= 1.0
        data = report.to_dict()
        assert data["coverage"] == report.coverage()
        json.dumps(data)  # JSON-serializable end to end
        assert "patterns kept" in report.summary()

    def test_explicit_fault_universe(self, fig34):
        line = sorted(fig34.lines())[0]
        faults = [StuckAt(line, 0), StuckAt(line, 1)]
        report = run_atpg(fig34, faults=faults)
        assert report.requested == 2
        assert set(report.classifications) == {
            f.describe() for f in faults
        }

    def test_invalid_arguments_rejected(self, fig34):
        with pytest.raises(ValueError):
            run_atpg(fig34, backend="bitmask")
        with pytest.raises(ValueError):
            run_atpg(fig34, candidates=0)


# ----------------------------------------------------------------------
# CLI entry point
# ----------------------------------------------------------------------
class TestAtpgCli:
    @pytest.fixture
    def fig34_bench(self, tmp_path):
        path = os.path.join(tmp_path, "fig34.bench")
        save_bench(fig34_network(), path)
        return path

    def test_basic_run(self, fig34_bench, capsys):
        assert main(["atpg", fig34_bench]) == 0
        out = capsys.readouterr().out
        assert "detected" in out and "patterns kept" in out

    def test_json_matches_driver(self, fig34_bench, capsys):
        assert main(["atpg", fig34_bench, "--json", "--report"]) == 0
        data = json.loads(capsys.readouterr().out)
        expected = run_atpg(fig34_network())
        assert data["classifications"] == expected.classifications
        assert data["detected"] == expected.detected
        assert data["patterns"] == list(expected.patterns)

    def test_report_lists_patterns(self, fig34_bench, capsys):
        assert main(["atpg", fig34_bench, "--report"]) == 0
        assert "pattern 0:" in capsys.readouterr().out

    def test_flags_route_through(self, fig34_bench, capsys):
        assert (
            main(
                [
                    "atpg", fig34_bench, "--no-collapse", "--no-drop",
                    "--no-compact", "--backend", "fallback", "--json",
                ]
            )
            == 0
        )
        data = json.loads(capsys.readouterr().out)
        assert data["backend"] == "fallback"
        assert data["dropped"] == 0
        # raw (uncollapsed) stem universe is strictly larger
        assert data["requested"] > run_atpg(fig34_network()).requested

    def test_trace_out_flight_renders(self, fig34_bench, tmp_path, capsys):
        flight = os.path.join(tmp_path, "flight.jsonl")
        assert main(["atpg", fig34_bench, "--trace-out", flight]) == 0
        capsys.readouterr()
        assert main(["stats", flight]) == 0
        out = capsys.readouterr().out
        assert "atpg:" in out and "PODEM searches" in out

    def test_bad_flags_rejected(self, fig34_bench):
        with pytest.raises(SystemExit):
            main(["atpg", fig34_bench, "--timeout", "0"])
        with pytest.raises(SystemExit):
            main(["atpg", fig34_bench, "--candidates", "0"])


class TestCommittedBatch:
    """The committed random-logic batch (``examples/data/array*.bench``,
    the BENCH_atpg workload) stays reproducible and fully covered."""

    def test_batch_regenerates_from_pinned_seeds(self):
        for stages, seed in ((10, 0), (11, 1)):
            net = random_array_network(
                random.Random(f"array:{stages}:{seed}"),
                stages,
                name=f"array{stages}",
            )
            loaded = load_bench(
                os.path.join(DATA_DIR, f"array{stages}.bench")
            )
            assert loaded.inputs == net.inputs
            assert loaded.outputs == net.outputs
            assert [
                (g.name, g.kind, g.inputs) for g in loaded.gates
            ] == [(g.name, g.kind, g.inputs) for g in net.gates]

    def test_cli_coverage_equals_detectable_count(self, capsys):
        """Acceptance bar: ``python -m repro atpg`` on the committed
        batch detects exactly the faults the block backend can
        distinguish from the good circuit.  With zero aborts,
        ``detected == detectable`` reduces to checking that every
        redundant-claimed fault is truly undetectable — so only those
        few faults need the exhaustive 2^21-point sweep."""
        path = os.path.join(DATA_DIR, "array10.bench")
        assert main(["atpg", path, "--json", "--report"]) == 0
        data = json.loads(capsys.readouterr().out)
        net = load_bench(path)
        universe = sorted(
            collapse_stem_faults(net), key=lambda f: (f.line, f.value)
        )
        assert data["aborted"] == 0
        assert data["requested"] == len(universe)
        assert data["detected"] + data["redundant"] == data["requested"]
        redundant = {
            name
            for name, status in data["classifications"].items()
            if status == "redundant"
        }
        assert len(redundant) == data["redundant"]
        packed = engine_for(net).packed
        baseline = packed.output_bits(None)
        for fault in universe:
            if fault.describe() in redundant:
                assert packed.output_bits(fault) == baseline, (
                    f"{fault.describe()} claimed redundant but detectable"
                )
