"""Tests for the command-line interface (repro.cli)."""

import os

import pytest

from repro.cli import main
from repro.logic.benchfmt import load_bench, save_bench
from repro.workloads.fig34 import fig34_network, fig37_fixed_network


@pytest.fixture
def fig34_bench(tmp_path):
    path = os.path.join(tmp_path, "fig34.bench")
    save_bench(fig34_network(), path)
    return path


@pytest.fixture
def fig37_bench(tmp_path):
    path = os.path.join(tmp_path, "fig37.bench")
    save_bench(fig37_fixed_network(), path)
    return path


class TestCampaign:
    def test_self_checking_network_exits_0(self, fig37_bench, capsys):
        assert main(["campaign", fig37_bench]) == 0
        out = capsys.readouterr().out
        assert "100.0% detected" in out
        assert "via" in out  # names the backend it ran on

    def test_dangerous_fault_exits_1(self, fig34_bench, capsys):
        assert main(["campaign", fig34_bench, "--no-collapse"]) == 1
        assert "dangerous" in capsys.readouterr().out

    def test_json_output_and_backend_agreement(self, fig37_bench, capsys):
        import json

        stats = {}
        for backend in ("bitmask", "vectorized", "fallback"):
            assert main(
                ["campaign", fig37_bench, "--json", "--backend", backend]
            ) == 0
            stats[backend] = json.loads(capsys.readouterr().out)
            del stats[backend]["backend"]
        assert stats["bitmask"] == stats["vectorized"] == stats["fallback"]

    def test_processes_flag(self, fig37_bench, capsys):
        assert main(["campaign", fig37_bench, "--processes", "2",
                     "--no-collapse"]) == 0

    def test_bad_processes_is_a_validation_error(self, fig37_bench):
        with pytest.raises(SystemExit, match="--processes must be >= 1"):
            main(["campaign", fig37_bench, "--processes", "0"])

    def test_bad_timeout_is_a_validation_error(self, fig37_bench):
        with pytest.raises(SystemExit, match="--timeout must be"):
            main(["campaign", fig37_bench, "--timeout", "-3"])

    def test_resume_requires_checkpoint(self, fig37_bench):
        with pytest.raises(SystemExit, match="--resume requires"):
            main(["campaign", fig37_bench, "--resume"])

    def test_missing_resume_checkpoint_is_not_a_traceback(
        self, fig37_bench, tmp_path
    ):
        with pytest.raises(SystemExit, match="does not exist"):
            main(["campaign", fig37_bench, "--resume",
                  "--checkpoint", os.path.join(tmp_path, "absent.json")])

    def test_checkpoint_then_resume_matches(self, fig37_bench, tmp_path,
                                            capsys):
        import json

        ckpt = os.path.join(tmp_path, "campaign.json")
        assert main(["campaign", fig37_bench, "--json", "--no-collapse",
                     "--checkpoint", ckpt]) == 0
        first = json.loads(capsys.readouterr().out)
        assert os.path.exists(ckpt)
        assert main(["campaign", fig37_bench, "--json", "--no-collapse",
                     "--checkpoint", ckpt, "--resume"]) == 0
        resumed = json.loads(capsys.readouterr().out)
        del first["backend"], resumed["backend"]
        assert first == resumed

    def test_report_flag(self, fig37_bench, capsys):
        import json

        assert main(["campaign", fig37_bench, "--json", "--report"]) == 0
        stats = json.loads(capsys.readouterr().out)
        report = stats["report"]
        assert report["degradations"] == []
        assert report["chunks_completed"] == report["chunks_total"]
        # Without --report the JSON stays stable across runs (no
        # wall-time noise leaks into the comparison-friendly output).
        assert main(["campaign", fig37_bench, "--json"]) == 0
        assert "report" not in json.loads(capsys.readouterr().out)
        # Human mode prints the summary.
        assert main(["campaign", fig37_bench, "--report"]) == 0
        assert "campaign:" in capsys.readouterr().out


class TestAnalyze:
    def test_failing_network_exits_1(self, fig34_bench, capsys):
        assert main(["analyze", fig34_bench]) == 1
        out = capsys.readouterr().out
        assert "NOT self-checking" in out
        assert "or_ab" in out

    def test_passing_network_exits_0(self, fig37_bench, capsys):
        assert main(["analyze", fig37_bench, "--oracle"]) == 0
        out = capsys.readouterr().out
        assert out.count("SELF-CHECKING") >= 2  # analysis + oracle

    def test_listing_flag(self, fig34_bench, capsys):
        main(["analyze", fig34_bench, "--listing"])
        out = capsys.readouterr().out
        assert "FAILS Algorithm 3.1" in out

    def test_missing_file(self):
        with pytest.raises(SystemExit):
            main(["analyze", "/nonexistent/x.bench"])


class TestTestgen:
    def test_truth_table_route(self, fig37_bench, capsys):
        assert main(["testgen", fig37_bench, "--output", "F3"]) == 0
        out = capsys.readouterr().out
        assert "s/0" in out and "s/1" in out

    def test_structural_route(self, fig37_bench, capsys):
        code = main(["testgen", fig37_bench, "--structural"])
        out = capsys.readouterr().out
        assert "pair anchored" in out
        # or_ab-free network: every fault should get a pair or be benign;
        # exit code reflects whether any line lacked a pair.
        assert code in (0, 1)


class TestRepair:
    def test_repairs_and_writes(self, fig34_bench, tmp_path, capsys):
        out_path = os.path.join(tmp_path, "fixed.bench")
        assert main(["repair", fig34_bench, "--out", out_path]) == 0
        text = capsys.readouterr().out
        assert "repaired" in text
        fixed = load_bench(out_path)
        from repro.core import analyze_network

        assert analyze_network(fixed).is_self_checking


class TestMinority:
    def test_converts_nand_network(self, tmp_path, capsys):
        from repro.workloads.benchcircuits import fig62_nand_network

        src = os.path.join(tmp_path, "fig62.bench")
        save_bench(fig62_nand_network(), src)
        dst = os.path.join(tmp_path, "fig62_min.bench")
        assert main(["minority", src, "--out", dst]) == 0
        out = capsys.readouterr().out
        assert "minority modules" in out
        converted = load_bench(dst)
        assert any(g.kind.value == "min" for g in converted.gates)


class TestDot:
    def test_dot_output(self, fig34_bench, capsys):
        assert main(["dot", fig34_bench]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
        assert 'color="red"' in out  # or_ab highlighted


class TestFaultTable:
    def test_table_with_bad_fault(self, fig34_bench, capsys):
        code = main(["faulttable", fig34_bench, "nab/0", "or_ab/0"])
        out = capsys.readouterr().out
        assert "1,1X" in out
        assert "undetected wrong outputs" in out
        assert code == 1

    def test_clean_table(self, fig37_bench, capsys):
        assert main(["faulttable", fig37_bench, "nab/1"]) == 0

    def test_bad_fault_spec(self, fig34_bench):
        with pytest.raises(SystemExit):
            main(["faulttable", fig34_bench, "nab"])


class TestTelemetryCli:
    def test_campaign_writes_flight_and_prometheus(
        self, fig37_bench, tmp_path, capsys
    ):
        from repro import obs

        flight = str(tmp_path / "flight.jsonl")
        prom = str(tmp_path / "metrics.prom")
        assert main(["campaign", fig37_bench, "--no-collapse",
                     "--trace-out", flight, "--metrics-out", prom]) == 0
        capsys.readouterr()
        samples = obs.parse_prometheus(open(prom).read())
        assert samples["repro_campaign_faults_total"]
        events = list(obs.read_flight(flight))
        ok_chunks = sum(
            1 for e in events
            if e["k"] == "span" and e["name"] == "sweep.chunk" and e["ok"]
        )
        (report,) = [
            e["attrs"] for e in events
            if e["k"] == "event" and e["name"] == "campaign.report"
        ]
        assert ok_chunks == report["chunks_completed"] > 0
        # the recording context restored the disabled default
        assert obs.get_recorder() is None
        assert not obs.metrics_enabled()

    def test_metrics_out_json_flavor(self, fig37_bench, tmp_path, capsys):
        import json

        out = str(tmp_path / "metrics.json")
        assert main(["campaign", fig37_bench, "--no-collapse",
                     "--metrics-out", out]) == 0
        capsys.readouterr()
        snapshot = json.load(open(out))
        assert snapshot["counters"]["repro_campaign_faults_total"]["samples"]

    def test_fuzz_accepts_telemetry_flags(self, tmp_path, capsys):
        from repro import obs

        flight = str(tmp_path / "flight.jsonl")
        prom = str(tmp_path / "metrics.prom")
        assert main(["fuzz", "--budget", "4",
                     "--property", "backend-agreement",
                     "--artifact-dir", "none",
                     "--trace-out", flight, "--metrics-out", prom]) == 0
        capsys.readouterr()
        events = list(obs.read_flight(flight))
        assert any(
            e["k"] == "span" and e["name"] == "qa.property" for e in events
        )
        assert obs.parse_prometheus(open(prom).read())[
            "repro_qa_trials_total"
        ]

    def test_stats_renders_a_recorded_flight(
        self, fig37_bench, tmp_path, capsys
    ):
        import json

        flight = str(tmp_path / "flight.jsonl")
        assert main(["campaign", fig37_bench, "--no-collapse",
                     "--trace-out", flight]) == 0
        capsys.readouterr()
        assert main(["stats", flight]) == 0
        out = capsys.readouterr().out
        assert "flight:" in out and "campaign:" in out
        assert main(["stats", flight, "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["campaigns"] and summary["chunk_spans"]["ok"] > 0

    def test_stats_missing_or_corrupt_flight_is_not_a_traceback(
        self, tmp_path
    ):
        with pytest.raises(SystemExit):
            main(["stats", str(tmp_path / "nope.jsonl")])
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        with pytest.raises(SystemExit):
            main(["stats", str(bad)])
