"""Cross-module integration tests: whole-thesis pipelines."""

import random

from repro.checkers.tworail import ScalDualRailChecker, code_valid
from repro.checkers.xorchk import check_pair
from repro.core import ScalSimulator, analyze_network
from repro.logic.faults import StuckAt, enumerate_stem_faults
from repro.logic.selfdual import self_dualize_table
from repro.logic.synthesis import sop_network
from repro.logic.truthtable import TruthTable
from repro.scal.codeconv import to_code_conversion
from repro.scal.dualff import to_dual_flipflop
from repro.workloads.detectors import kohavi_0101
from repro.workloads.randomlogic import random_machine, random_truth_table


class TestDesignFlowCombinational:
    """The thesis's combinational design flow: arbitrary function →
    self-dualize → two-level synthesis → verified SCAL network →
    checker attached."""

    def test_arbitrary_function_to_scal_network(self):
        rnd = random.Random(5)
        for _ in range(5):
            table = random_truth_table(rnd, 3)
            sd = self_dualize_table(table)
            net = sop_network(sd, network_name="flow")
            analysis = analyze_network(net)
            assert analysis.is_self_checking
            oracle = ScalSimulator(net).verdict()
            assert oracle.is_self_checking

    def test_checker_catches_what_the_oracle_predicts(self):
        """Attach the software XOR checker to a SCAL network and verify
        it fires exactly on the pairs the oracle marks detected."""
        rnd = random.Random(6)
        table = random_truth_table(rnd, 3)
        net = sop_network(self_dualize_table(table), network_name="chk")
        sim = ScalSimulator(net)
        out = net.outputs[0]
        full = (1 << len(net.inputs)) - 1
        for fault in enumerate_stem_faults(net, include_inputs=False):
            resp = sim.response(fault)
            from repro.logic.evaluate import line_tables

            faulty = line_tables(net, fault)[out]
            for anchor in range(1 << (len(net.inputs) - 1)):
                pair = (anchor, anchor ^ full)
                verdict = check_pair(
                    [faulty.value(pair[0])], [faulty.value(pair[1])]
                )
                assert (not verdict.valid) == bool(
                    resp.detected.value(anchor)
                ), (fault.describe(), anchor)


class TestDesignFlowSequential:
    """State table → three realizations → same behaviour, and the
    dual-rail checker validates the dual-FF machine's monitored lines."""

    def test_machine_through_all_realizations(self):
        rnd = random.Random(7)
        machine = random_machine(rnd, 4)
        vectors = [(rnd.randint(0, 1),) for _ in range(30)]
        reference = machine.run(vectors)
        dff = to_dual_flipflop(machine)
        run_dff = dff.run(vectors)
        assert dff.decoded_outputs(run_dff) == reference
        cc = to_code_conversion(machine)
        run_cc = cc.run(vectors)
        assert cc.decoded_outputs(run_cc) == reference

    def test_dual_rail_checker_on_dualff_machine(self):
        rnd = random.Random(8)
        machine = kohavi_0101()
        dff = to_dual_flipflop(machine)
        vectors = [(rnd.randint(0, 1),) for _ in range(25)]
        width = len(dff.output_names) + len(dff.state_output_names)
        checker = ScalDualRailChecker(width)
        run = dff.run(vectors)
        for step in run.steps:
            assert code_valid(checker.feed_pair(step.first, step.second))
        # Now a faulty run: the checker must reject some step.
        fault = StuckAt("Z0", 1)
        bad_run = dff.run(vectors, fault=fault)
        rejected = [
            not code_valid(checker.feed_pair(step.first, step.second))
            for step in bad_run.steps
        ]
        assert any(rejected)

    def test_codeconv_cheaper_storage_than_dualff(self):
        rnd = random.Random(9)
        for n_states in (3, 4, 5, 7):
            machine = random_machine(rnd, n_states, name=f"m{n_states}")
            dff = to_dual_flipflop(machine)
            cc = to_code_conversion(machine)
            assert cc.flip_flop_count() < dff.flip_flop_count()


class TestFig34EndToEnd:
    def test_fig37_survives_full_fault_campaign_with_checker(self, fig37):
        """Run the fixed network in alternating mode against every stem
        fault with a 3-line dual-rail checker: every output-corrupting
        fault is caught."""
        from repro.logic.evaluate import line_tables

        sim = ScalSimulator(fig37)
        normal = line_tables(fig37)
        full = (1 << 3) - 1
        checker = ScalDualRailChecker(3)
        for fault in enumerate_stem_faults(fig37):
            faulty = line_tables(fig37, fault)
            wrong_somewhere = False
            caught = False
            for anchor in range(4):
                pair = (anchor, anchor ^ full)
                first = [faulty[o].value(pair[0]) for o in fig37.outputs]
                second = [faulty[o].value(pair[1]) for o in fig37.outputs]
                ref_first = [normal[o].value(pair[0]) for o in fig37.outputs]
                if first != ref_first:
                    wrong_somewhere = True
                if not code_valid(checker.feed_pair(first, second)):
                    caught = True
            if wrong_somewhere:
                assert caught, fault.describe()
