"""Tests for the SCAL CPU (repro.system.cpu)."""

import random

import pytest

from repro.system.cpu import (
    CpuFault,
    Instruction,
    Op,
    ScalCpu,
    bits_to_word,
    complement_bits,
    reference_run,
    word_to_bits,
)


def run_both(program, data=None, width=8):
    cpu = ScalCpu(width)
    result = cpu.run(program, data=data)
    golden_acc, golden_mem = reference_run(program, data, width)
    return result, golden_acc, golden_mem


class TestWordHelpers:
    def test_roundtrip(self):
        for value in (0, 1, 127, 200, 255):
            assert bits_to_word(word_to_bits(value, 8)) == value

    def test_complement(self):
        assert complement_bits([1, 0, 1]) == [0, 1, 0]


class TestInstructionSemantics:
    def test_ldi_and_add(self):
        program = [
            Instruction(Op.LDI, 10),
            Instruction(Op.ADD, 0),
            Instruction(Op.HALT),
        ]
        result, golden, _ = run_both(program, {0: 32})
        assert result.halted and not result.detected
        assert result.acc == golden == 42

    def test_sub_wraps(self):
        program = [
            Instruction(Op.LDI, 5),
            Instruction(Op.SUB, 0),
            Instruction(Op.HALT),
        ]
        result, golden, _ = run_both(program, {0: 7})
        assert result.acc == golden == (5 - 7) % 256

    def test_shifts(self):
        program = [
            Instruction(Op.LDI, 0b1011),
            Instruction(Op.SHL),
            Instruction(Op.SHR),
            Instruction(Op.SHR),
            Instruction(Op.HALT),
        ]
        result, golden, _ = run_both(program)
        assert result.acc == golden == 0b101

    def test_store_and_load(self):
        program = [
            Instruction(Op.LDI, 99),
            Instruction(Op.STORE, 4),
            Instruction(Op.LDI, 0),
            Instruction(Op.LOAD, 4),
            Instruction(Op.HALT),
        ]
        result, golden, golden_mem = run_both(program)
        assert result.acc == golden == 99
        assert result.memory_words[4] == golden_mem[4]

    def test_jz_taken_and_not_taken(self):
        program = [
            Instruction(Op.LDI, 0),
            Instruction(Op.JZ, 3),
            Instruction(Op.LDI, 77),   # skipped
            Instruction(Op.LDI, 5),
            Instruction(Op.JZ, 6),     # not taken (acc = 5)
            Instruction(Op.LDI, 42),
            Instruction(Op.HALT),
        ]
        result, golden, _ = run_both(program)
        assert result.acc == golden == 42

    def test_jmp_loop_and_max_steps(self):
        program = [Instruction(Op.JMP, 0)]
        cpu = ScalCpu()
        result = cpu.run(program, max_steps=25)
        assert not result.halted
        assert result.steps == 25

    def test_random_programs_match_reference(self):
        rnd = random.Random(99)
        straight_ops = [Op.LDI, Op.LOAD, Op.STORE, Op.ADD, Op.SUB, Op.SHL, Op.SHR]
        for _ in range(15):
            program = []
            for _ in range(12):
                op = rnd.choice(straight_ops)
                arg = rnd.randrange(8) if op is not Op.LDI else rnd.randrange(256)
                program.append(Instruction(op, arg))
            program.append(Instruction(Op.HALT))
            data = {addr: rnd.randrange(256) for addr in range(4)}
            result, golden_acc, golden_mem = run_both(program, data)
            assert not result.detected
            assert result.acc == golden_acc
            for addr, value in golden_mem.items():
                assert result.memory_words.get(addr, 0) == value


class TestFaultBehaviour:
    def test_alu_bit_fault_detected_when_sensitized(self):
        program = [
            Instruction(Op.LDI, 0b1),  # ALU passes operand through
            Instruction(Op.HALT),
        ]
        cpu = ScalCpu(fault=CpuFault("alu_bit", 0, 0))
        result = cpu.run(program)
        assert result.detected
        assert result.detection_reason == "ALU pair nonalternating"

    def test_alu_bit_fault_silent_when_value_matches(self):
        """A stuck value equal to the healthy value in *both* phases is
        impossible (phases alternate), so any exercised ALU op detects
        the stuck bit immediately."""
        program = [Instruction(Op.LDI, 0), Instruction(Op.HALT)]
        cpu = ScalCpu(fault=CpuFault("alu_bit", 0, 0))
        result = cpu.run(program)
        assert result.detected  # phase-1 complement exposes it

    def test_bus_fault_detected_by_parity(self):
        program = [Instruction(Op.LOAD, 0), Instruction(Op.HALT)]
        cpu = ScalCpu(fault=CpuFault("bus_bit", 2, 1))
        result = cpu.run(program, data={0: 0})  # bit 2 actually flips
        assert result.detected
        assert result.detection_reason == "memory code word invalid"

    def test_acc_ff_fault_detected(self):
        program = [
            Instruction(Op.LDI, 0),
            Instruction(Op.SHL),
            Instruction(Op.HALT),
        ]
        cpu = ScalCpu(fault=CpuFault("acc_ff", 3, 1))
        result = cpu.run(program)
        assert result.detected

    def test_detection_stops_execution(self):
        program = [
            Instruction(Op.LDI, 1),
            Instruction(Op.STORE, 0),
            Instruction(Op.HALT),
        ]
        cpu = ScalCpu(fault=CpuFault("alu_bit", 0, 0))
        result = cpu.run(program)
        assert result.detected
        assert not result.halted
        assert result.detection_step is not None
