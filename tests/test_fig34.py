"""Integration test: the full Section 3.6 walkthrough (E-FIG3.4/E-FIG3.7).

These assertions pin down everything EXPERIMENTS.md claims about the
Figure 3.4 reconstruction: the output functions, the Algorithm 3.1 line
classification, the Figure 3.6 fault-table rows for the thesis's lines 9
and 20, the not-self-checking verdict, and the Figure 3.7 fix.
"""

from repro.core import (
    ScalSimulator,
    analyze_network,
    fault_table,
    lines_needing_multi_output,
    undetected_faults,
)
from repro.logic import functionally_equivalent, line_tables, parse_expressions
from repro.logic.faults import StuckAt
from repro.logic.network import expand_fanout_branches
from repro.workloads.fig34 import (
    THESIS_LINE_MAP,
    expected_output_functions,
    fig34_network,
    fig37_fixed_network,
)


class TestFunctions:
    def test_output_functions_match_section_3_6(self, fig34):
        ref = parse_expressions(
            expected_output_functions(), inputs=["A", "B", "C"]
        )
        assert functionally_equivalent(fig34, ref)

    def test_outputs_are_self_dual(self, fig34):
        tables = line_tables(fig34)
        for out in fig34.outputs:
            assert tables[out].is_self_dual()

    def test_fix_preserves_functions(self, fig34, fig37):
        assert functionally_equivalent(fig34, fig37)

    def test_fix_adds_exactly_one_gate(self, fig34, fig37):
        assert fig37.gate_count() == fig34.gate_count() + 1


class TestThesisVerdicts:
    def test_line9_admitted_only_by_corollary_32(self, fig34):
        analysis = analyze_network(fig34)
        nab = THESIS_LINE_MAP["9"]
        assert lines_needing_multi_output(analysis) == (nab,)

    def test_line20_breaks_self_checking(self, fig34):
        analysis = analyze_network(fig34)
        assert analysis.failing_lines() == (THESIS_LINE_MAP["20"],)

    def test_line20_only_stuck_at_0(self, fig34):
        """Like the thesis's line 20, only the s/0 direction slips
        through undetected."""
        sim = ScalSimulator(fig34)
        assert not sim.response(StuckAt("or_ab", 0)).is_fault_secure
        assert sim.response(StuckAt("or_ab", 1)).is_fault_secure

    def test_oracle_and_analysis_agree(self, fig34):
        oracle = ScalSimulator(fig34).verdict(include_pins=True)
        analysis = analyze_network(expand_fanout_branches(fig34))
        assert not oracle.is_self_checking
        assert not analysis.is_self_checking
        assert analysis.failing_lines() == ("or_ab",)

    def test_fig36_table_reading(self, fig34):
        rows = fault_table(
            fig34,
            [
                StuckAt("nab", 0),
                StuckAt("nab", 1),
                StuckAt("or_ab", 0),
                StuckAt("or_ab", 1),
            ],
            include_normal=False,
        )
        assert undetected_faults(rows) == ["or_ab s/0"]


class TestFig37Fix:
    def test_fixed_network_is_self_checking(self, fig37):
        assert analyze_network(fig37).is_self_checking
        assert ScalSimulator(fig37).verdict(include_pins=True).is_self_checking

    def test_fixed_copies_have_no_fanout(self, fig37):
        assert fig37.fanout_count("or_ab") == 1
        assert fig37.fanout_count("or_ab2") == 1

    def test_line9_still_needs_corollary_32_after_fix(self, fig37):
        analysis = analyze_network(fig37)
        assert lines_needing_multi_output(analysis) == ("nab",)
