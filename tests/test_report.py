"""Tests for the Figure 3.6 fault table renderer (repro.core.report)."""

from repro.core.report import (
    fault_table,
    input_pairs,
    pair_label,
    render_fault_table,
    undetected_faults,
)
from repro.logic.faults import StuckAt
from repro.workloads.fig34 import fig34_network


class TestInputPairs:
    def test_thesis_column_order(self, fig34):
        pairs = input_pairs(fig34)
        labels = [pair_label(p, fig34) for p in pairs]
        assert labels == ["(000,111)", "(001,110)", "(010,101)", "(011,100)"]

    def test_pairs_are_complements(self, fig34):
        n = len(fig34.inputs)
        full = (1 << n) - 1
        for x, y in input_pairs(fig34):
            assert y == x ^ full

    def test_pair_count(self, fig34):
        assert len(input_pairs(fig34)) == 4


class TestFaultTable:
    def test_normal_rows_match_thesis(self, fig34):
        rows = fault_table(fig34, [])
        by_out = {r.output: r for r in rows if r.label == "normal"}
        render = lambda r: [f"{e.first},{e.second}" for e in r.entries]
        assert render(by_out["F1"]) == ["0,1", "1,0", "1,0", "1,0"]
        assert render(by_out["F2"]) == ["0,1", "1,0", "1,0", "0,1"]
        assert render(by_out["F3"]) == ["0,1", "0,1", "0,1", "1,0"]

    def test_line9_rows_match_thesis(self, fig34):
        """The thesis's Figure 3.6 rows for line 9 (our nab)."""
        rows = fault_table(
            fig34, [StuckAt("nab", 0), StuckAt("nab", 1)], include_normal=False
        )
        cells = {
            (r.label, r.output): [e.render() for e in r.entries] for r in rows
        }
        assert cells[("nab s/0", "F2")] == ["0,1", "1,0", "0,1*", "1,0*"]
        assert cells[("nab s/0", "F3")] == ["1,1X"] * 4
        assert cells[("nab s/1", "F3")] == ["0,1", "0,0X", "0,1", "1,0"]

    def test_rows_only_for_dependent_outputs(self, fig34):
        rows = fault_table(fig34, [StuckAt("g2", 0)], include_normal=False)
        outputs = {r.output for r in rows}
        assert outputs == {"F2"}

    def test_undetected_faults_finds_line20(self, fig34):
        rows = fault_table(
            fig34,
            [StuckAt("or_ab", 0), StuckAt("or_ab", 1), StuckAt("nab", 0)],
            include_normal=False,
        )
        assert undetected_faults(rows) == ["or_ab s/0"]

    def test_detected_and_incorrect_flags(self, fig34):
        rows = fault_table(fig34, [StuckAt("nab", 0)], include_normal=False)
        f2_row = next(r for r in rows if r.output == "F2")
        f3_row = next(r for r in rows if r.output == "F3")
        assert f2_row.has_incorrect_alternation and not f2_row.detected
        assert f3_row.detected and not f3_row.has_incorrect_alternation


class TestRendering:
    def test_render_contains_marks(self, fig34):
        rows = fault_table(fig34, [StuckAt("nab", 0)])
        text = render_fault_table(fig34, rows)
        assert "1,1X" in text
        assert "0,1*" in text
        assert "(011,100)" in text
