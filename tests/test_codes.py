"""Tests for the Section 7.2 comparison codes (repro.checkers.codes)."""

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkers.codes import (
    berger_check_width,
    berger_encode,
    berger_error_detected,
    berger_valid,
    code_size,
    data_capacity,
    encoding_comparison,
    inject_unidirectional,
    m_out_of_n_codewords,
    m_out_of_n_valid,
    render_encoding_comparison,
)


class TestBerger:
    def test_check_width(self):
        assert berger_check_width(1) == 1
        assert berger_check_width(3) == 2
        assert berger_check_width(4) == 3
        assert berger_check_width(8) == 4
        with pytest.raises(ValueError):
            berger_check_width(0)

    def test_encode_valid(self):
        for data_bits in (2, 3, 4, 6):
            for word in range(1 << data_bits):
                data = [(word >> i) & 1 for i in range(data_bits)]
                assert berger_valid(berger_encode(data), data_bits)

    def test_wrong_check_rejected(self):
        encoded = berger_encode([1, 0, 1, 0])
        encoded[-1] ^= 1
        assert not berger_valid(encoded, 4)

    @settings(max_examples=150)
    @given(
        st.integers(min_value=2, max_value=6),
        st.randoms(use_true_random=False),
    )
    def test_detects_all_unidirectional_errors(self, data_bits, rnd):
        """The Berger property: every unidirectional error (any number
        of lines stuck at one value) breaks the check."""
        word_value = rnd.randrange(1 << data_bits)
        data = [(word_value >> i) & 1 for i in range(data_bits)]
        encoded = berger_encode(data)
        total = len(encoded)
        k = rnd.randint(1, total)
        positions = rnd.sample(range(total), k)
        direction = rnd.randint(0, 1)
        corrupted = inject_unidirectional(encoded, positions, direction)
        if corrupted == encoded:
            return  # nothing actually flipped
        assert berger_error_detected(encoded, data_bits, positions, direction)

    def test_bidirectional_errors_can_slip(self):
        """The limit of the code: compensating flips in both directions
        may be missed — the reason Berger only claims unidirectional."""
        data_bits = 3
        found_miss = False
        for word in range(1 << data_bits):
            data = [(word >> i) & 1 for i in range(data_bits)]
            encoded = berger_encode(data)
            for flips in itertools.combinations(range(data_bits), 2):
                corrupted = list(encoded)
                corrupted[flips[0]] ^= 1
                corrupted[flips[1]] ^= 1
                changed = corrupted != encoded
                same_zeros = sum(
                    1 for b in corrupted[:data_bits] if not b
                ) == sum(1 for b in encoded[:data_bits] if not b)
                if changed and same_zeros and berger_valid(corrupted, data_bits):
                    found_miss = True
        assert found_miss


class TestMOutOfN:
    def test_codeword_count(self):
        assert len(m_out_of_n_codewords(1, 2)) == 2
        assert len(m_out_of_n_codewords(2, 4)) == 6
        assert code_size(2, 4) == 6

    def test_validity(self):
        assert m_out_of_n_valid([1, 0, 1, 0], 2)
        assert not m_out_of_n_valid([1, 1, 1, 0], 2)

    def test_one_out_of_two_is_checker_code(self):
        words = m_out_of_n_codewords(1, 2)
        assert set(words) == {(1, 0), (0, 1)}

    def test_unidirectional_always_detected(self):
        for word in m_out_of_n_codewords(2, 5):
            for k in range(1, 5):
                for positions in itertools.combinations(range(5), k):
                    for direction in (0, 1):
                        corrupted = inject_unidirectional(
                            word, list(positions), direction
                        )
                        if tuple(corrupted) == word:
                            continue
                        assert not m_out_of_n_valid(corrupted, 2)

    def test_data_capacity(self):
        assert data_capacity(2, 4) == 2  # 6 codewords -> 2 bits
        assert data_capacity(3, 6) == 4  # 20 codewords -> 4 bits

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            m_out_of_n_codewords(5, 3)


class TestEncodingComparison:
    def test_rows_present(self):
        rows = {r.code: r for r in encoding_comparison(8)}
        assert "single parity" in rows
        assert "Berger" in rows
        assert "alternating (time)" in rows

    def test_parity_cheapest_space_code(self):
        rows = encoding_comparison(8)
        parity_row = next(r for r in rows if r.code == "single parity")
        space_rows = [
            r for r in rows if r.code != "alternating (time)"
        ]
        assert parity_row.redundancy_bits == min(
            r.redundancy_bits for r in space_rows
        )

    def test_alternating_needs_no_extra_wires(self):
        rows = encoding_comparison(8)
        alt = next(r for r in rows if r.code == "alternating (time)")
        assert alt.redundancy_bits == 0

    def test_unidirectional_column(self):
        rows = {r.code: r for r in encoding_comparison(8)}
        assert not rows["single parity"].detects_unidirectional
        assert rows["Berger"].detects_unidirectional

    def test_render(self):
        text = render_encoding_comparison(8)
        assert "Berger" in text
        assert "out-of-" in text
