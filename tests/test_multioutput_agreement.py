"""The strongest core property: Algorithm 3.1 ⟺ oracle on *multi-output*
networks with shared logic (the Corollary 3.2 regime).

Single-output agreement is covered in test_analysis.py; here the random
population is two-output self-dualized SOPs with *shared products*, so
lines genuinely sit in several cones and the multi-output relaxation is
exercised (and, in sharing-free controls, not)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis import analyze_network, lines_needing_multi_output
from repro.core.simulate import ScalSimulator
from repro.logic.network import expand_fanout_branches
from repro.logic.selfdual import self_dualize_table
from repro.logic.synthesis import multi_output_sop
from repro.logic.truthtable import TruthTable


def random_multi_output_scal(rnd, n_inputs=2, n_outputs=2, share=True):
    names = [f"x{i}" for i in range(n_inputs)]
    tables = {}
    for k in range(n_outputs):
        raw = TruthTable(n_inputs, rnd.getrandbits(1 << n_inputs))
        tables[f"F{k}"] = self_dualize_table(raw)
    return multi_output_sop(
        tables,
        names + ["phi"],
        network_name="mo_scal",
        share_products=share,
    )


class TestMultiOutputAgreement:
    @settings(max_examples=20, deadline=None)
    @given(st.randoms(use_true_random=False))
    def test_shared_products_agreement(self, rnd):
        net = random_multi_output_scal(rnd, share=True)
        oracle = ScalSimulator(net).verdict(include_pins=True)
        analysis = analyze_network(expand_fanout_branches(net))
        assert analysis.is_self_checking == oracle.is_self_checking

    @settings(max_examples=15, deadline=None)
    @given(st.randoms(use_true_random=False))
    def test_private_products_agreement(self, rnd):
        net = random_multi_output_scal(rnd, share=False)
        oracle = ScalSimulator(net).verdict(include_pins=True)
        analysis = analyze_network(expand_fanout_branches(net))
        assert analysis.is_self_checking == oracle.is_self_checking

    @settings(max_examples=20, deadline=None)
    @given(st.randoms(use_true_random=False))
    def test_failing_lines_are_oracle_insecure(self, rnd):
        """Every line the analyzer condemns has an oracle-insecure stem
        fault, and vice versa (over the expanded network)."""
        net = expand_fanout_branches(random_multi_output_scal(rnd, share=True))
        analysis = analyze_network(net)
        sim = ScalSimulator(net)
        for line, verdict in analysis.lines.items():
            if not verdict.admitted_by:
                continue
            assert verdict.self_checking == sim.line_self_checking(line), line

    def test_two_level_sharing_never_needs_corollary_32(self):
        """A verified structural fact: in *two-level* shared-product SCAL
        networks the shared lines are admitted per-cone by condition B
        (single unate path within each output's cone), so the
        multi-output relaxation is never needed — Corollary 3.2 is a
        *multi-level* sharing phenomenon."""
        rnd = random.Random(0)
        for _ in range(30):
            net = random_multi_output_scal(rnd, share=True)
            analysis = analyze_network(net)
            assert not lines_needing_multi_output(analysis)

    def test_corollary_32_exercised_by_multilevel_sharing(self):
        """The fig3.4 reconstruction is the witness that the relaxation
        does real work once sharing happens *inside* multi-level logic."""
        from repro.workloads.fig34 import fig37_fixed_network

        analysis = analyze_network(fig37_fixed_network())
        assert lines_needing_multi_output(analysis) == ("nab",)
