"""The QA subsystem's own regression suite (repro.qa).

Three layers: a fixed-seed slice of every registered property (the
invariants hold on the healthy engine), unit tests of the shrinker on a
synthetic known-bad predicate, and the chaos self-test — inject a named
engine bug and require the full pipeline (detect, shrink, emit JSON +
pytest artifacts) to catch it.  A fuzzing harness that has never caught
a bug is indistinguishable from one that cannot.
"""

import json

import pytest

from repro.logic.gates import GateKind
from repro.logic.network import NetworkBuilder
from repro.qa import (
    PROPERTIES,
    Case,
    case_from_json,
    case_to_json,
    fuzz,
    network_from_json,
    property_names,
    pytest_snippet,
    run_property,
    shrink_case,
    trial_rng,
)
from repro.qa.chaos import bug_names, inject

EXPECTED_PROPERTIES = {
    "algorithm31-oracle-agreement",
    "alternation-self-dual",
    "atpg-compaction-conservation",
    "atpg-detects",
    "atpg-drop-soundness",
    "backend-agreement",
    "collapse-verdict",
    "sampled-determinism",
    "seq-transform-equivalence",
    "synth-determinism",
    "synth-soundness",
}

FIXED_SEED = 2026


def test_registry_names():
    assert set(property_names()) == EXPECTED_PROPERTIES


@pytest.mark.parametrize("name", sorted(EXPECTED_PROPERTIES))
def test_fixed_seed_slice(name):
    """Tier-1 slice: every property holds on a few fixed-seed trials."""
    report = run_property(PROPERTIES[name], seed=FIXED_SEED, trials=3)
    assert report.ok, report.counterexamples[0].detail


@pytest.mark.atpg
@pytest.mark.parametrize(
    "name", ["atpg-drop-soundness", "atpg-compaction-conservation"]
)
def test_atpg_property_deep_slice(name):
    """Acceptance bar from the issue: both ATPG properties hold across
    200 fixed-seed trials in tier-1 (the generators are sized so this
    stays a couple of seconds)."""
    report = run_property(PROPERTIES[name], seed=FIXED_SEED, trials=200)
    assert report.ok, report.counterexamples[0].detail


@pytest.mark.atpg
@pytest.mark.parametrize(
    "name", ["atpg-drop-soundness", "atpg-compaction-conservation"]
)
def test_atpg_property_counterexamples_shrink(name):
    """A violated ATPG property must produce a *shrunk* witness: feed the
    checker a sabotaged report via a wrapper predicate and require the
    greedy shrinker to minimize the failing network."""
    check = PROPERTIES[name].check

    def sabotaged(case):
        # Out-of-domain cases pass through; in-domain networks with at
        # least one testable fault are declared "wrong" so the shrinker
        # has a stable failing predicate to minimize against.
        if case.network is None:
            return None
        if check(case) is not None:  # pragma: no cover - healthy engine
            return "real violation"
        from repro.core.collapse import collapse_stem_faults
        from repro.engine.atpg import run_atpg

        report = run_atpg(case.network)
        if report.detected == 0:
            return None
        return f"pretend {name} violation: {report.detected} detected"

    case = Case(network=_wide_xor_network())
    assert sabotaged(case) is not None
    shrunk = shrink_case(case, sabotaged)
    assert sabotaged(shrunk) is not None
    assert shrunk.size() < case.size()
    assert len(shrunk.network.gates) <= 2


@pytest.mark.fuzz
@pytest.mark.parametrize("name", sorted(EXPECTED_PROPERTIES))
def test_large_budget_slice(name):
    """Nightly slice: a deeper per-property campaign."""
    report = run_property(PROPERTIES[name], seed=FIXED_SEED + 1, trials=60)
    assert report.ok, report.counterexamples[0].detail


# ----------------------------------------------------------------------
# shrinker unit tests on a synthetic known-bad predicate
# ----------------------------------------------------------------------
def _contains_xor(case):
    net = case.network
    if net is None:
        return None
    if any(g.kind is GateKind.XOR for g in net.gates):
        return "network contains an XOR gate"
    return None


def _wide_xor_network():
    builder = NetworkBuilder(["a", "b", "c", "d"], name="wide")
    builder.add("g0", GateKind.AND, ["a", "b"])
    builder.add("g1", GateKind.OR, ["c", "d"])
    builder.add("g2", GateKind.NAND, ["g0", "g1"])
    builder.add("g3", GateKind.XOR, ["g2", "a"])
    builder.add("g4", GateKind.NOR, ["g3", "b"])
    builder.add("g5", GateKind.NOT, ["g4"])
    builder.add("g6", GateKind.AND, ["g5", "g1"])
    builder.add("g7", GateKind.OR, ["g6", "g3"])
    builder.add("g8", GateKind.NAND, ["g7", "c"])
    builder.add("g9", GateKind.AND, ["g8", "g0"])
    builder.add("g10", GateKind.OR, ["g9", "d"])
    builder.add("g11", GateKind.NAND, ["g10", "g5"])
    return builder.build(["g11"])


def test_shrinker_minimizes_known_bad_network():
    case = Case(network=_wide_xor_network())
    shrunk = shrink_case(case, _contains_xor)
    assert _contains_xor(shrunk) is not None
    assert shrunk.size() < case.size()
    assert len(shrunk.network.gates) <= 2
    assert len(shrunk.network.inputs) <= 2


def test_shrinker_rejects_passing_case():
    builder = NetworkBuilder(["a"], name="clean")
    builder.add("g0", GateKind.NOT, ["a"])
    with pytest.raises(ValueError):
        shrink_case(Case(network=builder.build(["g0"])), _contains_xor)


def test_shrinker_minimizes_vector_streams():
    def long_stream(case):
        if case.vectors is not None and len(case.vectors) >= 3:
            return "stream still has >= 3 vectors"
        return None

    case = Case(vectors=tuple((i & 1,) for i in range(40)))
    shrunk = shrink_case(case, long_stream)
    assert len(shrunk.vectors) == 3


# ----------------------------------------------------------------------
# chaos: the harness must catch a deliberately broken engine
# ----------------------------------------------------------------------
def test_chaos_bug_registry():
    assert bug_names() == sorted(bug_names())
    assert "nand-as-and" in bug_names()
    with pytest.raises(KeyError):
        with inject("no-such-bug"):
            pass


def test_chaos_nand_bug_caught_shrunk_and_archived(tmp_path):
    report = fuzz(
        seed=0,
        budget=20,
        properties=["backend-agreement"],
        artifact_dir=str(tmp_path),
        chaos_bug="nand-as-and",
    )
    assert not report.ok
    ce = report.reports[0].counterexamples[0]
    # Acceptance bar from the issue: the shrunk witness is tiny.
    assert len(ce.shrunk.network.gates) <= 8
    assert ce.shrunk.size() <= ce.case.size()

    json_paths = sorted(tmp_path.glob("*.json"))
    test_paths = sorted(tmp_path.glob("test_repro_*.py"))
    assert json_paths and test_paths
    payload = json.loads(json_paths[0].read_text())
    assert payload["property"] == "backend-agreement"
    assert payload["shrunk_size"] <= payload["original_size"]
    # The archived case round-trips into a Network the checker accepts.
    restored = case_from_json(payload["case"])
    assert case_to_json(restored) == payload["case"]
    net = network_from_json(payload["case"]["network"])
    assert any(g.kind is GateKind.NAND for g in net.gates)
    assert "def test_backend_agreement_counterexample" in (
        test_paths[0].read_text()
    )


def test_chaos_patch_is_scoped():
    """The sabotage must not outlive its context manager."""
    with inject("nand-as-and"):
        broken = fuzz(
            seed=0,
            budget=6,
            properties=["backend-agreement"],
            artifact_dir=None,
            shrink=False,
        )
        assert not broken.ok
    healthy = fuzz(
        seed=0,
        budget=6,
        properties=["backend-agreement"],
        artifact_dir=None,
        shrink=False,
    )
    assert healthy.ok


def test_pointwise_chaos_bug_caught():
    report = fuzz(
        seed=1,
        budget=20,
        properties=["backend-agreement"],
        artifact_dir=None,
        chaos_bug="nor-as-or-pointwise",
        shrink=False,
    )
    assert not report.ok


def test_emitted_snippet_runs_green_on_healthy_engine():
    """The reproducer a failure writes must pass once the bug is gone."""
    case = Case(network=_wide_xor_network())
    snippet = pytest_snippet("backend-agreement", case)
    namespace = {}
    exec(compile(snippet, "<snippet>", "exec"), namespace)
    namespace["test_backend_agreement_counterexample"]()


def test_trial_rng_is_deterministic():
    a = trial_rng(7, "backend-agreement", 3)
    b = trial_rng(7, "backend-agreement", 3)
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]
    assert trial_rng(7, "backend-agreement", 4).random() != trial_rng(
        8, "backend-agreement", 4
    ).random()
