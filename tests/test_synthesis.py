"""Tests for Quine-McCluskey minimization and SOP synthesis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.evaluate import line_tables, network_function
from repro.logic.gates import GateKind
from repro.logic.synthesis import (
    Implicant,
    cover_to_table,
    literal_count,
    minimize,
    multi_output_sop,
    prime_implicants,
    select_cover,
    sop_network,
)
from repro.logic.truthtable import TruthTable

tables = st.integers(min_value=1, max_value=4).flatmap(
    lambda n: st.builds(
        TruthTable,
        st.just(n),
        st.integers(min_value=0, max_value=(1 << (1 << n)) - 1),
    )
)


class TestImplicant:
    def test_covers(self):
        # Term x1'x0 over 3 vars: values=0b01, mask=0b011.
        imp = Implicant(0b001, 0b011)
        assert imp.covers(0b001)
        assert imp.covers(0b101)
        assert not imp.covers(0b011)

    def test_literals_and_size(self):
        imp = Implicant(0b001, 0b011)
        assert imp.literals(3) == ((0, 1), (1, 0))
        assert imp.size(3) == 2

    def test_to_string(self):
        imp = Implicant(0b001, 0b011)
        assert imp.to_string(["a", "b", "c"]) == "ab'"
        assert Implicant(0, 0).to_string(["a"]) == "1"


class TestPrimeImplicants:
    def test_classic_example(self):
        # f = Σm(0,1,2,5,6,7), variables little-endian (bit0 = a): the six
        # adjacent-pair merges are all prime (no quads form).
        primes = prime_implicants([0, 1, 2, 5, 6, 7], [], 3)
        rendered = sorted(p.to_string(["a", "b", "c"]) for p in primes)
        assert rendered == sorted(["b'c'", "a'c'", "ab'", "a'b", "ac", "bc"])

    def test_full_cube(self):
        primes = prime_implicants(range(8), [], 3)
        assert len(primes) == 1
        assert primes[0].mask == 0

    def test_dont_cares_grow_primes(self):
        with_dc = prime_implicants([1], [3], 2)
        without = prime_implicants([1], [], 2)
        assert max(p.size(2) for p in with_dc) > max(p.size(2) for p in without)


class TestMinimize:
    @settings(max_examples=150)
    @given(tables)
    def test_cover_equals_specification(self, t):
        cover = minimize(t)
        assert cover_to_table(cover, t.n).bits == t.bits

    @settings(max_examples=60)
    @given(tables, st.randoms(use_true_random=False))
    def test_dont_cares_respected(self, t, rnd):
        dc = TruthTable(t.n, rnd.getrandbits(1 << t.n))
        cover = minimize(t, dont_cares=dc)
        got = cover_to_table(cover, t.n)
        care = ~dc
        assert ((got ^ t) & care).is_zero()

    def test_majority_minimal(self):
        maj = TruthTable.from_function(lambda a, b, c: int(a + b + c > 1), 3)
        cover = minimize(maj)
        assert len(cover) == 3
        assert literal_count(cover, 3) == 6

    def test_xor_needs_all_minterms(self):
        xor3 = TruthTable.from_function(lambda a, b, c: a ^ b ^ c, 3)
        cover = minimize(xor3)
        assert len(cover) == 4
        assert all(len(p.literals(3)) == 3 for p in cover)

    def test_select_cover_missing_primes(self):
        with pytest.raises(ValueError):
            select_cover([], [0], 1)


class TestSopNetwork:
    @settings(max_examples=80)
    @given(tables, st.sampled_from(["and-or", "nand-nand"]))
    def test_roundtrip(self, t, style):
        net = sop_network(t, style=style)
        assert network_function(net).bits == t.bits

    def test_constants(self):
        zero = sop_network(TruthTable.constant(0, 2))
        one = sop_network(TruthTable.constant(1, 2))
        assert network_function(zero).is_zero()
        assert network_function(one).is_one()

    def test_two_level_depth(self):
        maj = TruthTable.from_function(lambda a, b, c: int(a + b + c > 1), 3)
        net = sop_network(maj)
        # AND then OR: depth 2 (no inverters needed for majority).
        assert net.depth() <= 3

    def test_bad_style(self):
        with pytest.raises(ValueError):
            sop_network(TruthTable.constant(1, 1), style="xyz")

    def test_inverters_shared(self):
        t = TruthTable.from_function(lambda a, b: (1 - a) | (1 - b), 2)
        net = sop_network(t)
        inverters = [g for g in net.gates if g.kind is GateKind.NOT]
        assert len(inverters) <= 2


class TestMultiOutputSop:
    def test_shared_products(self):
        maj = TruthTable.from_function(lambda a, b, c: int(a + b + c > 1), 3)
        # Two outputs with a common product (ab).
        t2 = TruthTable.from_function(lambda a, b, c: a & b, 3)
        shared = multi_output_sop(
            {"f": maj, "g": t2}, ["a", "b", "c"], share_products=True
        )
        unshared = multi_output_sop(
            {"f": maj, "g": t2}, ["a", "b", "c"], share_products=False
        )
        assert shared.gate_count() <= unshared.gate_count()
        for net in (shared, unshared):
            tabs = line_tables(net)
            assert tabs["f"].bits == maj.bits
            assert tabs["g"].bits == t2.bits

    def test_width_mismatch_rejected(self):
        t = TruthTable.constant(1, 2)
        with pytest.raises(ValueError):
            multi_output_sop({"f": t}, ["a", "b", "c"])

    @settings(max_examples=40)
    @given(st.randoms(use_true_random=False))
    def test_random_multi_output(self, rnd):
        n = 3
        ts = {
            f"F{i}": TruthTable(n, rnd.getrandbits(1 << n)) for i in range(3)
        }
        net = multi_output_sop(ts, [f"x{i}" for i in range(n)])
        tabs = line_tables(net)
        for name, t in ts.items():
            assert tabs[name].bits == t.bits
