"""Shared fixtures for the SCAL reproduction test suite."""

import random

import pytest

from repro.workloads.detectors import kohavi_0101
from repro.workloads.fig34 import fig34_network, fig37_fixed_network


@pytest.fixture
def rng():
    return random.Random(0xC0FFEE)


@pytest.fixture
def fig34():
    return fig34_network()


@pytest.fixture
def fig37():
    return fig37_fixed_network()


@pytest.fixture
def detector():
    return kohavi_0101()
