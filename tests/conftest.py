"""Shared fixtures for the SCAL reproduction test suite."""

import random

import pytest

from repro import obs
from repro.workloads.detectors import kohavi_0101
from repro.workloads.fig34 import fig34_network, fig37_fixed_network


@pytest.fixture(autouse=True)
def _telemetry_hygiene():
    """No test may leak an enabled registry or live recorder into the
    next one — telemetry always starts from its disabled default."""
    yield
    obs.reset()


@pytest.fixture
def rng():
    return random.Random(0xC0FFEE)


@pytest.fixture
def fig34():
    return fig34_network()


@pytest.fixture
def fig37():
    return fig37_fixed_network()


@pytest.fixture
def detector():
    return kohavi_0101()
