"""Tests for the SCAL oracle (repro.core.simulate)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.simulate import (
    ScalSimulator,
    canonical_pairs,
    fault_coverage,
    is_scal_network,
)
from repro.logic.faults import StuckAt
from repro.logic.gates import GateKind
from repro.logic.network import NetworkBuilder
from repro.logic.parse import parse_expression
from repro.logic.truthtable import TruthTable
from repro.workloads.randomlogic import random_alternating_network


class TestFaultResponse:
    def test_healthy_majority_network(self):
        net = parse_expression("a b | b c | a c", inputs=["a", "b", "c"])
        sim = ScalSimulator(net)
        assert sim.is_alternating()
        verdict = sim.verdict()
        assert verdict.is_self_checking
        assert verdict.fault_count > 0

    def test_output_stem_fault_always_detected(self):
        net = parse_expression("a b | b c | a c", inputs=["a", "b", "c"])
        sim = ScalSimulator(net)
        for value in (0, 1):
            resp = sim.response(StuckAt(net.outputs[0], value))
            assert resp.is_detected
            assert resp.is_fault_secure
            # A stuck output never alternates: detected at every pair.
            assert resp.detected.is_one()

    def test_input_fault_detected(self):
        net = parse_expression("a b | b c | a c", inputs=["a", "b", "c"])
        sim = ScalSimulator(net)
        resp = sim.response(StuckAt("a", 0))
        assert resp.is_self_testing
        assert resp.is_fault_secure  # Theorem 3.6: inputs alternate

    def test_violation_classification(self):
        """g = AND(a,b) feeding XOR: g s/1 gives incorrect alternation."""
        from repro.workloads.benchcircuits import fig32_xor_path_network

        net = fig32_xor_path_network()
        sim = ScalSimulator(net)
        resp = sim.response(StuckAt("g", 1))
        assert not resp.is_fault_secure
        pairs = resp.violation_pairs()
        assert pairs  # some undetected wrong pair exists
        # Violations occur where exactly one of a, b is 1.
        for x, _ in pairs:
            a, b = x & 1, (x >> 1) & 1
            assert a != b

    def test_redundant_fault_is_silent(self):
        b = NetworkBuilder(["a"])
        b.add("dead", GateKind.NOT, ["a"])
        b.add("out", GateKind.BUF, ["a"])
        net = b.build(["out"])
        sim = ScalSimulator(net)
        resp = sim.response(StuckAt("dead", 0))
        assert not resp.is_self_testing
        assert resp.is_fault_secure


class TestVerdict:
    def test_untestable_reported(self):
        # g feeds both pins of an XOR, so g XOR g = 0 regardless of g:
        # g is an in-cone line whose faults are untestable both ways.
        b = NetworkBuilder(["a", "b"])
        g = b.add("g", GateKind.AND, ["a", "b"])
        t = b.add("t", GateKind.XOR, [g, g])
        b.add("out", GateKind.OR, ["a", t])
        net = b.build(["out"])
        verdict = ScalSimulator(net).verdict(include_pins=False)
        assert any(
            resp.fault.describe().startswith("g s/")
            for resp in verdict.untestable
        )
        assert not verdict.is_self_checking

    def test_insecure_lines_named(self):
        from repro.workloads.benchcircuits import fig32_xor_path_network

        verdict = ScalSimulator(fig32_xor_path_network()).verdict(
            include_pins=False
        )
        assert "g s/1" in verdict.insecure_lines()

    def test_summary_text(self):
        net = parse_expression("a b | b c | a c", inputs=["a", "b", "c"])
        text = ScalSimulator(net).verdict().summary()
        assert "SELF-CHECKING" in text

    def test_explicit_fault_list(self):
        net = parse_expression("a b | b c | a c", inputs=["a", "b", "c"])
        sim = ScalSimulator(net)
        verdict = sim.verdict(faults=[StuckAt("a", 0)])
        assert verdict.fault_count == 1


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(st.randoms(use_true_random=False))
    def test_two_level_self_dual_networks_are_scal(self, rnd):
        """Yamamoto's result (quoted after Theorem 3.7): two-level
        self-dual networks with monotonic gates are self-checking."""
        net = random_alternating_network(rnd, 3)
        assert is_scal_network(net)

    @settings(max_examples=20, deadline=None)
    @given(st.randoms(use_true_random=False))
    def test_fault_secure_faults_with_wrong_outputs_are_detected(self, rnd):
        """If a fault is fault-secure and affects the output, the point
        of difference must be a nonalternating (detected) pair."""
        net = random_alternating_network(rnd, 3)
        sim = ScalSimulator(net)
        for fault in sim.single_fault_universe():
            resp = sim.response(fault)
            if resp.is_fault_secure and resp.is_self_testing:
                assert resp.is_detected


class TestHelpers:
    def test_canonical_pairs(self):
        t = TruthTable(2, 0b1001)  # points 0 and 3 = one pair
        assert canonical_pairs(t) == [(0, 3)]

    def test_fault_coverage_buckets_sum(self):
        net = parse_expression("a b | b c | a c", inputs=["a", "b", "c"])
        cov = fault_coverage(net)
        assert abs(cov["detected"] + cov["silent"] + cov["dangerous"] - 1.0) < 1e-9
        assert cov["dangerous"] == 0.0

    def test_is_scal_network_rejects_non_self_dual(self):
        net = parse_expression("a & b", inputs=["a", "b"])
        assert not is_scal_network(net)
