"""Unit and property tests for truth tables (repro.logic.truthtable)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.truthtable import (
    TruthTable,
    all_functions,
    assignment_of_point,
    point_of_assignment,
)

tables = st.integers(min_value=1, max_value=4).flatmap(
    lambda n: st.builds(
        TruthTable,
        st.just(n),
        st.integers(min_value=0, max_value=(1 << (1 << n)) - 1),
    )
)


class TestConstructors:
    def test_variable(self):
        x0 = TruthTable.variable(0, 2)
        assert [x0.value(p) for p in range(4)] == [0, 1, 0, 1]
        x1 = TruthTable.variable(1, 2)
        assert [x1.value(p) for p in range(4)] == [0, 0, 1, 1]

    def test_variable_out_of_range(self):
        with pytest.raises(ValueError):
            TruthTable.variable(2, 2)

    def test_constant(self):
        assert TruthTable.constant(1, 2).is_one()
        assert TruthTable.constant(0, 2).is_zero()

    def test_from_function(self):
        t = TruthTable.from_function(lambda a, b: a & b, 2)
        assert t.minterms() == [3]

    def test_from_values(self):
        t = TruthTable.from_values([0, 1, 1, 0])
        assert t.bits == 0b0110

    def test_from_values_bad_length(self):
        with pytest.raises(ValueError):
            TruthTable.from_values([0, 1, 1])

    def test_from_minterms(self):
        t = TruthTable.from_minterms([0, 3], 2)
        assert t.value(0) == 1 and t.value(3) == 1 and t.value(1) == 0

    def test_from_minterms_out_of_range(self):
        with pytest.raises(ValueError):
            TruthTable.from_minterms([4], 2)

    def test_bits_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            TruthTable(1, 0b10000)

    def test_names_length_checked(self):
        with pytest.raises(ValueError):
            TruthTable(2, 0, names=("a",))


class TestAlgebra:
    @settings(max_examples=100)
    @given(tables, st.randoms(use_true_random=False))
    def test_de_morgan(self, t, rnd):
        u = TruthTable(t.n, rnd.getrandbits(1 << t.n))
        assert (~(t & u)).bits == ((~t) | (~u)).bits

    @settings(max_examples=100)
    @given(tables)
    def test_double_complement(self, t):
        assert (~~t).bits == t.bits

    @settings(max_examples=100)
    @given(tables)
    def test_xor_self_is_zero(self, t):
        assert (t ^ t).is_zero()

    def test_incompatible_sizes(self):
        with pytest.raises(ValueError):
            TruthTable(1, 0) & TruthTable(2, 0)


class TestCoReflect:
    @settings(max_examples=100)
    @given(tables)
    def test_co_reflect_involution(self, t):
        assert t.co_reflect().co_reflect().bits == t.bits

    @settings(max_examples=100)
    @given(tables)
    def test_co_reflect_counts_preserved(self, t):
        assert t.co_reflect().count_ones() == t.count_ones()

    def test_co_reflect_example(self):
        # f = x0 over 1 var: f(0)=0, f(1)=1; co_reflect swaps points.
        t = TruthTable.variable(0, 1)
        assert t.co_reflect().bits == 0b01

    @settings(max_examples=100)
    @given(tables)
    def test_dual_of_dual(self, t):
        assert t.dual().dual().bits == t.bits

    def test_self_dual_known_functions(self):
        maj = TruthTable.from_function(lambda a, b, c: int(a + b + c > 1), 3)
        assert maj.is_self_dual()
        xor3 = TruthTable.from_function(lambda a, b, c: a ^ b ^ c, 3)
        assert xor3.is_self_dual()
        and2 = TruthTable.from_function(lambda a, b: a & b, 2)
        assert not and2.is_self_dual()

    def test_projection_is_self_dual(self):
        for n in (1, 2, 3):
            for i in range(n):
                assert TruthTable.variable(i, n).is_self_dual()

    def test_self_dual_count_two_vars(self):
        # Self-dual functions of n vars number 2^(2^(n-1)): 4 for n=2.
        count = sum(1 for t in all_functions(2) if t.is_self_dual())
        assert count == 4


class TestStructure:
    def test_cofactor(self):
        t = TruthTable.from_function(lambda a, b: a & b, 2)
        assert t.cofactor(0, 1).bits == TruthTable.variable(1, 2).bits
        assert t.cofactor(0, 0).is_zero()

    def test_depends_on_and_support(self):
        t = TruthTable.from_function(lambda a, b, c: a ^ c, 3)
        assert t.support() == (0, 2)
        assert not t.depends_on(1)

    def test_unateness(self):
        t_and = TruthTable.from_function(lambda a, b: a & b, 2)
        assert t_and.unateness(0) == 1
        t_nand = ~t_and
        assert t_nand.unateness(0) == -1
        t_xor = TruthTable.from_function(lambda a, b: a ^ b, 2)
        assert t_xor.unateness(0) is None
        t_const = TruthTable.constant(1, 2)
        assert t_const.unateness(0) == 0

    def test_points_iteration(self):
        t = TruthTable.from_values([1, 0, 0, 1])
        assert list(t.points()) == [(0, 1), (1, 0), (2, 0), (3, 1)]


class TestCodecs:
    def test_assignment_roundtrip(self):
        names = ("x", "y", "z")
        for point in range(8):
            assign = assignment_of_point(point, names)
            assert point_of_assignment(assign, names) == point

    def test_str_render(self):
        t = TruthTable.from_values([1, 0])
        assert "0:1" in str(t) and "1:0" in str(t)
