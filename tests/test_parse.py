"""Tests for the boolean expression parser (repro.logic.parse)."""

import pytest

from repro.logic.evaluate import network_function
from repro.logic.parse import ParseError, parse_expression, parse_expressions
from repro.logic.truthtable import TruthTable


def table_of(text, inputs):
    return network_function(parse_expression(text, inputs=inputs))


class TestBasics:
    def test_variable(self):
        t = table_of("a", ["a"])
        assert t.bits == TruthTable.variable(0, 1).bits

    def test_constants(self):
        assert table_of("0", []).is_zero()
        assert table_of("1", []).is_one()

    def test_and_or_not(self):
        t = table_of("a & b | !c", ["a", "b", "c"])
        ref = TruthTable.from_function(lambda a, b, c: (a & b) | (1 - c), 3)
        assert t.bits == ref.bits

    def test_postfix_prime(self):
        t = table_of("a'", ["a"])
        assert t.bits == (~TruthTable.variable(0, 1)).bits

    def test_double_prime(self):
        t = table_of("a''", ["a"])
        assert t.bits == TruthTable.variable(0, 1).bits

    def test_xor(self):
        t = table_of("a ^ b ^ c", ["a", "b", "c"])
        ref = TruthTable.from_function(lambda a, b, c: a ^ b ^ c, 3)
        assert t.bits == ref.bits

    def test_juxtaposition_is_and(self):
        t = table_of("a b", ["a", "b"])
        ref = TruthTable.from_function(lambda a, b: a & b, 2)
        assert t.bits == ref.bits

    def test_plus_is_or(self):
        t = table_of("a + b", ["a", "b"])
        ref = TruthTable.from_function(lambda a, b: a | b, 2)
        assert t.bits == ref.bits

    def test_parentheses(self):
        t = table_of("a & (b | c)", ["a", "b", "c"])
        ref = TruthTable.from_function(lambda a, b, c: a & (b | c), 3)
        assert t.bits == ref.bits


class TestPrecedence:
    def test_and_binds_tighter_than_or(self):
        t = table_of("a | b & c", ["a", "b", "c"])
        ref = TruthTable.from_function(lambda a, b, c: a | (b & c), 3)
        assert t.bits == ref.bits

    def test_xor_between_and_and_or(self):
        t = table_of("a ^ b c | d", ["a", "b", "c", "d"])
        ref = TruthTable.from_function(
            lambda a, b, c, d: (a ^ (b & c)) | d, 4
        )
        assert t.bits == ref.bits

    def test_not_binds_tightest(self):
        t = table_of("~a b", ["a", "b"])
        ref = TruthTable.from_function(lambda a, b: (1 - a) & b, 2)
        assert t.bits == ref.bits


class TestThesisNotation:
    def test_f1_from_section_3_6(self):
        t = table_of("A' B | A' C | B C", ["A", "B", "C"])
        ref = TruthTable.from_function(
            lambda a, b, c: ((1 - a) & b) | ((1 - a) & c) | (b & c), 3
        )
        assert t.bits == ref.bits
        assert t.is_self_dual()

    def test_majority(self):
        t = table_of("A B | B C | A C", ["A", "B", "C"])
        assert t.is_self_dual()


class TestMultipleOutputs:
    def test_shared_subexpressions(self):
        net = parse_expressions(
            {"f": "a & b | c", "g": "a & b"}, inputs=["a", "b", "c"]
        )
        # The a&b gate must be shared between the two outputs.
        and_gates = [
            g for g in net.gates if g.kind.value == "and"
        ]
        assert len(and_gates) == 1

    def test_auto_inputs_appended(self):
        net = parse_expression("p & q")
        assert net.inputs == ("p", "q")

    def test_fixed_input_order(self):
        net = parse_expression("b & a", inputs=["a", "b"])
        assert net.inputs == ("a", "b")


class TestErrors:
    def test_unbalanced_parens(self):
        with pytest.raises(ParseError):
            parse_expression("(a & b", inputs=["a", "b"])

    def test_trailing_tokens(self):
        with pytest.raises(ParseError):
            parse_expression("a ) b", inputs=["a", "b"])

    def test_empty_expression(self):
        with pytest.raises(ParseError):
            parse_expression("", inputs=[])

    def test_bad_character(self):
        with pytest.raises(ParseError):
            parse_expression("a @ b", inputs=["a", "b"])
