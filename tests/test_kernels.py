"""The codegen kernel tier (repro.engine.kernels).

Every test here is a differential check against the scalar classifier:
the kernel tier re-derives the SCAL pair classification from generated
straight-line source (folded constants, dead-line elimination, fused
seeds), so nothing short of byte-identical statuses counts as passing.
Covers the exec'd-NumPy rung, both Numba-probe branches (via a stub
module — the tier must behave identically whether Numba is importable
or not), single-threaded and tiled/threaded word axes, and the
kernel cache against the content-addressed store.
"""

import random
import types

import pytest

from repro.engine import (
    FaultSweep,
    KERNEL_MAX_INPUTS,
    NetworkEngine,
    engine_for,
    select_backend,
)
from repro.engine.store import STORE
from repro.engine.vectorized import HAVE_NUMPY, chunk_statuses
from repro.logic.faults import StuckAt
from repro.logic.gates import GateKind
from repro.logic.network import Gate, Network
from repro.workloads.fig34 import fig34_network
from repro.workloads.randomlogic import random_mixed_network

from .test_engine import SEED_CIRCUITS

pytestmark = pytest.mark.skipif(
    not HAVE_NUMPY, reason="the kernel tier needs NumPy"
)

if HAVE_NUMPY:
    from repro.engine import kernels
    from repro.engine.kernels import KernelBackend


def scalar_statuses(engine, universe):
    return engine.packed.sweep_statuses(universe)


@pytest.fixture(params=sorted(SEED_CIRCUITS))
def seed_circuit(request):
    return SEED_CIRCUITS[request.param]()


@pytest.fixture
def mixed9():
    return random_mixed_network(
        random.Random(0xBEEF), n_inputs=9, n_gates=90, n_outputs=5
    )


class TestKernelEquivalence:
    def test_seed_circuits_byte_identical(self, seed_circuit):
        eng = engine_for(seed_circuit)
        universe = FaultSweep(
            seed_circuit, engine=eng
        ).single_fault_universe()
        kern = KernelBackend(eng.compiled, vectorized=eng.vectorized)
        assert kern.sweep_statuses(universe) == scalar_statuses(
            eng, universe
        )

    def test_random_mixed_all_block_sizes(self, mixed9):
        eng = engine_for(mixed9)
        universe = FaultSweep(mixed9, engine=eng).single_fault_universe()
        reference = scalar_statuses(eng, universe)
        for block_faults in (1, 7, 16, len(universe)):
            kern = KernelBackend(
                eng.compiled,
                vectorized=eng.vectorized,
                block_faults=block_faults,
            )
            assert kern.sweep_statuses(universe) == reference, block_faults

    def test_tiled_word_axis_threads_1_and_n(self, mixed9):
        """tile_words=1 forces real mirror-tile slabs (9 inputs = 8
        words = 4 slabs); the threaded and serial paths must agree with
        each other and with the scalar classifier."""
        eng = engine_for(mixed9)
        universe = FaultSweep(mixed9, engine=eng).single_fault_universe()
        reference = scalar_statuses(eng, universe)
        for threads in (1, 4):
            kern = KernelBackend(
                eng.compiled,
                vectorized=eng.vectorized,
                tile_words=1,
                threads=threads,
            )
            assert len(kern._slabs) == 4
            assert kern.sweep_statuses(universe) == reference, threads

    def test_repeat_sweep_hits_prepared_blocks(self, mixed9):
        eng = engine_for(mixed9)
        universe = FaultSweep(mixed9, engine=eng).single_fault_universe()
        kern = KernelBackend(eng.compiled, vectorized=eng.vectorized)
        first = kern.sweep_statuses(universe)
        stats = kern.cache_stats()
        assert kern.sweep_statuses(universe) == first
        # steady state: no new kernels, no new prepared blocks
        assert kern.cache_stats() == stats

    def test_dead_cone_fault_is_const_kernel(self):
        """A fault that cannot reach any output compiles to a const
        kernel (no generated function at all) and still classifies
        exactly as the scalar path does."""
        net = Network(
            ["a", "b"],
            [
                Gate("dead", GateKind.AND, ("a", "b")),
                Gate("out", GateKind.XOR, ("a", "b")),
            ],
            ["out"],
        )
        eng = engine_for(net)
        fault = StuckAt("dead", 1)
        kern = KernelBackend(eng.compiled, vectorized=eng.vectorized)
        assert kern.sweep_statuses([fault]) == scalar_statuses(eng, [fault])
        (kobj,) = kern._kernels.values()
        assert kobj.tier == "const"
        assert kobj.fn is None

    def test_constant_folding_collapses_const_cones(self):
        """CONST-fed gates fold at generation time: the AND(const0, x)
        cone disappears from the generated body."""
        net = Network(
            ["a", "b"],
            [
                Gate("z", GateKind.CONST0, ()),
                Gate("g1", GateKind.AND, ("z", "a")),
                Gate("g2", GateKind.OR, ("g1", "b")),
                Gate("out", GateKind.XOR, ("g2", "a")),
            ],
            ["out"],
        )
        eng = engine_for(net)
        universe = FaultSweep(net, engine=eng).single_fault_universe()
        kern = KernelBackend(eng.compiled, vectorized=eng.vectorized)
        assert kern.sweep_statuses(universe) == scalar_statuses(
            eng, universe
        )
        # Under a fault on `a`, g1 = AND(const0, a) folds to 0 and
        # g2 = OR(0, b) folds through to b: only the forced line and
        # the output op survive in the generated body.
        kern_a = KernelBackend(eng.compiled, vectorized=eng.vectorized)
        kern_a.sweep_statuses([StuckAt("a", 1)])
        (kobj,) = kern_a._kernels.values()
        assert kobj.n_ops <= 3
        # line indices: a=0 b=1 z=2 g1=3 g2=4 out=5 — the folded AND
        # (g1) must not appear anywhere in the generated body.
        assert "v3" not in kobj.source
        # A fault *on the constant itself* must override the fold: z
        # stuck-at-1 flips g1 to a, and the statuses still match.
        kern_z = KernelBackend(eng.compiled, vectorized=eng.vectorized)
        assert kern_z.sweep_statuses(
            [StuckAt("z", 1)]
        ) == scalar_statuses(eng, [StuckAt("z", 1)])


class TestKernelCeilingAndSelection:
    def test_too_wide_raises_value_error(self):
        net = random_mixed_network(
            random.Random(1),
            n_inputs=KERNEL_MAX_INPUTS + 1,
            n_gates=30,
            n_outputs=2,
        )
        eng = engine_for(net)
        with pytest.raises(ValueError, match="kernel backend supports"):
            KernelBackend(eng.compiled)
        assert eng.kernel is None

    def test_engine_kernel_property_lazy_and_shared(self, mixed9):
        eng = NetworkEngine(mixed9)
        assert eng._kernel is None
        kern = eng.kernel
        assert kern is not None and eng.kernel is kern

    def test_chunk_statuses_kernel_rung(self, mixed9):
        eng = engine_for(mixed9)
        universe = FaultSweep(mixed9, engine=eng).single_fault_universe()
        assert chunk_statuses(eng, universe, "kernel") == scalar_statuses(
            eng, universe
        )

    def test_chunk_statuses_degrades_without_kernel(self, mixed9):
        """A resolved "kernel" chunk lands on vectorized/fallback when
        the engine cannot build the tier (worker-side degradation)."""

        class NoKernelEngine(NetworkEngine):
            @property
            def kernel(self):
                return None

        eng = NoKernelEngine(mixed9)
        universe = FaultSweep(mixed9, engine=eng).single_fault_universe()
        assert chunk_statuses(eng, universe, "kernel") == scalar_statuses(
            eng, universe
        )

    def test_fault_sweep_kernel_backend_reported(self, mixed9):
        sweep = FaultSweep(mixed9)
        universe = sweep.single_fault_universe()
        result = sweep.sweep(universe, backend="kernel")
        assert [s for _, s in result] == scalar_statuses(
            sweep.engine, universe
        )
        assert sweep.last_report.block_backend == "kernel"

    def test_auto_never_picks_kernel_beyond_ceiling(self):
        for n in range(KERNEL_MAX_INPUTS + 1, KERNEL_MAX_INPUTS + 6):
            assert select_backend(n, 500, numpy_available=True) != "kernel"


class TestNumbaProbe:
    """Both probe branches, via a stub numba module — the real package
    is absent in the pinned environment and optional everywhere."""

    def _stub(self, monkeypatch, njit):
        monkeypatch.setattr(kernels, "HAVE_NUMBA", True)
        monkeypatch.setattr(
            kernels, "_numba", types.SimpleNamespace(njit=njit)
        )

    def test_identity_jit_serves_numba_tier(self, monkeypatch, mixed9):
        calls = []

        def njit(**kwargs):
            def deco(fn):
                def jitted(*args):
                    calls.append(1)
                    return fn(*args)

                return jitted

            return deco

        self._stub(monkeypatch, njit)
        eng = engine_for(mixed9)
        universe = FaultSweep(mixed9, engine=eng).single_fault_universe()
        kern = KernelBackend(eng.compiled, vectorized=eng.vectorized)
        assert kern.use_numba
        assert kern.sweep_statuses(universe) == scalar_statuses(
            eng, universe
        )
        tiers = {k.tier for k in kern._kernels.values() if k.fn is not None}
        assert tiers == {"numba"}
        assert calls  # the jit wrapper actually ran

    def test_typing_failure_falls_back_to_numpy_tier(
        self, monkeypatch, mixed9
    ):
        def njit(**kwargs):
            def deco(fn):
                def jitted(*args):
                    raise TypeError("nopython typing failed")

                return jitted

            return deco

        self._stub(monkeypatch, njit)
        eng = engine_for(mixed9)
        universe = FaultSweep(mixed9, engine=eng).single_fault_universe()
        kern = KernelBackend(eng.compiled, vectorized=eng.vectorized)
        assert kern.sweep_statuses(universe) == scalar_statuses(
            eng, universe
        )
        # every jit slot burned out permanently; the py tier served
        for kobj in kern._kernels.values():
            if kobj.fn is not None:
                assert kobj.fn.jit is None

    def test_without_numba_numpy_tier_serves(self, mixed9):
        eng = engine_for(mixed9)
        universe = FaultSweep(mixed9, engine=eng).single_fault_universe()
        kern = KernelBackend(
            eng.compiled, vectorized=eng.vectorized, use_numba=False
        )
        assert kern.sweep_statuses(universe) == scalar_statuses(
            eng, universe
        )
        tiers = {k.tier for k in kern._kernels.values() if k.fn is not None}
        assert tiers <= {"numpy"}


class TestKernelStoreCache:
    def test_store_hit_across_backends_of_same_program(self, monkeypatch):
        net = fig34_network()
        eng = engine_for(net)
        universe = FaultSweep(net, engine=eng).single_fault_universe()
        monkeypatch.setattr(STORE, "enabled", True)
        STORE.clear()
        try:
            first = KernelBackend(eng.compiled, vectorized=eng.vectorized)
            reference = first.sweep_statuses(universe)
            compiled_count = len(first._kernels)
            assert compiled_count > 0
            stored = sum(
                1 for key in STORE._entries if key[0] == "kernel"
            )
            assert stored == compiled_count
            hits_before = STORE.hits
            second = KernelBackend(eng.compiled, vectorized=eng.vectorized)
            assert second.sweep_statuses(universe) == reference
            # every kernel came from the store, none were regenerated
            assert STORE.hits - hits_before >= compiled_count
            assert len(second._kernels) == compiled_count
        finally:
            STORE.clear()

    def test_different_program_never_shares_kernels(self, monkeypatch):
        """The digest is keyed by program fingerprint: a different
        network of the same shape misses and compiles its own set."""
        net_a = random_mixed_network(
            random.Random(10), n_inputs=5, n_gates=20, n_outputs=2
        )
        net_b = random_mixed_network(
            random.Random(11), n_inputs=5, n_gates=20, n_outputs=2
        )
        eng_a, eng_b = engine_for(net_a), engine_for(net_b)
        monkeypatch.setattr(STORE, "enabled", True)
        STORE.clear()
        try:
            ka = KernelBackend(eng_a.compiled, vectorized=eng_a.vectorized)
            ka.sweep_statuses(
                FaultSweep(net_a, engine=eng_a).single_fault_universe()
            )
            misses_before = STORE.misses
            kb = KernelBackend(eng_b.compiled, vectorized=eng_b.vectorized)
            universe_b = FaultSweep(
                net_b, engine=eng_b
            ).single_fault_universe()
            assert kb.sweep_statuses(universe_b) == scalar_statuses(
                eng_b, universe_b
            )
            assert STORE.misses > misses_before
        finally:
            STORE.clear()

    def test_disabled_store_stays_in_memory(self):
        net = fig34_network()
        eng = engine_for(net)
        universe = FaultSweep(net, engine=eng).single_fault_universe()
        assert not STORE.enabled
        kern = KernelBackend(eng.compiled, vectorized=eng.vectorized)
        kern.sweep_statuses(universe)
        assert not any(key[0] == "kernel" for key in STORE._entries)
        assert kern.cache_stats()["kernels"] > 0
