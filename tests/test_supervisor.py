"""The supervised campaign runtime under injected failure.

Every test here follows the chaos discipline of the fuzz harness: arm a
failure (a chunk that raises or hangs, a worker that dies, shared memory
denied, a broken block backend), run the sweep, and assert it still
completes with per-fault statuses byte-identical to the undisturbed
serial path — with the incident recorded in the
:class:`~repro.engine.supervisor.CampaignReport` rather than swallowed.
Checkpoint/resume and the degenerate-chunking guards are covered the
same way: interruption is deliberate, resumption must be exact.
"""

import json
import os

import pytest

from repro.engine import (
    CampaignCancelled,
    CampaignInterrupted,
    CancelToken,
    CheckpointError,
    FaultSweep,
    universe_fingerprint,
)
from repro.engine import supervisor as supervisor_mod
from repro.logic.benchfmt import load_bench
from repro.qa.chaos import (
    campaign_sabotage_names,
    sabotage_campaign,
    sabotage_service,
)
from repro.workloads.fig34 import fig37_fixed_network

DATA_DIR = os.path.join(os.path.dirname(__file__), "..", "examples", "data")


@pytest.fixture(scope="module")
def adder():
    return load_bench(os.path.join(DATA_DIR, "adder4.bench"))


@pytest.fixture(scope="module")
def adder_reference(adder):
    """Undisturbed serial statuses — the byte-identical yardstick."""
    sweep = FaultSweep(adder)
    universe = sweep.single_fault_universe()
    return universe, [s for _f, s in sweep.sweep(universe)]


def _statuses(pairs):
    return [status for _fault, status in pairs]


def fresh_sweep(network):
    from repro.engine import NetworkEngine

    return FaultSweep(network, engine=NetworkEngine(network))


class TestChaosWorkerFailures:
    def test_worker_killed_mid_sweep(self, adder, adder_reference, tmp_path):
        universe, reference = adder_reference
        sweep = fresh_sweep(adder)
        with sabotage_campaign(
            "worker-killed", once_path=str(tmp_path / "once")
        ):
            result = sweep.sweep(universe, processes=2)
        assert _statuses(result) == reference
        report = sweep.last_report
        assert sweep.last_sweep_backend.startswith("fork:")
        assert report.workers_replaced >= 1
        assert any("worker died" in r.reason for r in report.retries)
        # Salvage: only the killed chunk was retried; every completed
        # chunk fed the final result instead of being discarded.
        assert report.chunks_completed == report.chunks_total

    def test_worker_exits_mid_sweep(self, adder, adder_reference, tmp_path):
        universe, reference = adder_reference
        sweep = fresh_sweep(adder)
        with sabotage_campaign(
            "worker-exits", once_path=str(tmp_path / "once")
        ):
            result = sweep.sweep(universe, processes=2)
        assert _statuses(result) == reference
        assert sweep.last_report.workers_replaced >= 1
        assert sweep.last_report.retries

    def test_chunk_raises_is_retried(self, adder, adder_reference, tmp_path):
        universe, reference = adder_reference
        sweep = fresh_sweep(adder)
        with sabotage_campaign(
            "chunk-raises", once_path=str(tmp_path / "once")
        ):
            result = sweep.sweep(universe, processes=2)
        assert _statuses(result) == reference
        report = sweep.last_report
        assert any(
            "chunk raised" in r.reason and r.action == "retried"
            for r in report.retries
        )
        # The worker survived its own exception: no replacement needed.
        assert report.workers_replaced == 0

    def test_hung_chunk_hits_timeout(self, adder, adder_reference, tmp_path):
        universe, reference = adder_reference
        sweep = fresh_sweep(adder)
        with sabotage_campaign(
            "chunk-hangs", once_path=str(tmp_path / "once")
        ):
            result = sweep.sweep(universe, processes=2, timeout=0.5)
        assert _statuses(result) == reference
        report = sweep.last_report
        assert any("timeout" in r.reason for r in report.retries)
        assert report.workers_replaced >= 1

    def test_shm_allocation_failure_degrades_to_plain_fork(
        self, adder, adder_reference
    ):
        universe, reference = adder_reference
        sweep = fresh_sweep(adder)
        with sabotage_campaign("shm-denied"):
            result = sweep.sweep(universe, processes=2)
        assert _statuses(result) == reference
        report = sweep.last_report
        assert sweep.last_sweep_backend.startswith("fork:")
        assert any(
            d.frm == "fork+shm" and d.to == "fork" for d in report.degradations
        )
        assert "shared-memory" in report.degradations[0].reason
        assert report.backend.startswith("fork:")

    def test_unkillable_workers_salvaged_serially(
        self, adder, adder_reference
    ):
        """No once-latch: every spawned worker dies on its first chunk.
        The replacement cap trips and the sweep must salvage by
        finishing on the serial rung — never abort."""
        universe, reference = adder_reference
        sweep = fresh_sweep(adder)
        with sabotage_campaign("worker-killed"):
            result = sweep.sweep(universe, processes=2)
        assert _statuses(result) == reference
        report = sweep.last_report
        assert any(d.to == "serial" for d in report.degradations)
        assert sweep.last_sweep_backend in ("vectorized", "fallback")
        assert report.chunks_completed + report.chunks_resumed == (
            report.chunks_total
        )

    def test_poisoned_chunk_splits_then_runs_in_parent(
        self, adder, adder_reference, monkeypatch
    ):
        """A chunk that fails on every attempt is re-chunked smaller and
        its single faults finally classified in the parent."""
        universe, reference = adder_reference
        monkeypatch.setattr(supervisor_mod, "BACKOFF_BASE", 0.001)
        sweep = fresh_sweep(adder)
        sub = universe[:8]
        with sabotage_campaign("chunk-raises"):
            result = sweep.sweep(sub, processes=2, chunk_faults=8)
        assert _statuses(result) == reference[:8]
        report = sweep.last_report
        assert any(r.action == "split" for r in report.retries)
        assert any(r.action == "parent-serial" for r in report.retries)
        assert report.chunks_completed + report.chunks_resumed == (
            report.chunks_total
        )

    def test_block_backend_broken_degrades_to_scalar(self, adder):
        sweep = fresh_sweep(adder)
        universe = sweep.single_fault_universe()[:24]
        reference = [sweep.classify(f) for f in universe]
        with sabotage_campaign("block-backend-broken"):
            result = sweep.sweep(universe, backend="vectorized")
        assert _statuses(result) == reference
        report = sweep.last_report
        assert any(
            d.frm == "serial" and d.to == "scalar" for d in report.degradations
        )
        assert report.block_backend == "bitmask"
        assert sweep.last_sweep_backend == "bitmask"

    def test_unknown_sabotage_rejected(self):
        with pytest.raises(KeyError):
            with sabotage_campaign("frobnicate"):
                pass
        assert "worker-killed" in campaign_sabotage_names()


class TestDegenerateChunking:
    def test_empty_universe(self):
        sweep = fresh_sweep(fig37_fixed_network())
        assert sweep.sweep([]) == []
        assert sweep.sweep([], processes=4) == []
        report = sweep.last_report
        assert report.faults == 0
        assert report.chunks_total == 0

    def test_more_processes_than_faults(self):
        sweep = fresh_sweep(fig37_fixed_network())
        universe = sweep.single_fault_universe()[:3]
        reference = [sweep.classify(f) for f in universe]
        result = sweep.sweep(universe, processes=8)
        assert _statuses(result) == reference
        # The fan-out gate declined — observably, not silently.
        assert any(
            "cannot amortize" in d.reason
            for d in sweep.last_report.degradations
        )
        assert not sweep.last_sweep_backend.startswith("fork:")

    def test_single_fault_universe(self):
        sweep = fresh_sweep(fig37_fixed_network())
        universe = sweep.single_fault_universe()[:1]
        reference = [sweep.classify(universe[0])]
        assert _statuses(sweep.sweep(universe, processes=2)) == reference
        assert sweep.last_report.chunks_total == 1

    def test_single_process_stays_serial(self, adder, adder_reference):
        universe, reference = adder_reference
        sweep = fresh_sweep(adder)
        result = sweep.sweep(universe, processes=1)
        assert _statuses(result) == reference
        assert not sweep.last_sweep_backend.startswith("fork:")
        assert not sweep.last_report.degradations


class TestCheckpointResume:
    def test_interrupt_then_resume_is_byte_identical(
        self, adder, adder_reference, tmp_path
    ):
        universe, reference = adder_reference
        ckpt = str(tmp_path / "campaign.json")
        sweep = fresh_sweep(adder)
        with pytest.raises(CampaignInterrupted):
            sweep.sweep(universe, checkpoint=ckpt, abort_after_chunks=2)
        payload = json.load(open(ckpt))
        assert len(payload["ranges"]) == 2
        resumed = fresh_sweep(adder)
        result = resumed.sweep(universe, checkpoint=ckpt, resume=True)
        assert _statuses(result) == reference
        report = resumed.last_report
        assert report.chunks_resumed == 2
        # Completed chunks were not re-simulated.
        assert report.chunks_completed == report.chunks_total - 2

    def test_interrupted_fork_campaign_resumes_under_fork(
        self, adder, adder_reference, tmp_path
    ):
        universe, reference = adder_reference
        ckpt = str(tmp_path / "campaign.json")
        sweep = fresh_sweep(adder)
        with pytest.raises(CampaignInterrupted):
            sweep.sweep(
                universe, processes=2, checkpoint=ckpt, abort_after_chunks=3
            )
        resumed = fresh_sweep(adder)
        result = resumed.sweep(
            universe, processes=2, checkpoint=ckpt, resume=True
        )
        assert _statuses(result) == reference
        assert resumed.last_report.chunks_resumed >= 3

    def test_fully_completed_checkpoint_short_circuits(
        self, adder, adder_reference, tmp_path
    ):
        universe, reference = adder_reference
        ckpt = str(tmp_path / "campaign.json")
        sweep = fresh_sweep(adder)
        sweep.sweep(universe, checkpoint=ckpt)
        again = fresh_sweep(adder)
        result = again.sweep(universe, checkpoint=ckpt, resume=True)
        assert _statuses(result) == reference
        report = again.last_report
        assert report.backend == "resumed"
        assert report.chunks_completed == 0
        assert report.chunks_resumed == report.chunks_total

    def test_resume_requires_checkpoint_path(self, adder):
        sweep = fresh_sweep(adder)
        with pytest.raises(CheckpointError):
            sweep.sweep(sweep.single_fault_universe(), resume=True)

    def test_missing_checkpoint_rejected(self, adder, tmp_path):
        sweep = fresh_sweep(adder)
        with pytest.raises(CheckpointError, match="does not exist"):
            sweep.sweep(
                sweep.single_fault_universe(),
                checkpoint=str(tmp_path / "absent.json"),
                resume=True,
            )

    def test_foreign_checkpoint_rejected(self, adder, tmp_path):
        """A checkpoint from a different fault universe must be refused,
        not silently misapplied."""
        ckpt = str(tmp_path / "campaign.json")
        sweep = fresh_sweep(adder)
        universe = sweep.single_fault_universe()
        with pytest.raises(CampaignInterrupted):
            sweep.sweep(universe, checkpoint=ckpt, abort_after_chunks=1)
        other = fresh_sweep(fig37_fixed_network())
        with pytest.raises(CheckpointError, match="different campaign"):
            other.sweep(
                other.single_fault_universe(), checkpoint=ckpt, resume=True
            )

    def test_corrupt_checkpoint_rejected(self, adder, tmp_path):
        universe = fresh_sweep(adder).single_fault_universe()
        fingerprint = universe_fingerprint(universe, 9)
        bad_cases = [
            "not json at all {",
            json.dumps({"version": 99}),
            json.dumps(
                {
                    "version": 1,
                    "fingerprint": fingerprint,
                    "n_faults": len(universe),
                    "ranges": [
                        {"start": 0, "stop": 2, "statuses": ["detected", "bogus"]}
                    ],
                }
            ),
            json.dumps(
                {
                    "version": 1,
                    "fingerprint": fingerprint,
                    "n_faults": len(universe),
                    "ranges": [
                        {
                            "start": 0,
                            "stop": len(universe) + 5,
                            "statuses": [],
                        }
                    ],
                }
            ),
        ]
        for i, content in enumerate(bad_cases):
            path = tmp_path / f"bad{i}.json"
            path.write_text(content)
            sweep = fresh_sweep(adder)
            with pytest.raises(CheckpointError):
                sweep.sweep(universe, checkpoint=str(path), resume=True)

    def test_chunk_size_change_does_not_break_resume(
        self, adder, adder_reference, tmp_path
    ):
        universe, reference = adder_reference
        ckpt = str(tmp_path / "campaign.json")
        sweep = fresh_sweep(adder)
        with pytest.raises(CampaignInterrupted):
            sweep.sweep(
                universe, checkpoint=ckpt, chunk_faults=50, abort_after_chunks=2
            )
        resumed = fresh_sweep(adder)
        result = resumed.sweep(
            universe, checkpoint=ckpt, resume=True, chunk_faults=17
        )
        assert _statuses(result) == reference


class TestCampaignReport:
    def test_serial_report_shape(self, adder, adder_reference):
        universe, _reference = adder_reference
        sweep = fresh_sweep(adder)
        sweep.sweep(universe)
        report = sweep.last_report
        assert report.backend.startswith(("serial:", "scalar:"))
        assert report.faults == len(universe)
        assert report.chunks_completed == report.chunks_total > 0
        assert report.wall_seconds > 0
        assert not report.degradations
        # The report must survive a JSON round trip for the CLI.
        encoded = json.loads(json.dumps(report.to_dict()))
        assert encoded["faults"] == len(universe)
        assert encoded["degradations"] == []
        assert "no degradations" in report.summary()

    def test_fork_report_names_the_rung(self, adder, adder_reference):
        universe, _reference = adder_reference
        sweep = fresh_sweep(adder)
        sweep.sweep(universe, processes=2)
        report = sweep.last_report
        assert report.backend.startswith("fork")
        assert sweep.last_sweep_backend == f"fork:{report.block_backend}"

    def test_fingerprint_is_order_sensitive(self, adder):
        universe = fresh_sweep(adder).single_fault_universe()
        forward = universe_fingerprint(universe, 9)
        backward = universe_fingerprint(list(reversed(universe)), 9)
        assert forward != backward
        assert forward != universe_fingerprint(universe, 8)


class TestCancellation:
    """CancelToken threaded through the supervision poll loop: a fired
    token stops the sweep within one poll interval, completed chunks
    stay checkpointed, and a later resume is byte-identical."""

    def test_pre_cancelled_token_raises_immediately(self, adder):
        token = CancelToken()
        token.cancel("caller gave up")
        sweep = fresh_sweep(adder)
        with pytest.raises(CampaignCancelled, match="caller gave up"):
            sweep.sweep(sweep.single_fault_universe(), cancel=token)

    def test_unfired_deadline_does_not_disturb_the_sweep(
        self, adder, adder_reference
    ):
        universe, reference = adder_reference
        sweep = fresh_sweep(adder)
        pairs = sweep.sweep(universe, cancel=CancelToken(deadline_s=600))
        assert _statuses(pairs) == reference

    def test_deadline_cancels_then_resume_is_byte_identical(
        self, adder, adder_reference, tmp_path
    ):
        universe, reference = adder_reference
        sweep = fresh_sweep(adder)
        ckpt = str(tmp_path / "cancelled.json")
        with sabotage_service("campaign-slow", slow_s=0.05):
            with pytest.raises(CampaignCancelled, match="deadline exceeded"):
                sweep.sweep(
                    universe,
                    checkpoint=ckpt,
                    cancel=CancelToken(deadline_s=0.12),
                )
        # The chunks completed before the deadline are already durable,
        # and resuming without the token finishes the exact remainder.
        assert os.path.exists(ckpt)
        resumed = sweep.sweep(universe, checkpoint=ckpt, resume=True)
        assert _statuses(resumed) == reference

    def test_explicit_cancel_frees_the_sweep_promptly(self, adder):
        import threading
        import time as _time

        sweep = fresh_sweep(adder)
        token = CancelToken()
        timer = threading.Timer(0.15, token.cancel, args=("client gone",))
        timer.start()
        started = _time.monotonic()
        try:
            with sabotage_service("campaign-slow", slow_s=0.1):
                with pytest.raises(CampaignCancelled, match="client gone"):
                    sweep.sweep(sweep.single_fault_universe(), cancel=token)
        finally:
            timer.cancel()
        # Cancellation lands between chunks: well before the ~0.8s the
        # sabotaged sweep would otherwise take.
        assert _time.monotonic() - started < 0.6
