"""Tests for Algorithm 3.1 (repro.core.analysis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.analysis import (
    Condition,
    analyze_network,
    lines_needing_multi_output,
)
from repro.core.simulate import ScalSimulator
from repro.logic.network import expand_fanout_branches
from repro.logic.parse import parse_expression
from repro.modules.adder import full_adder_network
from repro.workloads.fig34 import fig34_network, fig37_fixed_network
from repro.workloads.randomlogic import random_alternating_network


class TestOnThesisExamples:
    def test_fig34_not_self_checking(self, fig34):
        analysis = analyze_network(fig34)
        assert analysis.alternating
        assert not analysis.redundant
        assert not analysis.is_self_checking
        assert analysis.failing_lines() == ("or_ab",)

    def test_fig34_line9_needs_multi_output(self, fig34):
        analysis = analyze_network(fig34)
        assert lines_needing_multi_output(analysis) == ("nab",)

    def test_fig34_without_multi_output_condition(self, fig34):
        analysis = analyze_network(fig34, use_multi_output=False)
        failing = set(analysis.failing_lines())
        assert "nab" in failing and "or_ab" in failing

    def test_fig37_fix_is_self_checking(self, fig37):
        analysis = analyze_network(fig37)
        assert analysis.is_self_checking
        # The shared line 9 analog still needs Corollary 3.2.
        assert lines_needing_multi_output(analysis) == ("nab",)

    def test_full_adder_self_checking(self):
        analysis = analyze_network(full_adder_network())
        assert analysis.is_self_checking

    def test_majority_self_checking(self):
        net = parse_expression("a b | b c | a c", inputs=["a", "b", "c"])
        assert analyze_network(net).is_self_checking

    def test_non_alternating_network_flagged(self):
        net = parse_expression("a & b", inputs=["a", "b"])
        analysis = analyze_network(net)
        assert not analysis.alternating
        assert not analysis.is_self_checking


class TestReporting:
    def test_condition_histogram(self, fig37):
        hist = analyze_network(fig37).condition_histogram()
        assert hist[Condition.A_ALTERNATES] >= 3  # at least the inputs
        assert hist.get(Condition.MULTI_OUTPUT, 0) == 1

    def test_summary_mentions_failing_line(self, fig34):
        text = analyze_network(fig34).summary()
        assert "NOT self-checking" in text
        assert "or_ab" in text

    def test_summary_self_checking(self, fig37):
        assert "SELF-CHECKING" in analyze_network(fig37).summary()

    def test_line_verdicts_cover_cone_outputs_only(self, fig34):
        analysis = analyze_network(fig34)
        verdict = analysis.lines["g2"]
        assert set(verdict.admitted_by) == {"F2"}


class TestSoundnessProperties:
    @settings(max_examples=15, deadline=None)
    @given(st.randoms(use_true_random=False))
    def test_analysis_agrees_with_oracle(self, rnd):
        """On expanded networks (every pin a stem), Algorithm 3.1's
        verdict must match the exhaustive oracle over stem+pin faults."""
        net = random_alternating_network(rnd, 3)
        expanded = expand_fanout_branches(net)
        analysis = analyze_network(expanded)
        oracle = ScalSimulator(net).verdict(include_pins=True)
        assert analysis.is_self_checking == oracle.is_self_checking

    @settings(max_examples=10, deadline=None)
    @given(st.randoms(use_true_random=False))
    def test_admitted_lines_are_oracle_secure(self, rnd):
        """Per-line soundness: any line the analyzer admits must be
        fault-secure in the oracle (for stem faults)."""
        net = random_alternating_network(rnd, 3)
        analysis = analyze_network(net)
        sim = ScalSimulator(net)
        for line, verdict in analysis.lines.items():
            if verdict.self_checking and verdict.admitted_by:
                assert sim.line_self_checking(line), line

    def test_fig34_oracle_agreement(self, fig34):
        expanded = expand_fanout_branches(fig34)
        analysis = analyze_network(expanded)
        oracle = ScalSimulator(fig34).verdict(include_pins=True)
        assert not analysis.is_self_checking
        assert not oracle.is_self_checking

    def test_fig37_oracle_agreement(self, fig37):
        expanded = expand_fanout_branches(fig37)
        assert analyze_network(expanded).is_self_checking
        assert ScalSimulator(fig37).verdict(include_pins=True).is_self_checking
