"""The pluggable transport layer: parity, chaos, stealing, the store.

The transports' one hard contract is indistinguishability: a sweep
fanned out over any execution fabric — inline, forked pipes, fork with
the shared-memory baseline, or spawned ``repro worker`` processes on a
socket — must return statuses byte-identical to the undisturbed serial
scalar path, under health *and* under injected failure.  The chaos
cases reuse the fuzz harness's sabotage discipline per transport:
workers killed, the socket connection dropped mid-chunk, shared memory
denied.  Work stealing and the content-addressed artifact store are
covered at the same level: observable bookkeeping, identical results.
"""

import os
import time

import pytest

from repro.engine import (
    FaultSweep,
    NetworkEngine,
    STORE,
    ArtifactStore,
    program_fingerprint,
)
from repro.engine import supervisor as supervisor_mod
from repro.engine.transport import WORKER_RUNGS, create_transport
from repro.logic.benchfmt import load_bench, parse_bench
from repro.qa.chaos import sabotage_campaign

DATA_DIR = os.path.join(os.path.dirname(__file__), "..", "examples", "data")

#: Transports a test process can always exercise (socket needs spawn,
#: which every supported platform has; fork rungs need os.fork).
ALL_TRANSPORTS = ("inline", "fork", "fork+shm", "socket")


@pytest.fixture(scope="module")
def adder():
    return load_bench(os.path.join(DATA_DIR, "adder4.bench"))


@pytest.fixture(scope="module")
def adder_reference(adder):
    """Serial scalar statuses — the byte-identical yardstick."""
    sweep = FaultSweep(adder)
    universe = sweep.single_fault_universe()
    statuses = [
        s for _f, s in sweep.sweep(universe, backend="bitmask")
    ]
    return universe, statuses


def fresh_sweep(network):
    return FaultSweep(network, engine=NetworkEngine(network))


def _statuses(pairs):
    return [status for _fault, status in pairs]


class TestTransportParity:
    @pytest.mark.parametrize("transport", ALL_TRANSPORTS)
    def test_statuses_byte_identical(
        self, adder, adder_reference, transport
    ):
        universe, reference = adder_reference
        sweep = fresh_sweep(adder)
        result = sweep.sweep(universe, processes=2, transport=transport)
        assert _statuses(result) == reference
        report = sweep.last_report
        assert report.chunks_completed == report.chunks_total
        if transport == "inline":
            # Inline is the serial rung made explicit: in-process, no
            # fan-out, no degradation to report.
            assert report.backend.startswith(("serial:", "scalar:"))
        else:
            assert report.backend.startswith(transport)
            assert report.degradations == []

    @pytest.mark.parametrize("transport", ("fork", "socket"))
    def test_scalar_block_backend_parity(
        self, adder, adder_reference, transport
    ):
        """The worker rungs stay honest on the scalar bitmask backend
        too, not just the fault-batched block backends."""
        universe, reference = adder_reference
        sweep = fresh_sweep(adder)
        result = sweep.sweep(
            universe, processes=2, backend="bitmask", transport=transport
        )
        assert _statuses(result) == reference
        assert sweep.last_report.block_backend == "bitmask"

    def test_explicit_transport_overrides_lane_heuristic(
        self, adder, adder_reference
    ):
        """An explicit worker transport fans out even at processes=1."""
        universe, reference = adder_reference
        sweep = fresh_sweep(adder)
        result = sweep.sweep(universe, processes=1, transport="fork")
        assert _statuses(result) == reference
        assert sweep.last_report.backend.startswith("fork")

    def test_unknown_transport_rejected(self, adder):
        sweep = fresh_sweep(adder)
        with pytest.raises(ValueError, match="transport"):
            sweep.sweep(
                sweep.single_fault_universe()[:4], transport="carrier-pigeon"
            )

    def test_create_transport_registry(self, adder):
        sweep = fresh_sweep(adder)
        for rung in WORKER_RUNGS + ("inline",):
            fabric = create_transport(rung, sweep, lanes=1)
            assert fabric.rung in (rung, "fork")  # fork+shm may present fork
        with pytest.raises(ValueError, match="carrier-pigeon"):
            create_transport("carrier-pigeon", sweep, lanes=1)


class TestTransportChaos:
    """Per-transport injected failure: recovery plus byte-identity."""

    @pytest.mark.parametrize("transport", ("fork", "fork+shm", "socket"))
    def test_worker_killed_is_replaced(
        self, adder, adder_reference, transport, tmp_path
    ):
        universe, reference = adder_reference
        sweep = fresh_sweep(adder)
        with sabotage_campaign(
            "worker-killed", once_path=str(tmp_path / "once")
        ):
            result = sweep.sweep(
                universe, processes=2, transport=transport
            )
        assert _statuses(result) == reference
        report = sweep.last_report
        assert report.workers_replaced >= 1
        assert any("worker died" in r.reason for r in report.retries)
        assert report.backend.startswith(transport)

    def test_socket_dropped_mid_chunk(
        self, adder, adder_reference, tmp_path
    ):
        """A worker's connection drops while the process lives on: the
        lane is declared dead, the orphan reaped, the chunk retried."""
        universe, reference = adder_reference
        sweep = fresh_sweep(adder)
        with sabotage_campaign(
            "socket-dropped", once_path=str(tmp_path / "once")
        ):
            result = sweep.sweep(
                universe, processes=2, transport="socket"
            )
        assert _statuses(result) == reference
        report = sweep.last_report
        assert report.workers_replaced >= 1
        assert any("worker died" in r.reason for r in report.retries)
        assert report.backend.startswith("socket")

    def test_shm_denied_steps_socket_ladder_to_fork(
        self, adder, adder_reference
    ):
        """The fork+shm rung below socket degrades to plain fork when
        shared memory is denied — mid-ladder, not just from the top."""
        universe, reference = adder_reference
        sweep = fresh_sweep(adder)
        with sabotage_campaign("shm-denied"):
            result = sweep.sweep(
                universe, processes=2, transport="fork+shm"
            )
        assert _statuses(result) == reference
        report = sweep.last_report
        assert any(
            d.frm == "fork+shm" and d.to == "fork"
            for d in report.degradations
        )
        assert report.backend.startswith("fork:")


class TestWorkStealing:
    def test_idle_lane_steals_tail_of_slow_chunk(
        self, adder, adder_reference, monkeypatch
    ):
        """One lane dawdles on a wide chunk while the other drains the
        queue; the idle lane must steal the tail, and the sliced victim
        result plus the stolen tail must reassemble byte-identically."""
        universe, reference = adder_reference
        sweep = fresh_sweep(adder)
        monkeypatch.setattr(supervisor_mod, "STEAL_AGE_SECONDS", 0.0)

        def slow_first_chunk(chunk_key, _attempt):
            if chunk_key.startswith("0:"):
                time.sleep(1.0)

        monkeypatch.setattr(
            supervisor_mod, "WORKER_CHUNK_HOOK", slow_first_chunk
        )
        result = sweep.sweep(
            universe,
            processes=2,
            transport="fork",
            chunk_faults=max(len(universe) // 3, 2),
        )
        assert _statuses(result) == reference
        report = sweep.last_report
        assert report.steals >= 1
        assert report.chunks_completed == report.chunks_total
        assert report.to_dict()["steals"] == report.steals

    def test_inline_transport_never_steals(self, adder, monkeypatch):
        monkeypatch.setattr(supervisor_mod, "STEAL_AGE_SECONDS", 0.0)
        sweep = fresh_sweep(adder)
        universe = sweep.single_fault_universe()
        sweep.sweep(universe, transport="inline")
        assert sweep.last_report.steals == 0


class TestArtifactStore:
    def test_disabled_store_is_inert(self):
        store = ArtifactStore(enabled=False)
        store.put("baseline", "fp", value=(1, 2))
        assert store.get("baseline", "fp") is None
        assert len(store) == 0

    def test_roundtrip_and_lru_eviction(self):
        store = ArtifactStore(max_entries=2, enabled=True)
        store.put("k", "a", value=1)
        store.put("k", "b", value=2)
        assert store.get("k", "a") == 1  # refresh a
        store.put("k", "c", value=3)  # evicts b
        assert store.get("k", "b") is None
        assert store.get("k", "a") == 1
        assert store.get("k", "c") == 3
        stats = store.stats()
        assert stats["hits"] == 3 and stats["misses"] == 1

    def test_program_fingerprint_is_content_addressed(self):
        text = "INPUT(a)\nINPUT(b)\ng = NAND(a, b)\nOUTPUT(g)\n"
        one = NetworkEngine(parse_bench(text, name="one"))
        two = NetworkEngine(parse_bench(text, name="two"))
        assert program_fingerprint(one.compiled) == program_fingerprint(
            two.compiled
        )
        other = NetworkEngine(
            parse_bench(
                "INPUT(a)\nINPUT(b)\ng = NOR(a, b)\nOUTPUT(g)\n", name="three"
            )
        )
        assert program_fingerprint(other.compiled) != program_fingerprint(
            one.compiled
        )

    def test_enabled_store_shares_baseline_derivation(self):
        text = "INPUT(a)\nINPUT(b)\ng = AND(a, b)\nOUTPUT(g)\n"
        one = NetworkEngine(parse_bench(text, name="one"))
        two = NetworkEngine(parse_bench(text, name="two"))
        previous = STORE.enabled
        STORE.enabled = True
        try:
            first = one.bitmask.baseline()
            second = two.bitmask.baseline()
        finally:
            STORE.enabled = previous
            STORE.clear()
        assert second is first  # same tuple object: one derivation


class TestBaselineIsolation:
    def test_baseline_is_immutable(self, adder):
        engine = NetworkEngine(adder)
        baseline = engine.bitmask.baseline()
        assert isinstance(baseline, tuple)
        with pytest.raises(TypeError):
            baseline[0] = 12345

    def test_line_bits_returns_fresh_list(self, adder):
        engine = NetworkEngine(adder)
        bits = engine.bitmask.line_bits()
        bits[0] ^= 0xFF  # a hostile caller scribbles on the result
        assert engine.bitmask.line_bits()[0] == engine.bitmask.baseline()[0]
