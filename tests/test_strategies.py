"""Property tests using the public Hypothesis strategies
(repro.workloads.strategies) — these double as cross-module invariants."""

from hypothesis import given, settings

from repro.core.analysis import analyze_network
from repro.core.simulate import ScalSimulator
from repro.logic.benchfmt import parse_bench, write_bench
from repro.logic.evaluate import functionally_equivalent, network_function
from repro.logic.selfdual import self_dualize_table
from repro.logic.synthesis import minimize, cover_to_table
from repro.seq.minimize import minimize_machine
from repro.workloads.strategies import (
    alternating_networks,
    machines,
    networks,
    self_dual_tables,
    truth_tables,
)


class TestTableStrategies:
    @settings(max_examples=60)
    @given(self_dual_tables())
    def test_self_dual_tables_are_self_dual(self, table):
        assert table.is_self_dual()

    @settings(max_examples=60)
    @given(truth_tables())
    def test_dualization_idempotent_on_self_duals(self, table):
        sd = self_dualize_table(table)
        assert sd.is_self_dual()
        # Dualizing again still yields a self-dual function.
        assert self_dualize_table(sd).is_self_dual()

    @settings(max_examples=60)
    @given(truth_tables(max_inputs=3))
    def test_qm_roundtrip(self, table):
        cover = minimize(table)
        assert cover_to_table(cover, table.n).bits == table.bits


class TestNetworkStrategies:
    @settings(max_examples=30, deadline=None)
    @given(networks())
    def test_generated_networks_are_valid(self, net):
        assert net.outputs
        table = network_function(net, net.outputs[0])
        assert table.n == len(net.inputs)

    @settings(max_examples=30, deadline=None)
    @given(networks(max_gates=6))
    def test_bench_round_trip(self, net):
        back = parse_bench(write_bench(net), name=net.name)
        assert functionally_equivalent(net, back)

    @settings(max_examples=20, deadline=None)
    @given(alternating_networks())
    def test_alternating_networks_are_scal(self, net):
        sim = ScalSimulator(net)
        assert sim.is_alternating()
        assert sim.verdict(include_pins=False).is_self_checking

    @settings(max_examples=15, deadline=None)
    @given(alternating_networks())
    def test_algorithm_3_1_accepts_constructed_scal(self, net):
        assert analyze_network(net).is_self_checking


class TestMachineStrategies:
    @settings(max_examples=25, deadline=None)
    @given(machines())
    def test_machines_complete(self, machine):
        for state in machine.states:
            for vector in machine.input_vectors():
                machine.transition(state, vector)

    @settings(max_examples=15, deadline=None)
    @given(machines())
    def test_minimization_preserves_behaviour(self, machine):
        reduced = minimize_machine(machine)
        stream = [(i % 2,) for i in range(24)]
        assert reduced.run(stream) == machine.run(stream)
