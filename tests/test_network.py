"""Unit tests for the netlist model (repro.logic.network)."""

import pytest

from repro.logic.gates import GateKind
from repro.logic.network import (
    Gate,
    Network,
    NetworkBuilder,
    NetworkError,
    expand_fanout_branches,
    merge_disjoint,
)


def small_net():
    b = NetworkBuilder(["a", "b"], name="small")
    b.add("n1", GateKind.NAND, ["a", "b"])
    b.add("n2", GateKind.NOT, ["n1"])
    return b.build(["n2"])


class TestConstruction:
    def test_builder_basic(self):
        net = small_net()
        assert net.inputs == ("a", "b")
        assert net.outputs == ("n2",)
        assert [g.name for g in net.gates] == ["n1", "n2"]

    def test_duplicate_line_rejected(self):
        b = NetworkBuilder(["a"])
        b.add("n", GateKind.NOT, ["a"])
        with pytest.raises(NetworkError):
            b.add("n", GateKind.NOT, ["a"])

    def test_undefined_source_rejected(self):
        b = NetworkBuilder(["a"])
        with pytest.raises(NetworkError):
            b.add("n", GateKind.NOT, ["zzz"])

    def test_duplicate_inputs_rejected(self):
        with pytest.raises(NetworkError):
            Network(["a", "a"], [], ["a"])

    def test_unknown_output_rejected(self):
        with pytest.raises(NetworkError):
            Network(["a"], [], ["missing"])

    def test_cycle_rejected(self):
        gates = [
            Gate("p", GateKind.NOT, ("q",)),
            Gate("q", GateKind.NOT, ("p",)),
        ]
        with pytest.raises(NetworkError):
            Network([], gates, ["p"])

    def test_forward_reference_allowed(self):
        gates = [
            Gate("second", GateKind.NOT, ("first",)),
            Gate("first", GateKind.NOT, ("a",)),
        ]
        net = Network(["a"], gates, ["second"])
        assert net.output_values({"a": 0}) == (0,)

    def test_missing_input_value(self):
        net = small_net()
        with pytest.raises(NetworkError):
            net.evaluate({"a": 1})

    def test_fresh_names(self):
        b = NetworkBuilder(["a"])
        l1 = b.fresh(GateKind.NOT, ["a"])
        l2 = b.fresh(GateKind.NOT, [l1])
        assert l1 != l2


class TestStructure:
    def test_fanout(self):
        b = NetworkBuilder(["a"])
        b.add("n1", GateKind.NOT, ["a"])
        b.add("n2", GateKind.NOT, ["n1"])
        b.add("n3", GateKind.NOT, ["n1"])
        net = b.build(["n2", "n3"])
        assert set(net.fanout("n1")) == {"n2", "n3"}
        assert net.fanout_count("n1") == 2
        assert net.fanout_count("n2") == 0

    def test_fanout_counts_duplicate_pins(self):
        b = NetworkBuilder(["a"])
        b.add("x", GateKind.XOR, ["a", "a"])
        net = b.build(["x"])
        assert net.fanout_count("a") == 2

    def test_cone(self):
        b = NetworkBuilder(["a", "b", "c"])
        b.add("n1", GateKind.AND, ["a", "b"])
        b.add("n2", GateKind.OR, ["b", "c"])
        net = b.build(["n1", "n2"])
        assert net.cone("n1") == {"n1", "a", "b"}
        assert net.outputs_using("b") == ("n1", "n2")
        assert net.outputs_using("a") == ("n1",)

    def test_reachable_outputs(self):
        b = NetworkBuilder(["a", "b"])
        b.add("n1", GateKind.AND, ["a", "b"])
        net = b.build(["n1"])
        reach = net.reachable_outputs()
        assert reach["a"] == ("n1",)
        assert reach["n1"] == ("n1",)

    def test_depth(self):
        b = NetworkBuilder(["a"])
        prev = "a"
        for i in range(5):
            prev = b.add(f"n{i}", GateKind.NOT, [prev])
        net = b.build([prev])
        assert net.depth() == 5

    def test_gate_counts(self):
        b = NetworkBuilder(["a", "b"])
        b.add("k", GateKind.CONST1, [])
        b.add("n1", GateKind.AND, ["a", "b"])
        b.add("n2", GateKind.BUF, ["n1"])
        net = b.build(["n2"])
        assert net.gate_count() == 2
        assert net.gate_count(include_buffers=False) == 1
        assert net.gate_input_count() == 3

    def test_kind_histogram(self):
        net = small_net()
        hist = net.kind_histogram()
        assert hist[GateKind.NAND] == 1
        assert hist[GateKind.NOT] == 1


class TestTransforms:
    def test_renamed(self):
        net = small_net()
        r = net.renamed("z_")
        assert r.inputs == ("z_a", "z_b")
        assert r.outputs == ("z_n2",)
        assert r.output_values({"z_a": 1, "z_b": 1}) == net.output_values(
            {"a": 1, "b": 1}
        )

    def test_with_outputs(self):
        net = small_net()
        r = net.with_outputs(["n1"])
        assert r.outputs == ("n1",)
        assert r.output_values({"a": 1, "b": 1}) == (0,)

    def test_merge_disjoint(self):
        a = small_net()
        b_builder = NetworkBuilder(["a", "b"])
        b_builder.add("m1", GateKind.OR, ["a", "b"])
        b = b_builder.build(["m1"])
        merged = merge_disjoint(a, b)
        assert set(merged.outputs) == {"n2", "m1"}
        values = merged.output_values({"a": 1, "b": 0})
        assert values == (0, 1)

    def test_merge_conflicting_gate_names(self):
        a = small_net()
        with pytest.raises(NetworkError):
            merge_disjoint(a, a)

    def test_expand_fanout_branches_preserves_function(self):
        b = NetworkBuilder(["a", "b"])
        n1 = b.add("n1", GateKind.NAND, ["a", "b"])
        b.add("o1", GateKind.NOT, [n1])
        b.add("o2", GateKind.AND, [n1, "a"])
        net = b.build(["o1", "o2"])
        exp = expand_fanout_branches(net)
        for point in range(4):
            assign = {"a": point & 1, "b": (point >> 1) & 1}
            assert exp.output_values(assign) == net.output_values(assign)

    def test_expand_fanout_adds_branch_lines(self):
        b = NetworkBuilder(["a"])
        b.add("o1", GateKind.NOT, ["a"])
        b.add("o2", GateKind.NOT, ["a"])
        net = b.build(["o1", "o2"])
        exp = expand_fanout_branches(net)
        branch_lines = [g.name for g in exp.gates if g.kind is GateKind.BUF]
        assert len(branch_lines) == 2
        assert exp.fanout_count("a") == 2  # the two branch BUFs

    def test_expand_no_fanout_is_identity_shape(self):
        net = small_net()
        exp = expand_fanout_branches(net)
        assert exp.gate_count() == net.gate_count()


class TestEvaluation:
    def test_nand_values(self):
        net = small_net()
        # n2 = NOT(NAND(a,b)) = AND
        assert net.output_values({"a": 1, "b": 1}) == (1,)
        assert net.output_values({"a": 1, "b": 0}) == (0,)

    def test_overrides_stem(self):
        net = small_net()
        assert net.output_values({"a": 1, "b": 1}, overrides={"n1": 1}) == (0,)

    def test_override_input(self):
        net = small_net()
        assert net.output_values({"a": 0, "b": 1}, overrides={"a": 1}) == (1,)

    def test_assignment_from_index(self):
        net = small_net()
        assert net.assignment_from_index(0b10) == {"a": 0, "b": 1}
