"""Tests for exhaustive evaluation and fault injection (repro.logic.evaluate)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.evaluate import (
    evaluate_with_fault,
    functionally_equivalent,
    line_tables,
    network_function,
    output_tables,
    outputs_with_fault,
    sampled_output_vectors,
)
from repro.logic.faults import PinStuckAt, StuckAt
from repro.logic.gates import GateKind
from repro.logic.network import NetworkBuilder
from repro.workloads.randomlogic import random_mixed_network


class TestLineTables:
    def test_tables_match_pointwise(self, rng):
        for _ in range(10):
            net = random_mixed_network(rng, 3, 6, n_outputs=2)
            tables = line_tables(net)
            for point in range(8):
                assign = net.assignment_from_index(point)
                values = net.evaluate(assign)
                for line, table in tables.items():
                    assert table.value(point) == values[line], line

    def test_faulty_tables_match_pointwise(self, rng):
        for _ in range(10):
            net = random_mixed_network(rng, 3, 6)
            lines = list(net.lines())
            fault = StuckAt(rng.choice(lines), rng.randint(0, 1))
            tables = line_tables(net, fault)
            for point in range(8):
                assign = net.assignment_from_index(point)
                values = evaluate_with_fault(net, assign, fault)
                for line, table in tables.items():
                    assert table.value(point) == values[line]

    def test_pin_fault_differs_from_stem(self):
        b = NetworkBuilder(["a"])
        n1 = b.add("n1", GateKind.NOT, ["a"])
        b.add("o1", GateKind.NOT, [n1])
        b.add("o2", GateKind.BUF, [n1])
        net = b.build(["o1", "o2"])
        stem = output_tables(net, StuckAt("n1", 0))
        pin = output_tables(net, PinStuckAt("o1", 0, 0))
        # Stem fault hits both outputs, pin fault only o1.
        assert stem["o2"].is_zero()
        assert pin["o2"].bits == output_tables(net)["o2"].bits
        assert pin["o1"].is_one()

    def test_input_stem_fault(self):
        b = NetworkBuilder(["a"])
        b.add("n", GateKind.BUF, ["a"])
        net = b.build(["n"])
        t = output_tables(net, StuckAt("a", 1))
        assert t["n"].is_one()


class TestNetworkFunction:
    def test_single_output(self):
        b = NetworkBuilder(["a", "b"])
        b.add("n", GateKind.AND, ["a", "b"])
        net = b.build(["n"])
        assert network_function(net).minterms() == [3]

    def test_requires_output_name_for_multi(self, rng):
        net = random_mixed_network(rng, 2, 4, n_outputs=2)
        with pytest.raises(ValueError):
            network_function(net)
        assert network_function(net, net.outputs[0]) is not None


class TestPointwiseFaults:
    def test_outputs_with_fault(self):
        b = NetworkBuilder(["a", "b"])
        b.add("n", GateKind.AND, ["a", "b"])
        net = b.build(["n"])
        assert outputs_with_fault(net, {"a": 1, "b": 1}, StuckAt("n", 0)) == (0,)
        assert outputs_with_fault(net, {"a": 1, "b": 1}) == (1,)

    def test_sampled_vectors(self):
        b = NetworkBuilder(["a", "b"])
        b.add("n", GateKind.XOR, ["a", "b"])
        net = b.build(["n"])
        outs = sampled_output_vectors(net, [0, 1, 2, 3])
        assert outs == [(0,), (1,), (1,), (0,)]


class TestEquivalence:
    def test_identical_networks(self, rng):
        net = random_mixed_network(rng, 3, 5, n_outputs=2)
        assert functionally_equivalent(net, net)

    def test_renamed_outputs_still_equivalent(self):
        b1 = NetworkBuilder(["a", "b"])
        b1.add("x", GateKind.AND, ["a", "b"])
        n1 = b1.build(["x"])
        b2 = NetworkBuilder(["a", "b"])
        b2.add("y", GateKind.AND, ["b", "a"])
        n2 = b2.build(["y"])
        assert functionally_equivalent(n1, n2)

    def test_input_order_irrelevant(self):
        b1 = NetworkBuilder(["a", "b"])
        b1.add("x", GateKind.AND, ["a", "a"])
        n1 = b1.build(["x"])
        b2 = NetworkBuilder(["b", "a"])
        b2.add("y", GateKind.AND, ["a"])
        n2 = b2.build(["y"])
        assert functionally_equivalent(n1, n2)

    def test_different_functions_not_equivalent(self):
        b1 = NetworkBuilder(["a", "b"])
        b1.add("x", GateKind.AND, ["a", "b"])
        n1 = b1.build(["x"])
        b2 = NetworkBuilder(["a", "b"])
        b2.add("y", GateKind.OR, ["a", "b"])
        n2 = b2.build(["y"])
        assert not functionally_equivalent(n1, n2)

    def test_different_input_sets_not_equivalent(self):
        b1 = NetworkBuilder(["a"])
        b1.add("x", GateKind.NOT, ["a"])
        n1 = b1.build(["x"])
        b2 = NetworkBuilder(["c"])
        b2.add("x", GateKind.NOT, ["c"])
        n2 = b2.build(["x"])
        assert not functionally_equivalent(n1, n2)
