"""Tests for hardcore elements and Theorem 5.2 (repro.checkers.hardcore)."""

import itertools

import pytest

from repro.checkers.hardcore import (
    DEFAULT_CANDIDATES,
    CombinationalDisable,
    HoldLastDisable,
    LatchedErrorDisable,
    LatchingCheckerOutput,
    check_candidate,
    clock_disable,
    clock_disable_network,
    clock_disable_truth_table,
    meets_requirements,
    replicated_clock_disable,
    replication_failure_probability,
    theorem_5_2_survey,
    untestable_faults,
)
from repro.logic.faults import StuckAt
from repro.logic.evaluate import outputs_with_fault


class TestTable52:
    def test_truth_table_rows(self):
        rows = clock_disable_truth_table()
        assert len(rows) == 8
        expected = {
            (0, 0, 0): 0, (0, 0, 1): 0, (0, 1, 0): 0, (0, 1, 1): 0,
            (1, 0, 0): 0, (1, 0, 1): 1, (1, 1, 0): 1, (1, 1, 1): 0,
        }
        for clock, f, g, out in rows:
            assert out == expected[(clock, f, g)]

    def test_network_matches_function(self):
        net = clock_disable_network()
        for clock, f, g in itertools.product((0, 1), repeat=3):
            got = net.output_values({"clock": clock, "f": f, "g": g})
            assert got == (clock_disable(clock, f, g),)

    def test_xor_stuck_at_1_is_undetectable_in_code_operation(self):
        """The thesis's observation: with the XOR output stuck at 1 the
        module behaves identically for all *code* inputs (f ≠ g)."""
        net = clock_disable_network()
        for clock, f in itertools.product((0, 1), repeat=2):
            g = 1 - f  # code input
            healthy = net.output_values({"clock": clock, "f": f, "g": g})
            faulty = outputs_with_fault(
                net, {"clock": clock, "f": f, "g": g}, StuckAt("fg", 1)
            )
            assert healthy == faulty


class TestReplication:
    def test_series_modules(self):
        codes = [(1, 0), (0, 1), (1, 0)]
        assert replicated_clock_disable(1, codes) == 1
        codes[1] = (1, 1)
        assert replicated_clock_disable(1, codes) == 0

    def test_failure_probability(self):
        assert replication_failure_probability(0.1, 3) == pytest.approx(1e-3)
        with pytest.raises(ValueError):
            replication_failure_probability(1.5, 2)
        with pytest.raises(ValueError):
            replication_failure_probability(0.5, 0)


class TestLatchingChecker:
    def test_noncode_latches(self):
        latch = LatchingCheckerOutput()
        assert latch.step(1, 0) == (1, 0)
        assert latch.step(1, 1) == (1, 1)
        assert latch.latched_fault
        # Once latched, good inputs cannot clear it.
        assert latch.step(1, 0) == (1, 1)


class TestTheorem52:
    def test_combinational_fails_requirements(self):
        assert meets_requirements(CombinationalDisable()) is not None

    def test_latched_error_fails_requirements(self):
        """Killing the clock the instant the code fails mid-cycle creates
        the forbidden falling edge (requirement R2)."""
        assert meets_requirements(LatchedErrorDisable()) is not None

    def test_hold_last_meets_requirements_but_untestable(self):
        assert meets_requirements(HoldLastDisable()) is None
        faults = untestable_faults(HoldLastDisable)
        assert "xor_out s/1" in faults

    def test_survey_confirms_theorem(self):
        """Theorem 5.2: no candidate is a self-checking hardcore."""
        for verdict in theorem_5_2_survey():
            assert not verdict.is_self_checking_hardcore, verdict.name

    def test_verdicts_carry_explanations(self):
        for verdict in theorem_5_2_survey(DEFAULT_CANDIDATES):
            if not verdict.meets_requirements:
                assert verdict.violation
            else:
                assert verdict.untestable_faults

    def test_check_candidate_shape(self):
        verdict = check_candidate(CombinationalDisable)
        assert verdict.name == "combinational c&(f^g)"
        assert not verdict.meets_requirements
