"""Tests for the Anderson dual-rail checker (repro.checkers.tworail)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.checkers.tworail import (
    CELL_GATES,
    ScalDualRailChecker,
    alternating_output_stage,
    code_valid,
    evaluate_two_rail_tree,
    two_rail_cell_values,
    two_rail_checker_network,
)


class TestCell:
    def test_valid_inputs_give_valid_output(self):
        for x0, y0 in itertools.product((0, 1), repeat=2):
            z = two_rail_cell_values((x0, 1 - x0), (y0, 1 - y0))
            assert code_valid(z)

    def test_code_disjoint(self):
        """Any noncode input pair forces a noncode output pair."""
        for x in itertools.product((0, 1), repeat=2):
            for y in itertools.product((0, 1), repeat=2):
                if code_valid(x) and code_valid(y):
                    continue
                assert not code_valid(two_rail_cell_values(x, y))

    def test_output_polarity_tracks_xnor(self):
        # For valid rails the z0 rail equals XNOR(x0, y0).
        for x0, y0 in itertools.product((0, 1), repeat=2):
            z0, _z1 = two_rail_cell_values((x0, 1 - x0), (y0, 1 - y0))
            assert z0 == (1 - (x0 ^ y0))


class TestTree:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 7, 9])
    def test_gate_cost_formula(self, n):
        net = two_rail_checker_network(n)
        assert net.gate_count(include_buffers=False) == (n - 1) * CELL_GATES

    @settings(max_examples=120)
    @given(
        st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=7),
        st.randoms(use_true_random=False),
    )
    def test_valid_iff_all_pairs_valid(self, bits, rnd):
        pairs = [(b, 1 - b) for b in bits]
        assert code_valid(evaluate_two_rail_tree(pairs))
        k = rnd.randrange(len(pairs))
        broken = list(pairs)
        v = rnd.randint(0, 1)
        broken[k] = (v, v)
        assert not code_valid(evaluate_two_rail_tree(broken))

    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_network_matches_behavioural(self, n):
        net = two_rail_checker_network(n)
        for bits in itertools.product((0, 1), repeat=2 * n):
            assign = {
                f"a{i}_{r}": bits[2 * i + r] for i in range(n) for r in (0, 1)
            }
            pairs = [(bits[2 * i], bits[2 * i + 1]) for i in range(n)]
            assert net.output_values(assign) == evaluate_two_rail_tree(pairs)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            two_rail_checker_network(0)
        with pytest.raises(ValueError):
            evaluate_two_rail_tree([])


class TestScalChecker:
    def test_healthy_alternating_outputs_pass(self):
        chk = ScalDualRailChecker(4)
        code = chk.feed_pair([1, 0, 0, 1], [0, 1, 1, 0])
        assert code_valid(code)

    def test_any_nonalternating_line_caught(self):
        chk = ScalDualRailChecker(4)
        for k in range(4):
            first = [1, 0, 0, 1]
            second = [0, 1, 1, 0]
            second[k] = first[k]  # line k fails to alternate
            assert not code_valid(chk.feed_pair(first, second))

    def test_costs(self):
        chk = ScalDualRailChecker(9)
        assert chk.gate_cost() == 48
        assert chk.flip_flop_cost() == 9

    def test_width_mismatch(self):
        chk = ScalDualRailChecker(2)
        with pytest.raises(ValueError):
            chk.feed_pair([1], [0, 1])


class TestAlternatingOutputStage:
    def test_valid_code_alternates(self):
        assert alternating_output_stage((1, 0), 0) == 1
        assert alternating_output_stage((1, 0), 1) == 0

    def test_invalid_code_constant(self):
        for phase in (0, 1):
            assert alternating_output_stage((1, 1), phase) == 0
            assert alternating_output_stage((0, 0), phase) == 0
