"""Tests for conditions A-E and the Corollary 3.2 relaxation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conditions import (
    condition_a,
    condition_d,
    condition_e,
    corollary_3_1_formula,
    corollary_3_2,
)
from repro.core.simulate import ScalSimulator
from repro.logic.evaluate import line_tables
from repro.logic.faults import StuckAt
from repro.logic.gates import GateKind
from repro.logic.network import NetworkBuilder
from repro.logic.parse import parse_expression
from repro.workloads.fig34 import fig34_network
from repro.workloads.randomlogic import random_alternating_network, random_mixed_network


class TestConditionA:
    def test_inputs_alternate(self):
        net = parse_expression("a b | b c | a c", inputs=["a", "b", "c"])
        tables = line_tables(net)
        for inp in net.inputs:
            assert condition_a(tables, inp)

    def test_inverter_of_input_alternates(self):
        b = NetworkBuilder(["a", "b", "c"])
        an = b.add("an", GateKind.NOT, ["a"])
        b.add("f", GateKind.MAJ, [an, "b", "c"])
        net = b.build(["f"])
        assert condition_a(line_tables(net), "an")

    def test_and_gate_does_not_alternate(self):
        net = fig34_network()
        tables = line_tables(net)
        assert not condition_a(tables, "nab")
        assert not condition_a(tables, "or_ab")


class TestConditionD:
    def test_line_beside_alternating_input(self):
        """g = AND(a,b) feeds a NAND together with input c (alternating)."""
        b = NetworkBuilder(["a", "b", "c"])
        g = b.add("g", GateKind.AND, ["a", "b"])
        b.add("f", GateKind.NAND, [g, "c"])
        net = b.build(["f"])
        assert condition_d(net, line_tables(net), "g")

    def test_rejected_for_xor_destination(self):
        b = NetworkBuilder(["a", "b", "c"])
        g = b.add("g", GateKind.AND, ["a", "b"])
        b.add("f", GateKind.XOR, [g, "c"])
        net = b.build(["f"])
        assert not condition_d(net, line_tables(net), "g")

    def test_rejected_when_fanout(self):
        b = NetworkBuilder(["a", "b", "c"])
        g = b.add("g", GateKind.AND, ["a", "b"])
        b.add("f1", GateKind.NAND, [g, "c"])
        b.add("f2", GateKind.NAND, [g, "c"])
        net = b.build(["f1", "f2"])
        assert not condition_d(net, line_tables(net), "g")

    def test_rejected_without_alternating_co_input(self):
        b = NetworkBuilder(["a", "b", "c", "d"])
        g = b.add("g", GateKind.AND, ["a", "b"])
        h = b.add("h", GateKind.AND, ["c", "d"])
        b.add("f", GateKind.NAND, [g, h])
        net = b.build(["f"])
        assert not condition_d(net, line_tables(net), "g")

    def test_soundness_when_it_holds(self):
        """Condition D (restricted form) must imply oracle security: the
        fig3.4 line ``nab_n`` (= A·B) feeds one NAND alongside the
        alternating input C, inside a genuinely alternating network."""
        net = fig34_network()
        tables = line_tables(net)
        assert condition_d(net, tables, "nab_n")
        sim = ScalSimulator(net)
        for value in (0, 1):
            resp = sim.response(StuckAt("nab_n", value))
            assert resp.violations.is_zero()


class TestConditionE:
    def test_exact_on_fig34(self):
        net = fig34_network()
        tables = line_tables(net)
        res_nab = condition_e(net, "nab", "F2", tables)
        assert not res_nab.holds
        assert not res_nab.violations_s0.is_zero()
        assert res_nab.violations_s1.is_zero()
        res_or = condition_e(net, "or_ab", "F2", tables)
        assert not res_or.holds
        # Only the s/0 direction violates (like the thesis's line 20).
        assert not res_or.violations_s0.is_zero()
        assert res_or.violations_s1.is_zero()

    def test_holds_for_safe_line(self):
        net = fig34_network()
        tables = line_tables(net)
        assert condition_e(net, "g2", "F2", tables).holds

    @settings(max_examples=20, deadline=None)
    @given(st.randoms(use_true_random=False))
    def test_matches_oracle_single_output(self, rnd):
        """Condition E's violation masks equal the oracle's, line by line,
        for single-output self-dual networks."""
        net = random_alternating_network(rnd, 3)
        out = net.outputs[0]
        tables = line_tables(net)
        sim = ScalSimulator(net)
        for line in net.lines():
            if line == out:
                continue
            res = condition_e(net, line, out, tables)
            for value, mask in ((0, res.violations_s0), (1, res.violations_s1)):
                resp = sim.response(StuckAt(line, value))
                joined = mask | mask.co_reflect()
                assert joined.bits == resp.violations.bits, (line, value)

    @settings(max_examples=20, deadline=None)
    @given(st.randoms(use_true_random=False))
    def test_corollary_formula_agrees(self, rnd):
        """The literal Corollary 3.1 product formula agrees with the
        semantic condition E on self-dual networks."""
        net = random_alternating_network(rnd, 3)
        out = net.outputs[0]
        tables = line_tables(net)
        for line in net.lines():
            if line == out:
                continue
            res = condition_e(net, line, out, tables)
            assert res.holds == corollary_3_1_formula(net, line, out, tables)


class TestCorollary32:
    def test_nab_rescued_by_f3(self):
        net = fig34_network()
        tables = line_tables(net)
        e_res = condition_e(net, "nab", "F2", tables)
        assert corollary_3_2(net, "nab", "F2", e_res, tables)

    def test_or_ab_not_rescued(self):
        net = fig34_network()
        tables = line_tables(net)
        e_res = condition_e(net, "or_ab", "F2", tables)
        assert not corollary_3_2(net, "or_ab", "F2", e_res, tables)

    def test_trivially_true_with_no_violations(self):
        net = fig34_network()
        tables = line_tables(net)
        e_res = condition_e(net, "g2", "F2", tables)
        assert corollary_3_2(net, "g2", "F2", e_res, tables)
