"""Tests for the structural PODEM generator (repro.core.atpg)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.atpg import Podem, structural_test_summary
from repro.logic.evaluate import line_tables, outputs_with_fault
from repro.logic.faults import PinStuckAt, StuckAt, enumerate_stem_faults
from repro.logic.parse import parse_expression
from repro.workloads.fig34 import fig34_network
from repro.workloads.randomlogic import random_mixed_network


class TestGenerateTest:
    def test_majority_all_faults_tested(self):
        net = parse_expression("a b | b c | a c", inputs=["a", "b", "c"])
        summary = structural_test_summary(net)
        assert summary["untested"] == 0
        assert summary["tested"] == summary["faults"]

    def test_redundant_fault_untestable(self):
        net = parse_expression("a b | a' c | b c", inputs=["a", "b", "c"])
        from repro.logic.gates import GateKind

        bc_line = next(
            g.name
            for g in net.gates
            if g.kind is GateKind.AND and set(g.inputs) == {"b", "c"}
        )
        podem = Podem(net)
        # The consensus term s-a-0 is the classic undetectable fault.
        assert podem.generate_test(StuckAt(bc_line, 0)) is None
        assert podem.generate_test(StuckAt(bc_line, 1)) is not None

    @settings(max_examples=20, deadline=None)
    @given(st.randoms(use_true_random=False))
    def test_sound_and_complete_vs_truth_tables(self, rnd):
        """Every PODEM test detects (soundness); every truth-table-
        testable fault gets a test (completeness within budget)."""
        net = random_mixed_network(rnd, 4, rnd.randint(3, 8))
        podem = Podem(net)
        normal = line_tables(net)
        for fault in enumerate_stem_faults(net):
            faulty = line_tables(net, fault)
            testable = any(
                (normal[o] ^ faulty[o]).bits for o in net.outputs
            )
            test = podem.generate_test(fault)
            if test is not None:
                good = net.output_values(test)
                bad = outputs_with_fault(net, test, fault)
                assert good != bad, fault.describe()
            assert (test is not None) == testable, fault.describe()

    def test_pin_fault(self, fig34):
        podem = Podem(fig34)
        fault = PinStuckAt("F3", 0, 1)  # the nab branch into F3
        test = podem.generate_test(fault)
        assert test is not None
        assert fig34.output_values(test) != outputs_with_fault(
            fig34, test, fault
        )


class TestAlternatingTests:
    def test_nab_pair_detects_by_nonalternation(self, fig34):
        from repro.core.simulate import ScalSimulator

        podem = Podem(fig34)
        pair = podem.generate_alternating_test(StuckAt("nab", 0))
        assert pair is not None
        resp = ScalSimulator(fig34).response(StuckAt("nab", 0))
        assert resp.detected.value(pair[0]) == 1

    def test_or_ab_s0_has_no_alternating_test_on_f2_alone(self):
        """The line-20 pathology: every vector that flips F2 flips it in
        both periods when only F2 is observed, so no alternating test
        exists for the single-output view."""
        fig34 = fig34_network()
        f2_only = fig34.with_outputs(["F2"])
        podem = Podem(f2_only)
        assert podem.generate_alternating_test(StuckAt("or_ab", 0)) is None

    def test_or_ab_s0_found_with_all_outputs(self, fig34):
        """With F3 observed too, the nab-style rescue applies — hmm, no:
        or_ab reaches only F2, so the pair stays undetectable; the
        generator must agree with the oracle and return None."""
        podem = Podem(fig34)
        assert podem.generate_alternating_test(StuckAt("or_ab", 0)) is None

    @settings(max_examples=10, deadline=None)
    @given(st.randoms(use_true_random=False))
    def test_pairs_agree_with_oracle(self, rnd):
        from repro.core.simulate import ScalSimulator
        from repro.workloads.randomlogic import random_alternating_network

        net = random_alternating_network(rnd, 3)
        podem = Podem(net)
        sim = ScalSimulator(net)
        for fault in enumerate_stem_faults(net, include_inputs=False):
            pair = podem.generate_alternating_test(fault)
            if pair is not None:
                resp = sim.response(fault)
                assert resp.detected.value(pair[0]) == 1, fault.describe()
