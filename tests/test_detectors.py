"""Tests for the 0101 detector workload (repro.workloads.detectors)."""

import random

from repro.workloads.detectors import (
    THESIS_COSTS,
    kohavi_0101,
    kohavi_circuit,
    pattern_positions,
    reference_outputs,
    reynolds_0101,
    translator_0101,
)


class TestStateTable:
    def test_matches_pattern_oracle(self):
        rnd = random.Random(17)
        for _ in range(20):
            bits = [rnd.randint(0, 1) for _ in range(30)]
            z = reference_outputs(bits)
            assert [i for i, v in enumerate(z) if v] == pattern_positions(bits)

    def test_overlapping_detection(self):
        bits = [0, 1, 0, 1, 0, 1]
        assert reference_outputs(bits) == [0, 0, 0, 1, 0, 1]


class TestThreeImplementations:
    def test_all_equivalent(self):
        rnd = random.Random(23)
        machine = kohavi_0101()
        kohavi = kohavi_circuit()
        reynolds = reynolds_0101()
        translator = translator_0101()
        for _ in range(3):
            bits = [rnd.randint(0, 1) for _ in range(40)]
            vectors = [(b,) for b in bits]
            reference = machine.run(vectors)
            assert kohavi.run_symbols(vectors) == reference
            rr = reynolds.run(vectors)
            assert not rr.detected
            assert reynolds.decoded_outputs(rr) == reference
            tr = translator.run(vectors)
            assert not tr.detected
            assert translator.decoded_outputs(tr) == reference

    def test_flip_flop_counts_match_table_4_1(self):
        assert kohavi_circuit().circuit.flip_flop_count() == THESIS_COSTS["kohavi"][0]
        assert reynolds_0101().flip_flop_count() == THESIS_COSTS["reynolds"][0]
        assert translator_0101().flip_flop_count() == THESIS_COSTS["translator"][0]

    def test_scal_variants_cost_more_gates_than_plain(self):
        m = kohavi_circuit().circuit.gate_count()
        assert reynolds_0101().gate_count() > m
        assert translator_0101().gate_count() > m


class TestFaultInjectionEndToEnd:
    def test_reynolds_detects_comb_faults(self):
        from repro.logic.faults import enumerate_stem_faults

        rnd = random.Random(31)
        machine = kohavi_0101()
        reynolds = reynolds_0101()
        vectors = [(rnd.randint(0, 1),) for _ in range(40)]
        reference = machine.run(vectors)
        for fault in enumerate_stem_faults(
            reynolds.circuit.network, include_inputs=False
        ):
            run = reynolds.run(vectors, fault=fault)
            if reynolds.decoded_outputs(run) != reference:
                assert run.detected, fault.describe()
