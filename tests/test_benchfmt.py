"""Tests for the ISCAS .bench format (repro.logic.benchfmt)."""

import os

import pytest

from repro.logic.benchfmt import (
    BenchFormatError,
    load_bench,
    parse_bench,
    save_bench,
    write_bench,
)
from repro.logic.evaluate import functionally_equivalent, network_function
from repro.workloads.fig34 import fig34_network

SAMPLE = """
# a majority gate
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(f)

n1 = NAND(a, b)
n2 = NAND(b, c)
n3 = NAND(a, c)
f = NAND(n1, n2, n3)
"""


class TestParse:
    def test_sample(self):
        net = parse_bench(SAMPLE, name="maj")
        assert net.inputs == ("a", "b", "c")
        assert net.outputs == ("f",)
        assert net.gate_count() == 4
        table = network_function(net)
        assert table.is_self_dual()  # majority

    def test_comments_and_blank_lines_ignored(self):
        net = parse_bench("INPUT(x)\n# hi\n\nOUTPUT(y)\ny = NOT(x) # inline\n")
        assert net.output_values({"x": 0}) == (1,)

    def test_inv_and_buff_aliases(self):
        net = parse_bench(
            "INPUT(x)\nOUTPUT(z)\ny = INV(x)\nz = BUFF(y)\n"
        )
        assert net.output_values({"x": 1}) == (0,)

    def test_unknown_gate_rejected(self):
        with pytest.raises(BenchFormatError):
            parse_bench("INPUT(x)\nOUTPUT(y)\ny = FROB(x)\n")

    def test_garbage_rejected(self):
        with pytest.raises(BenchFormatError):
            parse_bench("INPUT(x)\nOUTPUT(y)\nthis is not a gate\n")

    def test_missing_outputs_rejected(self):
        with pytest.raises(BenchFormatError):
            parse_bench("INPUT(x)\ny = NOT(x)\n")


class TestRoundTrip:
    def test_fig34_round_trips(self, fig34):
        text = write_bench(fig34, header="figure 3.4 reconstruction")
        back = parse_bench(text, name="fig3.4")
        assert functionally_equivalent(fig34, back)
        assert back.gate_count() == fig34.gate_count()

    def test_header_in_output(self, fig34):
        text = write_bench(fig34, header="hello")
        assert text.startswith("# hello")

    def test_file_round_trip(self, tmp_path, fig34):
        path = os.path.join(tmp_path, "fig34.bench")
        save_bench(fig34, path)
        loaded = load_bench(path)
        assert functionally_equivalent(fig34, loaded)
        assert loaded.name == "fig34"


class TestAnalysisOnParsedCircuits:
    def test_scal_analysis_of_bench_text(self):
        from repro.core import analyze_network

        net = parse_bench(SAMPLE, name="maj")
        assert analyze_network(net).is_self_checking
