"""Tests for the XOR-tree checkers (Theorem 5.1, Table 5.1)."""

import pytest

from repro.checkers.xorchk import (
    check_pair,
    dual_rail_output_stage,
    even_input_checker_pair,
    evaluate_xor_checker,
    xor_checker_gate_cost,
    xor_checker_network,
)
from repro.logic.evaluate import line_tables
from repro.logic.gates import GateKind


class TestNetworkStructure:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 8, 9, 16])
    def test_every_gate_odd_arity(self, n):
        net = xor_checker_network(n)
        for gate in net.gates:
            if gate.kind is GateKind.XOR:
                assert len(gate.inputs) % 2 == 1, gate

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5, 8, 9])
    def test_theorem_5_1_all_lines_alternate(self, n):
        """Every line of the tree is a self-dual function of the checked
        lines + clock — Theorem 5.1's invariant, which by Theorem 3.6
        makes the checker self-checking with respect to all its lines."""
        net = xor_checker_network(n)
        tables = line_tables(net)
        for gate in net.gates:
            assert tables[gate.name].is_self_dual(), gate.name

    def test_fan_in_respected(self):
        net = xor_checker_network(9, fan_in=3)
        for gate in net.gates:
            assert len(gate.inputs) <= 3

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            xor_checker_network(0)
        with pytest.raises(ValueError):
            xor_checker_network(3, fan_in=1)

    def test_gate_cost_grows_logarithmically(self):
        assert xor_checker_gate_cost(3) <= xor_checker_gate_cost(9)
        assert xor_checker_gate_cost(9) <= 5


class TestDetectionSemantics:
    def test_healthy_pair_valid(self):
        first = [1, 0, 1, 1]
        second = [0, 1, 0, 0]
        assert check_pair(first, second).valid

    def test_one_stuck_line_detected(self):
        """Table 5.1 row (1 stuck, 0 incorrect): fault detected."""
        first = [1, 0, 1, 1]
        second = [0, 1, 0, 1]  # line 3 stuck at 1
        assert not check_pair(first, second).valid

    def test_two_stuck_lines_missed(self):
        """Table 5.1 row (2 stuck, 0 incorrect): fault NOT detected —
        the even-flip blindness that bans dependent inputs."""
        first = [1, 0, 1, 1]
        second = [0, 1, 1, 1]  # lines 2 and 3 stuck
        assert check_pair(first, second).valid

    def test_three_stuck_lines_detected(self):
        first = [1, 0, 1, 1]
        second = [0, 1, 1, 1]
        second[0] = first[0]  # third stuck line
        assert not check_pair(first, second).valid

    def test_odd_width_healthy(self):
        first = [1, 0, 1]
        second = [0, 1, 0]
        assert check_pair(first, second).valid

    def test_single_line_checker(self):
        assert check_pair([1], [0]).valid
        assert not check_pair([1], [1]).valid


class TestOutputStages:
    def test_dual_rail_stage(self):
        verdict = check_pair([1, 0], [0, 1])
        rails = dual_rail_output_stage(verdict)
        assert rails[0] != rails[1]

    def test_even_input_variant_code_space(self):
        """Figure 5.2c: only (0, 1) is a code word."""
        first = [1, 0, 1, 1]
        second = [0, 1, 0, 0]
        code = even_input_checker_pair(first, second)
        assert code == (evaluate_xor_checker(first + [0], 0),
                        evaluate_xor_checker(second + [1], 1))

    def test_evaluate_is_parity(self):
        assert evaluate_xor_checker([1, 1, 0], 0) == 0
        assert evaluate_xor_checker([1, 0, 0], 1) == 1


class TestNetworkDetection:
    def test_gate_level_alternation(self):
        """Drive the gate-level tree with an alternating snapshot pair
        and verify the output alternates; break one line and it stops."""
        net = xor_checker_network(4)
        out = net.outputs[0]

        def output_for(values, phi):
            assign = {f"x{i}": v for i, v in enumerate(values)}
            assign["phi"] = phi
            return net.output_values(assign)[0]

        first = [1, 0, 1, 1]
        second = [0, 1, 0, 0]
        assert output_for(first, 0) != output_for(second, 1)
        stuck = list(second)
        stuck[2] = first[2]
        assert output_for(first, 0) == output_for(stuck, 1)
