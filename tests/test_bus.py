"""Tests for the encoded bus and code-reply peripherals (repro.system.bus)."""

import random

import pytest

from repro.system.bus import BusFault, BusSystem, EncodedBus, Peripheral


class TestEncodedBus:
    def test_healthy_transfer(self):
        bus = EncodedBus(4)
        data, parity_bit = bus.transfer([1, 0, 1, 1])
        assert data == [1, 0, 1, 1]
        assert parity_bit == 1  # three ones -> odd -> parity bit 1

    def test_stuck_data_line(self):
        bus = EncodedBus(4)
        bus.inject(BusFault(0, 0))
        data, _parity = bus.transfer([1, 0, 1, 1])
        assert data[0] == 0

    def test_stuck_parity_line(self):
        bus = EncodedBus(4)
        bus.inject(BusFault(4, 0))
        _data, parity_bit = bus.transfer([1, 0, 0, 0])
        assert parity_bit == 0

    def test_line_out_of_range(self):
        bus = EncodedBus(4)
        with pytest.raises(ValueError):
            bus.inject(BusFault(9, 0))

    def test_width_mismatch(self):
        bus = EncodedBus(4)
        with pytest.raises(ValueError):
            bus.transfer([1, 0])


class TestPeripheral:
    def test_accepts_valid_word(self):
        device = Peripheral("printer")
        result = device.accept([1, 0, 1], 0)
        assert result.acknowledged
        assert device.received == [(1, 0, 1)]

    def test_rejects_corrupted_word(self):
        device = Peripheral("printer")
        result = device.accept([1, 0, 1], 1)
        assert not result.acknowledged
        assert result.reply == (0, 1)
        assert device.received == []


class TestBusSystem:
    def test_healthy_round_trip(self):
        system = BusSystem(4)
        result = system.send([0, 1, 1, 0])
        assert result.acknowledged
        assert system.peripheral.received[-1] == (0, 1, 1, 0)

    def test_fault_sweep_no_dangerous(self):
        """The Figure 7.1 claim: code replies assure correct transfer —
        no single bus-line fault delivers wrong data with a positive
        reply."""
        rnd = random.Random(19)
        system = BusSystem(6)
        words = [
            [rnd.randint(0, 1) for _ in range(6)] for _ in range(16)
        ]
        outcome = system.fault_sweep(words)
        assert outcome["dangerous"] == 0
        assert outcome["detected"] > 0

    def test_sweep_buckets(self):
        system = BusSystem(3)
        words = [[0, 0, 0], [1, 1, 1], [1, 0, 1]]
        outcome = system.fault_sweep(words)
        total = sum(outcome.values())
        assert total == (3 + 1) * 2  # every line, both polarities
