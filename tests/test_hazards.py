"""Tests for static hazard analysis (repro.logic.hazards)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.redundancy import line_testability
from repro.logic.hazards import (
    analyze_hazards,
    consensus_demo_table,
    hazard_free_cover,
    static_1_hazards,
)
from repro.logic.synthesis import cover_to_table, minimize, sop_network
from repro.logic.truthtable import TruthTable

tables = st.integers(min_value=2, max_value=4).flatmap(
    lambda n: st.builds(
        TruthTable,
        st.just(n),
        st.integers(min_value=0, max_value=(1 << (1 << n)) - 1),
    )
)


class TestTextbookCase:
    def test_minimal_cover_has_the_classic_hazard(self):
        table = consensus_demo_table()
        cover = minimize(table)
        hazards = static_1_hazards(cover, table)
        assert hazards
        # The hazard toggles variable a (index 0) at b = c = 1.
        assert any(h.variable == 0 for h in hazards)

    def test_consensus_fix(self):
        table = consensus_demo_table()
        report = analyze_hazards(table)
        assert report.minimal_hazards > 0
        assert report.redundant_terms_added == 1  # the bc term
        free = hazard_free_cover(table)
        assert not static_1_hazards(free, table)

    def test_consensus_term_is_the_theorem_3_4_redundancy(self):
        """The hazard fix creates exactly the one-direction-redundant
        line the thesis's irredundancy premise excludes."""
        table = consensus_demo_table()
        free = hazard_free_cover(table)
        net = _cover_network(free, table)
        # Find a product line whose s-a-0 is unobservable.
        one_direction = [
            line
            for line in net.lines()
            if not net.is_input(line)
            and line not in net.outputs
            and line_testability(net, line).one_direction_only is not None
        ]
        assert one_direction  # the added consensus product


def _cover_network(cover, table):
    from repro.logic.gates import GateKind
    from repro.logic.network import NetworkBuilder

    names = [f"x{i}" for i in range(table.n)]
    builder = NetworkBuilder(names, name="hazard_net")
    inverted = {}
    products = []
    for k, imp in enumerate(cover):
        sources = []
        for var, pol in imp.literals(table.n):
            if pol:
                sources.append(names[var])
            else:
                if names[var] not in inverted:
                    inverted[names[var]] = builder.add(
                        f"{names[var]}_n", GateKind.NOT, [names[var]]
                    )
                sources.append(inverted[names[var]])
        products.append(builder.add(f"p{k}", GateKind.AND, sources))
    builder.add("F", GateKind.OR, products)
    return builder.build(["F"])


class TestProperties:
    @settings(max_examples=40, deadline=None)
    @given(tables)
    def test_hazard_free_cover_is_equivalent_and_clean(self, table):
        free = hazard_free_cover(table)
        assert cover_to_table(free, table.n).bits == table.bits
        assert not static_1_hazards(free, table)

    @settings(max_examples=40, deadline=None)
    @given(tables)
    def test_report_consistent(self, table):
        report = analyze_hazards(table)
        assert report.hazard_free_products >= report.minimal_products
        assert report.testability_cost == report.redundant_terms_added
        if report.minimal_hazards == 0:
            assert report.redundant_terms_added == 0
