"""Tests for sequential fault campaigns (repro.scal.verify)."""

from repro.scal.codeconv import to_code_conversion
from repro.scal.dualff import to_dual_flipflop
from repro.scal.verify import (
    codeconv_campaign,
    dualff_campaign,
    random_vectors,
)
from repro.workloads.detectors import kohavi_0101


class TestDualffCampaign:
    def test_fault_secure(self, detector):
        machine = to_dual_flipflop(detector)
        vectors = random_vectors(detector, 40, seed=1)
        result = dualff_campaign(machine, vectors)
        assert result.is_fault_secure, result.dangerous_faults
        assert result.detected > 0
        assert result.total == result.detected + result.silent

    def test_latency_reported(self, detector):
        machine = to_dual_flipflop(detector)
        result = dualff_campaign(machine, random_vectors(detector, 40, 2))
        assert result.mean_detection_latency is not None
        assert result.mean_detection_latency >= 0

    def test_flip_flop_faults_included(self, detector):
        machine = to_dual_flipflop(detector)
        vectors = random_vectors(detector, 30, 3)
        with_ffs = dualff_campaign(machine, vectors, include_flip_flops=True)
        without = dualff_campaign(machine, vectors, include_flip_flops=False)
        assert with_ffs.total > without.total

    def test_summary_text(self, detector):
        machine = to_dual_flipflop(detector)
        text = dualff_campaign(machine, random_vectors(detector, 20, 4)).summary()
        assert "DANGEROUS 0" in text


class TestCodeconvCampaign:
    def test_fault_secure(self, detector):
        machine = to_code_conversion(detector)
        vectors = random_vectors(detector, 40, seed=5)
        result = codeconv_campaign(machine, vectors)
        assert result.is_fault_secure, result.dangerous_faults
        assert result.detected > 0

    def test_covers_all_units(self, detector):
        machine = to_code_conversion(detector)
        vectors = random_vectors(detector, 30, seed=6)
        # Raw universe: comb stems + 2*(5w+4) alpt + 2*(5w+3) palt +
        # memory faults.
        raw = codeconv_campaign(machine, vectors, collapse=False)
        assert raw.total > 100
        # Collapsed default sweeps fewer runs but keeps the verdict.
        collapsed = codeconv_campaign(machine, vectors)
        assert 0 < collapsed.total <= raw.total
        assert collapsed.is_fault_secure == raw.is_fault_secure


class TestRandomVectors:
    def test_deterministic(self, detector):
        assert random_vectors(detector, 10, 7) == random_vectors(detector, 10, 7)

    def test_width_matches_machine(self, detector):
        vectors = random_vectors(detector, 5, 8)
        assert all(len(v) == detector.n_inputs for v in vectors)
