"""Determinism of the sampled backend and the sweep drivers.

One seed must name one sample set and one verdict list — across two
fresh backend instances in one process, and across the FaultSweep's
serial vs fork-worker paths.  Without this, a nightly fuzz failure
could not be replayed from its artifact alone.
"""

import random

import pytest

from repro.engine import FaultSweep, NetworkEngine
from repro.logic.faults import enumerate_stem_faults
from repro.qa import PROPERTIES, run_property
from repro.workloads.fig34 import fig34_network, fig37_fixed_network
from repro.workloads.randomlogic import (
    random_mixed_network,
    random_sample_points,
)

CIRCUITS = {
    "fig34": fig34_network,
    "fig37_fixed": fig37_fixed_network,
    "random17": lambda: random_mixed_network(random.Random(17), 4, 8),
}


def _sampled_campaign(network, seed):
    """A full seeded sampled campaign on entirely fresh state."""
    n = len(network.inputs)
    rng = random.Random(seed)
    points = random_sample_points(rng, n, min(8, 1 << n))
    engine = NetworkEngine(network)
    verdicts = [
        (fault.describe(), tuple(engine.sampled.output_vectors(points, fault)))
        for fault in enumerate_stem_faults(network)
    ]
    return points, verdicts


@pytest.mark.parametrize("label", sorted(CIRCUITS))
def test_same_seed_same_sample_set_and_verdicts(label):
    network = CIRCUITS[label]()
    first = _sampled_campaign(network, seed=99)
    second = _sampled_campaign(network, seed=99)
    assert first == second


def test_different_seeds_differ_somewhere():
    # A 4-input net samples 8 of 16 points, so distinct seeds can pick
    # distinct sets (a 3-input net would always sample everything).
    network = CIRCUITS["random17"]()
    sets = {tuple(_sampled_campaign(network, seed=s)[0]) for s in range(4)}
    assert len(sets) > 1


@pytest.mark.parametrize("label", sorted(CIRCUITS))
def test_serial_and_forked_sweeps_agree(label):
    network = CIRCUITS[label]()
    sweep = FaultSweep(network)
    universe = sweep.single_fault_universe()
    serial = sweep.sweep(universe)
    forked = sweep.sweep(universe, processes=2)
    assert serial == forked


def test_run_property_is_replayable():
    """The registered determinism property replays bit-for-bit."""
    prop = PROPERTIES["sampled-determinism"]
    first = run_property(prop, seed=5, trials=2)
    second = run_property(prop, seed=5, trials=2)
    assert first.ok and second.ok
    assert first.trials == second.trials
