"""Tests for state minimization (repro.seq.minimize)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.seq.machine import single_input_table
from repro.seq.minimize import equivalence_classes, is_minimal, minimize_machine
from repro.workloads.detectors import kohavi_0101
from repro.workloads.randomlogic import random_machine


def machine_with_duplicate_states():
    """Q1 and Q2 are equivalent (identical rows up to each other)."""
    rows = {
        "Q0": {0: ("Q1", 0), 1: ("Q2", 1)},
        "Q1": {0: ("Q0", 1), 1: ("Q1", 0)},
        "Q2": {0: ("Q0", 1), 1: ("Q2", 0)},
    }
    return single_input_table("dup", rows, "Q0")


class TestEquivalenceClasses:
    def test_duplicate_states_merge(self):
        machine = machine_with_duplicate_states()
        blocks = equivalence_classes(machine)
        assert len(blocks) == 2
        assert any(set(b) == {"Q1", "Q2"} for b in blocks)

    def test_kohavi_detector_is_minimal(self, detector):
        assert is_minimal(detector)

    def test_distinct_outputs_never_merge(self):
        rows = {
            "A": {0: ("A", 0), 1: ("B", 0)},
            "B": {0: ("A", 1), 1: ("B", 1)},
        }
        machine = single_input_table("m", rows, "A")
        assert len(equivalence_classes(machine)) == 2


class TestMinimizeMachine:
    def test_reduced_size(self):
        machine = machine_with_duplicate_states()
        reduced = minimize_machine(machine)
        assert len(reduced.states) == 2
        assert is_minimal(reduced)

    @settings(max_examples=20, deadline=None)
    @given(st.randoms(use_true_random=False))
    def test_behavioural_equivalence(self, rnd):
        machine = random_machine(rnd, rnd.randint(2, 6))
        reduced = minimize_machine(machine)
        stream = [(rnd.randint(0, 1),) for _ in range(40)]
        assert reduced.run(stream) == machine.run(stream)

    @settings(max_examples=15, deadline=None)
    @given(st.randoms(use_true_random=False))
    def test_idempotent(self, rnd):
        machine = random_machine(rnd, rnd.randint(2, 6))
        once = minimize_machine(machine)
        twice = minimize_machine(once)
        assert len(once.states) == len(twice.states)
        assert is_minimal(once)

    def test_initial_state_mapped(self):
        machine = machine_with_duplicate_states()
        reduced = minimize_machine(machine)
        assert reduced.initial_state in reduced.states


class TestPipelineWithSynthesis:
    def test_minimize_then_synthesize(self):
        from repro.seq.synthesis import synthesize_machine

        machine = machine_with_duplicate_states()
        reduced = minimize_machine(machine)
        synth = synthesize_machine(reduced)
        rnd = random.Random(3)
        stream = [(rnd.randint(0, 1),) for _ in range(30)]
        assert synth.run_symbols(stream) == machine.run(stream)

    def test_fewer_states_fewer_flip_flops(self):
        from repro.seq.synthesis import synthesize_machine

        machine = machine_with_duplicate_states()
        full = synthesize_machine(machine)
        reduced = synthesize_machine(minimize_machine(machine))
        assert (
            reduced.circuit.flip_flop_count()
            <= full.circuit.flip_flop_count()
        )
