"""Tests for the Table 4.1 cost model (repro.scal.costs)."""

import pytest

from repro.logic.gates import GateKind
from repro.logic.network import NetworkBuilder
from repro.scal.costs import (
    GATE_INPUT_COST,
    GATE_UNIT_COSTS,
    REYNOLDS_COST_FACTOR,
    THESIS_TABLE_4_1,
    cost_factor,
    kohavi_general,
    measured_cost,
    network_cost,
    render_cost_table,
    reynolds_general,
    translator_general,
)
from repro.workloads.detectors import (
    THESIS_COSTS,
    kohavi_circuit,
    reynolds_0101,
    translator_0101,
)


class TestGeneralFormulas:
    def test_kohavi(self):
        row = kohavi_general(2, 12)
        assert (row.flip_flops, row.gates) == (2, 12)

    def test_reynolds_doubles_flip_flops(self):
        row = reynolds_general(2, 12)
        assert row.flip_flops == 4
        assert row.gates == pytest.approx(1.8 * 12)

    def test_translator_saves_flip_flops(self):
        row = translator_general(2, 12)
        assert row.flip_flops == 3
        assert row.gates == pytest.approx(1.8 * 12 + 2 + 2)

    def test_translator_always_cheaper_in_ffs(self):
        # n+1 < 2n for every n >= 2 (equal at n = 1).
        for n in range(2, 10):
            assert translator_general(n, 10).flip_flops < reynolds_general(
                n, 10
            ).flip_flops
        assert (
            translator_general(1, 10).flip_flops
            == reynolds_general(1, 10).flip_flops
        )

    def test_thesis_table_rows(self):
        by_name = {r.approach: r for r in THESIS_TABLE_4_1}
        assert by_name["Kohavi example"].flip_flops == 2
        assert by_name["Reynolds example"].gates == 19
        assert by_name["Translator example"].flip_flops == 3


class TestMeasuredCosts:
    def test_measured_shape_matches_table_4_1(self):
        """The thesis's qualitative claims hold for our synthesized
        detectors: dual-FF doubles flip-flops; the translator uses n+1;
        both SCAL variants cost more gates than the plain machine."""
        kohavi = kohavi_circuit()
        reynolds = reynolds_0101()
        translator = translator_0101()
        n = kohavi.circuit.flip_flop_count()
        m = kohavi.circuit.gate_count()
        assert reynolds.flip_flop_count() == 2 * n
        assert translator.flip_flop_count() == n + 1
        assert reynolds.gate_count() > m
        assert translator.gate_count() > m

    def test_measured_cost_extractor(self):
        kohavi = kohavi_circuit()
        row = measured_cost(
            "kohavi", kohavi.circuit.flip_flop_count(), kohavi.circuit.network
        )
        assert row.flip_flops == THESIS_COSTS["kohavi"][0]
        assert row.gate_inputs is not None


class TestNetworkCost:
    """Pin the per-gate cost model the synthesis Pareto front ranks by."""

    def test_unit_costs_are_pinned(self):
        free = {GateKind.INPUT, GateKind.CONST0, GateKind.CONST1, GateKind.BUF}
        for kind in GateKind:
            expected = 0.0 if kind in free else 1.0
            assert GATE_UNIT_COSTS[kind] == expected, kind
        assert GATE_INPUT_COST == pytest.approx(0.1)

    def test_cost_charges_gates_and_extra_inputs(self):
        builder = NetworkBuilder(["a", "b", "c"], name="costed")
        builder.add("g1", GateKind.AND, ["a", "b"])  # 1 + 0.1
        builder.add("g2", GateKind.NOT, ["g1"])  # 1 + 0 extra inputs
        builder.add("g3", GateKind.MAJ, ["g2", "b", "c"])  # 1 + 0.2
        builder.add("y", GateKind.BUF, ["g3"])  # free wrapper
        net = builder.build(["y"])
        assert network_cost(net) == pytest.approx(3.3)

    def test_buffers_and_inputs_are_free(self):
        builder = NetworkBuilder(["a"], name="wires")
        builder.add("w1", GateKind.BUF, ["a"])
        builder.add("w2", GateKind.BUF, ["w1"])
        net = builder.build(["w2"])
        assert network_cost(net) == 0.0

    def test_cost_tracks_the_table_41_gate_counts(self):
        """On buffer-free unit-fanin-2 networks the model degenerates to
        gates + 0.1*gate_inputs' — the same ledger measured_cost reads,
        so synthesis winners and Table 4.1 rows share one currency."""
        from repro.workloads.detectors import kohavi_circuit

        net = kohavi_circuit().circuit.network
        gates = sum(
            1 for g in net.gates if GATE_UNIT_COSTS[g.kind]
        )
        extra_inputs = sum(
            max(len(g.inputs) - 1, 0)
            for g in net.gates
            if GATE_UNIT_COSTS[g.kind]
        )
        assert network_cost(net) == pytest.approx(
            gates + GATE_INPUT_COST * extra_inputs
        )


class TestHelpers:
    def test_render_table(self):
        text = render_cost_table(list(THESIS_TABLE_4_1), title="Table 4.1")
        assert "Table 4.1" in text
        assert "Translator example" in text

    def test_cost_factor(self):
        assert cost_factor(10, 18) == pytest.approx(REYNOLDS_COST_FACTOR)
        with pytest.raises(ValueError):
            cost_factor(0, 5)
