"""Tests for state-transition-graph utilities (repro.seq.stg)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.seq.machine import single_input_table
from repro.seq.minimize import minimize_machine
from repro.seq.stg import (
    distinguishing_sequence,
    final_state_after_homing,
    homing_identifies_state,
    homing_sequence,
    prune_unreachable,
    render_stg_dot,
)
from repro.workloads.detectors import kohavi_0101
from repro.workloads.machines import machine_suite
from repro.workloads.strategies import machines


class TestDot:
    def test_structure(self, detector):
        dot = render_stg_dot(detector)
        assert dot.startswith("digraph stg {")
        for state in detector.states:
            assert f'"{state}"' in dot
        assert '0/0' in dot or '"0/0"' in dot or 'label="0/0"' in dot


class TestPruning:
    def test_unreachable_state_dropped(self):
        rows = {
            "A": {0: ("A", 0), 1: ("B", 0)},
            "B": {0: ("A", 1), 1: ("B", 0)},
            "ORPHAN": {0: ("A", 0), 1: ("B", 1)},
        }
        machine = single_input_table("m", rows, "A")
        pruned = prune_unreachable(machine)
        assert "ORPHAN" not in pruned.states
        stream = [(i % 2,) for i in range(20)]
        assert pruned.run(stream) == machine.run(stream)

    def test_fully_reachable_untouched(self, detector):
        assert prune_unreachable(detector) is detector


class TestDistinguishing:
    def test_detector_states_distinguishable(self, detector):
        for a in detector.states:
            for b in detector.states:
                if a == b:
                    continue
                seq = distinguishing_sequence(detector, a, b)
                assert seq is not None, (a, b)
                outs_a = detector.run(seq, state=a)
                outs_b = detector.run(seq, state=b)
                assert outs_a != outs_b

    def test_equivalent_states_return_none(self):
        rows = {
            "A": {0: ("B", 0), 1: ("A", 0)},
            "B": {0: ("A", 0), 1: ("B", 0)},
        }
        machine = single_input_table("m", rows, "A")
        assert distinguishing_sequence(machine, "A", "B") is None


class TestHoming:
    def test_detector_has_homing_sequence(self, detector):
        seq = homing_sequence(detector)
        assert seq is not None
        assert homing_identifies_state(detector, seq)

    def test_suite_machines_home(self):
        for machine in machine_suite():
            seq = homing_sequence(machine)
            assert seq is not None, machine.name
            assert homing_identifies_state(machine, seq), machine.name

    @settings(max_examples=15, deadline=None)
    @given(machines(max_states=4))
    def test_minimal_machines_home(self, machine):
        reduced = minimize_machine(machine)
        seq = homing_sequence(reduced)
        assert seq is not None
        assert homing_identifies_state(reduced, seq)

    def test_final_state_consistency(self, detector):
        seq = homing_sequence(detector)
        for start in detector.states:
            final, response = final_state_after_homing(detector, start, seq)
            # Re-deriving from the response must give the same state.
            again, response2 = final_state_after_homing(detector, start, seq)
            assert (final, response) == (again, response2)
