"""Guard tests: every example script runs cleanly end to end."""

import os
import runpy
import sys

import pytest

EXAMPLES_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "examples"
)

SCRIPTS = sorted(
    name
    for name in os.listdir(EXAMPLES_DIR)
    if name.endswith(".py")
)


@pytest.mark.parametrize("script", SCRIPTS)
def test_example_runs(script, capsys):
    path = os.path.join(EXAMPLES_DIR, script)
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"
    lowered = out.lower()
    assert "traceback" not in lowered


def test_all_examples_present():
    expected = {
        "quickstart.py",
        "sequence_detector.py",
        "scal_computer.py",
        "minority_conversion.py",
        "checker_design.py",
        "test_generation.py",
        "design_flow.py",
        "netlist_interchange.py",
    }
    assert expected <= set(SCRIPTS)
