"""Tests for self-duality tools (repro.logic.selfdual)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.evaluate import network_function
from repro.logic.parse import parse_expression
from repro.logic.selfdual import (
    first_period_function,
    is_alternating_network,
    network_is_self_dual,
    self_dual_defect,
    self_dualize_network_xor,
    self_dualize_table,
    verify_self_dualization,
)
from repro.logic.truthtable import TruthTable

tables = st.integers(min_value=1, max_value=4).flatmap(
    lambda n: st.builds(
        TruthTable,
        st.just(n),
        st.integers(min_value=0, max_value=(1 << (1 << n)) - 1),
    )
)


class TestTableDualization:
    @settings(max_examples=120)
    @given(tables)
    def test_yamamoto_construction(self, t):
        sd = self_dualize_table(t)
        assert sd.n == t.n + 1
        assert sd.is_self_dual()
        assert verify_self_dualization(t, sd)

    @settings(max_examples=60)
    @given(tables)
    def test_first_period_recovers_original(self, t):
        sd = self_dualize_table(t)
        assert first_period_function(sd).bits == t.bits

    def test_already_self_dual_stays_recognizable(self):
        maj = TruthTable.from_function(lambda a, b, c: int(a + b + c > 1), 3)
        sd = self_dualize_table(maj)
        assert sd.is_self_dual()
        # In period 2 the dual of a self-dual function is itself.
        assert first_period_function(sd).bits == maj.bits

    @settings(max_examples=60)
    @given(tables)
    def test_defect_set_empty_iff_self_dual(self, t):
        assert (not self_dual_defect(t)) == t.is_self_dual()

    def test_defect_set_localizes(self):
        and2 = TruthTable.from_function(lambda a, b: a & b, 2)
        defects = self_dual_defect(and2)
        # AND violates F(X̄) = ¬F(X) everywhere except... check directly:
        for point in range(4):
            expected = and2.co_reflect().value(point) != (1 - and2.value(point))
            assert (point in defects) == expected


class TestNetworkDualization:
    @settings(max_examples=40)
    @given(st.randoms(use_true_random=False))
    def test_xor_wrapper_self_dual_and_first_period(self, rnd):
        from repro.workloads.randomlogic import random_mixed_network

        net = random_mixed_network(rnd, 3, 5)
        sd_net = self_dualize_network_xor(net)
        out_table = network_function(sd_net)
        assert out_table.is_self_dual()
        # phi is the last input; period 1 (phi = 0) = original function.
        original = network_function(net)
        assert first_period_function(out_table).bits == original.bits

    def test_network_is_self_dual_helpers(self):
        maj = parse_expression("a b | b c | a c", inputs=["a", "b", "c"])
        assert network_is_self_dual(maj)
        assert is_alternating_network(maj)
        andnet = parse_expression("a & b", inputs=["a", "b"])
        assert not network_is_self_dual(andnet)
        assert not is_alternating_network(andnet)

    def test_xor_wrapper_cost(self):
        andnet = parse_expression("a & b", inputs=["a", "b"])
        sd = self_dualize_network_xor(andnet)
        # n + 1 = 3 XOR gates added.
        from repro.logic.gates import GateKind

        xors = [g for g in sd.gates if g.kind is GateKind.XOR]
        assert len(xors) == 3
