"""The telemetry subsystem: registry exporters, spans, flight merging.

Three layers of proof:

* the metrics registry round-trips — Prometheus text re-parses to the
  same samples, histogram buckets honour the inclusive ``le`` edge;
* spans nest, time, attribute to their parent, and survive exceptions
  without swallowing them;
* a supervised fork campaign merges worker events into the parent's
  flight exactly once — including under the worker-killed chaos
  sabotage, where the killed worker's unsent buffer is lost and the
  retry's events take its place (a partial flight survives complete).
"""

import json
import os

import pytest

from repro import obs
from repro.engine import FaultSweep, NetworkEngine
from repro.logic.benchfmt import load_bench
from repro.obs.stats import render, summarize
from repro.qa.chaos import sabotage_campaign

DATA_DIR = os.path.join(os.path.dirname(__file__), "..", "examples", "data")


@pytest.fixture(autouse=True)
def _clean_telemetry():
    obs.reset()
    yield
    obs.reset()


@pytest.fixture(scope="module")
def adder():
    return load_bench(os.path.join(DATA_DIR, "adder4.bench"))


def fresh_sweep(network):
    return FaultSweep(network, engine=NetworkEngine(network))


# ----------------------------------------------------------------------
# metrics registry and exporters
# ----------------------------------------------------------------------
class TestRegistry:
    def test_prometheus_round_trip(self):
        reg = obs.Registry(enabled=True)
        chunks = reg.counter("repro_chunks_total", "chunks by backend")
        chunks.inc(3, backend="vectorized")
        chunks.inc(backend="bitmask")
        depth = reg.gauge("repro_queue_depth", "live queue depth")
        depth.set(7)
        depth.inc(-2)
        wall = reg.histogram(
            "repro_wall_seconds", "wall time", buckets=(0.1, 1.0)
        )
        wall.observe(0.05)
        wall.observe(0.5)
        wall.observe(30.0)

        parsed = obs.parse_prometheus(reg.to_prometheus())
        key = lambda **labels: tuple(sorted(labels.items()))
        assert parsed["repro_chunks_total"][key(backend="vectorized")] == 3
        assert parsed["repro_chunks_total"][key(backend="bitmask")] == 1
        assert parsed["repro_queue_depth"][key()] == 5
        assert parsed["repro_wall_seconds_bucket"][key(le="0.1")] == 1
        assert parsed["repro_wall_seconds_bucket"][key(le="1")] == 2
        assert parsed["repro_wall_seconds_bucket"][key(le="+Inf")] == 3
        assert parsed["repro_wall_seconds_count"][key()] == 3
        assert parsed["repro_wall_seconds_sum"][key()] == pytest.approx(30.55)

    def test_json_snapshot_groups_by_kind(self):
        reg = obs.Registry(enabled=True)
        reg.counter("c_total", "a counter").inc(2, kind="x")
        reg.gauge("g", "a gauge").set(1.5)
        reg.histogram("h_seconds", "a histogram", buckets=(1.0,)).observe(0.5)
        snapshot = json.loads(json.dumps(reg.to_json()))
        assert snapshot["counters"]["c_total"]["samples"] == [
            {"labels": {"kind": "x"}, "value": 2.0}
        ]
        assert snapshot["gauges"]["g"]["samples"][0]["value"] == 1.5
        hist = snapshot["histograms"]["h_seconds"]["samples"][0]
        assert hist["buckets"] == [[1.0, 1], ["+Inf", 1]]
        assert hist["count"] == 1

    def test_label_values_escape_and_round_trip(self):
        reg = obs.Registry(enabled=True)
        reg.counter("c_total").inc(reason='worker "died"\nbadly\\fast')
        parsed = obs.parse_prometheus(reg.to_prometheus())
        (labels,) = parsed["c_total"]
        assert dict(labels)["reason"] == 'worker "died"\nbadly\\fast'

    def test_histogram_bucket_edges_are_inclusive(self):
        reg = obs.Registry(enabled=True)
        h = reg.histogram("h", buckets=(1.0, 2.0))
        h.observe(1.0)  # exactly on a bound: le="1" must include it
        h.observe(2.0)
        h.observe(2.0000001)
        (sample,) = h.samples()
        assert sample["buckets"] == [[1.0, 1], [2.0, 2], ["+Inf", 3]]

    def test_histogram_rejects_unsorted_buckets(self):
        reg = obs.Registry(enabled=True)
        with pytest.raises(ValueError):
            reg.histogram("bad", buckets=(2.0, 1.0))
        with pytest.raises(ValueError):
            reg.histogram("empty", buckets=())

    def test_get_or_create_is_idempotent_but_kind_strict(self):
        reg = obs.Registry()
        c = reg.counter("same")
        assert reg.counter("same") is c
        with pytest.raises(ValueError):
            reg.gauge("same")
        with pytest.raises(ValueError):
            reg.histogram("same")

    def test_disabled_registry_records_nothing(self):
        reg = obs.Registry(enabled=False)
        c = reg.counter("quiet_total")
        c.inc(100)
        reg.histogram("quiet_seconds").observe(1.0)
        assert c.total() == 0
        assert reg.total("quiet_seconds") == 0
        assert "quiet_total 100" not in reg.to_prometheus()

    def test_counter_rejects_negative_increments(self):
        reg = obs.Registry(enabled=True)
        with pytest.raises(ValueError):
            reg.counter("c_total").inc(-1)

    def test_parser_rejects_malformed_lines(self):
        with pytest.raises(obs.PrometheusFormatError):
            obs.parse_prometheus("this is not a sample\n")
        with pytest.raises(obs.PrometheusFormatError):
            obs.parse_prometheus('name{unquoted=oops} 1\n')


# ----------------------------------------------------------------------
# spans and the flight recorder
# ----------------------------------------------------------------------
class TestSpans:
    def test_disabled_tracing_is_a_shared_noop(self):
        assert obs.get_recorder() is None
        assert obs.span("anything", x=1) is obs.NOOP_SPAN
        obs.event("anything", x=1)  # must not raise, records nowhere

    def test_spans_nest_and_attribute_their_parent(self):
        rec = obs.MemoryRecorder()
        obs.set_recorder(rec)
        with obs.span("outer", role="parent"):
            with obs.span("inner") as sp:
                sp.set(discovered="late")
        inner, outer = rec.events
        assert inner["name"] == "inner" and inner["parent"] == "outer"
        assert outer["name"] == "outer" and outer["parent"] is None
        assert inner["attrs"] == {"discovered": "late"}
        assert inner["ok"] and outer["ok"]
        assert 0 <= inner["wall"] <= outer["wall"]

    def test_exception_recorded_and_propagated(self):
        rec = obs.MemoryRecorder()
        obs.set_recorder(rec)
        with pytest.raises(RuntimeError, match="boom"):
            with obs.span("outer"):
                with obs.span("inner"):
                    raise RuntimeError("boom")
        inner, outer = rec.events
        assert not inner["ok"] and not outer["ok"]
        assert inner["error"] == "RuntimeError: boom"
        # the per-thread stack unwound cleanly: a fresh span is a root
        with obs.span("after"):
            pass
        assert rec.events[-1]["parent"] is None

    def test_flight_recorder_round_trips_jsonl(self, tmp_path):
        path = str(tmp_path / "flight.jsonl")
        with obs.FlightRecorder(path) as rec:
            obs.set_recorder(rec)
            with obs.span("work", n=3):
                obs.event("milestone", at=1)
            obs.set_recorder(None)
        events = list(obs.read_flight(path))
        names = [e["name"] for e in events]
        assert names == ["flight.open", "milestone", "work", "flight.close"]
        assert all("k" in e for e in events)

    def test_read_flight_rejects_corruption(self, tmp_path):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w") as handle:
            handle.write('{"k": "event", "name": "fine"}\nnot json\n')
        with pytest.raises(obs.FlightRecorderError):
            list(obs.read_flight(path))
        with open(path, "w") as handle:
            handle.write('{"no_kind": true}\n')
        with pytest.raises(obs.FlightRecorderError):
            list(obs.read_flight(path))
        with pytest.raises(obs.FlightRecorderError):
            list(obs.read_flight(str(tmp_path / "missing.jsonl")))

    def test_recording_context_restores_previous_state(self, tmp_path):
        outer = obs.MemoryRecorder()
        obs.set_recorder(outer)
        path = str(tmp_path / "inner.jsonl")
        with obs.recording(trace_path=path, metrics=True) as rec:
            assert obs.get_recorder() is rec
            assert obs.metrics_enabled()
        assert obs.get_recorder() is outer
        assert not obs.metrics_enabled()
        assert [e["name"] for e in obs.read_flight(path)] == [
            "flight.open",
            "flight.close",
        ]


# ----------------------------------------------------------------------
# fork-worker merge: the supervised campaign's whole story in one flight
# ----------------------------------------------------------------------
class TestForkMerge:
    def _campaign_flight(self, adder, tmp_path, chaos=None):
        sweep = fresh_sweep(adder)
        universe = sweep.single_fault_universe()
        path = str(tmp_path / "flight.jsonl")
        with obs.recording(trace_path=path):
            if chaos is not None:
                with sabotage_campaign(
                    chaos, once_path=str(tmp_path / "once")
                ):
                    sweep.sweep(universe, processes=2)
            else:
                sweep.sweep(universe, processes=2)
        return sweep.last_report, list(obs.read_flight(path))

    def test_worker_events_appear_exactly_once(self, adder, tmp_path):
        report, events = self._campaign_flight(adder, tmp_path)
        ok_chunks = [
            e
            for e in events
            if e["k"] == "span" and e["name"] == "sweep.chunk" and e["ok"]
        ]
        # the acceptance invariant: per-chunk span count == chunk ledger
        assert len(ok_chunks) == report.chunks_completed
        worker_spans = [
            e for e in events if e["k"] == "span" and e["name"] == "worker.chunk"
        ]
        keys = [e["attrs"]["chunk"] for e in worker_spans if e["ok"]]
        assert len(keys) == len(set(keys)), "a worker chunk merged twice"
        parent = os.getpid()
        worker_pids = {e["pid"] for e in worker_spans}
        assert worker_pids and parent not in worker_pids
        # merged verbatim: worker spans keep their source pid
        assert {e["pid"] for e in events} >= worker_pids | {parent}

    def test_killed_worker_flight_survives_complete(self, adder, tmp_path):
        report, events = self._campaign_flight(
            adder, tmp_path, chaos="worker-killed"
        )
        assert report.workers_replaced >= 1
        replacements = [
            e
            for e in events
            if e["k"] == "event" and e["name"] == "campaign.worker_replaced"
        ]
        assert len(replacements) == report.workers_replaced
        ok_chunks = [
            e
            for e in events
            if e["k"] == "span" and e["name"] == "sweep.chunk" and e["ok"]
        ]
        assert len(ok_chunks) == report.chunks_completed
        # the killed worker's unsent buffer is gone; the retried chunk's
        # events merged instead, so every completed chunk is on record
        chunk_events = [
            e
            for e in events
            if e["k"] == "event" and e["name"] == "campaign.chunk"
        ]
        assert len(chunk_events) == report.chunks_completed
        retry_events = [
            e
            for e in events
            if e["k"] == "event" and e["name"] == "campaign.retry"
        ]
        assert len(retry_events) == len(report.retries) >= 1

    def test_report_event_matches_campaign_report(self, adder, tmp_path):
        report, events = self._campaign_flight(adder, tmp_path)
        (recorded,) = [
            e["attrs"]
            for e in events
            if e["k"] == "event" and e["name"] == "campaign.report"
        ]
        # one stopwatch feeds both records: byte-identical wall time
        assert recorded == report.to_dict()

    def test_stats_summary_reads_the_flight(self, adder, tmp_path):
        report, events = self._campaign_flight(adder, tmp_path)
        summary = summarize(events)
        assert summary["chunk_spans"]["ok"] == report.chunks_completed
        assert summary["processes"] >= 3
        (campaign,) = summary["campaigns"]
        assert campaign["wall_seconds"] == report.wall_seconds
        assert campaign["faults_per_second"] > 0
        text = render(summary)
        assert "per-backend chunk time" in text
        assert f"{report.chunks_completed} simulated" in text


# ----------------------------------------------------------------------
# campaign metrics at the supervisor seam
# ----------------------------------------------------------------------
class TestCampaignMetrics:
    def test_supervised_sweep_populates_registry(self, adder):
        obs.enable_metrics(True)
        sweep = fresh_sweep(adder)
        universe = sweep.single_fault_universe()
        sweep.sweep(universe, processes=2)
        report = sweep.last_report
        reg = obs.REGISTRY
        assert reg.total("repro_campaign_chunks_total") == (
            report.chunks_completed
        )
        assert reg.total("repro_campaign_faults_total") == len(universe)
        assert reg.total("repro_campaign_wall_seconds") == 1
        assert reg.total("repro_engine_ops_total") > 0

    def test_qa_property_span_and_trial_counter(self):
        from repro.qa import fuzz

        obs.enable_metrics(True)
        rec = obs.MemoryRecorder()
        obs.set_recorder(rec)
        report = fuzz(
            seed=3,
            budget=4,
            properties=["backend-agreement"],
            artifact_dir=None,
        )
        assert report.ok
        spans = [
            e for e in rec.events if e["k"] == "span" and e["name"] == "qa.property"
        ]
        assert len(spans) == 1
        assert spans[0]["attrs"]["property"] == "backend-agreement"
        assert spans[0]["attrs"]["counterexamples"] == 0
        (qa_report,) = [
            e for e in rec.events if e["k"] == "event" and e["name"] == "qa.report"
        ]
        assert qa_report["attrs"]["ok"] is True
        assert obs.REGISTRY.total("repro_qa_trials_total") == (
            spans[0]["attrs"]["trials"]
        )
