"""Tests for redundancy handling (Theorems 3.3-3.5)."""

from repro.core.redundancy import (
    apply_constant_replacements,
    constant_replacements,
    is_irredundant,
    line_testability,
    prune_dead_logic,
    redundant_lines,
)
from repro.logic.evaluate import functionally_equivalent, network_function
from repro.logic.gates import GateKind
from repro.logic.network import NetworkBuilder
from repro.logic.parse import parse_expression


def xor_self_net():
    """g XOR g = 0: line g is redundant in both stuck directions."""
    b = NetworkBuilder(["a", "b"])
    g = b.add("g", GateKind.AND, ["a", "b"])
    t = b.add("t", GateKind.XOR, [g, g])
    b.add("out", GateKind.OR, ["a", t])
    return b.build(["out"])


def consensus_net():
    """F = ab | a'c | bc: the consensus term bc is one-direction
    redundant (s-a-0 unobservable, s-a-1 observable)."""
    return parse_expression("a b | a' c | b c", inputs=["a", "b", "c"])


class TestTestability:
    def test_redundant_both_directions(self):
        net = xor_self_net()
        info = line_testability(net, "g")
        assert info.redundant
        assert info.one_direction_only is None

    def test_one_direction_redundancy(self):
        net = consensus_net()
        # The bc product term: find the AND gate with inputs b, c.
        bc_line = next(
            g.name
            for g in net.gates
            if g.kind is GateKind.AND and set(g.inputs) == {"b", "c"}
        )
        info = line_testability(net, bc_line)
        assert not info.redundant
        assert info.one_direction_only == 1  # only s/1 observable

    def test_fully_testable_line(self):
        net = parse_expression("a b | b c | a c", inputs=["a", "b", "c"])
        for line in net.lines():
            info = line_testability(net, line)
            assert info.sa0_observable or info.sa1_observable


class TestRedundantLines:
    def test_detects_xor_self(self):
        assert "g" in redundant_lines(xor_self_net())

    def test_majority_irredundant(self):
        net = parse_expression("a b | b c | a c", inputs=["a", "b", "c"])
        assert is_irredundant(net)

    def test_fig34_irredundant(self, fig34):
        assert is_irredundant(fig34)


class TestConstantReplacement:
    def test_replacement_values(self):
        net = consensus_net()
        bc_line = next(
            g.name
            for g in net.gates
            if g.kind is GateKind.AND and set(g.inputs) == {"b", "c"}
        )
        repl = constant_replacements(net)
        # Only s/1 testable => the line behaves as constant 0.
        assert repl.get(bc_line) == 0

    def test_replacement_preserves_function(self):
        net = consensus_net()
        replaced = apply_constant_replacements(net)
        assert functionally_equivalent(net, replaced)

    def test_noop_when_nothing_to_replace(self):
        net = parse_expression("a b | b c | a c", inputs=["a", "b", "c"])
        assert apply_constant_replacements(net) is net


class TestPruning:
    def test_prune_dead_logic(self):
        b = NetworkBuilder(["a"])
        b.add("dead", GateKind.NOT, ["a"])
        b.add("out", GateKind.BUF, ["a"])
        net = b.build(["out"])
        pruned = prune_dead_logic(net)
        assert all(g.name != "dead" for g in pruned.gates)
        assert network_function(pruned).bits == network_function(net).bits
