"""Tests for structural fault collapsing (repro.core.collapse)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.collapse import (
    collapse_faults,
    equivalence_collapse,
)
from repro.logic.evaluate import line_tables
from repro.logic.faults import PinStuckAt, StuckAt, enumerate_single_faults
from repro.logic.gates import GateKind
from repro.logic.network import NetworkBuilder
from repro.logic.parse import parse_expression
from repro.workloads.randomlogic import random_mixed_network


def fault_signature(net, fault):
    """Truth-table fingerprint of a fault's output behaviour."""
    tables = line_tables(net, fault)
    return tuple(tables[o].bits for o in net.outputs)


class TestEquivalence:
    def test_and_gate_input_sa0_equals_output_sa0(self):
        b = NetworkBuilder(["a", "b"])
        b.add("g", GateKind.AND, ["a", "b"])
        net = b.build(["g"])
        classes = equivalence_collapse(net)
        merged = next(
            members
            for members in classes.values()
            if any(
                isinstance(m, StuckAt) and m.line == "g" and m.value == 0
                for m in members
            )
        )
        pin_faults = [m for m in merged if isinstance(m, PinStuckAt)]
        assert len(pin_faults) == 2  # both input pins s-a-0

    def test_not_gate_inversion(self):
        b = NetworkBuilder(["a"])
        b.add("n", GateKind.NOT, ["a"])
        net = b.build(["n"])
        classes = equivalence_collapse(net)
        # a s/0 == n-pin s/0 == n s/1 all one class (single fanout stem).
        target = next(
            members
            for members in classes.values()
            if any(
                isinstance(m, StuckAt) and m.line == "n" and m.value == 1
                for m in members
            )
        )
        assert any(
            isinstance(m, StuckAt) and m.line == "a" and m.value == 0
            for m in target
        )

    @settings(max_examples=20, deadline=None)
    @given(st.randoms(use_true_random=False))
    def test_equivalent_faults_have_equal_signatures(self, rnd):
        net = random_mixed_network(rnd, 3, rnd.randint(2, 6))
        for members in equivalence_collapse(net).values():
            signatures = {fault_signature(net, m) for m in members}
            assert len(signatures) == 1, members


class TestCollapse:
    def test_reduces_fault_count(self):
        net = parse_expression("a b | b c | a c", inputs=["a", "b", "c"])
        report = collapse_faults(net)
        assert len(report.representatives) < report.total
        assert 0 < report.collapse_ratio < 1

    def test_dominance_drops_more(self):
        net = parse_expression("a b | b c | a c", inputs=["a", "b", "c"])
        with_dom = collapse_faults(net, use_dominance=True)
        without = collapse_faults(net, use_dominance=False)
        assert len(with_dom.representatives) < len(without.representatives)
        assert with_dom.dominated_dropped > 0

    def test_dominance_preserves_coverage_on_irredundant_net(self):
        """The irredundant majority network: a test set covering the
        dominance-collapsed representatives covers everything."""
        net = parse_expression("a b | b c | a c", inputs=["a", "b", "c"])
        report = collapse_faults(net, use_dominance=True)
        normal = line_tables(net)

        def detection_points(fault):
            tables = line_tables(net, fault)
            return {
                p
                for p in range(8)
                if any(
                    tables[o].value(p) != normal[o].value(p)
                    for o in net.outputs
                )
            }

        test_set = set()
        for rep in report.representatives:
            points = detection_points(rep)
            if points:
                test_set.add(min(points))
        for fault in enumerate_single_faults(net, collapse=False):
            points = detection_points(fault)
            if points:
                assert points & test_set, fault.describe()

    @settings(max_examples=15, deadline=None)
    @given(st.randoms(use_true_random=False))
    def test_coverage_preserved(self, rnd):
        """A test set detecting every representative detects every
        testable fault of the full universe (on these networks)."""
        net = random_mixed_network(rnd, 3, rnd.randint(2, 5))
        report = collapse_faults(net)  # equivalence-only: safe everywhere
        normal = line_tables(net)

        def detection_points(fault):
            tables = line_tables(net, fault)
            points = set()
            for point in range(1 << len(net.inputs)):
                if any(
                    tables[o].value(point) != normal[o].value(point)
                    for o in net.outputs
                ):
                    points.add(point)
            return points

        # A covering test set: one detection point per representative.
        test_set = set()
        for rep in report.representatives:
            points = detection_points(rep)
            if points:
                test_set.add(min(points))
        # Every testable fault in the full universe must be hit.
        for fault in enumerate_single_faults(net, collapse=False):
            points = detection_points(fault)
            if points:
                assert points & test_set, fault.describe()

    def test_report_counts_consistent(self):
        net = parse_expression("a b | b c", inputs=["a", "b", "c"])
        report = collapse_faults(net, use_dominance=False)
        assert report.equivalence_classes == len(report.representatives)
