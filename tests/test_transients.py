"""Transient faults (Definition 2.1 covers them explicitly).

"The line may be stuck either permanently or temporarily; i.e.,
transient failures are included.  The transient failure may or may not
be observable."  These tests drive the dual flip-flop machine with
windowed faults and check the SCAL contract: a transient either never
corrupts the decoded outputs or is detected.
"""

import random

import pytest

from repro.logic.faults import StuckAt, enumerate_stem_faults
from repro.scal.dualff import to_dual_flipflop
from repro.workloads.detectors import kohavi_0101


@pytest.fixture(scope="module")
def machine_and_vectors():
    machine = kohavi_0101()
    dff = to_dual_flipflop(machine)
    rnd = random.Random(77)
    vectors = [(rnd.randint(0, 1),) for _ in range(30)]
    return machine, dff, vectors


class TestTransientWindows:
    def test_no_window_equals_permanent(self, machine_and_vectors):
        machine, dff, vectors = machine_and_vectors
        fault = StuckAt("Z0", 1)
        permanent = dff.run(vectors, fault=fault)
        windowed = dff.run(
            vectors, fault=fault, fault_window=(0, 2 * len(vectors))
        )
        assert permanent.detected == windowed.detected

    def test_fault_before_window_is_absent(self, machine_and_vectors):
        machine, dff, vectors = machine_and_vectors
        fault = StuckAt("Z0", 1)
        run = dff.run(vectors, fault=fault, fault_window=(10_000, 10_001))
        assert not run.detected
        assert dff.decoded_outputs(run) == machine.run(vectors)

    def test_single_period_transient_is_caught_or_harmless(
        self, machine_and_vectors
    ):
        """A one-period transient flips at most one half of a pair, so a
        corrupted output pair is always nonalternating — the cleanest
        case for alternating logic."""
        machine, dff, vectors = machine_and_vectors
        reference = machine.run(vectors)
        for fault in enumerate_stem_faults(
            dff.circuit.network, include_inputs=False
        ):
            for period in (4, 5, 11):
                run = dff.run(
                    vectors, fault=fault, fault_window=(period, period)
                )
                if dff.decoded_outputs(run) != reference:
                    assert run.detected, (fault.describe(), period)

    def test_pair_wide_transient_secure(self, machine_and_vectors):
        """A transient spanning exactly one logical step (both periods)
        behaves like a momentary permanent fault; the machine is fault
        secure for these too."""
        machine, dff, vectors = machine_and_vectors
        reference = machine.run(vectors)
        for fault in enumerate_stem_faults(
            dff.circuit.network, include_inputs=False
        ):
            run = dff.run(vectors, fault=fault, fault_window=(8, 9))
            if dff.decoded_outputs(run) != reference:
                assert run.detected, fault.describe()

    def test_transient_state_corruption_detected_later(
        self, machine_and_vectors
    ):
        """A transient on a next-state line can plant a wrong state whose
        effect surfaces steps later; the Y monitoring still catches it by
        the time outputs go wrong."""
        machine, dff, vectors = machine_and_vectors
        reference = machine.run(vectors)
        fault = StuckAt("Y0", 1)
        for start in range(0, 20, 3):
            run = dff.run(vectors, fault=fault, fault_window=(start, start))
            if dff.decoded_outputs(run) != reference:
                assert run.detected
