"""Tests for minority modules and Chapter 6 theorems (repro.modules.minority)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.simulate import ScalSimulator
from repro.logic.evaluate import line_tables, network_function
from repro.logic.gates import GateKind
from repro.logic.network import NetworkBuilder
from repro.logic.selfdual import first_period_function
from repro.modules.minority import (
    conversion_report,
    majority,
    majority_from_minority,
    minimal_minority_realization,
    minority,
    nand_via_minority,
    nor_via_minority,
    to_minority_network,
    verify_theorem_6_2,
    verify_theorem_6_3,
)
from repro.workloads.benchcircuits import fig62_nand_network, minority3_table
from repro.workloads.randomlogic import random_nand_network


class TestPrimitives:
    def test_minority_definition(self):
        assert minority([0, 0, 1]) == 1
        assert minority([0, 1, 1]) == 0
        assert minority([0]) == 1 and minority([1]) == 0

    def test_majority_from_minority_fig_6_1c(self):
        for point in range(8):
            xs = [(point >> i) & 1 for i in range(3)]
            assert majority_from_minority(xs) == majority(xs)

    def test_nand_2input_fig_6_1d(self):
        """Theorem 6.1's constructive step: m(x1, x2, 0) = NAND."""
        for a in (0, 1):
            for b in (0, 1):
                assert minority([a, b, 0]) == 1 - (a & b)


class TestConversionTheorems:
    def test_theorem_6_2(self):
        assert verify_theorem_6_2(max_n=6)

    def test_theorem_6_3(self):
        assert verify_theorem_6_3(max_n=6)

    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
    def test_nand_both_periods(self, n):
        for point in range(1 << n):
            xs = [(point >> i) & 1 for i in range(n)]
            assert nand_via_minority(xs, 0) == 1 - int(all(xs))
            comp = [1 - x for x in xs]
            assert nand_via_minority(comp, 1) == int(all(xs))

    @pytest.mark.parametrize("n", [1, 2, 3, 4])
    def test_nor_both_periods(self, n):
        for point in range(1 << n):
            xs = [(point >> i) & 1 for i in range(n)]
            assert nor_via_minority(xs, 0) == 1 - int(any(xs))
            comp = [1 - x for x in xs]
            assert nor_via_minority(comp, 1) == int(any(xs))


class TestNetworkConversion:
    @settings(max_examples=12, deadline=None)
    @given(st.randoms(use_true_random=False))
    def test_random_nand_networks(self, rnd):
        net = random_nand_network(rnd, 3, rnd.randint(2, 6))
        converted = to_minority_network(net)
        tables = line_tables(converted)
        out = converted.outputs[0]
        # Period 1 computes the original function; the output alternates.
        original = network_function(net)
        assert first_period_function(tables[out]).bits == original.bits
        assert tables[out].is_self_dual()

    @settings(max_examples=8, deadline=None)
    @given(st.randoms(use_true_random=False))
    def test_all_lines_alternate_after_conversion(self, rnd):
        """Theorem 3.6 consequence quoted in Section 6.2: every module
        line alternates, so the network is self-checking per line."""
        net = random_nand_network(rnd, 3, 4)
        converted = to_minority_network(net)
        tables = line_tables(converted)
        for gate in converted.gates:
            assert tables[gate.name].is_self_dual(), gate.name

    @settings(max_examples=6, deadline=None)
    @given(st.randoms(use_true_random=False))
    def test_converted_network_is_scal(self, rnd):
        net = random_nand_network(rnd, 3, 4)
        converted = to_minority_network(net)
        sim = ScalSimulator(converted)
        assert sim.is_alternating()
        assert sim.verdict(include_pins=False).is_fault_secure

    def test_nor_network_conversion(self):
        b = NetworkBuilder(["a", "b", "c"])
        n1 = b.add("n1", GateKind.NOR, ["a", "b"])
        b.add("f", GateKind.NOR, [n1, "c"])
        net = b.build(["f"])
        converted = to_minority_network(net)
        tables = line_tables(converted)
        assert first_period_function(tables["f"]).bits == network_function(net).bits

    def test_rejects_other_gates(self):
        b = NetworkBuilder(["a", "b"])
        b.add("x", GateKind.XOR, ["a", "b"])
        net = b.build(["x"])
        with pytest.raises(ValueError):
            to_minority_network(net)


class TestFig62:
    def test_direct_conversion_costs(self):
        """The thesis's count: four modules, fourteen total inputs."""
        converted = to_minority_network(fig62_nand_network())
        report = conversion_report(converted)
        # The fig 6.2a network has an extra inverter in our NAND-only
        # realization; the four 2-input NANDs convert at 3 inputs each
        # plus the 3-input NAND at 5: 4 modules/14 inputs + 1 inverter.
        modules_for_nands = [
            g for g in converted.gates
            if g.kind is GateKind.MIN and len(g.inputs) > 1
        ]
        assert len(modules_for_nands) == 4
        assert sum(len(g.inputs) for g in modules_for_nands) == 14

    def test_minimal_realization_single_module(self):
        minimal = minimal_minority_realization(
            minority3_table(), ["A", "B", "C"]
        )
        assert minimal is not None
        report = conversion_report(minimal)
        assert report.modules == 1
        assert report.total_inputs == 3

    def test_minimal_realization_none_for_non_minority(self):
        from repro.logic.truthtable import TruthTable

        xor3 = TruthTable.from_function(lambda a, b, c: a ^ b ^ c, 3)
        assert minimal_minority_realization(xor3, ["A", "B", "C"]) is None

    def test_minimal_with_clock_pads(self):
        """NAND(A,B) = m(A, B, φ-pad): needs one clock pad."""
        from repro.logic.truthtable import TruthTable

        nand2 = TruthTable.from_function(lambda a, b: 1 - (a & b), 2)
        minimal = minimal_minority_realization(nand2, ["A", "B"])
        assert minimal is not None
        tables = line_tables(minimal)
        assert first_period_function(tables["F"]).bits == nand2.bits
        assert tables["F"].is_self_dual()
