"""Tests for inductive sequential verification (repro.scal.induction)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.faults import StuckAt
from repro.scal.dualff import to_dual_flipflop
from repro.scal.induction import (
    verify_inductively,
    _expected_pair,
    _single_step,
)
from repro.workloads.detectors import kohavi_0101
from repro.workloads.machines import machine_suite
from repro.workloads.strategies import machines


class TestSingleStep:
    def test_healthy_step_matches_expected(self, detector):
        machine = to_dual_flipflop(detector)
        for state in detector.states:
            for vector in detector.input_vectors():
                expected = _expected_pair(machine, state, vector)
                got = _single_step(machine, state, vector, None)
                assert got == expected, (state, vector)

    def test_faulty_step_differs_or_alternates_detectably(self, detector):
        machine = to_dual_flipflop(detector)
        fault = StuckAt("Z0", 1)
        first, second = _single_step(machine, "S3", (1,), fault)
        # Z0 stuck at 1 in both periods: nonalternating.
        assert first[0] == second[0] == 1


class TestInductiveVerdict:
    def test_0101_detector_proved(self, detector):
        machine = to_dual_flipflop(detector)
        verdict = verify_inductively(machine)
        assert verdict.holds, verdict.summary()
        assert verdict.faults > 0
        assert "PROVED" in verdict.summary()

    def test_machine_suite_proved(self):
        for table in machine_suite():
            machine = to_dual_flipflop(table)
            verdict = verify_inductively(machine)
            assert verdict.holds, verdict.summary()

    @settings(max_examples=8, deadline=None)
    @given(machines(max_states=4))
    def test_random_machines_proved(self, table):
        machine = to_dual_flipflop(table)
        verdict = verify_inductively(machine)
        assert verdict.holds, verdict.summary()

    def test_explicit_fault_universe(self, detector):
        machine = to_dual_flipflop(detector)
        verdict = verify_inductively(machine, faults=[StuckAt("Z0", 0)])
        assert verdict.faults == 1
        assert verdict.holds

    def test_input_stems_optional(self, detector):
        machine = to_dual_flipflop(detector)
        with_inputs = verify_inductively(machine, include_inputs=True)
        without = verify_inductively(machine, include_inputs=False)
        assert with_inputs.faults > without.faults
        assert with_inputs.holds
