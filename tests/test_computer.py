"""Tests for the Figure 7.3 computer and its single-fault sweep."""

from repro.system.computer import (
    ScalComputer,
    countdown_program,
    demo_program,
)
from repro.system.cpu import CpuFault, Instruction, Op, reference_run
from repro.system.memory import MemoryFault


class TestPrograms:
    def test_demo_program_results(self):
        program, data = demo_program()
        acc, mem = reference_run(program, data)
        # mem[10] = 2*(a+b) - c, mem[11] = (a+b) >> 1
        a, b, c = data[0], data[1], data[2]
        assert mem[10] == (2 * (a + b) - c) % 256
        assert mem[11] == ((a + b) % 256) >> 1

    def test_countdown_program_halts_at_zero(self):
        program = countdown_program(5)
        acc, _mem = reference_run(program, {5: 1})
        assert acc == 0


class TestRun:
    def test_healthy_run(self):
        comp = ScalComputer()
        program, data = demo_program()
        result = comp.run(program, data)
        assert result.halted and not result.detected

    def test_faulty_run_detected(self):
        comp = ScalComputer()
        program, data = demo_program()
        result = comp.run(program, data, cpu_fault=CpuFault("alu_bit", 0, 1))
        assert result.detected

    def test_memory_fault_injected(self):
        comp = ScalComputer()
        program, data = demo_program()
        result = comp.run(
            program, data, memory_fault=MemoryFault("data_line", 0, 1)
        )
        assert result.detected


class TestSweep:
    def test_demo_sweep_no_dangerous_faults(self):
        """The thesis's end-to-end claim: the Figure 7.3 encoding leaves
        no single fault able to corrupt results silently."""
        comp = ScalComputer()
        program, data = demo_program()
        outcome = comp.sweep(program, data)
        assert outcome.dangerous == 0, outcome.dangerous_faults
        assert outcome.detected > 0
        assert outcome.coverage == 1.0

    def test_countdown_sweep_no_dangerous_faults(self):
        comp = ScalComputer()
        outcome = comp.sweep(countdown_program(5), {5: 1})
        assert outcome.dangerous == 0, outcome.dangerous_faults

    def test_sweep_buckets_sum(self):
        comp = ScalComputer()
        program, data = demo_program()
        outcome = comp.sweep(program, data)
        assert outcome.detected + outcome.silent + outcome.dangerous == outcome.total

    def test_cpu_fault_universe_size(self):
        comp = ScalComputer(width=8)
        assert len(comp.cpu_fault_universe()) == 3 * 8 * 2


class TestMultiplyProgram:
    def test_computes_product(self):
        from repro.system.computer import multiply_program

        program, data = multiply_program()
        acc, mem = reference_run(program, data, max_steps=500)
        assert mem[12] == data[0] * data[1]

    def test_scal_run_matches(self):
        from repro.system.computer import multiply_program

        comp = ScalComputer()
        program, data = multiply_program()
        result = comp.run(program, data, max_steps=500)
        assert result.halted and not result.detected
        assert result.memory_words[12] == data[0] * data[1]

    def test_sweep_no_dangerous(self):
        from repro.system.computer import multiply_program

        comp = ScalComputer()
        program, data = multiply_program()
        outcome = comp.sweep(program, data, max_steps=500)
        assert outcome.dangerous == 0, outcome.dangerous_faults
