"""Tests for fault diagnosis (repro.core.diagnosis)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.diagnosis import (
    adaptive_probe,
    build_fault_dictionary,
    simulate_faulty_unit,
)
from repro.logic.parse import parse_expression
from repro.workloads.fig34 import fig34_network
from repro.workloads.randomlogic import random_mixed_network


class TestDictionary:
    def test_consistent_filters(self, fig34):
        dictionary = build_fault_dictionary(fig34)
        from repro.logic.faults import StuckAt

        target = StuckAt("nab", 0)
        oracle = simulate_faulty_unit(fig34, target)
        # One observation at a sensitizing input narrows the candidates.
        point = 0b011  # A=1,B=1 region sensitizes nab
        survivors = dictionary.consistent([(point, oracle(point))])
        assert survivors
        assert len(survivors) < len(dictionary.candidates)

    def test_diagnose_recovers_injected_fault_class(self, fig34):
        from repro.logic.faults import StuckAt

        dictionary = build_fault_dictionary(fig34)
        target = StuckAt("or_ab", 0)
        oracle = simulate_faulty_unit(fig34, target)
        survivors, probes = dictionary.diagnose(oracle)
        assert probes
        # The true fault's behaviour must be among the survivors
        # (diagnosis resolves up to behavioural equivalence).
        target_sig = tuple(
            t.bits
            for t in (
                __import__("repro.logic.evaluate", fromlist=["line_tables"])
                .line_tables(fig34, target)[o]
                for o in fig34.outputs
            )
        )
        survivor_sigs = set()
        for c in dictionary.candidates:
            if c.fault in survivors:
                survivor_sigs.add(c.signature)
        assert target_sig in survivor_sigs

    @settings(max_examples=12, deadline=None)
    @given(st.randoms(use_true_random=False))
    def test_diagnosis_always_contains_truth(self, rnd):
        net = random_mixed_network(rnd, 3, rnd.randint(3, 6))
        dictionary = build_fault_dictionary(net)
        if not dictionary.candidates:
            return
        target = rnd.choice(dictionary.candidates).fault
        oracle = simulate_faulty_unit(net, target)
        survivors, _probes = dictionary.diagnose(oracle)
        # The injected fault (or an equivalent) always survives.
        from repro.logic.evaluate import line_tables

        target_sig = tuple(
            line_tables(net, target)[o].bits for o in net.outputs
        )
        sigs = {
            c.signature
            for c in dictionary.candidates
            if c.fault in survivors
        }
        assert target_sig in sigs

    def test_healthy_unit_keeps_silent_candidates_only(self):
        net = parse_expression("a b | b c | a c", inputs=["a", "b", "c"])
        dictionary = build_fault_dictionary(net)

        def healthy(point):
            return dictionary.normal_response(point)

        survivors, _ = dictionary.diagnose(healthy)
        from repro.logic.evaluate import line_tables

        assert None in survivors  # the healthy hypothesis survives
        for fault in survivors:
            if fault is None:
                continue
            sig = tuple(line_tables(net, fault)[o].bits for o in net.outputs)
            assert sig == dictionary.normal


class TestAdaptiveProbe:
    def test_probe_splits(self, fig34):
        dictionary = build_fault_dictionary(fig34)
        point = adaptive_probe(dictionary, dictionary.candidates)
        assert point is not None
        groups = {}
        for c in dictionary.candidates:
            groups.setdefault(dictionary.response(c, point), []).append(c)
        assert len(groups) >= 2

    def test_no_probe_for_single_candidate(self, fig34):
        dictionary = build_fault_dictionary(fig34)
        assert adaptive_probe(dictionary, dictionary.candidates[:1]) is None

    def test_probe_count_is_modest(self, fig34):
        from repro.logic.faults import StuckAt

        dictionary = build_fault_dictionary(fig34)
        oracle = simulate_faulty_unit(fig34, StuckAt("nab", 1))
        _survivors, probes = dictionary.diagnose(oracle)
        assert len(probes) <= 8  # the input space only has 8 points
