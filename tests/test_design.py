"""Tests for constructive SCAL design and automatic repair (repro.core.design)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.design import (
    design_scal_network,
    duplicate_gate_for_branches,
    make_self_checking,
)
from repro.core.simulate import ScalSimulator, is_scal_network
from repro.logic.evaluate import functionally_equivalent
from repro.logic.selfdual import first_period_function
from repro.logic.truthtable import TruthTable
from repro.workloads.benchcircuits import fig32_xor_path_network
from repro.workloads.fig34 import fig34_network
from repro.workloads.randomlogic import random_truth_table


class TestDesignScalNetwork:
    @settings(max_examples=15, deadline=None)
    @given(st.randoms(use_true_random=False))
    def test_designed_networks_are_certified_scal(self, rnd):
        n = rnd.randint(2, 3)
        tables = {
            f"F{k}": TruthTable(n, rnd.getrandbits(1 << n)) for k in range(2)
        }
        net = design_scal_network(tables, [f"x{i}" for i in range(n)])
        assert is_scal_network(net)

    def test_first_period_recovers_specification(self):
        rnd = random.Random(13)
        n = 3
        tables = {"F0": random_truth_table(rnd, n)}
        net = design_scal_network(tables, [f"x{i}" for i in range(n)])
        from repro.logic.evaluate import line_tables

        out_table = line_tables(net)["F0"]
        assert first_period_function(out_table).bits == tables["F0"].bits

    def test_clock_is_last_input(self):
        net = design_scal_network(
            {"F": TruthTable.from_function(lambda a, b: a & b, 2)},
            ["a", "b"],
        )
        assert net.inputs[-1] == "phi"


class TestDuplicateGate:
    def test_fig34_duplication_matches_fig37(self, fig34):
        fixed = duplicate_gate_for_branches(fig34, "or_ab")
        assert functionally_equivalent(fig34, fixed)
        assert fixed.fanout_count("or_ab") == 1
        assert fixed.gate_count() == fig34.gate_count() + 1

    def test_no_fanout_is_identity(self, fig34):
        assert duplicate_gate_for_branches(fig34, "g2") is fig34

    def test_input_rejected(self, fig34):
        with pytest.raises(ValueError):
            duplicate_gate_for_branches(fig34, "A")

    def test_three_way_fanout(self):
        from repro.logic.gates import GateKind
        from repro.logic.network import NetworkBuilder

        b = NetworkBuilder(["a", "b"])
        g = b.add("g", GateKind.NAND, ["a", "b"])
        b.add("o1", GateKind.NOT, [g])
        b.add("o2", GateKind.NOT, [g])
        b.add("o3", GateKind.NOT, [g])
        net = b.build(["o1", "o2", "o3"])
        dup = duplicate_gate_for_branches(net, "g")
        assert dup.gate_count() == net.gate_count() + 2
        assert functionally_equivalent(net, dup)
        for line in ("g", "g_dup1", "g_dup2"):
            assert dup.fanout_count(line) == 1


class TestMakeSelfChecking:
    def test_repairs_fig34_with_the_thesis_fix(self, fig34):
        report = make_self_checking(fig34)
        assert report.success
        assert report.gate_overhead == 1
        assert report.steps[0].action == "duplicate"
        assert report.steps[0].target == "or_ab"
        assert functionally_equivalent(fig34, report.network)

    def test_repairs_xor_network_by_resynthesis(self):
        net = fig32_xor_path_network()
        report = make_self_checking(net)
        assert report.success
        assert any(s.action == "resynthesize" for s in report.steps)
        assert functionally_equivalent(net, report.network)
        assert ScalSimulator(report.network).verdict(
            include_pins=False
        ).is_self_checking

    def test_already_self_checking_is_untouched(self, fig37):
        report = make_self_checking(fig37)
        assert report.success
        assert not report.steps
        assert report.gate_overhead == 0

    def test_summary_mentions_actions(self, fig34):
        text = make_self_checking(fig34).summary()
        assert "repaired" in text
        assert "duplicate or_ab" in text
