"""Tests for alternating-operation helpers (repro.scal.alternating)."""

import pytest

from repro.scal.alternating import (
    AlternatingRun,
    AlternatingStep,
    alternating_pair,
    alternating_stream,
    pair_periods,
)


class TestStreams:
    def test_alternating_pair(self):
        first, second = alternating_pair({"a": 1, "b": 0})
        assert first == {"a": 1, "b": 0, "phi": 0}
        assert second == {"a": 0, "b": 1, "phi": 1}

    def test_stream_interleaves(self):
        stream = alternating_stream([{"a": 1}, {"a": 0}])
        assert [s["phi"] for s in stream] == [0, 1, 0, 1]
        assert [s["a"] for s in stream] == [1, 0, 0, 1]

    def test_custom_clock_name(self):
        first, _second = alternating_pair({"a": 1}, clock_name="clk")
        assert "clk" in first


class TestSteps:
    def test_alternating_step(self):
        good = AlternatingStep((1, 0), (0, 1))
        assert good.alternates
        assert good.decoded == (1, 0)
        bad = AlternatingStep((1, 0), (1, 1))
        assert not bad.alternates
        assert bad.nonalternating_positions() == (0,)

    def test_run_detection(self):
        run = AlternatingRun(
            (AlternatingStep((1,), (0,)), AlternatingStep((1,), (1,)))
        )
        assert run.detected
        assert run.first_detection == 1

    def test_checker_flags_detection(self):
        run = AlternatingRun(
            (AlternatingStep((1,), (0,)),),
            checker_flags=(True,),
        )
        assert run.detected
        assert run.first_detection == 0

    def test_clean_run(self):
        run = AlternatingRun((AlternatingStep((1,), (0,)),))
        assert not run.detected
        assert run.first_detection is None
        assert run.decoded_outputs() == [(1,)]


class TestPairing:
    def test_pair_periods(self):
        run = pair_periods([(1,), (0,), (0,), (0,)])
        assert len(run.steps) == 2
        assert run.steps[0].alternates
        assert not run.steps[1].alternates

    def test_odd_trace_rejected(self):
        with pytest.raises(ValueError):
            pair_periods([(1,)])
