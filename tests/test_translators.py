"""Tests for the ALPT and PALT translators (Theorems 4.1 and 4.3)."""

import itertools

import pytest

from repro.scal.translators import ALPT, PALT, TranslatorFault
from repro.system.memory import parity


def pairs_for(width, words):
    """(true, complement) value pairs for a list of words."""
    for word in words:
        bits = [(word >> i) & 1 for i in range(width)]
        yield bits, [1 - b for b in bits]


class TestAlptHealthy:
    @pytest.mark.parametrize("width", [2, 3, 4, 6])
    def test_data_and_parity(self, width):
        alpt = ALPT(width)
        for word in range(1 << width):
            bits = [(word >> i) & 1 for i in range(width)]
            comp = [1 - b for b in bits]
            data, par = alpt.feed_pair(bits, comp)
            assert data == bits
            assert par == parity(bits)

    def test_address_parity_folding(self):
        alpt = ALPT(4)
        bits = [1, 0, 1, 0]
        comp = [0, 1, 0, 1]
        _data, p0 = alpt.feed_pair(bits, comp, address_parity=0)
        _data, p1 = alpt.feed_pair(bits, comp, address_parity=1)
        assert p1 == 1 - p0

    def test_odd_width_parity_normalized(self):
        """For odd widths parity(Ȳ) = ¬parity(Y); the φ fold restores
        the true-period parity (the Section 4.3 odd-word remark)."""
        alpt = ALPT(3)
        bits = [1, 0, 0]
        data, par = alpt.feed_pair(bits, [0, 1, 1])
        assert data == bits
        assert par == parity(bits)


class TestAlptFaults:
    """Theorem 4.1: with the output parity checked, every internal line
    fault is eventually detected and no undetected wrong word escapes."""

    WIDTH = 4

    def run_with_fault(self, fault, words):
        alpt = ALPT(self.WIDTH)
        alpt.inject(fault)
        outcomes = []
        for bits, comp in pairs_for(self.WIDTH, words):
            data, par = alpt.feed_pair(bits, comp)
            code_ok = parity(data) == par
            correct = data == bits and par == parity(bits)
            outcomes.append((code_ok, correct))
        return outcomes

    def all_fault_sites(self):
        sites = []
        for k in range(self.WIDTH):
            for site in ("a", "b", "c", "d", "e"):
                sites.append((site, k))
        sites += [("f", 0), ("i", 0), ("h", 0), ("j", 0)]
        return sites

    def test_every_fault_secure_and_testable(self):
        words = list(range(16))
        for site, index in self.all_fault_sites():
            for value in (0, 1):
                fault = TranslatorFault(site, index, value)
                outcomes = self.run_with_fault(fault, words)
                # Fault-secure: a wrong word always has bad parity.
                for code_ok, correct in outcomes:
                    if not correct:
                        assert not code_ok, (site, index, value)
                # Self-testing: some word exposes the fault.
                assert any(not code_ok for code_ok, _ in outcomes), (
                    site,
                    index,
                    value,
                )

    def test_common_clock_failure_freezes_output(self):
        """Line g stuck: nothing latches — 'the system will stop and no
        output, correct or incorrect, will be generated'."""
        alpt = ALPT(self.WIDTH)
        bits = [1, 1, 0, 0]
        alpt.feed_pair(bits, [1 - b for b in bits])
        alpt.inject(TranslatorFault("g", 0, 0))
        new_bits = [0, 1, 1, 0]
        data, par = alpt.feed_pair(new_bits, [1 - b for b in new_bits])
        assert data == bits  # previous word retained


class TestPaltHealthy:
    @pytest.mark.parametrize("width", [2, 3, 4])
    def test_outputs_alternate(self, width):
        palt = PALT(width)
        for word in range(1 << width):
            stored = [(word >> i) & 1 for i in range(width)]
            first = palt.outputs_for_period(stored, 0)
            second = palt.outputs_for_period(stored, 1)
            assert first == stored
            assert second == [1 - b for b in stored]

    def test_code_output_valid(self):
        palt = PALT(4)
        stored = [1, 0, 1, 1]
        code = palt.code_output(stored, parity(stored))
        assert PALT.code_valid(code)

    def test_code_output_detects_bad_parity(self):
        palt = PALT(4)
        stored = [1, 0, 1, 1]
        code = palt.code_output(stored, 1 - parity(stored))
        assert not PALT.code_valid(code)

    def test_address_parity_symmetric(self):
        palt = PALT(4)
        stored = [1, 1, 0, 0]
        stored_par = parity(stored) ^ 1  # written with address parity 1
        code = palt.code_output(stored, stored_par, address_parity=1)
        assert PALT.code_valid(code)


class TestPaltFaults:
    """Theorem 4.3: with the 1-out-of-2 code checked (and downstream
    alternation monitoring for the data outputs), the PALT is
    self-checking."""

    WIDTH = 4

    def exercise(self, fault):
        palt = PALT(self.WIDTH)
        palt.inject(fault)
        any_exposed = False
        for word in range(1 << self.WIDTH):
            stored = [(word >> i) & 1 for i in range(self.WIDTH)]
            code = palt.code_output(stored, parity(stored))
            first = palt.outputs_for_period(stored, 0)
            second = palt.outputs_for_period(stored, 1)
            alternates = all(b == 1 - a for a, b in zip(first, second))
            wrong = first != stored
            detected = (not PALT.code_valid(code)) or (not alternates)
            if wrong or not alternates or not PALT.code_valid(code):
                any_exposed = True
            # Fault-secure: wrong data must come with a detection.
            if wrong:
                assert detected, fault
        return any_exposed

    def test_every_fault_exposed(self):
        sites = [(s, k) for s in ("a", "b", "c", "d", "e") for k in range(self.WIDTH)]
        sites += [("f", 0), ("g", 0), ("h", 0)]
        for site, index in sites:
            for value in (0, 1):
                assert self.exercise(TranslatorFault(site, index, value)), (
                    site,
                    index,
                    value,
                )


class TestRoundTrip:
    """ALPT -> (memory word) -> PALT reproduces the alternating pair —
    the Theorem 4.4 feedback loop at translator level."""

    @pytest.mark.parametrize("width", [2, 3, 4, 5])
    def test_roundtrip(self, width):
        alpt, palt = ALPT(width), PALT(width)
        for word in range(1 << width):
            bits = [(word >> i) & 1 for i in range(width)]
            comp = [1 - b for b in bits]
            data, par = alpt.feed_pair(bits, comp)
            assert PALT.code_valid(palt.code_output(data, par))
            assert palt.outputs_for_period(data, 0) == bits
            assert palt.outputs_for_period(data, 1) == comp
