"""Tests for the reliability models (repro.system.reliability)."""

import pytest

from repro.system.reliability import (
    PROTECTION_DEGREES,
    hardcore_chain_reliability,
    mission_reliability,
    peak_utility_degree,
    render_tradeoff,
    tradeoff_curve,
)


class TestTradeoff:
    def test_peak_at_single_fault(self):
        """The Figure 7.2 punchline."""
        points = tradeoff_curve()
        assert peak_utility_degree(points) == "single fault"

    def test_benefit_monotone_cost_monotone(self):
        points = tradeoff_curve()
        benefits = [p.benefit for p in points]
        costs = [p.cost for p in points]
        assert benefits == sorted(benefits)
        assert costs == sorted(costs)

    def test_custom_parameters(self):
        points = tradeoff_curve(
            benefit=[0, 1, 8, 9], cost=[0, 3, 4, 5]
        )
        assert peak_utility_degree(points) == "unidirectional faults"

    def test_parameter_length_checked(self):
        with pytest.raises(ValueError):
            tradeoff_curve(benefit=[1, 2], cost=[1, 2])

    def test_render(self):
        text = render_tradeoff(tradeoff_curve())
        for degree in PROTECTION_DEGREES:
            assert degree in text
        assert "utility" in text


class TestMissionReliability:
    def test_full_coverage_is_safe(self):
        assert mission_reliability(0.5, 10.0, 1.0) == pytest.approx(1.0)

    def test_zero_coverage_is_plain_exponential(self):
        import math

        assert mission_reliability(0.1, 2.0, 0.0) == pytest.approx(
            math.exp(-0.2)
        )

    def test_monotone_in_coverage(self):
        values = [mission_reliability(0.3, 5.0, c) for c in (0.0, 0.5, 0.9, 1.0)]
        assert values == sorted(values)

    def test_validation(self):
        with pytest.raises(ValueError):
            mission_reliability(-1, 1, 0.5)
        with pytest.raises(ValueError):
            mission_reliability(1, 1, 2.0)


class TestHardcoreChain:
    def test_improves_with_replication(self):
        values = [hardcore_chain_reliability(0.2, n) for n in (1, 2, 3, 4)]
        assert values == sorted(values)
        assert values[-1] > 0.99
