"""Unit tests for fault models (repro.logic.faults)."""

import pytest

from repro.logic.faults import (
    MultipleFault,
    PinStuckAt,
    StuckAt,
    enumerate_pin_faults,
    enumerate_single_faults,
    enumerate_stem_faults,
    fault_overrides,
)
from repro.logic.gates import GateKind
from repro.logic.network import NetworkBuilder


def fan_net():
    b = NetworkBuilder(["a", "b"])
    n1 = b.add("n1", GateKind.NAND, ["a", "b"])
    b.add("o1", GateKind.NOT, [n1])
    b.add("o2", GateKind.AND, [n1, "a"])
    return b.build(["o1", "o2"])


class TestFaultObjects:
    def test_stuck_at_validation(self):
        with pytest.raises(ValueError):
            StuckAt("x", 2)

    def test_pin_validation(self):
        with pytest.raises(ValueError):
            PinStuckAt("g", -1, 0)
        with pytest.raises(ValueError):
            PinStuckAt("g", 0, 5)

    def test_describe(self):
        assert StuckAt("n1", 0).describe() == "n1 s/0"
        assert PinStuckAt("g", 2, 1).describe() == "g.pin2 s/1"
        mf = MultipleFault((StuckAt("a", 1), StuckAt("b", 1)))
        assert "a s/1" in mf.describe() and "b s/1" in mf.describe()

    def test_unidirectional(self):
        uni = MultipleFault((StuckAt("a", 1), StuckAt("b", 1)))
        assert uni.is_unidirectional()
        mixed = MultipleFault((StuckAt("a", 1), StuckAt("b", 0)))
        assert not mixed.is_unidirectional()


class TestEnumeration:
    def test_stem_fault_count(self):
        net = fan_net()
        stems = list(enumerate_stem_faults(net))
        # 2 inputs + 3 gates, two polarities each.
        assert len(stems) == 10

    def test_stems_without_inputs(self):
        net = fan_net()
        stems = list(enumerate_stem_faults(net, include_inputs=False))
        assert len(stems) == 6
        assert all(f.line not in ("a", "b") for f in stems)

    def test_pin_fault_count(self):
        net = fan_net()
        pins = list(enumerate_pin_faults(net))
        # pins: n1 has 2, o1 has 1, o2 has 2 -> 5 pins * 2 polarities.
        assert len(pins) == 10

    def test_single_fault_collapsing(self):
        net = fan_net()
        collapsed = enumerate_single_faults(net, collapse=True)
        full = enumerate_single_faults(net, collapse=False)
        assert len(collapsed) < len(full)
        # n1 fans out, so faults on its two branch pins must survive.
        surviving_pins = [
            f for f in collapsed if isinstance(f, PinStuckAt)
        ]
        branch_pins = {
            (f.gate, f.pin_index)
            for f in surviving_pins
        }
        assert ("o1", 0) in branch_pins
        assert ("o2", 0) in branch_pins

    def test_collapse_drops_single_branch_pins(self):
        b = NetworkBuilder(["a"])
        b.add("n1", GateKind.NOT, ["a"])
        b.add("n2", GateKind.NOT, ["n1"])
        net = b.build(["n2"])
        collapsed = enumerate_single_faults(net, collapse=True)
        # n1 -> n2 pin is equivalent to the n1 stem; a -> n1 likewise.
        assert all(not isinstance(f, PinStuckAt) for f in collapsed)

    def test_no_pins_option(self):
        net = fan_net()
        faults = enumerate_single_faults(net, include_pins=False)
        assert all(isinstance(f, StuckAt) for f in faults)


class TestOverrides:
    def test_stem_override(self):
        stems, pins = fault_overrides(StuckAt("n1", 1))
        assert stems == {"n1": 1} and pins == {}

    def test_pin_override(self):
        stems, pins = fault_overrides(PinStuckAt("o2", 1, 0))
        assert stems == {} and pins == {("o2", 1): 0}

    def test_multiple_override(self):
        mf = MultipleFault((StuckAt("a", 0), PinStuckAt("o2", 0, 1)))
        stems, pins = fault_overrides(mf)
        assert stems == {"a": 0} and pins == {("o2", 0): 1}
