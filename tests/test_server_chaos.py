"""``repro serve`` under sabotage: the service-resilience suite.

The worker-level chaos discipline of ``tests/test_supervisor.py``
applied one layer up: arm a service failure mode (a deterministically
slow campaign, a slowloris client, a subscriber that vanishes
mid-stream, a SIGKILL'd server process), run the real asyncio server on
an ephemeral port, and assert the hardening layer holds — overload is
shed with 429, deadlines and abandonment cancel cooperatively and free
lanes, drain keeps the probes honest, and the write-ahead journal makes
a kill -9 recoverable with statuses byte-identical to an uninterrupted
run.
"""

import asyncio
import http.client
import json
import os
import re
import signal
import socket
import subprocess
import sys
import time

import pytest

from repro import obs
from repro.engine.store import STORE
from repro.engine.supervisor import CancelToken
from repro.obs.recorder import MemoryRecorder
from repro.qa import chaos
from repro.server import (
    CampaignServer,
    RequestJournal,
    _execute_campaign,
    _Job,
    canonical_request,
)

from tests.test_server import BENCH, _get, _post_campaign, _run

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

BENCH_B = """
INPUT(a)
INPUT(b)
INPUT(c)
g1 = OR(a, b)
g2 = NAND(g1, c)
OUTPUT(g2)
"""

BENCH_C = """
INPUT(a)
INPUT(b)
g1 = XOR(a, b)
OUTPUT(g1)
"""

#: A wider circuit so the default serial sweep spans ~8 chunks — every
#: cancellation window in these tests lands *between* chunks.
CHAIN_BENCH = "\n".join(
    ["INPUT(a)", "INPUT(b)", "INPUT(c)", "INPUT(d)", "g0 = AND(a, b)"]
    + [
        f"g{i} = {kind}(g{i - 1}, {inp})"
        for i, (kind, inp) in enumerate(
            [
                ("OR", "c"),
                ("NAND", "d"),
                ("XOR", "a"),
                ("NOR", "b"),
                ("AND", "c"),
                ("OR", "d"),
                ("XOR", "b"),
                ("NAND", "a"),
            ],
            start=1,
        )
    ]
    + ["OUTPUT(g8)"]
)


@pytest.fixture(autouse=True)
def isolated_telemetry():
    yield
    chaos.release_service_hangs()
    STORE.enabled = False
    STORE.clear()
    obs.reset()


async def _with_server(inner, **kwargs):
    server = CampaignServer(host="127.0.0.1", port=0, **kwargs)
    await server.start()
    try:
        return await inner(server)
    finally:
        await server.close()


async def _post_raw(host, port, body):
    """POST /campaign, return (head text, body bytes) — for asserting
    on raw status lines and headers (Retry-After)."""
    payload = json.dumps(body).encode()
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(
        b"POST /campaign HTTP/1.1\r\nHost: t\r\n"
        b"Content-Type: application/json\r\n"
        + f"Content-Length: {len(payload)}\r\n\r\n".encode()
        + payload
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, rest = raw.partition(b"\r\n\r\n")
    return head.decode(), rest


async def _wait_for(predicate, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while not predicate():
        if time.monotonic() >= deadline:
            raise AssertionError("condition not reached in time")
        await asyncio.sleep(interval)


class TestAdmissionControl:
    def test_overload_sheds_429_with_retry_after(self):
        async def scenario(server):
            with chaos.sabotage_service("campaign-slow", slow_s=0.2):
                first = asyncio.ensure_future(
                    _post_campaign(
                        server.host,
                        server.port,
                        {"netlist": CHAIN_BENCH, "transport": "inline"},
                    )
                )
                await _wait_for(lambda: server._outstanding() >= 1)
                head, body = await _post_raw(
                    server.host,
                    server.port,
                    {"netlist": BENCH_B, "transport": "inline"},
                )
                assert " 429 " in head.splitlines()[0]
                assert re.search(r"(?im)^retry-after: \d+\r?$", head), head
                assert "retry later" in json.loads(body)["error"]
                # The running campaign is unharmed by the shed.
                _status, lines = await first
            assert lines[-1]["event"] == "result"
            assert "error" not in lines[-1]
            _status, metrics = await _get(server.host, server.port, "/metrics")
            assert 'repro_serve_shed_total{reason="queue-full"} 1' in metrics

        _run(_with_server(scenario, workers=1, queue_limit=0))

    def test_coalescing_is_exempt_from_admission_control(self):
        async def scenario(server):
            with chaos.sabotage_service("campaign-slow", slow_s=0.2):
                body = {"netlist": CHAIN_BENCH, "transport": "inline"}
                first = asyncio.ensure_future(
                    _post_campaign(server.host, server.port, body)
                )
                await _wait_for(lambda: server._outstanding() >= 1)
                # Identical request: admitted (coalesced), not shed.
                _status, lines = await _post_campaign(
                    server.host, server.port, body
                )
                assert lines[0]["disposition"] == "coalesced"
                assert lines[-1]["event"] == "result"
                await first
            assert server.executions == 1

        _run(_with_server(scenario, workers=1, queue_limit=0))


class TestDeadlines:
    def test_deadline_cancels_campaign_and_frees_the_lane(self):
        async def scenario(server):
            with chaos.sabotage_service("campaign-slow", slow_s=0.2):
                started = time.monotonic()
                _status, lines = await _post_campaign(
                    server.host,
                    server.port,
                    {
                        "netlist": CHAIN_BENCH,
                        "transport": "inline",
                        "deadline_s": 0.3,
                    },
                )
                elapsed = time.monotonic() - started
            final = lines[-1]
            assert final["event"] == "result"
            assert final.get("cancelled") is True
            assert "deadline exceeded" in final["error"]
            # The cancellation itself is a flight event on the stream.
            assert any(
                l["event"] == "campaign.cancelled" for l in lines
            ), [l["event"] for l in lines]
            # Cancelled between chunks — far sooner than the ~1.6s the
            # sabotaged campaign would take (8 chunks x 0.2s).
            assert elapsed < 1.2, elapsed
            assert server._outstanding() == 0
            _status, metrics = await _get(server.host, server.port, "/metrics")
            assert 'repro_serve_cancelled_total{kind="deadline"} 1' in metrics
            assert (
                'repro_campaign_cancelled_total{kind="deadline"} 1' in metrics
            )

        _run(_with_server(scenario))

    def test_server_default_deadline_applies(self):
        async def scenario(server):
            with chaos.sabotage_service("campaign-slow", slow_s=0.2):
                _status, lines = await _post_campaign(
                    server.host,
                    server.port,
                    {"netlist": CHAIN_BENCH, "transport": "inline"},
                )
            assert lines[-1].get("cancelled") is True
            assert "deadline" in lines[-1]["error"]

        _run(_with_server(scenario, deadline_s=0.3))

    def test_bad_deadline_rejected(self):
        for bad in (0, -1, "soon", True):
            with pytest.raises(Exception, match="deadline_s"):
                canonical_request({"netlist": BENCH, "deadline_s": bad})


class TestSubscriberDisconnect:
    def test_last_subscriber_vanishing_cancels_the_orphan(self):
        async def scenario(server):
            with chaos.sabotage_service("campaign-slow", slow_s=0.2):
                lines = await chaos.disconnecting_subscriber(
                    server.host,
                    server.port,
                    {"netlist": CHAIN_BENCH, "transport": "inline"},
                    after_lines=1,
                )
                assert lines and lines[0]["event"] == "accepted"
                job = next(iter(server.jobs.values()))
                await asyncio.wait_for(job.done.wait(), timeout=5.0)
            assert job.result.get("cancelled") is True
            assert "subscribers disconnected" in job.result["error"]
            assert job.subscribers == []  # queue removed with the client
            _status, metrics = await _get(server.host, server.port, "/metrics")
            assert (
                'repro_serve_cancelled_total{kind="abandoned"} 1' in metrics
            )

        _run(_with_server(scenario))

    def test_detached_recovery_jobs_survive_without_subscribers(self):
        async def scenario(server):
            request = canonical_request(
                {"netlist": BENCH_C, "transport": "inline"}
            )
            job, disposition = server.submit(request, detached=True)
            assert disposition == "executed"
            await asyncio.wait_for(job.done.wait(), timeout=10.0)
            assert "error" not in job.result

        _run(_with_server(scenario))


class TestSlowClients:
    def test_slowloris_head_gets_408(self):
        async def scenario(server):
            status = await chaos.slowloris_probe(
                server.host, server.port, pause_s=10.0
            )
            assert status == 408
            _status, metrics = await _get(server.host, server.port, "/metrics")
            assert 'repro_serve_read_timeouts_total{phase="head"} 1' in metrics

        _run(_with_server(scenario, read_timeout=0.2))

    def test_stalled_body_gets_408(self):
        async def scenario(server):
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            writer.write(
                b"POST /campaign HTTP/1.1\r\nHost: t\r\n"
                b"Content-Length: 500\r\n\r\n{\"netli"  # …and stall
            )
            await writer.drain()
            raw = await reader.read()
            writer.close()
            assert b" 408 " in raw.splitlines()[0]

        _run(_with_server(scenario, read_timeout=0.2))


class TestBoundedBuffers:
    def test_subscriber_queue_drops_oldest_progress_keeps_result(self):
        async def scenario():
            job = _Job("fp", {}, CancelToken(), queue_limit=4)
            queue = job.subscribe()
            for i in range(10):
                job.publish({"event": "campaign.chunk", "i": i})
            job.finish({"faults": 1})
            items = []
            while not queue.empty():
                items.append(queue.get_nowait())
            return job, items

        job, items = _run(scenario())
        assert len(items) == 4  # bounded, not 11
        assert items[-1]["event"] == "result"  # terminal line survives
        assert all(item["i"] >= 7 for item in items[:-1])  # oldest dropped
        assert len(job.history) <= 4  # replay buffer bounded too

    def test_finished_jobs_prune_to_lru(self):
        async def scenario(server):
            for bench in (BENCH, BENCH_B, BENCH_C):
                _status, lines = await _post_campaign(
                    server.host,
                    server.port,
                    {"netlist": bench, "transport": "inline"},
                )
                assert lines[-1]["event"] == "result"
            assert len(server.jobs) <= 2
            assert server.executions == 3
            _status, metrics = await _get(server.host, server.port, "/metrics")
            assert "repro_serve_jobs_evicted_total 1" in metrics

        _run(_with_server(scenario, max_jobs=2))


class TestDrain:
    def test_drain_sheds_cancels_and_keeps_probes_honest(self, tmp_path):
        async def scenario(server):
            status_r, _body = await _get(server.host, server.port, "/readyz")
            assert "200" in status_r
            with chaos.sabotage_service("campaign-slow", slow_s=0.2):
                first = asyncio.ensure_future(
                    _post_campaign(
                        server.host,
                        server.port,
                        {"netlist": CHAIN_BENCH, "transport": "inline"},
                    )
                )
                await _wait_for(lambda: server._outstanding() >= 1)
                drain_task = asyncio.ensure_future(server.drain(timeout=0.05))
                await _wait_for(lambda: server.draining)
                # Liveness stays green, readiness flips, POSTs shed.
                status_h, health = await _get(
                    server.host, server.port, "/healthz"
                )
                assert "200" in status_h
                assert json.loads(health)["draining"] is True
                status_r, _body = await _get(
                    server.host, server.port, "/readyz"
                )
                assert "503" in status_r
                status_p, lines_p = await _post_campaign(
                    server.host,
                    server.port,
                    {"netlist": BENCH_B, "transport": "inline"},
                )
                assert "503" in status_p
                assert "draining" in lines_p[0]["error"]
                await drain_task
                _status, lines = await first
            final = lines[-1]
            assert final.get("cancelled") is True
            assert "draining" in final["error"]
            # The drained request is still *pending* in the journal:
            # exactly the work a --recover restart must finish.
            pending = server.journal.load_pending()
            assert len(pending) == 1
            _status, metrics = await _get(server.host, server.port, "/metrics")
            assert 'repro_serve_shed_total{reason="draining"} 1' in metrics
            assert 'repro_serve_cancelled_total{kind="drain"} 1' in metrics

        _run(_with_server(scenario, state_dir=str(tmp_path / "state")))


class TestJournal:
    def test_tolerates_torn_tail_and_compacts(self, tmp_path):
        journal = RequestJournal(str(tmp_path))
        journal.open()
        journal.accepted("fp1", {"netlist": "x"})
        journal.accepted("fp2", {"netlist": "y"})
        journal.done("fp1", {"ok": True})
        with open(journal.path, "a") as handle:
            handle.write('{"op": "accepted", "fingerprint": "fp3"')  # torn
        pending = journal.load_pending()
        assert list(pending) == ["fp2"]
        journal.compact(pending)
        assert list(journal.load_pending()) == ["fp2"]
        journal.done("fp2", {"ok": False})
        assert journal.load_pending() == {}
        journal.close()

    def test_completed_requests_do_not_replay_on_recover(self, tmp_path):
        state = str(tmp_path / "state")

        async def first_life(server):
            _status, lines = await _post_campaign(
                server.host,
                server.port,
                {"netlist": BENCH_C, "transport": "inline"},
            )
            assert lines[-1]["event"] == "result"

        async def second_life(server):
            assert server.recovered == 0
            assert server.executions == 0

        _run(_with_server(first_life, state_dir=state))
        _run(_with_server(second_life, state_dir=state, recover=True))


def _spawn_server(extra_args, env, timeout=30.0):
    """Start a real `repro serve` subprocess, return (proc, port)."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"] + extra_args,
        cwd=REPO_ROOT,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    deadline = time.monotonic() + timeout
    for line in proc.stdout:
        match = re.search(r"listening on http://[\d.]+:(\d+)", line)
        if match:
            return proc, int(match.group(1))
        if time.monotonic() > deadline:  # pragma: no cover
            break
    proc.kill()
    raise AssertionError("server subprocess never reported its port")


def _http_json(port, path, timeout=10.0):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        conn.request("GET", path)
        return json.loads(conn.getresponse().read())
    finally:
        conn.close()


def _post_blocking(port, body, timeout=60.0):
    """POST /campaign and return the decoded NDJSON lines (http.client
    de-chunks the stream for us)."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=timeout)
    try:
        payload = json.dumps(body)
        conn.request(
            "POST",
            "/campaign",
            body=payload,
            headers={"Content-Type": "application/json"},
        )
        raw = conn.getresponse().read()
        return [json.loads(line) for line in raw.decode().splitlines()]
    finally:
        conn.close()


def _post_until_chunk(port, body, timeout=30.0):
    """POST /campaign over a raw socket and block until the first
    ``campaign.chunk`` flight event arrives, proving the campaign is
    genuinely mid-flight (some chunks checkpointed, more to go).
    Returns the still-open socket — the caller kills the server *while
    the subscriber is connected*, so the accepted record stays pending."""
    payload = json.dumps(body).encode()
    sock = socket.create_connection(("127.0.0.1", port), timeout=timeout)
    sock.sendall(
        b"POST /campaign HTTP/1.1\r\nHost: t\r\n"
        b"Content-Type: application/json\r\n"
        + f"Content-Length: {len(payload)}\r\n\r\n".encode()
        + payload
    )
    buffer = b""
    while b"campaign.chunk" not in buffer:
        data = sock.recv(4096)
        if not data:
            raise AssertionError(
                f"server closed before first chunk: {buffer.decode()!r}"
            )
        buffer += data
    return sock


@pytest.mark.slow
class TestKillRecover:
    def test_sigkill_then_recover_is_byte_identical(self, tmp_path):
        """The acceptance drill: kill -9 a serving process mid-campaign,
        restart with --recover, and the journaled request completes with
        statuses byte-identical to an uninterrupted run."""
        state = str(tmp_path / "state")
        request = {
            "netlist": CHAIN_BENCH,
            "transport": "inline",
            "statuses": True,
        }
        # The uninterrupted yardstick, computed in-process through the
        # same execution path the server uses.
        expected = _execute_campaign(
            canonical_request(dict(request)), MemoryRecorder()
        )["statuses"]

        base_env = dict(os.environ)
        base_env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        chaos_env = dict(
            base_env,
            REPRO_CHAOS_SERVE="campaign-slow",
            REPRO_CHAOS_SLOW_S="0.3",
        )
        proc, port = _spawn_server(
            ["--state-dir", state, "--workers", "1"], chaos_env
        )
        sock = None
        try:
            sock = _post_until_chunk(port, request)
            os.kill(proc.pid, signal.SIGKILL)
        finally:
            if proc.poll() is None:  # pragma: no cover - kill failed
                proc.kill()
            proc.wait(timeout=15)
            proc.stdout.close()
            if sock is not None:
                sock.close()

        # The WAL survived the kill with the request still pending.
        journal = RequestJournal(state)
        assert len(journal.load_pending()) == 1

        proc2, port2 = _spawn_server(
            ["--state-dir", state, "--recover"], base_env
        )
        try:
            deadline = time.monotonic() + 60.0
            while True:
                health = _http_json(port2, "/healthz")
                if health["recovered"] >= 1 and health["replaying"] == 0:
                    break
                assert time.monotonic() < deadline, health
                time.sleep(0.05)
            # The journaled request was completed by recovery: an
            # identical submission replays from the store, byte-identical
            # to the uninterrupted run.
            lines = _post_blocking(port2, request)
            final = lines[-1]
            assert final["event"] == "result"
            assert final["replayed"] is True
            assert final["statuses"] == expected
            # ...and the journal is clean again.
            assert journal.load_pending() == {}
        finally:
            proc2.send_signal(signal.SIGTERM)
            try:
                proc2.wait(timeout=20)
            except subprocess.TimeoutExpired:  # pragma: no cover
                proc2.kill()
                proc2.wait()
            proc2.stdout.close()
