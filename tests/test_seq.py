"""Tests for the sequential substrate (repro.seq)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.seq.dff import DelayChain, DFlipFlop, Register
from repro.seq.encoding import (
    binary_encoding,
    gray_encoding,
    minimum_width,
    one_hot_encoding,
)
from repro.seq.machine import StateTable, StateTableError, single_input_table
from repro.seq.simulator import FlipFlopFault, SequentialCircuit
from repro.seq.synthesis import machine_tables, synthesize_machine
from repro.workloads.randomlogic import random_machine, random_input_vectors


class TestDFlipFlop:
    def test_latches_on_rising_edge_only(self):
        ff = DFlipFlop()
        ff.clock_edge(1, 0)
        assert ff.output == 0
        ff.clock_edge(1, 1)
        assert ff.output == 1
        ff.clock_edge(0, 1)  # clock stays high: no latch
        assert ff.output == 1
        ff.clock_edge(0, 0)
        assert ff.output == 1
        ff.clock_edge(0, 1)
        assert ff.output == 0

    def test_stuck_pins(self):
        ff = DFlipFlop()
        ff.stuck_d = 1
        ff.clock_edge(0, 1)
        assert ff.output == 1
        ff.stuck_d = None
        ff.stuck_q = 0
        assert ff.output == 0
        ff.stuck_q = None
        ff.stuck_clock = 0
        ff.clock_edge(1, 1)
        assert ff.q == 1  # the pre-fault latched value persists

    def test_reset(self):
        ff = DFlipFlop(1)
        ff.reset()
        assert ff.output == 0


class TestDelayChain:
    def test_two_stage_delay_pre_edge_view(self):
        """The combinational block reads the chain *before* the clock
        edge (as SequentialCircuit.step does): the value seen in period t
        entered the chain in period t-2 — the Figure 4.2a timing."""
        chain = DelayChain(2)
        seen = []
        for d in (1, 0, 1, 1, 0):
            seen.append(chain.output)  # pre-edge read
            chain.clock_edge(d, 1)
            chain.clock_edge(d, 0)
        assert seen == [0, 0, 1, 0, 1]

    def test_two_stage_delay_post_edge_view(self):
        chain = DelayChain(2)
        outputs = []
        for d in (1, 0, 1, 1, 0):
            chain.clock_edge(d, 1)
            chain.clock_edge(d, 0)
            outputs.append(chain.output)
        assert outputs == [0, 1, 0, 1, 1]

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            DelayChain(0)

    def test_register(self):
        reg = Register(3)
        reg.clock_edge([1, 0, 1], 1)
        assert reg.outputs == [1, 0, 1]
        with pytest.raises(ValueError):
            reg.clock_edge([1], 1)


class TestEncodings:
    def test_minimum_width(self):
        assert minimum_width(1) == 1
        assert minimum_width(2) == 1
        assert minimum_width(4) == 2
        assert minimum_width(5) == 3

    def test_binary_codes_distinct(self):
        enc = binary_encoding(["a", "b", "c"])
        codes = set(enc.codes.values())
        assert len(codes) == 3

    def test_gray_adjacent_differ_by_one_bit(self):
        enc = gray_encoding([f"s{i}" for i in range(8)])
        states = [f"s{i}" for i in range(8)]
        for a, b in zip(states, states[1:]):
            diff = sum(
                x != y for x, y in zip(enc.code(a), enc.code(b))
            )
            assert diff == 1

    def test_one_hot(self):
        enc = one_hot_encoding(["a", "b"])
        assert enc.code("a") == (1, 0)
        assert enc.code("b") == (0, 1)

    def test_decode_roundtrip(self):
        enc = binary_encoding(["a", "b", "c"])
        for state in ("a", "b", "c"):
            assert enc.decode(enc.code(state)) == state

    def test_unused_points(self):
        enc = binary_encoding(["a", "b", "c"])
        assert len(enc.unused_points()) == 1

    def test_width_too_small(self):
        with pytest.raises(ValueError):
            binary_encoding(["a", "b", "c"], width=1)


class TestStateTable:
    def test_incomplete_rejected(self):
        with pytest.raises(StateTableError):
            StateTable(
                ["s"],
                1,
                1,
                {"s": {(0,): ("s", (0,))}},  # missing input (1,)
                "s",
            )

    def test_unknown_next_state_rejected(self):
        with pytest.raises(StateTableError):
            single_input_table(
                "m", {"s": {0: ("zz", 0), 1: ("s", 0)}}, "s"
            )

    def test_run_and_reachability(self, detector):
        outs = detector.run([(0,), (1,), (0,), (1,)])
        assert outs == [(0,), (0,), (0,), (1,)]
        assert detector.reachable_states() == ("S0", "S1", "S2", "S3")

    def test_bad_initial_state(self):
        with pytest.raises(StateTableError):
            single_input_table("m", {"s": {0: ("s", 0), 1: ("s", 0)}}, "zz")


class TestSynthesis:
    def test_kohavi_equivalence(self, detector, rng):
        synth = synthesize_machine(detector)
        stream = random_input_vectors(rng, 1, 60)
        assert synth.run_symbols(stream) == detector.run(stream)

    @settings(max_examples=12, deadline=None)
    @given(st.randoms(use_true_random=False))
    def test_random_machine_equivalence(self, rnd):
        machine = random_machine(rnd, rnd.randint(2, 5))
        synth = synthesize_machine(machine)
        stream = [(rnd.randint(0, 1),) for _ in range(50)]
        assert synth.run_symbols(stream) == machine.run(stream)

    @settings(max_examples=8, deadline=None)
    @given(st.randoms(use_true_random=False))
    def test_all_encodings_equivalent(self, rnd):
        machine = random_machine(rnd, 4)
        stream = [(rnd.randint(0, 1),) for _ in range(30)]
        reference = machine.run(stream)
        for enc_fn in (binary_encoding, gray_encoding, one_hot_encoding):
            synth = synthesize_machine(machine, enc_fn(machine.states))
            assert synth.run_symbols(stream) == reference

    def test_machine_tables_dont_cares(self, detector):
        enc = binary_encoding(detector.states)
        tables, dont_care, names = machine_tables(detector, enc)
        assert dont_care.is_zero()  # 4 states fill the 2-bit code space
        assert names == ("x0", "y0", "y1")

    def test_unused_codes_become_dont_cares(self):
        machine = single_input_table(
            "m3",
            {
                "a": {0: ("b", 0), 1: ("a", 0)},
                "b": {0: ("c", 1), 1: ("a", 0)},
                "c": {0: ("a", 0), 1: ("b", 1)},
            },
            "a",
        )
        enc = binary_encoding(machine.states)
        _tables, dont_care, _names = machine_tables(machine, enc)
        assert dont_care.count_ones() == 2  # code 11 for both inputs


class TestSequentialCircuit:
    def test_feedback_validation(self, detector):
        synth = synthesize_machine(detector)
        net = synth.circuit.network
        with pytest.raises(ValueError):
            SequentialCircuit(net, {"Y0": "nonexistent"})
        with pytest.raises(ValueError):
            SequentialCircuit(net, {"nonexistent": "y0"})

    def test_ff_fault_final_stage(self, detector, rng):
        synth = synthesize_machine(detector)
        stream = [
            {"x0": v} for (v,) in random_input_vectors(rng, 1, 40)
        ]
        healthy = synth.circuit.output_trace(stream)
        fault = FlipFlopFault("y0", 0, 1)
        faulty = synth.circuit.output_trace(stream, ff_fault=fault)
        assert healthy != faulty  # the stuck state bit corrupts outputs

    def test_reset_restores_initial_state(self, detector):
        synth = synthesize_machine(detector)
        synth.run_symbols([(0,), (1,)])
        synth.circuit.reset()
        assert synth.circuit.present_state == {
            "y0": 0,
            "y1": 0,
        }

    def test_counts(self, detector):
        synth = synthesize_machine(detector)
        assert synth.circuit.flip_flop_count() == 2
        assert synth.circuit.gate_count() > 0
