"""The theorem suite: every thesis theorem as an executable statement.

One test per theorem, quantified over random populations where the
theorem universally quantifies.  This file is the index between the
thesis's mathematics and the library's implementation.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.simulate import ScalSimulator
from repro.logic.evaluate import line_tables, network_function
from repro.logic.faults import StuckAt, enumerate_stem_faults
from repro.logic.selfdual import self_dualize_table
from repro.logic.synthesis import sop_network
from repro.logic.truthtable import TruthTable
from repro.workloads.randomlogic import (
    random_alternating_network,
    random_self_dual_table,
    random_truth_table,
)

rnds = st.randoms(use_true_random=False)


class TestChapter2:
    @settings(max_examples=25, deadline=None)
    @given(rnds)
    def test_theorem_2_1_alternating_iff_self_dual(self, rnd):
        """A network is an alternating network iff F is self-dual: the
        output pair (F(X), F(X̄)) alternates for every pair iff the
        table is self-dual."""
        table = (
            random_self_dual_table(rnd, 3)
            if rnd.random() < 0.5
            else random_truth_table(rnd, 3)
        )
        net = sop_network(table, network_name="t21")
        out = network_function(net)
        alternates_everywhere = all(
            out.value(p ^ 0b111) == 1 - out.value(p) for p in range(8)
        )
        assert alternates_everywhere == table.is_self_dual()

    @settings(max_examples=15, deadline=None)
    @given(rnds)
    def test_theorem_2_2_scal_definition(self, rnd):
        """The Theorem 2.2 conditions, evaluated as the oracle: a SCAL
        network's faults never produce undetected wrong pairs."""
        net = random_alternating_network(rnd, 3)
        verdict = ScalSimulator(net).verdict()
        assert verdict.is_self_checking


class TestChapter3:
    @settings(max_examples=15, deadline=None)
    @given(rnds)
    def test_theorem_3_5_irredundant_self_dual_is_self_testing(self, rnd):
        """Every fault on a live line of an irredundant self-dual
        network affects the output for some input."""
        from repro.core.redundancy import is_irredundant

        net = random_alternating_network(rnd, 3)
        if not is_irredundant(net):
            return
        sim = ScalSimulator(net)
        for fault in sim.single_fault_universe(include_pins=False):
            assert sim.response(fault).is_self_testing, fault.describe()

    @settings(max_examples=15, deadline=None)
    @given(rnds)
    def test_theorem_3_6_alternating_lines_are_safe(self, rnd):
        """The network is self-checking w.r.t. every line whose value
        alternates (self-dual line table)."""
        net = random_alternating_network(rnd, 3)
        tables = line_tables(net)
        sim = ScalSimulator(net)
        for line in net.lines():
            if tables[line].is_self_dual():
                for value in (0, 1):
                    resp = sim.response(StuckAt(line, value))
                    assert resp.is_fault_secure, (line, value)

    @settings(max_examples=15, deadline=None)
    @given(rnds)
    def test_theorem_3_7_no_fanout_unate_paths_are_safe(self, rnd):
        from repro.logic.paths import condition_b_holds

        net = random_alternating_network(rnd, 3)
        out = net.outputs[0]
        sim = ScalSimulator(net)
        for line in net.lines():
            if line == out:
                continue
            if condition_b_holds(net, line, out):
                for value in (0, 1):
                    assert sim.response(
                        StuckAt(line, value)
                    ).is_fault_secure, (line, value)

    @settings(max_examples=15, deadline=None)
    @given(rnds)
    def test_theorem_3_8_equal_parity_paths_are_safe(self, rnd):
        from repro.logic.paths import condition_c_holds

        net = random_alternating_network(rnd, 3)
        out = net.outputs[0]
        sim = ScalSimulator(net)
        for line in net.lines():
            if line == out:
                continue
            if condition_c_holds(net, line, out):
                for value in (0, 1):
                    assert sim.response(
                        StuckAt(line, value)
                    ).is_fault_secure, (line, value)

    @settings(max_examples=25, deadline=None)
    @given(rnds)
    def test_yamamoto_two_level_self_dual_is_scal(self, rnd):
        """The Section 3.3 result: two-level self-dual networks with
        monotonic gates (plus input inverters) are self-checking."""
        table = self_dualize_table(random_truth_table(rnd, 2))
        net = sop_network(table, network_name="yam")
        assert ScalSimulator(net).verdict().is_self_checking


class TestChapter4:
    def test_theorem_4_1_alpt(self):
        """Covered exhaustively in tests/test_translators.py; assert the
        headline here for the index."""
        from repro.scal.translators import ALPT
        from repro.system.memory import parity

        alpt = ALPT(4)
        for word in range(16):
            bits = [(word >> i) & 1 for i in range(4)]
            data, par = alpt.feed_pair(bits, [1 - b for b in bits])
            assert data == bits and par == parity(bits)

    def test_theorem_4_4_feedback_self_checking(self, detector):
        from repro.scal.codeconv import to_code_conversion
        from repro.scal.verify import codeconv_campaign, random_vectors

        machine = to_code_conversion(detector)
        result = codeconv_campaign(
            machine, random_vectors(detector, 30, seed=44)
        )
        assert result.is_fault_secure


class TestChapter5:
    def test_theorem_5_1_xor_checker(self):
        """Odd-input XOR trees over alternating lines alternate on every
        internal line."""
        from repro.checkers.xorchk import xor_checker_network

        for n in (1, 2, 3, 5, 9):
            net = xor_checker_network(n)
            tables = line_tables(net)
            assert all(tables[g.name].is_self_dual() for g in net.gates)

    def test_theorem_5_2_no_self_checking_hardcore(self):
        from repro.checkers.hardcore import theorem_5_2_survey

        assert all(
            not v.is_self_checking_hardcore for v in theorem_5_2_survey()
        )


class TestChapter6:
    def test_theorem_6_1_minority_complete(self):
        """m(x1, x2, 0) = NAND(x1, x2): a complete gate set."""
        from repro.modules.minority import minority

        for a in (0, 1):
            for b in (0, 1):
                assert minority([a, b, 0]) == 1 - (a & b)

    def test_theorems_6_2_and_6_3(self):
        from repro.modules.minority import verify_theorem_6_2, verify_theorem_6_3

        assert verify_theorem_6_2(max_n=5)
        assert verify_theorem_6_3(max_n=5)
