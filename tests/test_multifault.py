"""Tests for multi-fault coverage analysis (repro.core.multifault)."""

import random

from repro.core.multifault import (
    coverage_by_class,
    double_faults,
    random_multiple_faults,
    render_coverage,
    unidirectional_faults,
)
from repro.core.simulate import ScalSimulator
from repro.logic.parse import parse_expression
from repro.workloads.randomlogic import random_alternating_network


class TestFaultEnumeration:
    def test_double_fault_count(self):
        net = parse_expression("a b | b c | a c", inputs=["a", "b", "c"])
        stems = len(list(net.lines()))
        expected = (stems * (stems - 1) // 2) * 4
        assert len(double_faults(net)) == expected

    def test_double_fault_sampling(self):
        net = parse_expression("a b | b c | a c", inputs=["a", "b", "c"])
        sampled = double_faults(net, sample=10, rng=random.Random(1))
        assert len(sampled) == 10

    def test_unidirectional_all_same_polarity(self):
        net = parse_expression("a b | b c | a c", inputs=["a", "b", "c"])
        for fault in unidirectional_faults(net, max_lines=2, sample=20):
            assert fault.is_unidirectional()

    def test_random_multiple_faults_deterministic(self):
        net = parse_expression("a b | b c | a c", inputs=["a", "b", "c"])
        a = random_multiple_faults(net, 5, rng=random.Random(3))
        b = random_multiple_faults(net, 5, rng=random.Random(3))
        assert a == b


class TestCoverage:
    def test_single_faults_fully_covered_on_scal_network(self):
        rnd = random.Random(14)
        net = random_alternating_network(rnd, 3)
        rows = coverage_by_class(net, sample=60)
        by_class = {r.fault_class: r for r in rows}
        assert by_class["single (Def 2.1)"].dangerous == 0

    def test_wider_classes_leak(self):
        """Section 2.4: 'not all failures are covered' — over a small
        population some multiple faults slip through on some network."""
        rnd = random.Random(15)
        total_dangerous = 0
        for _ in range(6):
            net = random_alternating_network(rnd, 3)
            rows = coverage_by_class(net, sample=80, seed=rnd.randint(0, 99))
            by_class = {r.fault_class: r for r in rows}
            assert by_class["single (Def 2.1)"].dangerous == 0
            total_dangerous += by_class["multiple (Def 2.3)"].dangerous
            total_dangerous += by_class["double"].dangerous
        assert total_dangerous > 0

    def test_render(self):
        rnd = random.Random(16)
        net = random_alternating_network(rnd, 3)
        text = render_coverage(coverage_by_class(net, sample=20))
        assert "single (Def 2.1)" in text
        assert "unidirectional" in text

    def test_fractions_consistent(self):
        rnd = random.Random(17)
        net = random_alternating_network(rnd, 3)
        for row in coverage_by_class(net, sample=30):
            assert row.detected + row.silent + row.dangerous == row.total
