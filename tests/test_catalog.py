"""Tests for the self-dual module catalog (repro.modules.catalog)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.truthtable import TruthTable, all_functions
from repro.modules.catalog import (
    closest_self_dual,
    compose_self_dual,
    majority_table,
    minority_table,
    mux_table,
    self_dual_count,
    self_dual_fraction,
    standard_catalog,
    xor_table,
)

tables = st.integers(min_value=1, max_value=4).flatmap(
    lambda n: st.builds(
        TruthTable,
        st.just(n),
        st.integers(min_value=0, max_value=(1 << (1 << n)) - 1),
    )
)


class TestCounting:
    @pytest.mark.parametrize("n", [1, 2, 3])
    def test_count_matches_enumeration(self, n):
        enumerated = sum(1 for t in all_functions(n) if t.is_self_dual())
        assert enumerated == self_dual_count(n)

    def test_fraction_vanishes(self):
        assert self_dual_fraction(1) == 0.5
        assert self_dual_fraction(3) == pytest.approx(2 ** -4)
        assert self_dual_fraction(4) < self_dual_fraction(3)


class TestFamilies:
    def test_every_catalog_entry_self_dual(self):
        for entry in standard_catalog():
            assert entry.self_dual, entry.name

    @pytest.mark.parametrize("n", [1, 3, 5])
    def test_odd_majority_minority(self, n):
        assert majority_table(n).is_self_dual()
        assert minority_table(n).is_self_dual()
        assert (majority_table(n) ^ minority_table(n)).is_one()

    def test_even_majority_rejected(self):
        with pytest.raises(ValueError):
            majority_table(4)

    @pytest.mark.parametrize("n", [1, 3, 5])
    def test_odd_xor_self_dual(self, n):
        assert xor_table(n).is_self_dual()

    @pytest.mark.parametrize("n", [2, 4])
    def test_even_xor_not_self_dual(self, n):
        assert not xor_table(n).is_self_dual()

    def test_mux_semantics_and_non_self_duality(self):
        mux = mux_table()
        # point = a + 2b + 4s
        assert mux.value(0b001) == 1  # s=0 -> a=1
        assert mux.value(0b110) == 1  # s=1 -> b=1
        assert mux.value(0b101) == 0  # s=1 -> b=0
        # The catalog's negative example: a plain mux is NOT self-dual.
        assert not mux.is_self_dual()

    def test_biased_majority_self_dual(self):
        from repro.modules.catalog import biased_majority_table

        assert biased_majority_table().is_self_dual()


class TestClosure:
    @settings(max_examples=40)
    @given(tables)
    def test_complement_closure(self, t):
        assert (~t).is_self_dual() == t.is_self_dual()

    def test_composition_of_self_duals_is_self_dual(self):
        maj = majority_table(3)
        inners = [
            xor_table(3),
            majority_table(3),
            minority_table(3),
        ]
        composed = compose_self_dual(maj, inners)
        assert composed.is_self_dual()

    def test_composition_semantics(self):
        # identity outer: F(g) = g.
        identity = TruthTable.variable(0, 1)
        inner = xor_table(3)
        assert compose_self_dual(identity, [inner]).bits == inner.bits

    def test_arity_mismatch(self):
        with pytest.raises(ValueError):
            compose_self_dual(majority_table(3), [xor_table(3)])


class TestClosestSelfDual:
    @settings(max_examples=60)
    @given(tables)
    def test_result_is_self_dual(self, t):
        nearest, _distance = closest_self_dual(t)
        assert nearest.is_self_dual()

    @settings(max_examples=60)
    @given(tables)
    def test_distance_is_achieved(self, t):
        nearest, distance = closest_self_dual(t)
        assert (nearest ^ t).count_ones() == distance

    @settings(max_examples=40)
    @given(tables)
    def test_zero_distance_iff_already_self_dual(self, t):
        _nearest, distance = closest_self_dual(t)
        assert (distance == 0) == t.is_self_dual()

    def test_optimality_small(self):
        """Exhaustive optimality check over all 2-variable functions."""
        for t in all_functions(2):
            _nearest, distance = closest_self_dual(t)
            best = min(
                (sd ^ t).count_ones()
                for sd in all_functions(2)
                if sd.is_self_dual()
            )
            assert distance == best
