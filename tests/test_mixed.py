"""Tests for Algorithm 5.1 mixed checker design (repro.checkers.mixed)."""

import pytest

from repro.checkers.mixed import (
    CheckerSpec,
    all_dual_rail_cost,
    partition,
    spec_from_network,
    thesis_nine_output_example,
)
from repro.workloads.fig34 import fig34_network


class TestThesisExample:
    def test_partition_matches_section_5_4(self):
        plan = partition(thesis_nine_output_example())
        assert plan.xor_checked == ("1", "2", "3", "4", "9")
        assert plan.dual_rail_checked == ("5", "6", "7", "8")

    def test_groups_merged(self):
        plan = partition(thesis_nine_output_example())
        groups = {frozenset(g) for g in plan.groups}
        assert frozenset({"4", "5", "6", "7"}) in groups
        assert frozenset({"8", "9"}) in groups

    def test_cost_roughly_half_of_dual_rail(self):
        plan = partition(thesis_nine_output_example())
        gates, ffs = plan.total_cost("xor")
        base_gates, base_ffs = all_dual_rail_cost(9)
        assert base_gates == 48 and base_ffs == 9
        assert gates <= base_gates / 2 + 2
        assert ffs <= base_ffs / 2 + 1

    def test_dual_rail_combine_costs_more(self):
        plan = partition(thesis_nine_output_example())
        xg, xf = plan.total_cost("xor")
        dg, df = plan.total_cost("dual-rail")
        assert dg > xg and df > xf

    def test_bad_combine_style(self):
        plan = partition(thesis_nine_output_example())
        with pytest.raises(ValueError):
            plan.total_cost("bogus")


class TestPartitionEdgeCases:
    def test_all_independent(self):
        spec = CheckerSpec(("a", "b"), (), frozenset())
        plan = partition(spec)
        assert plan.xor_checked == ("a", "b")
        assert plan.dual_rail_checked == ()
        assert plan.total_cost("xor")[1] == 0  # no flip-flops needed

    def test_all_dependent_all_bad(self):
        spec = CheckerSpec(
            ("a", "b"), (frozenset({"a", "b"}),), frozenset({"a", "b"})
        )
        plan = partition(spec)
        assert plan.xor_checked == ()
        assert plan.dual_rail_checked == ("a", "b")

    def test_one_promotable_per_group_only(self):
        spec = CheckerSpec(
            ("a", "b", "c"), (frozenset({"a", "b", "c"}),), frozenset()
        )
        plan = partition(spec)
        assert len(plan.xor_checked) == 1
        assert len(plan.dual_rail_checked) == 2

    def test_overlapping_groups_merge(self):
        spec = CheckerSpec(
            ("a", "b", "c", "d"),
            (frozenset({"a", "b"}), frozenset({"b", "c"})),
            frozenset({"a", "b", "c"}),
        )
        plan = partition(spec)
        assert plan.groups == (("a", "b", "c"),)
        assert plan.xor_checked == ("d",)


class TestSpecFromNetwork:
    def test_fig34_sharing_structure(self, fig34):
        spec = spec_from_network(fig34)
        merged = partition(spec)
        # F1, F2, F3 all share logic pairwise-transitively (nab, nbc).
        assert len(merged.groups) == 1
        assert set(merged.groups[0]) == {"F1", "F2", "F3"}

    def test_fig34_bad_outputs(self, fig34):
        spec = spec_from_network(fig34)
        # F2 can alternate incorrectly (lines nab/or_ab); F1 and F3 never.
        assert "F2" in spec.incorrectly_alternating

    def test_fig34_plan_promotes_a_clean_output(self, fig34):
        plan = partition(spec_from_network(fig34))
        assert "F2" in plan.dual_rail_checked
        assert len(plan.xor_checked) == 1
