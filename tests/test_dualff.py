"""Tests for Reynolds' dual flip-flop SCAL machines (repro.scal.dualff)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.evaluate import line_tables
from repro.logic.faults import enumerate_stem_faults
from repro.scal.dualff import (
    self_dual_machine_network,
    to_dual_flipflop,
)
from repro.seq.simulator import FlipFlopFault
from repro.workloads.detectors import kohavi_0101
from repro.workloads.randomlogic import random_input_vectors, random_machine


class TestSelfDualNetwork:
    def test_outputs_self_dual(self, detector):
        network, _enc = self_dual_machine_network(detector)
        tables = line_tables(network)
        for out in network.outputs:
            assert tables[out].is_self_dual()

    def test_clock_is_last_input(self, detector):
        network, _enc = self_dual_machine_network(detector)
        assert network.inputs[-1] == "phi"

    def test_period_one_matches_plain_tables(self, detector):
        from repro.logic.selfdual import first_period_function
        from repro.seq.encoding import binary_encoding
        from repro.seq.synthesis import machine_tables

        enc = binary_encoding(detector.states)
        plain, _dc, _names = machine_tables(detector, enc)
        network, _ = self_dual_machine_network(detector, enc)
        tables = line_tables(network)
        for name, table in plain.items():
            assert first_period_function(tables[name]).bits == table.bits


class TestDualFlipFlopMachine:
    def test_structure(self, detector):
        dm = to_dual_flipflop(detector)
        # 2n flip-flops (Table 4.1's Reynolds row).
        assert dm.flip_flop_count() == 4
        assert dm.circuit.depth == 2

    def test_functional_equivalence(self, detector, rng):
        dm = to_dual_flipflop(detector)
        vectors = random_input_vectors(rng, 1, 50)
        run = dm.run(vectors)
        assert not run.detected
        assert dm.decoded_outputs(run) == detector.run(vectors)

    def test_all_signals_alternate(self, detector, rng):
        dm = to_dual_flipflop(detector)
        run = dm.run(random_input_vectors(rng, 1, 30))
        assert all(step.alternates for step in run.steps)

    @settings(max_examples=8, deadline=None)
    @given(st.randoms(use_true_random=False))
    def test_random_machines_equivalent(self, rnd):
        machine = random_machine(rnd, rnd.randint(2, 4))
        dm = to_dual_flipflop(machine)
        vectors = [(rnd.randint(0, 1),) for _ in range(40)]
        run = dm.run(vectors)
        assert not run.detected
        assert dm.decoded_outputs(run) == machine.run(vectors)


class TestFaultDetection:
    def test_no_undetected_wrong_outputs(self, detector, rng):
        """Every combinational stem fault is either detected by
        alternation monitoring (Z and Y) or never corrupts Z."""
        dm = to_dual_flipflop(detector)
        vectors = random_input_vectors(rng, 1, 40)
        reference = detector.run(vectors)
        for fault in enumerate_stem_faults(
            dm.circuit.network, include_inputs=False
        ):
            run = dm.run(vectors, fault=fault)
            decoded = dm.decoded_outputs(run)
            if decoded != reference:
                assert run.detected, fault.describe()

    def test_input_stem_faults_detected(self, detector, rng):
        dm = to_dual_flipflop(detector)
        vectors = random_input_vectors(rng, 1, 30)
        from repro.logic.faults import StuckAt

        for value in (0, 1):
            run = dm.run(vectors, fault=StuckAt("x0", value))
            assert run.detected  # a stuck input stops alternating

    def test_flip_flop_fault_detected_or_harmless(self, detector, rng):
        dm = to_dual_flipflop(detector)
        vectors = random_input_vectors(rng, 1, 40)
        reference = detector.run(vectors)
        for state_line in ("y0", "y1"):
            for stage in (0, 1):
                for value in (0, 1):
                    ff = FlipFlopFault(state_line, stage, value)
                    run = dm.run(vectors, ff_fault=ff)
                    if dm.decoded_outputs(run) != reference:
                        assert run.detected, ff.describe()

    def test_stuck_clock_input_detected(self, detector, rng):
        """The period clock stuck is a stem fault on phi: the block stops
        alternating and every pair with differing Z values flags it."""
        from repro.logic.faults import StuckAt

        dm = to_dual_flipflop(detector)
        vectors = random_input_vectors(rng, 1, 30)
        run = dm.run(vectors, fault=StuckAt("phi", 0))
        assert run.detected
