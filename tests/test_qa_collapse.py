"""Collapse regression: collapse=True must not change any verdict.

PR 1 made structural fault collapsing the campaign default.  Coverage
*fractions* legitimately differ between the collapsed and raw universes
(equivalence classes have different sizes, and fractions weight by
count), so the real invariants are: every equivalence class is
status-uniform under the sweep, the class representative's status equals
each member's, and the campaign verdict — does any dangerous
(fault-secure-violating) fault exist — is identical either way.
"""

import random

import pytest

from repro.core.collapse import equivalence_collapse
from repro.engine import FaultSweep
from repro.logic.faults import enumerate_single_faults
from repro.workloads.benchcircuits import fig62_nand_network
from repro.workloads.fig34 import fig34_network, fig37_fixed_network
from repro.workloads.randomlogic import (
    random_mixed_network,
    random_nand_network,
)

SEED_CIRCUITS = {
    "fig34": fig34_network,
    "fig37_fixed": fig37_fixed_network,
    "fig62_nand": fig62_nand_network,
    "random_nand3": lambda: random_nand_network(random.Random(3), 3, 7),
    "random_mixed11": lambda: random_mixed_network(random.Random(11), 4, 9),
}


@pytest.fixture(params=sorted(SEED_CIRCUITS), scope="module")
def circuit(request):
    return SEED_CIRCUITS[request.param]()


def test_equivalence_classes_are_status_uniform(circuit):
    sweep = FaultSweep(circuit)
    for root, members in equivalence_collapse(circuit).items():
        statuses = {m.describe(): sweep.classify(m) for m in members}
        assert len(set(statuses.values())) == 1, (root, statuses)


def test_collapsed_universe_preserves_campaign_verdict(circuit):
    sweep = FaultSweep(circuit)
    raw = enumerate_single_faults(circuit, collapse=False)
    collapsed = enumerate_single_faults(circuit, collapse=True)
    assert len(collapsed) <= len(raw)
    raw_statuses = {f.describe(): s for f, s in sweep.sweep(raw)}
    collapsed_statuses = {f.describe(): s for f, s in sweep.sweep(collapsed)}
    # Representatives report exactly what they reported uncollapsed...
    for name, status in collapsed_statuses.items():
        assert raw_statuses.get(name, status) == status
    # ...and the dangerous/clean campaign verdict is unchanged.
    raw_dangerous = sorted(
        f.describe() for f, s in sweep.sweep(raw) if s == "dangerous"
    )
    has_dangerous_collapsed = any(
        s == "dangerous" for s in collapsed_statuses.values()
    )
    assert bool(raw_dangerous) == has_dangerous_collapsed, raw_dangerous
    # Detected-anywhere is likewise stable across the two universes.
    assert any(s == "detected" for s in raw_statuses.values()) == any(
        s == "detected" for s in collapsed_statuses.values()
    )
