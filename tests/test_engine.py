"""Cross-backend equivalence of the compiled engine (repro.engine).

Every backend — word-parallel bitmask, pointwise, sampled — must agree
bit-for-bit with a naive dict-walking reference evaluator on every seed
circuit, fault-free and under exhaustive single-fault injection (stem
and pin stuck-ats).  The reference below deliberately shares no code
with the engine: it walks the named netlist gate by gate, resolving
stem and pin overrides the way the legacy evaluators did.
"""

import os
import random

import pytest

from repro.engine import FaultSweep, engine_for
from repro.logic.benchfmt import load_bench
from repro.logic.faults import enumerate_single_faults, fault_overrides
from repro.logic.gates import evaluate as eval_gate
from repro.workloads.benchcircuits import fig62_nand_network
from repro.workloads.fig34 import fig34_network, fig37_fixed_network

DATA_DIR = os.path.join(os.path.dirname(__file__), "..", "examples", "data")

#: label -> zero-argument builder of one seed circuit
SEED_CIRCUITS = {
    "fig34": fig34_network,
    "fig37_fixed": fig37_fixed_network,
    "fig62_nand": fig62_nand_network,
    "adder4_bench": lambda: load_bench(os.path.join(DATA_DIR, "adder4.bench")),
    "fig34_bench": lambda: load_bench(os.path.join(DATA_DIR, "fig34.bench")),
    "fig37_bench": lambda: load_bench(os.path.join(DATA_DIR, "fig37.bench")),
    "fig62_bench": lambda: load_bench(os.path.join(DATA_DIR, "fig62.bench")),
}

#: Networks at or below this input count are checked on every point;
#: wider ones (the 9-input adder) on a seeded sample per fault.
EXHAUSTIVE_LIMIT = 6
SAMPLE_POINTS = 48


def reference_values(network, point, fault=None):
    """Naive per-point evaluation: named dict walk, no engine code."""
    if fault is None:
        stems, pins = {}, {}
    else:
        stems, pins = fault_overrides(fault)
    values = {}
    for i, name in enumerate(network.inputs):
        v = (point >> i) & 1
        values[name] = stems.get(name, v)
    for gate in network.gates:
        operands = [values[src] for src in gate.inputs]
        for slot in range(len(operands)):
            override = pins.get((gate.name, slot))
            if override is not None:
                operands[slot] = override
        v = eval_gate(gate.kind, operands)
        values[gate.name] = stems.get(gate.name, v)
    return values


def check_points(network):
    n = len(network.inputs)
    if n <= EXHAUSTIVE_LIMIT:
        return list(range(1 << n))
    rnd = random.Random(0x5EED)
    return sorted(rnd.sample(range(1 << n), SAMPLE_POINTS))


@pytest.fixture(params=sorted(SEED_CIRCUITS), scope="module")
def circuit(request):
    return SEED_CIRCUITS[request.param]()


class TestFaultFree:
    def test_backends_match_reference(self, circuit):
        engine = engine_for(circuit)
        comp = engine.compiled
        bits = engine.bitmask.line_bits()
        points = check_points(circuit)
        for point in points:
            ref = reference_values(circuit, point)
            # bitmask: bit `point` of each line mask
            for name, idx in comp.index.items():
                assert (bits[idx] >> point) & 1 == ref[name], (name, point)
            # pointwise: full line list
            tuple_point = engine.sampled.point_tuple(point)
            vals = engine.pointwise.line_values(tuple_point)
            for name, idx in comp.index.items():
                assert vals[idx] == ref[name], (name, point)
        # sampled: output vectors over the whole point list at once
        expected = [
            tuple(reference_values(circuit, p)[o] for o in circuit.outputs)
            for p in points
        ]
        assert engine.sampled.output_vectors(points) == expected


class TestSingleFaultEquivalence:
    def test_backends_agree_under_every_single_fault(self, circuit):
        engine = engine_for(circuit)
        comp = engine.compiled
        points = check_points(circuit)
        for fault in enumerate_single_faults(circuit):
            bits = engine.bitmask.line_bits(fault)
            sampled = engine.sampled.output_vectors(points, fault)
            for pos, point in enumerate(points):
                ref = reference_values(circuit, point, fault)
                for name, idx in comp.index.items():
                    assert (bits[idx] >> point) & 1 == ref[name], (
                        fault.describe(),
                        name,
                        point,
                    )
                tuple_point = engine.sampled.point_tuple(point)
                vals = engine.pointwise.line_values(tuple_point, fault)
                for name, idx in comp.index.items():
                    assert vals[idx] == ref[name], (
                        fault.describe(),
                        name,
                        point,
                    )
                expected_out = tuple(ref[o] for o in circuit.outputs)
                assert sampled[pos] == expected_out, (fault.describe(), point)


class TestSweepDrivers:
    def test_parallel_sweep_matches_serial(self, circuit):
        if len(circuit.inputs) > EXHAUSTIVE_LIMIT:
            pytest.skip("word-parallel sweep only exercised on small seeds")
        sweep = FaultSweep(circuit)
        universe = sweep.single_fault_universe()
        serial = sweep.sweep(universe)
        parallel = sweep.sweep(universe, processes=2)
        assert serial == parallel

    def test_classification_matches_legacy_simulator(self, circuit):
        if len(circuit.inputs) > EXHAUSTIVE_LIMIT:
            pytest.skip("exhaustive oracle only exercised on small seeds")
        from repro.core.simulate import ScalSimulator

        sweep = FaultSweep(circuit)
        sim = ScalSimulator(circuit)
        for fault in sweep.single_fault_universe():
            bits = sweep.response_bits(fault)
            resp = sim.response(fault)
            assert bits.affected == resp.affected.bits
            assert bits.detected == resp.detected.bits
            assert bits.violations == resp.violations.bits
