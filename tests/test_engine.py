"""Cross-backend equivalence of the compiled engine (repro.engine).

Every backend — word-parallel bitmask, pointwise, sampled — must agree
bit-for-bit with a naive dict-walking reference evaluator on every seed
circuit, fault-free and under exhaustive single-fault injection (stem
and pin stuck-ats).  The reference below deliberately shares no code
with the engine: it walks the named netlist gate by gate, resolving
stem and pin overrides the way the legacy evaluators did.
"""

import os
import random

import pytest

from repro.engine import FaultSweep, engine_for, select_backend
from repro.engine.vectorized import (
    HAVE_NUMPY,
    PackedFallbackBackend,
    VectorizedBackend,
)
from repro.logic.benchfmt import load_bench
from repro.logic.faults import enumerate_single_faults, fault_overrides
from repro.logic.gates import evaluate as eval_gate
from repro.workloads.benchcircuits import fig62_nand_network
from repro.workloads.fig34 import fig34_network, fig37_fixed_network

DATA_DIR = os.path.join(os.path.dirname(__file__), "..", "examples", "data")

#: label -> zero-argument builder of one seed circuit
SEED_CIRCUITS = {
    "fig34": fig34_network,
    "fig37_fixed": fig37_fixed_network,
    "fig62_nand": fig62_nand_network,
    "adder4_bench": lambda: load_bench(os.path.join(DATA_DIR, "adder4.bench")),
    "fig34_bench": lambda: load_bench(os.path.join(DATA_DIR, "fig34.bench")),
    "fig37_bench": lambda: load_bench(os.path.join(DATA_DIR, "fig37.bench")),
    "fig62_bench": lambda: load_bench(os.path.join(DATA_DIR, "fig62.bench")),
}

#: Networks at or below this input count are checked on every point;
#: wider ones (the 9-input adder) on a seeded sample per fault.
EXHAUSTIVE_LIMIT = 6
SAMPLE_POINTS = 48


def reference_values(network, point, fault=None):
    """Naive per-point evaluation: named dict walk, no engine code."""
    if fault is None:
        stems, pins = {}, {}
    else:
        stems, pins = fault_overrides(fault)
    values = {}
    for i, name in enumerate(network.inputs):
        v = (point >> i) & 1
        values[name] = stems.get(name, v)
    for gate in network.gates:
        operands = [values[src] for src in gate.inputs]
        for slot in range(len(operands)):
            override = pins.get((gate.name, slot))
            if override is not None:
                operands[slot] = override
        v = eval_gate(gate.kind, operands)
        values[gate.name] = stems.get(gate.name, v)
    return values


def check_points(network):
    n = len(network.inputs)
    if n <= EXHAUSTIVE_LIMIT:
        return list(range(1 << n))
    rnd = random.Random(0x5EED)
    return sorted(rnd.sample(range(1 << n), SAMPLE_POINTS))


@pytest.fixture(params=sorted(SEED_CIRCUITS), scope="module")
def circuit(request):
    return SEED_CIRCUITS[request.param]()


class TestFaultFree:
    def test_backends_match_reference(self, circuit):
        engine = engine_for(circuit)
        comp = engine.compiled
        bits = engine.bitmask.line_bits()
        points = check_points(circuit)
        for point in points:
            ref = reference_values(circuit, point)
            # bitmask: bit `point` of each line mask
            for name, idx in comp.index.items():
                assert (bits[idx] >> point) & 1 == ref[name], (name, point)
            # pointwise: full line list
            tuple_point = engine.sampled.point_tuple(point)
            vals = engine.pointwise.line_values(tuple_point)
            for name, idx in comp.index.items():
                assert vals[idx] == ref[name], (name, point)
        # sampled: output vectors over the whole point list at once
        expected = [
            tuple(reference_values(circuit, p)[o] for o in circuit.outputs)
            for p in points
        ]
        assert engine.sampled.output_vectors(points) == expected


class TestSingleFaultEquivalence:
    def test_backends_agree_under_every_single_fault(self, circuit):
        engine = engine_for(circuit)
        comp = engine.compiled
        points = check_points(circuit)
        for fault in enumerate_single_faults(circuit):
            bits = engine.bitmask.line_bits(fault)
            sampled = engine.sampled.output_vectors(points, fault)
            for pos, point in enumerate(points):
                ref = reference_values(circuit, point, fault)
                for name, idx in comp.index.items():
                    assert (bits[idx] >> point) & 1 == ref[name], (
                        fault.describe(),
                        name,
                        point,
                    )
                tuple_point = engine.sampled.point_tuple(point)
                vals = engine.pointwise.line_values(tuple_point, fault)
                for name, idx in comp.index.items():
                    assert vals[idx] == ref[name], (
                        fault.describe(),
                        name,
                        point,
                    )
                expected_out = tuple(ref[o] for o in circuit.outputs)
                assert sampled[pos] == expected_out, (fault.describe(), point)


class TestVectorizedEquivalence:
    """The fault-batched block backends must agree bit-for-bit with the
    scalar bitmask backend, fault-free and under every single fault."""

    def test_fallback_output_bits_match_bitmask(self, circuit):
        engine = engine_for(circuit)
        packed = PackedFallbackBackend(engine.compiled, engine.bitmask)
        assert packed.output_bits() == engine.bitmask.output_bits()
        for fault in enumerate_single_faults(circuit):
            assert packed.output_bits(fault) == engine.bitmask.output_bits(
                fault
            ), fault.describe()

    @pytest.mark.skipif(not HAVE_NUMPY, reason="NumPy not installed")
    def test_vectorized_line_bits_match_bitmask(self, circuit):
        engine = engine_for(circuit)
        vec = VectorizedBackend(engine.compiled)
        assert vec.line_bits() == engine.bitmask.line_bits()
        for fault in enumerate_single_faults(circuit):
            assert vec.line_bits(fault) == engine.bitmask.line_bits(
                fault
            ), fault.describe()

    @pytest.mark.skipif(not HAVE_NUMPY, reason="NumPy not installed")
    def test_vectorized_response_blocks_match_scalar(self, circuit):
        sweep = FaultSweep(circuit)
        universe = sweep.single_fault_universe()
        vec = VectorizedBackend(sweep.compiled)
        triples = vec.response_block(universe)
        for fault, triple in zip(universe, triples):
            bits = sweep.response_bits(fault)
            assert triple == (
                bits.affected,
                bits.detected,
                bits.violations,
            ), fault.describe()

    def test_sweep_statuses_identical_across_backends(self, circuit):
        sweep = FaultSweep(circuit)
        universe = sweep.single_fault_universe()
        reference = [(f, sweep.classify(f)) for f in universe]
        assert sweep.sweep(universe, backend="bitmask") == reference
        assert sweep.sweep(universe, backend="fallback") == reference
        assert sweep.sweep(universe, backend="vectorized") == reference
        assert sweep.sweep(universe, backend="kernel") == reference
        assert sweep.sweep(universe, backend="auto") == reference

    @pytest.mark.skipif(not HAVE_NUMPY, reason="NumPy not installed")
    def test_chunked_word_axis_matches_scalar(self, circuit):
        """Tiny chunk_words forces the mirror-chunk-pair path even on
        the seed circuits (the 9-input adder gets real multi-chunk
        sweeps: 8 words at chunk size 1 and 2)."""
        if len(circuit.inputs) < 7:
            pytest.skip("needs a multi-word truth table to chunk")
        sweep = FaultSweep(circuit)
        universe = sweep.single_fault_universe()
        reference = [sweep.classify(f) for f in universe]
        for chunk_words in (1, 2):
            vec = VectorizedBackend(sweep.compiled, chunk_words=chunk_words)
            assert vec.chunked
            assert vec.sweep_statuses(universe) == reference
        triples = VectorizedBackend(
            sweep.compiled, chunk_words=1
        ).response_block(universe[:12])
        for fault, triple in zip(universe[:12], triples):
            bits = sweep.response_bits(fault)
            assert triple == (bits.affected, bits.detected, bits.violations)


class TestBackendSelection:
    def test_explicit_points_pick_pointwise_or_sampled(self):
        assert select_backend(4, 100, n_points=1) == "pointwise"
        assert select_backend(4, 100, n_points=64) == "sampled"

    def test_small_batches_stay_scalar(self):
        assert select_backend(4, 3, numpy_available=True) == "bitmask"
        assert select_backend(4, 3, numpy_available=False) == "bitmask"

    def test_large_batches_vectorize(self):
        assert select_backend(4, 200, numpy_available=True) == "vectorized"
        assert select_backend(4, 200, numpy_available=False) == "fallback"

    def test_wide_inputs_block_even_for_few_faults(self):
        # Beyond the exhaustive limit the scalar bitmask rung never
        # engages: 17-20 inputs land on the kernel tier, wider circuits
        # on the chunked vectorized path.
        assert select_backend(20, 2, numpy_available=True) == "kernel"
        assert select_backend(20, 2, numpy_available=False) == "fallback"
        assert select_backend(24, 2, numpy_available=True) == "vectorized"
        assert select_backend(24, 2, numpy_available=False) == "fallback"

    def test_kernel_rung_engages_above_cold_crossover(self):
        # n > 12 is where codegen wins even cold (BENCH_kernels.json);
        # at or below it auto stays vectorized and the kernel tier is
        # explicit-only.
        assert select_backend(12, 200, numpy_available=True) == "vectorized"
        assert select_backend(13, 200, numpy_available=True) == "kernel"
        assert select_backend(13, 200, numpy_available=False) == "fallback"

    def test_unknown_backend_name_rejected(self):
        sweep = FaultSweep(fig34_network())
        with pytest.raises(ValueError):
            sweep.sweep(sweep.single_fault_universe(), backend="gpu")


class TestWideInputGuard:
    """Circuits beyond the 25-input exhaustive ceiling must get a clear
    ``ValueError`` from the bitmask backend instead of an OOM attempt,
    while the sampled/vectorized paths keep working (regression for the
    eager 2^n-bit ``full`` mask allocation)."""

    def _wide_net(self, n_inputs=30):
        from repro.workloads.randomlogic import random_mixed_network

        return random_mixed_network(
            random.Random(0x71DE),
            n_inputs=n_inputs,
            n_gates=40,
            n_outputs=3,
        )

    def test_engine_builds_but_bitmask_raises(self):
        net = self._wide_net()
        engine = engine_for(net)  # must not allocate 2^30-bit masks
        with pytest.raises(ValueError, match="exhaustive ceiling"):
            engine.bitmask
        # pointwise/sampled still serve
        point = tuple([0, 1] * 15)
        assert engine.pointwise.output_values(point) is not None

    def test_fault_sweep_builds_lazily(self):
        net = self._wide_net()
        sweep = FaultSweep(net)  # previously touched .bitmask eagerly
        with pytest.raises(ValueError, match="exhaustive ceiling"):
            sweep.full

    def test_selection_never_picks_bitmask_wide(self):
        for n in (26, 30, 40):
            for faults in (1, 4, 100):
                assert select_backend(n, faults) != "bitmask"


class TestSweepDrivers:
    def test_parallel_sweep_matches_serial(self, circuit):
        if len(circuit.inputs) > EXHAUSTIVE_LIMIT:
            pytest.skip("word-parallel sweep only exercised on small seeds")
        sweep = FaultSweep(circuit)
        universe = sweep.single_fault_universe()
        serial = sweep.sweep(universe)
        parallel = sweep.sweep(universe, processes=2)
        assert serial == parallel
        assert sweep.last_sweep_backend.startswith("fork:")

    def test_fork_unavailable_falls_back_to_serial_block_backend(
        self, monkeypatch
    ):
        """Platforms without the fork start method must still serve
        parallel requests — on the serial vectorized path, not by
        silently degrading to per-fault scalar."""
        import multiprocessing

        import repro.engine.campaign as campaign_mod

        real_get_context = multiprocessing.get_context

        def no_fork(method=None):
            if method == "fork":
                raise ValueError("cannot find context for 'fork'")
            return real_get_context(method)

        monkeypatch.setattr(multiprocessing, "get_context", no_fork)
        sweep = FaultSweep(fig37_fixed_network())
        universe = sweep.single_fault_universe()
        reference = [(f, sweep.classify(f)) for f in universe]
        result = sweep.sweep(universe, processes=4)
        assert result == reference
        assert sweep.last_sweep_backend in ("vectorized", "fallback")
        # The fallback is recorded, not silent: the campaign report
        # names the ladder step and the reason.
        assert any(
            d.to == "serial" and "fork" in d.reason
            for d in sweep.last_report.degradations
        )

    def test_every_sweep_leaves_a_report(self, circuit):
        sweep = FaultSweep(circuit)
        universe = sweep.single_fault_universe()
        sweep.sweep(universe)
        report = sweep.last_report
        assert report is not None
        assert report.faults == len(universe)
        assert report.chunks_completed + report.chunks_resumed == (
            report.chunks_total
        )
        assert sweep.last_sweep_backend == report.block_backend

    def test_classification_matches_legacy_simulator(self, circuit):
        if len(circuit.inputs) > EXHAUSTIVE_LIMIT:
            pytest.skip("exhaustive oracle only exercised on small seeds")
        from repro.core.simulate import ScalSimulator

        sweep = FaultSweep(circuit)
        sim = ScalSimulator(circuit)
        for fault in sweep.single_fault_universe():
            bits = sweep.response_bits(fault)
            resp = sim.response(fault)
            assert bits.affected == resp.affected.bits
            assert bits.detected == resp.detected.bits
            assert bits.violations == resp.violations.bits
