"""Tests for the sequential machine library (repro.workloads.machines)."""

import random

import pytest

from repro.scal.codeconv import to_code_conversion
from repro.scal.dualff import to_dual_flipflop
from repro.scal.verify import codeconv_campaign, dualff_campaign, random_vectors
from repro.seq.minimize import is_minimal
from repro.seq.synthesis import synthesize_machine
from repro.workloads.machines import (
    debouncer,
    machine_suite,
    modulo_counter,
    parity_checker,
    serial_adder,
    traffic_light,
)


class TestSemantics:
    def test_serial_adder_adds(self):
        machine = serial_adder()
        # 3 + 6 = 9 over 5 LSB-first bit pairs.
        a_bits = [1, 1, 0, 0, 0]
        b_bits = [0, 1, 1, 0, 0]
        outs = machine.run(list(zip(a_bits, b_bits)))
        total = sum(z << i for i, (z,) in enumerate(outs))
        assert total == 9

    def test_parity_checker(self):
        machine = parity_checker()
        outs = [z for (z,) in machine.run([(1,), (1,), (1,), (0,)])]
        assert outs == [1, 0, 1, 1]

    def test_modulo_counter_wraps(self):
        machine = modulo_counter(3)
        outs = [z for (z,) in machine.run([(1,)] * 7)]
        assert outs == [0, 0, 1, 0, 0, 1, 0]

    def test_modulo_validation(self):
        with pytest.raises(ValueError):
            modulo_counter(1)

    def test_debouncer_filters_glitches(self):
        machine = debouncer()
        # A one-sample glitch must not flip the output; the level changes
        # only after the second agreeing sample.
        outs = [z for (z,) in machine.run([(1,), (0,), (1,), (1,), (1,)])]
        assert outs == [0, 0, 0, 0, 1]
        # A confirmed drop holds high through the confirmation sample.
        outs2 = [z for (z,) in machine.run([(1,), (1,), (0,), (0,)])]
        assert outs2 == [0, 0, 1, 1]

    def test_traffic_light_grants_walk_in_all_red(self):
        machine = traffic_light()
        outs = [z for (z,) in machine.run([(1,), (1,), (1,), (1,)])]
        assert outs == [0, 0, 1, 0]


class TestSuiteProperties:
    def test_all_machines_minimal(self):
        for machine in machine_suite():
            assert is_minimal(machine), machine.name

    def test_all_machines_synthesizable(self):
        rnd = random.Random(5)
        for machine in machine_suite():
            synth = synthesize_machine(machine)
            stream = [
                tuple(rnd.randint(0, 1) for _ in range(machine.n_inputs))
                for _ in range(30)
            ]
            assert synth.run_symbols(stream) == machine.run(stream), machine.name


class TestScalCampaignsOnSuite:
    @pytest.mark.parametrize(
        "factory", [serial_adder, parity_checker, debouncer, traffic_light]
    )
    def test_dualff_fault_secure(self, factory):
        machine = factory()
        dff = to_dual_flipflop(machine)
        vectors = random_vectors(machine, 30, seed=21)
        result = dualff_campaign(dff, vectors)
        assert result.is_fault_secure, result.dangerous_faults

    def test_codeconv_fault_secure_serial_adder(self):
        machine = serial_adder()
        cc = to_code_conversion(machine)
        result = codeconv_campaign(cc, random_vectors(machine, 30, seed=22))
        assert result.is_fault_secure, result.dangerous_faults
