"""Tests for netlist rendering (repro.logic.render)."""

from repro.core import analyze_network
from repro.logic.render import annotate_with_analysis, render_dot, render_listing
from repro.workloads.fig34 import fig34_network


class TestListing:
    def test_contains_every_gate(self, fig34):
        text = render_listing(fig34)
        for gate in fig34.gates:
            assert gate.name in text

    def test_fanout_counts(self, fig34):
        text = render_listing(fig34)
        assert "[fanout 2]" in text  # or_ab fans out twice

    def test_annotations_attached(self, fig34):
        text = render_listing(fig34, annotations={"nab": "thesis line 9"})
        assert "# thesis line 9" in text


class TestDot:
    def test_valid_dot_structure(self, fig34):
        dot = render_dot(fig34)
        assert dot.startswith("digraph network {")
        assert dot.rstrip().endswith("}")
        for inp in fig34.inputs:
            assert f'"{inp}"' in dot
        for out in fig34.outputs:
            assert f'out_{out}' in dot

    def test_highlight_marks_red(self, fig34):
        dot = render_dot(fig34, highlight=["or_ab"])
        assert 'color="red"' in dot

    def test_title(self, fig34):
        dot = render_dot(fig34, title="Figure 3.4")
        assert 'label="Figure 3.4"' in dot


class TestAnalysisAnnotations:
    def test_failing_line_flagged(self, fig34):
        analysis = analyze_network(fig34)
        notes = annotate_with_analysis(fig34, analysis)
        assert notes["or_ab"] == "FAILS Algorithm 3.1"
        assert notes["nab"].startswith("condition")

    def test_renders_together(self, fig34):
        analysis = analyze_network(fig34)
        text = render_listing(
            fig34, annotations=annotate_with_analysis(fig34, analysis)
        )
        assert "FAILS Algorithm 3.1" in text
