"""Tests for self-dual datapath modules (adder, shifter, status)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.simulate import ScalSimulator, is_scal_network
from repro.logic.evaluate import line_tables
from repro.modules.adder import (
    add_words,
    full_adder_network,
    ripple_adder_network,
)
from repro.modules.shifter import AlternatingShiftRegister, shift_word
from repro.modules.status import AlternatingStatusBit, AlternatingStatusRegister


class TestFullAdder:
    def test_self_dual_outputs(self):
        net = full_adder_network()
        tables = line_tables(net)
        assert tables["s"].is_self_dual()
        assert tables["cout"].is_self_dual()

    def test_arithmetic(self):
        net = full_adder_network()
        for a in (0, 1):
            for b in (0, 1):
                for c in (0, 1):
                    s, cout = net.output_values({"a": a, "b": b, "cin": c})
                    assert s + 2 * cout == a + b + c

    def test_is_scal_network(self):
        """The Figure 2.2 claim: the adder is SCAL for free."""
        assert is_scal_network(full_adder_network())


class TestRippleAdder:
    @pytest.mark.parametrize("width", [1, 2, 3])
    def test_alternating(self, width):
        net = ripple_adder_network(width)
        tables = line_tables(net)
        for out in net.outputs:
            assert tables[out].is_self_dual()

    def test_two_bit_scal(self):
        """Exhaustive single-fault sweep of the 2-bit adder (5 inputs)."""
        verdict = ScalSimulator(ripple_adder_network(2)).verdict(
            include_pins=False
        )
        assert verdict.is_self_checking

    @settings(max_examples=80)
    @given(
        st.integers(min_value=1, max_value=6),
        st.randoms(use_true_random=False),
    )
    def test_add_words_arithmetic(self, width, rnd):
        a = rnd.randrange(1 << width)
        b = rnd.randrange(1 << width)
        cin = rnd.randint(0, 1)
        a_bits = [(a >> i) & 1 for i in range(width)]
        b_bits = [(b >> i) & 1 for i in range(width)]
        s_bits, cout = add_words(a_bits, b_bits, cin)
        total = sum(v << i for i, v in enumerate(s_bits)) + (cout << width)
        assert total == a + b + cin

    @settings(max_examples=60)
    @given(
        st.integers(min_value=1, max_value=6),
        st.randoms(use_true_random=False),
    )
    def test_bitwise_self_duality_of_addition(self, width, rnd):
        """¬(a + b + cin) = ā + b̄ + ¬cin bitwise incl. carry — the
        identity behind the adder's (and SUB's) SCAL operation."""
        a = [rnd.randint(0, 1) for _ in range(width)]
        b = [rnd.randint(0, 1) for _ in range(width)]
        cin = rnd.randint(0, 1)
        s, cout = add_words(a, b, cin)
        sc, coutc = add_words(
            [1 - x for x in a], [1 - x for x in b], 1 - cin
        )
        assert sc == [1 - x for x in s]
        assert coutc == 1 - cout

    def test_width_validation(self):
        with pytest.raises(ValueError):
            ripple_adder_network(0)
        with pytest.raises(ValueError):
            add_words([0, 1], [0])


class TestShifter:
    def test_shift_word_semantics(self):
        assert shift_word([1, 0, 1], "left") == [0, 1, 0]
        assert shift_word([1, 0, 1], "right", fill=1) == [0, 1, 1]
        with pytest.raises(ValueError):
            shift_word([1], "sideways")

    @settings(max_examples=60)
    @given(
        st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=6),
        st.sampled_from(["left", "right"]),
        st.integers(min_value=0, max_value=1),
    )
    def test_shift_self_dual(self, bits, direction, fill):
        shifted = shift_word(bits, direction, fill)
        comp = shift_word([1 - b for b in bits], direction, 1 - fill)
        assert comp == [1 - b for b in shifted]

    def test_register_alternates_and_shifts(self):
        reg = AlternatingShiftRegister(3)
        reg.reset([1, 0, 1])
        first, second = reg.shift_pair(0, 1)
        assert reg.alternates()
        assert reg.outputs(0) == [0, 1, 0]
        assert reg.outputs(1) == [1, 0, 1]
        assert reg.flip_flop_count() == 6

    def test_register_detects_broken_pair(self):
        reg = AlternatingShiftRegister(2)
        reg.reset([1, 0])
        reg.shift_pair(1, 1)  # a nonalternating incoming pair
        assert not reg.alternates()


class TestStatus:
    def test_bit_alternation(self):
        bit = AlternatingStatusBit()
        bit.store_pair(1, 0)
        assert bit.alternates and bit.value == 1
        bit.store_pair(1, 1)
        assert not bit.alternates

    def test_register(self):
        reg = AlternatingStatusRegister(["Z", "C", "N"])
        reg.store_pairs({"Z": 1, "C": 0, "N": 0}, {"Z": 0, "C": 1, "N": 1})
        assert reg.alternates()
        assert reg.values() == {"Z": 1, "C": 0, "N": 0}
        assert reg.read("Z", 0) == 1
        assert reg.read("Z", 1) == 0
        assert reg.flip_flop_count() == 6
