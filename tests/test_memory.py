"""Tests for the parity memory (repro.system.memory)."""

import pytest

from repro.system.memory import (
    MemoryFault,
    ParityMemory,
    parity,
    single_memory_faults,
)


class TestParity:
    def test_even_parity(self):
        assert parity([1, 1, 0]) == 0
        assert parity([1, 0, 0]) == 1
        assert parity([]) == 0


class TestHealthyMemory:
    def test_store_load_roundtrip(self):
        mem = ParityMemory(4, address_bits=3)
        mem.store(5, [1, 0, 1, 1], parity([1, 0, 1, 1]))
        data, par = mem.load(5)
        assert data == [1, 0, 1, 1]
        assert mem.check_word(data, par)

    def test_unwritten_cell_reads_zero(self):
        mem = ParityMemory(4)
        data, par = mem.load(2)
        assert data == [0, 0, 0, 0]

    def test_address_parity_folding_invariant(self):
        """Healthy accesses: the fold cancels between store and load."""
        mem = ParityMemory(4, address_bits=4, fold_address_parity=True)
        for addr in range(8):
            word = [(addr >> i) & 1 for i in range(4)]
            mem.store(addr, word, parity(word))
            data, par = mem.load(addr)
            assert data == word
            assert mem.check_word(data, par)


class TestFaults:
    def test_cell_fault_breaks_parity(self):
        mem = ParityMemory(4)
        word = [1, 0, 1, 1]
        mem.store(3, word, parity(word))
        mem.inject(MemoryFault("cell", 0, 1 - word[0], address=3))
        data, par = mem.load(3)
        assert not mem.check_word(data, par)

    def test_parity_bit_cell_fault_detected(self):
        mem = ParityMemory(4)
        word = [1, 0, 1, 1]
        mem.store(3, word, parity(word))
        mem.inject(MemoryFault("cell", 4, 1 - parity(word), address=3))
        data, par = mem.load(3)
        assert not mem.check_word(data, par)

    def test_data_line_fault_affects_all_reads(self):
        mem = ParityMemory(4)
        for addr in (0, 1):
            word = [addr, 1, 0, 0]
            mem.store(addr, word, parity(word))
        mem.inject(MemoryFault("data_line", 1, 0))
        for addr in (0, 1):
            data, par = mem.load(addr)
            assert not mem.check_word(data, par)

    def test_address_line_fault_detected_on_pre_fault_words(self):
        """Dussault's folding: a word written with a healthy address and
        read through a stuck address line shows a parity violation."""
        mem = ParityMemory(4, address_bits=3, fold_address_parity=True)
        word = [1, 1, 0, 0]
        mem.store(0b010, word, parity(word))  # healthy write
        mem.inject(MemoryFault("address_line", 1, 0))
        # Reading 0b010 now actually reads cell 0b000 (unwritten) with
        # address parity of the *presented* address folded out.
        data, par = mem.load(0b010)
        assert not mem.check_word(data, par)

    def test_consistent_stuck_address_line_is_benign(self):
        """If both the write and the read go through the same stuck
        line, the system sees a permuted but consistent address space —
        functionally correct, hence not flagged."""
        mem = ParityMemory(4, address_bits=3, fold_address_parity=True)
        mem.inject(MemoryFault("address_line", 0, 1))
        word = [0, 1, 0, 1]
        mem.store(2, word, parity(word))
        data, par = mem.load(2)
        assert data == word
        assert mem.check_word(data, par)

    def test_fault_universe_size(self):
        faults = single_memory_faults(4, 3, addresses=(0,))
        kinds = {f.kind for f in faults}
        assert kinds == {"cell", "data_line", "address_line"}
        # (4+1 bits) * 2 values * (1 data_line + 1 cell) + 3*2 address.
        assert len(faults) == 5 * 2 * 2 + 6

    def test_describe(self):
        assert "address_line" in MemoryFault("address_line", 2, 1).describe()
        assert "cell[7]" in MemoryFault("cell", 0, 1, address=7).describe()

    def test_clear(self):
        mem = ParityMemory(2)
        mem.store(0, [1, 1], 0)
        mem.inject(MemoryFault("data_line", 0, 0))
        mem.clear()
        assert mem.fault is None
        assert mem.load(0)[0] == [0, 0]
