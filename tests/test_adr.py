"""Tests for ADR, TMR, and the Figure 7.5 system (repro.system.adr)."""

import pytest

from repro.system.adr import (
    AdrSystem,
    FaultyModule,
    Fig75System,
    StuckOutputBit,
    TmrSystem,
    design_comparison,
    is_word_self_dual,
)

WIDTH = 8
MASK = (1 << WIDTH) - 1


def rotate_left(x: int) -> int:
    return ((x << 1) | (x >> (WIDTH - 1))) & MASK


def not_self_dual(x: int) -> int:
    return (3 * x + 7) & MASK


class TestSelfDualWords:
    def test_rotate_is_self_dual(self):
        assert is_word_self_dual(rotate_left, WIDTH)

    def test_bitwise_not_is_self_dual(self):
        assert is_word_self_dual(lambda x: (~x) & MASK, WIDTH)

    def test_affine_is_not(self):
        assert not is_word_self_dual(not_self_dual, WIDTH)


class TestAdr:
    def test_no_fault_no_retry(self):
        adr = AdrSystem(FaultyModule(rotate_left, WIDTH))
        outcome = adr.execute(0b1011)
        assert outcome.correct and not outcome.retried

    def test_corrects_every_single_stuck_output_bit(self):
        """Shedletsky's claim on a self-dual module: the complement pass
        recovers the correct word for any stuck output line."""
        for k in range(WIDTH):
            for v in (0, 1):
                adr = AdrSystem(
                    FaultyModule(rotate_left, WIDTH, StuckOutputBit(k, v))
                )
                for x in range(0, 256, 7):
                    outcome = adr.execute(x)
                    assert outcome.correct, (k, v, x)
                    assert not outcome.unrecoverable

    def test_retry_happens_iff_sensitized(self):
        adr = AdrSystem(FaultyModule(rotate_left, WIDTH, StuckOutputBit(0, 0)))
        sensitized = [x for x in range(256) if rotate_left(x) & 1]
        for x in sensitized[:5]:
            assert adr.execute(x).retried
        clean = [x for x in range(256) if not rotate_left(x) & 1]
        for x in clean[:5]:
            assert not adr.execute(x).retried


class TestTmr:
    def test_masks_single_faulty_copy(self):
        for faulty in range(3):
            tmr = TmrSystem(
                rotate_left, WIDTH, faulty_copy=faulty,
                fault=StuckOutputBit(4, 1),
            )
            for x in range(0, 256, 11):
                assert tmr.execute(x) == rotate_left(x)

    def test_healthy(self):
        tmr = TmrSystem(rotate_left, WIDTH)
        assert tmr.execute(5) == rotate_left(5)


class TestFig75:
    def test_full_speed_until_fault(self):
        system = Fig75System(rotate_left, WIDTH)
        outcome = system.execute(7)
        assert not outcome.degraded and outcome.correct

    def test_degrades_and_stays_correct_scal_fault(self):
        system = Fig75System(
            rotate_left, WIDTH, scal_fault=StuckOutputBit(2, 0)
        )
        outcomes = [system.execute(x) for x in range(128)]
        assert all(o.correct for o in outcomes)
        assert system.degraded
        assert any(o.fault_detected for o in outcomes)

    def test_degrades_and_stays_correct_normal_fault(self):
        system = Fig75System(
            rotate_left, WIDTH, normal_fault=StuckOutputBit(5, 1)
        )
        outcomes = [system.execute(x) for x in range(128)]
        assert all(o.correct for o in outcomes)
        assert system.degraded


class TestDesignComparison:
    def test_cost_ordering(self):
        rows = {r.approach: r for r in design_comparison()}
        adr = rows["ADR (Shedletsky)"]
        fig75 = rows["normal + SCAL parallel (Fig 7.5)"]
        tmr = rows["TMR"]
        # The Section 7.4 argument: ADR ≈ 4x is the worst corrector;
        # Fig 7.5 undercuts TMR when A < 2.
        assert adr.cost_factor > tmr.cost_factor
        assert fig75.cost_factor < tmr.cost_factor

    def test_fig75_beats_tmr_only_when_a_below_two(self):
        rows_hi = {
            r.approach: r for r in design_comparison(a_factor=2.5)
        }
        assert (
            rows_hi["normal + SCAL parallel (Fig 7.5)"].cost_factor
            > rows_hi["TMR"].cost_factor
        )

    def test_correctors_marked(self):
        for row in design_comparison():
            if row.approach in (
                "ADR (Shedletsky)",
                "normal + SCAL parallel (Fig 7.5)",
                "TMR",
            ):
                assert row.corrects_single_faults
            else:
                assert not row.corrects_single_faults
