"""Unit tests for gate semantics (repro.logic.gates)."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.gates import (
    DOMINANT_VALUE,
    GateArityError,
    GateKind,
    check_arity,
    evaluate,
    evaluate_mask,
    inverts,
    is_standard,
    is_unate,
)

ALL_EVAL_KINDS = [
    GateKind.BUF,
    GateKind.NOT,
    GateKind.AND,
    GateKind.OR,
    GateKind.NAND,
    GateKind.NOR,
    GateKind.XOR,
    GateKind.XNOR,
    GateKind.MAJ,
    GateKind.MIN,
]


class TestPointwiseEvaluation:
    def test_constants(self):
        assert evaluate(GateKind.CONST0, []) == 0
        assert evaluate(GateKind.CONST1, []) == 1

    def test_buf_and_not(self):
        assert evaluate(GateKind.BUF, [0]) == 0
        assert evaluate(GateKind.BUF, [1]) == 1
        assert evaluate(GateKind.NOT, [0]) == 1
        assert evaluate(GateKind.NOT, [1]) == 0

    @pytest.mark.parametrize(
        "kind,table",
        [
            (GateKind.AND, [0, 0, 0, 1]),
            (GateKind.OR, [0, 1, 1, 1]),
            (GateKind.NAND, [1, 1, 1, 0]),
            (GateKind.NOR, [1, 0, 0, 0]),
            (GateKind.XOR, [0, 1, 1, 0]),
            (GateKind.XNOR, [1, 0, 0, 1]),
        ],
    )
    def test_two_input_truth_tables(self, kind, table):
        for i, (a, b) in enumerate(itertools.product((0, 1), repeat=2)):
            assert evaluate(kind, [a, b]) == table[i]

    def test_majority_three(self):
        for a, b, c in itertools.product((0, 1), repeat=3):
            assert evaluate(GateKind.MAJ, [a, b, c]) == int(a + b + c >= 2)

    def test_minority_three(self):
        for a, b, c in itertools.product((0, 1), repeat=3):
            assert evaluate(GateKind.MIN, [a, b, c]) == int(a + b + c <= 1)

    def test_minority_is_complement_of_majority_for_odd_arity(self):
        for n in (1, 3, 5):
            for point in range(1 << n):
                xs = [(point >> i) & 1 for i in range(n)]
                assert evaluate(GateKind.MIN, xs) == 1 - evaluate(
                    GateKind.MAJ, xs
                )

    def test_minority_even_arity_strict(self):
        # Exactly half ones: neither minority nor majority.
        assert evaluate(GateKind.MIN, [0, 1]) == 0
        assert evaluate(GateKind.MIN, [0, 0]) == 1
        assert evaluate(GateKind.MIN, [1, 1]) == 0

    def test_wide_gates(self):
        assert evaluate(GateKind.AND, [1] * 7) == 1
        assert evaluate(GateKind.AND, [1] * 6 + [0]) == 0
        assert evaluate(GateKind.XOR, [1] * 5) == 1
        assert evaluate(GateKind.XOR, [1] * 4) == 0


class TestMaskEvaluation:
    @settings(max_examples=150)
    @given(
        st.sampled_from(ALL_EVAL_KINDS),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=1, max_value=5),
        st.randoms(use_true_random=False),
    )
    def test_mask_matches_pointwise(self, kind, n_vars, arity, rnd):
        if kind in (GateKind.BUF, GateKind.NOT):
            arity = 1
        if kind is GateKind.MAJ:
            arity = arity | 1  # force odd
            arity = max(arity, 3)
        size = 1 << n_vars
        full = (1 << size) - 1
        masks = [rnd.getrandbits(size) for _ in range(arity)]
        out = evaluate_mask(kind, masks, full)
        for point in range(size):
            values = [(m >> point) & 1 for m in masks]
            assert (out >> point) & 1 == evaluate(kind, values)

    def test_constants_mask(self):
        assert evaluate_mask(GateKind.CONST0, [], 0b1111) == 0
        assert evaluate_mask(GateKind.CONST1, [], 0b1111) == 0b1111

    def test_threshold_mask_empty_counter(self):
        # All-zero inputs: minority of zeros is 1 everywhere.
        assert evaluate_mask(GateKind.MIN, [0, 0, 0], 0b11) == 0b11
        assert evaluate_mask(GateKind.MAJ, [0, 0, 0], 0b11) == 0


class TestArity:
    def test_not_requires_one_input(self):
        with pytest.raises(GateArityError):
            check_arity(GateKind.NOT, 2)

    def test_majority_must_be_odd(self):
        with pytest.raises(GateArityError):
            check_arity(GateKind.MAJ, 4)
        check_arity(GateKind.MAJ, 5)

    def test_inputs_take_no_inputs(self):
        with pytest.raises(GateArityError):
            check_arity(GateKind.INPUT, 1)

    def test_minority_any_width(self):
        for n in range(1, 8):
            check_arity(GateKind.MIN, n)


class TestClassifications:
    def test_standard_gates(self):
        assert is_standard(GateKind.NAND)
        assert is_standard(GateKind.NOT)
        assert not is_standard(GateKind.XOR)
        assert not is_standard(GateKind.MAJ)

    def test_unate_gates(self):
        assert is_unate(GateKind.NAND)
        assert is_unate(GateKind.MAJ)
        assert is_unate(GateKind.MIN)
        assert not is_unate(GateKind.XOR)
        assert not is_unate(GateKind.XNOR)

    def test_inversion_parity(self):
        assert inverts(GateKind.NOT)
        assert inverts(GateKind.NAND)
        assert inverts(GateKind.MIN)
        assert not inverts(GateKind.AND)
        assert not inverts(GateKind.BUF)

    def test_dominant_values_force_output(self):
        for kind, (dom, forced) in DOMINANT_VALUE.items():
            for others in itertools.product((0, 1), repeat=2):
                assert evaluate(kind, [dom, *others]) == forced
