"""Search-based SCAL synthesis/repair campaigns (repro.synth).

The acceptance spine: fixed-seed micro-campaigns must *find* verified
self-dual, self-checking networks for at least two seed-circuit specs —
winners are re-checked through the analysis/oracle verification path and
the QA reference interpreter, never trusted on the search's own score.
Around it: the genome representation round-trips, every operator
produces valid children, the batched fitness evaluator is byte-identical
to the scalar one, checkpoint/--resume continues deterministically, and
the CLI/stats surfaces work end to end.
"""

import dataclasses
import json
import os
import random

import pytest

from repro import obs
from repro.cli import main
from repro.core.analysis import analyze_network
from repro.core.simulate import ScalSimulator
from repro.engine.supervisor import CheckpointError
from repro.logic.benchfmt import save_bench
from repro.obs.recorder import MemoryRecorder
from repro.obs.stats import render, summarize
from repro.qa.reference import reference_is_self_dual, reference_output_bits
from repro.scal.costs import network_cost
from repro.synth import (
    SPECS,
    Genome,
    GenomeError,
    SynthCampaign,
    SynthInterrupted,
    crossover,
    damage_network,
    evaluate_task,
    make_task,
    mutate,
    random_genome,
    repair_campaign,
    spec_from_network,
)
from repro.workloads.randomlogic import random_alternating_network

#: The known-good micro-campaign shape: population 24 with the ternary
#: MAJ/MIN library converges within 20 generations on these seeds.
MICRO = dict(population=24, generations=20, max_gates=16)


def _campaign(spec_name, seed, **overrides):
    kwargs = dict(MICRO)
    kwargs.update(overrides)
    return SynthCampaign(SPECS[spec_name], seed=seed, **kwargs)


def _report_identity(report):
    """The replay-comparable slice (timing/transport accounting vary)."""
    return (
        report.best_genome,
        report.best_fingerprint,
        report.best_generation,
        dataclasses.replace(report.best_record, backend=""),
        report.generations_run,
        report.evaluations,
        report.improvements,
        report.converged,
        report.history,
        report.pareto,
    )


# ----------------------------------------------------------------------
# genome representation
# ----------------------------------------------------------------------
class TestGenome:
    def test_network_roundtrip(self):
        rng = random.Random(7)
        genome = random_genome(rng, 3, 5)
        net = genome.to_network(("x0", "x1", "phi"))
        back = Genome.from_network(net)
        assert back.to_network(("x0", "x1", "phi")).outputs == net.outputs
        # The round-trip preserves behavior (BUF output wrappers aside).
        assert reference_output_bits(net) == reference_output_bits(
            back.to_network(("x0", "x1", "phi"))
        )

    def test_canonical_and_fingerprint_are_stable(self):
        genome = Genome(3, (("MAJ", (2, 1, 0)),), (3,))
        assert json.loads(genome.canonical()) == {
            "gates": [["MAJ", [2, 1, 0]]],
            "n_inputs": 3,
            "outputs": [3],
        }
        assert genome.fingerprint() == Genome.from_json(
            genome.canonical()
        ).fingerprint()

    def test_validation_rejects_forward_and_out_of_range_sources(self):
        with pytest.raises(GenomeError):
            # Gate 0 defines line 2 and may only read lines 0-1.
            Genome(2, (("AND", (0, 2)),), (2,)).validate()
        with pytest.raises(GenomeError):
            Genome(2, (("AND", (0, 1)),), (9,)).validate()
        with pytest.raises(GenomeError):
            Genome(2, (("MAJ", (0, 1)),), (2,)).validate()  # bad arity


# ----------------------------------------------------------------------
# operators
# ----------------------------------------------------------------------
class TestOperators:
    def test_mutation_is_seed_deterministic_and_always_valid(self):
        parent = random_genome(random.Random(3), 3, 6)
        children_a = [
            mutate(parent, random.Random(f"m:{i}"), max_gates=10)
            for i in range(50)
        ]
        children_b = [
            mutate(parent, random.Random(f"m:{i}"), max_gates=10)
            for i in range(50)
        ]
        assert [c.canonical() for c in children_a] == [
            c.canonical() for c in children_b
        ]
        for child in children_a:
            child.validate()
            assert len(child.gates) <= 10

    def test_crossover_children_are_valid(self):
        rng = random.Random(11)
        a = random_genome(rng, 3, 5)
        b = random_genome(rng, 3, 8)
        for i in range(50):
            crossover(a, b, random.Random(f"x:{i}")).validate()

    def test_crossover_rejects_mismatched_inputs(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            crossover(
                random_genome(rng, 2, 3), random_genome(rng, 3, 3), rng
            )


# ----------------------------------------------------------------------
# fitness: batched == scalar, and the known-perfect witness
# ----------------------------------------------------------------------
class TestFitness:
    def test_batched_records_match_scalar_evaluator(self):
        rng = random.Random(13)
        for spec in SPECS.values():
            for _ in range(10):
                genome = random_genome(rng, spec.n_inputs, rng.randint(1, 8))
                batched = evaluate_task(make_task(genome, spec))
                scalar = evaluate_task(
                    make_task(genome, spec, mode="scalar")
                )
                assert dataclasses.replace(
                    batched, backend=""
                ) == dataclasses.replace(scalar, backend="")

    def test_majority_realization_of_dualized_and_is_perfect(self):
        # MAJ(x0, x1, phi) IS the Yamamoto-dualized AND2: functionally
        # exact, self-dual, and every collapsed fault detected (the
        # Chapter 3 minority-realization result the search rediscovers).
        record = evaluate_task(
            make_task(Genome(3, (("MAJ", (2, 1, 0)),), (3,)), SPECS["and2"])
        )
        assert record.perfect
        assert record.dangerous == 0
        assert record.detected == record.faults

    def test_invalid_genome_scores_invalid(self):
        task = make_task(
            Genome(3, (("MAJ", (2, 1, 0)),), (3,)), SPECS["and2"]
        )
        task["genome"] = '{"not": "a genome"}'
        record = evaluate_task(task)
        assert not record.ok
        assert record.score == -1.0


# ----------------------------------------------------------------------
# the acceptance spine: fixed-seed synthesis on >= 2 specs, verified
# ----------------------------------------------------------------------
def _verify_winner(report, spec):
    """A claimed winner must survive verification it had no hand in."""
    genome = Genome.from_json(report.best_genome)
    net = genome.to_network(spec.input_names, name=f"win_{spec.name}")
    # 1. The QA reference interpreter reproduces the spec tables.
    bits = reference_output_bits(net)
    assert tuple(bits) == tuple(spec.tables)
    # 2. Every output is self-dual (Definition 2.5).
    n = len(spec.input_names)
    for out_bits in bits:
        assert reference_is_self_dual(out_bits, n)
    # 3. The scal analysis path: alternating, with no failing lines.
    analysis = analyze_network(net)
    assert analysis.alternating
    assert not analysis.failing_lines()
    # 4. The exhaustive Definition-2.4 oracle: no fault-insecure line.
    assert not ScalSimulator(net).verdict(include_pins=False).insecure


@pytest.mark.parametrize("spec_name,seed", [("and2", 2), ("maj3", 2)])
def test_fixed_seed_synthesis_converges_and_verifies(spec_name, seed):
    report = _campaign(spec_name, seed).run()
    assert report.converged
    assert report.best_record.perfect
    assert report.pareto  # a perfect candidate joined the front
    _verify_winner(report, SPECS[spec_name])


def test_report_carries_cost_factor_against_reference(tmp_path):
    report = _campaign("and2", 2).run()
    # cost_factor = winner cost / two-level reference cost (Table 4.1's
    # measured-vs-Kohavi ratio transplanted to the search's winner).
    reference = network_cost(SPECS["and2"].reference_network())
    assert report.cost_reference == pytest.approx(reference)
    assert report.cost_factor == pytest.approx(
        report.best_record.cost / reference
    )
    assert report.cost_factor < 1.0  # MAJ beats two-level SOP on area


# ----------------------------------------------------------------------
# determinism: checkpoint/--resume and transport parity
# ----------------------------------------------------------------------
class TestDeterminism:
    def test_interrupt_then_resume_is_byte_identical(self, tmp_path):
        straight = _campaign("or2", 2, generations=12).run()
        ckpt = os.path.join(tmp_path, "synth.ckpt.json")
        with pytest.raises(SynthInterrupted):
            _campaign(
                "or2",
                2,
                generations=12,
                checkpoint=ckpt,
                abort_after_generations=4,
            ).run()
        resumed = _campaign(
            "or2", 2, generations=12, checkpoint=ckpt, resume=True
        ).run()
        assert resumed.resumed_generation == 4
        assert _report_identity(resumed) == _report_identity(straight)

    def test_checkpoint_fingerprint_mismatch_raises(self, tmp_path):
        ckpt = os.path.join(tmp_path, "synth.ckpt.json")
        with pytest.raises(SynthInterrupted):
            _campaign(
                "or2",
                2,
                generations=12,
                checkpoint=ckpt,
                abort_after_generations=2,
            ).run()
        with pytest.raises(CheckpointError):
            _campaign(  # different seed => different config fingerprint
                "or2", 3, generations=12, checkpoint=ckpt, resume=True
            ).run()

    def test_fork_transport_matches_inline(self):
        inline = _campaign("and2", 2, transport="inline").run()
        forked = _campaign(
            "and2", 2, processes=2, transport="fork"
        ).run()
        assert _report_identity(forked) == _report_identity(inline)


# ----------------------------------------------------------------------
# repair mode
# ----------------------------------------------------------------------
class TestRepair:
    def test_repair_recovers_a_damaged_alternating_network(self):
        host = random_alternating_network(random.Random(5), 3)
        spec = spec_from_network(host)
        damaged = damage_network(host, seed=1, damage=3)
        # The damage really broke something (else repair proves nothing).
        assert reference_output_bits(
            damaged.to_network(spec.input_names)
        ) != tuple(spec.tables)
        report = repair_campaign(
            host,
            seed=1,
            damage=3,
            population=16,
            generations=30,
            max_gates=18,
        ).run()
        assert report.mode == "repair"
        assert report.converged
        _verify_winner(report, spec)

    def test_repair_cost_reference_defaults_to_host_cost(self):
        host = random_alternating_network(random.Random(5), 3)
        campaign = repair_campaign(
            host, seed=1, population=16, generations=1, max_gates=18
        )
        assert campaign.cost_reference == pytest.approx(network_cost(host))


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestCli:
    def test_synth_json_converges_and_exits_0(self, capsys):
        assert (
            main(
                [
                    "synth",
                    "--spec",
                    "and2",
                    "--seed",
                    "2",
                    "--population",
                    "24",
                    "--generations",
                    "20",
                    "--max-gates",
                    "16",
                    "--json",
                ]
            )
            == 0
        )
        stats = json.loads(capsys.readouterr().out)
        assert stats["converged"] is True
        assert stats["best_perfect"] is True
        assert "history" not in stats  # --report opts into the trajectory

    def test_synth_text_report_and_winner_export(self, tmp_path, capsys):
        out = os.path.join(tmp_path, "winner.bench")
        assert (
            main(
                [
                    "synth",
                    "--spec",
                    "maj3",
                    "--seed",
                    "2",
                    "--population",
                    "24",
                    "--generations",
                    "20",
                    "--max-gates",
                    "16",
                    "--report",
                    "--out",
                    out,
                ]
            )
            == 0
        )
        text = capsys.readouterr().out
        assert "synth synth campaign" in text
        assert "generation" in text
        assert os.path.exists(out)

    def test_synth_repair_cli(self, tmp_path, capsys):
        host = random_alternating_network(random.Random(5), 3)
        bench = os.path.join(tmp_path, "host.bench")
        save_bench(host, bench)
        assert (
            main(
                [
                    "synth",
                    "--repair",
                    bench,
                    "--seed",
                    "1",
                    "--damage",
                    "3",
                    "--population",
                    "16",
                    "--generations",
                    "30",
                    "--max-gates",
                    "18",
                    "--json",
                ]
            )
            == 0
        )
        stats = json.loads(capsys.readouterr().out)
        assert stats["mode"] == "repair"
        assert stats["converged"] is True

    def test_synth_flag_validation(self):
        with pytest.raises(SystemExit):
            main(["synth"])  # neither --spec nor --repair
        with pytest.raises(SystemExit):
            main(["synth", "--spec", "nope"])
        with pytest.raises(SystemExit):
            main(["synth", "--spec", "and2", "--population", "1"])
        with pytest.raises(SystemExit):
            main(["synth", "--spec", "and2", "--resume"])


# ----------------------------------------------------------------------
# flight events -> repro stats
# ----------------------------------------------------------------------
def test_stats_renders_synth_flight_events():
    recorder = MemoryRecorder()
    with obs.recording(recorder=recorder):
        report = _campaign("and2", 2).run()
    summary = summarize(recorder.events)
    assert len(summary["synth_runs"]) == 1
    run = summary["synth_runs"][0]
    assert run["spec"] == "and2"
    assert run["converged"] is True
    assert run["evaluations_per_second"] > 0
    assert len(summary["synth_generations"]) == report.generations_run
    assert summary["synth_batches"]["batches"] == report.batches
    text = render(summary)
    assert "synth: synth spec=and2 seed=2" in text
    assert "synth trajectory:" in text
    assert "synth batches:" in text
