"""Tests for structural path analysis (repro.logic.paths)."""

import pytest

from repro.logic.gates import GateKind
from repro.logic.network import NetworkBuilder
from repro.logic.paths import (
    condition_b_holds,
    condition_c_holds,
    cone_subnetwork,
    equivalent_line_classes,
    fans_out,
    lines_of_output,
    path_is_unate,
    path_parities,
    single_path_to_output,
)


def chain_net():
    b = NetworkBuilder(["a"])
    b.add("n1", GateKind.NOT, ["a"])
    b.add("n2", GateKind.NAND, ["n1", "a"])
    return b.build(["n2"])


def reconvergent_net():
    """a -> n1 -> {n2, n3} -> n4, with unequal inversion parity."""
    b = NetworkBuilder(["a", "b"])
    b.add("n1", GateKind.AND, ["a", "b"])
    b.add("n2", GateKind.NOT, ["n1"])      # parity 1 branch
    b.add("n3", GateKind.BUF, ["n1"])      # parity 0 branch
    b.add("n4", GateKind.OR, ["n2", "n3"])
    return b.build(["n4"])


def equal_parity_net():
    b = NetworkBuilder(["a", "b"])
    b.add("n1", GateKind.AND, ["a", "b"])
    b.add("n2", GateKind.NOT, ["n1"])
    b.add("n3", GateKind.NOT, ["n1"])
    b.add("n4", GateKind.OR, ["n2", "n3"])
    return b.build(["n4"])


class TestSinglePath:
    def test_chain_has_single_path(self):
        net = chain_net()
        path = single_path_to_output(net, "n1", "n2")
        assert path == ["n1", "n2"]

    def test_fanout_breaks_single_path(self):
        net = reconvergent_net()
        assert single_path_to_output(net, "n1", "n4") is None

    def test_output_line_itself(self):
        net = chain_net()
        assert single_path_to_output(net, "n2", "n2") == ["n2"]

    def test_unknown_line(self):
        net = chain_net()
        with pytest.raises(KeyError):
            single_path_to_output(net, "zzz", "n2")

    def test_path_unate(self):
        net = chain_net()
        path = single_path_to_output(net, "n1", "n2")
        assert path_is_unate(net, path)

    def test_xor_path_not_unate(self):
        b = NetworkBuilder(["a", "b"])
        b.add("n1", GateKind.NOT, ["a"])
        b.add("n2", GateKind.XOR, ["n1", "b"])
        net = b.build(["n2"])
        path = single_path_to_output(net, "n1", "n2")
        assert not path_is_unate(net, path)
        assert not condition_b_holds(net, "n1", "n2")


class TestParity:
    def test_unequal_parity(self):
        net = reconvergent_net()
        assert path_parities(net, "n1", "n4") == frozenset({0, 1})
        assert not condition_c_holds(net, "n1", "n4")

    def test_equal_parity(self):
        net = equal_parity_net()
        assert path_parities(net, "n1", "n4") == frozenset({1})
        assert condition_c_holds(net, "n1", "n4")

    def test_xor_contributes_both_parities(self):
        b = NetworkBuilder(["a", "b"])
        b.add("n1", GateKind.AND, ["a", "b"])
        b.add("n2", GateKind.XOR, ["n1", "a"])
        net = b.build(["n2"])
        assert path_parities(net, "n1", "n2") == frozenset({0, 1})

    def test_output_line_parity(self):
        net = chain_net()
        assert path_parities(net, "n2", "n2") == frozenset({0})

    def test_condition_b_implies_condition_c(self):
        net = chain_net()
        for line in ("a", "n1"):
            if condition_b_holds(net, line, "n2"):
                assert condition_c_holds(net, line, "n2")


class TestCones:
    def test_cone_subnetwork(self):
        b = NetworkBuilder(["a", "b", "c"])
        b.add("f1", GateKind.AND, ["a", "b"])
        b.add("f2", GateKind.OR, ["b", "c"])
        net = b.build(["f1", "f2"])
        cone = cone_subnetwork(net, "f1")
        assert set(cone.lines()) == {"a", "b", "f1"}
        assert cone.outputs == ("f1",)

    def test_lines_of_output(self):
        b = NetworkBuilder(["a", "b", "c"])
        b.add("f1", GateKind.AND, ["a", "b"])
        b.add("f2", GateKind.OR, ["b", "c"])
        net = b.build(["f1", "f2"])
        assert set(lines_of_output(net, "f2")) == {"b", "c", "f2"}

    def test_fanout_within_cone_only(self):
        """A line fanning out only to *another* output's cone still has a
        single path within this cone."""
        b = NetworkBuilder(["a", "b"])
        n1 = b.add("n1", GateKind.AND, ["a", "b"])
        b.add("f1", GateKind.NOT, [n1])
        b.add("f2", GateKind.BUF, [n1])
        net = b.build(["f1", "f2"])
        cone = cone_subnetwork(net, "f1")
        assert single_path_to_output(cone, "n1", "f1") == ["n1", "f1"]


class TestHelpers:
    def test_fans_out(self):
        net = reconvergent_net()
        assert fans_out(net, "n1")
        assert not fans_out(net, "n2")

    def test_equivalent_classes_buffers(self):
        b = NetworkBuilder(["a"])
        b.add("n1", GateKind.BUF, ["a"])
        b.add("n2", GateKind.NOT, ["n1"])
        net = b.build(["n2"])
        classes = equivalent_line_classes(net)
        assert any({"a", "n1"} <= set(c) for c in classes)

    def test_no_equivalence_through_fanout_buffer(self):
        b = NetworkBuilder(["a"])
        b.add("n1", GateKind.BUF, ["a"])
        b.add("n2", GateKind.NOT, ["a"])
        net = b.build(["n1", "n2"])
        classes = equivalent_line_classes(net)
        assert not any({"a", "n1"} <= set(c) for c in classes)
