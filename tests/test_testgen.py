"""Tests for Theorem 3.2 test generation (repro.core.testgen)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.simulate import ScalSimulator
from repro.core.testgen import all_test_pairs, format_pair, greedy_test_schedule
from repro.core.testgen import test_plan as make_test_plan
from repro.logic.faults import StuckAt
from repro.logic.parse import parse_expression
from repro.workloads.benchcircuits import fig32_xor_path_network, section32_example
from repro.workloads.randomlogic import random_alternating_network


class TestPlanBasics:
    def test_section_3_2_example(self):
        net, g = section32_example()
        plan = make_test_plan(net, g)
        assert plan.sa0_testable and plan.sa1_testable
        assert plan.sa0_tests() and plan.sa1_tests()

    def test_untestable_direction_detected(self):
        """In Figure 3.2's network, g s/1 has E ≠ 0 (incorrect
        alternation), so Theorem 3.2 declares it untestable."""
        net = fig32_xor_path_network()
        plan = make_test_plan(net, "g")
        # s/0 flips the output in one period only -> testable.
        assert plan.e.is_zero() and plan.sa0_testable
        # s/1 is the direction the figure illustrates: F != 0.
        assert not plan.f.is_zero()
        assert not plan.sa1_testable

    def test_requires_single_output(self, fig34):
        import pytest

        with pytest.raises(ValueError):
            make_test_plan(fig34, "nab")
        plan = make_test_plan(fig34, "nab", output="F3")
        assert plan.output == "F3"


class TestPlanSemantics:
    @settings(max_examples=15, deadline=None)
    @given(st.randoms(use_true_random=False))
    def test_generated_tests_detect_the_fault(self, rnd):
        """Every generated test pair must yield a nonalternating faulty
        output — the definition of detection in alternating logic."""
        net = random_alternating_network(rnd, 3)
        out = net.outputs[0]
        sim = ScalSimulator(net)
        for line in net.lines():
            if line == out:
                continue
            plan = make_test_plan(net, line)
            for value in (0, 1):
                tests = plan.tests(value)
                if not (plan.sa0_testable if value == 0 else plan.sa1_testable):
                    continue
                resp = sim.response(StuckAt(line, value))
                for x, _xbar in tests:
                    assert resp.detected.value(x) == 1, (line, value, x)

    @settings(max_examples=15, deadline=None)
    @given(st.randoms(use_true_random=False))
    def test_e_points_are_oracle_violations(self, rnd):
        """Theorem 3.2's E mask (A & B) marks exactly the incorrect
        alternating pairs the oracle reports for stuck-at 0."""
        net = random_alternating_network(rnd, 3)
        out = net.outputs[0]
        sim = ScalSimulator(net)
        for line in net.lines():
            if line == out:
                continue
            plan = make_test_plan(net, line)
            resp = sim.response(StuckAt(line, 0))
            e_pairs = plan.e | plan.e.co_reflect()
            assert e_pairs.bits == resp.violations.bits, line

    def test_symmetry_ab_cd(self):
        net, g = section32_example()
        plan = make_test_plan(net, g)
        assert plan.b.bits == plan.a.co_reflect().bits
        assert plan.d.bits == plan.c.co_reflect().bits


class TestSchedules:
    def test_all_test_pairs_covers_every_line(self):
        net = parse_expression("a b | b c | a c", inputs=["a", "b", "c"])
        plans = all_test_pairs(net)
        testable = [k for k, tests in plans.items() if tests]
        # Majority is irredundant: every line testable in both directions.
        lines = set(net.lines()) - set(net.outputs)
        assert len(testable) >= 2 * len(lines)

    def test_greedy_schedule_detects_everything(self):
        net = parse_expression("a b | b c | a c", inputs=["a", "b", "c"])
        schedule = greedy_test_schedule(net)
        sim = ScalSimulator(net)
        plans = all_test_pairs(net)
        for (line, value), tests in plans.items():
            if not tests or line in net.outputs:
                continue
            resp = sim.response(StuckAt(line, value))
            assert any(resp.detected.value(x) for x, _ in schedule), (line, value)

    def test_schedule_is_compact(self):
        net = parse_expression("a b | b c | a c", inputs=["a", "b", "c"])
        schedule = greedy_test_schedule(net)
        assert len(schedule) <= 4  # at most all pairs of a 3-input space


class TestDeterministicSummaries:
    """Pinned collapse-aware counts and schedules (regression for the
    order-dependent selection the greedy pass used to make)."""

    def test_structural_summary_pinned_fig34(self, fig34):
        from repro.core.atpg import structural_test_summary

        assert structural_test_summary(fig34, collapse=True) == {
            "faults": 30,
            "tested": 30,
            "untested": 0,
            "redundant": 0,
            "aborted": 0,
        }
        # The raw stem universe is strictly larger; counts still tile.
        raw = structural_test_summary(fig34, collapse=False)
        assert raw["faults"] == 40
        assert raw["tested"] == 40

    def test_structural_summary_pinned_fig37(self, fig37):
        from repro.core.atpg import structural_test_summary

        summary = structural_test_summary(fig37, collapse=True)
        assert summary == {
            "faults": 30,
            "tested": 30,
            "untested": 0,
            "redundant": 0,
            "aborted": 0,
        }

    def test_greedy_schedule_pinned(self):
        net = parse_expression("a b | b c | a c", inputs=["a", "b", "c"])
        assert greedy_test_schedule(net) == [(1, 6), (2, 5), (3, 4)]

    def test_greedy_schedule_pinned_fig34_outputs(self, fig34):
        assert greedy_test_schedule(fig34, output="F1") == [
            (2, 5), (0, 7), (3, 4),
        ]
        assert greedy_test_schedule(fig34, output="F2") == [
            (1, 6), (0, 7), (3, 4),
        ]
        assert greedy_test_schedule(fig34, output="F3") == [
            (1, 6), (2, 5), (3, 4),
        ]

    def test_collapse_never_loses_coverage(self, fig34):
        """Collapsed and raw schedules cover the same testable faults —
        equivalent faults have identical test-pair lists."""
        for out in fig34.outputs:
            collapsed = greedy_test_schedule(fig34, output=out)
            raw = greedy_test_schedule(
                fig34, output=out, collapse=False
            )
            plans = all_test_pairs(fig34, output=out)
            for key, tests in plans.items():
                if not tests:
                    continue
                covered_c = any(pair in tests for pair in collapsed)
                covered_r = any(pair in tests for pair in raw)
                assert covered_c and covered_r, key
            assert len(collapsed) <= len(raw)

    def test_schedule_independent_of_iteration_order(self):
        """Rebuilding the network (fresh dict/set identities) must yield
        the identical schedule — the selection is sorted, not
        hash-order-dependent."""
        schedules = {
            tuple(
                greedy_test_schedule(
                    parse_expression(
                        "a b | b c | a c", inputs=["a", "b", "c"]
                    )
                )
            )
            for _ in range(5)
        }
        assert len(schedules) == 1


class TestFormatting:
    def test_format_pair(self):
        assert format_pair((0b011, 0b100), ("x1", "x2", "x3")) == "(110,001)"
