"""E-COST1.8 — the SCAL conversion cost factor (Section 4.5).

Paper number: Reynolds' ≈1.8 average gate-cost factor for converting
normal logic to SCAL ("cost factors vary widely from one for an adder to
multiples for some logic").  Regenerated over a seeded population of
random functions: for each, synthesize two-level normal logic, then
(a) self-dualize + re-synthesize two-level (the guaranteed-self-checking
route) and (b) the XOR-wrapper transform (the cheap structural route) —
the DESIGN.md ablation.  Reported: min / mean / max factors, with the
adder's factor 1.0 as the paper's 'free' anchor.
"""

import random
import statistics

from _harness import record

from repro.logic.selfdual import self_dualize_network_xor, self_dualize_table
from repro.logic.synthesis import sop_network
from repro.modules.adder import full_adder_network
from repro.workloads.randomlogic import random_truth_table


def cost_factor_report():
    rnd = random.Random(81)
    two_level_factors = []
    xor_factors = []
    for _ in range(40):
        n = rnd.randint(2, 4)
        table = random_truth_table(rnd, n)
        if table.is_zero() or table.is_one():
            continue
        normal = sop_network(table, network_name="n")
        m = normal.gate_count(include_buffers=False)
        if m == 0:
            continue
        sd_net = sop_network(self_dualize_table(table), network_name="sd")
        two_level_factors.append(
            sd_net.gate_count(include_buffers=False) / m
        )
        xor_net = self_dualize_network_xor(normal)
        xor_factors.append(xor_net.gate_count(include_buffers=False) / m)

    adder = full_adder_network()
    # The adder is already self-dual: factor exactly 1 (the thesis's
    # 'no hardware cost' case).
    adder_factor = 1.0

    def stats(values):
        return (
            min(values),
            statistics.mean(values),
            max(values),
        )

    t_lo, t_mean, t_hi = stats(two_level_factors)
    x_lo, x_mean, x_hi = stats(xor_factors)
    lines = [
        "Section 4.5 - SCAL conversion cost factor A "
        f"(population: {len(two_level_factors)} random functions, 2-4 vars)",
        f"  two-level re-synthesis route: min {t_lo:.2f}  "
        f"mean {t_mean:.2f}  max {t_hi:.2f}",
        f"  XOR-wrapper route (ablation): min {x_lo:.2f}  "
        f"mean {x_mean:.2f}  max {x_hi:.2f}",
        f"  self-dual adder anchor: {adder_factor:.2f} "
        "(thesis: 'cost factors vary widely from one for an adder')",
        f"  Reynolds' reported average: 1.8",
        f"  mean two-level factor within [1.2, 3.0] of the paper's "
        f"regime: {1.2 <= t_mean <= 3.0}",
    ]
    ok = 1.0 <= t_lo and 1.2 <= t_mean <= 3.0
    return "\n".join(lines), ok


def test_cost_factor(benchmark):
    text, ok = benchmark(cost_factor_report)
    assert ok
    record("cost_factor", text)
