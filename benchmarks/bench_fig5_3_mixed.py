"""E-FIG5.3 — mixed checker design (Figures 5.3–5.4, Algorithm 5.1).

Paper numbers for the nine-output example: all-dual-rail costs 48 gates
and 9 flip-flops; the mixed design partitions A = {1,2,3,4,9},
B1 = {5,6,7}, B2 = {8} and lands near half the cost ("either way, the
cost is about one-half of the dual-rail checker's cost").  Regenerated:
the partition, both combining-stage variants, and the same algorithm run
on the real Figure 3.4 netlist.
"""

from _harness import record

from repro.checkers.mixed import (
    all_dual_rail_cost,
    partition,
    spec_from_network,
    thesis_nine_output_example,
)
from repro.workloads.fig34 import fig34_network


def mixed_report():
    plan = partition(thesis_nine_output_example())
    base_gates, base_ffs = all_dual_rail_cost(9)
    xg, xf = plan.total_cost("xor")
    dg, df = plan.total_cost("dual-rail")
    net_spec = spec_from_network(fig34_network())
    net_plan = partition(net_spec)
    ng, nf = net_plan.total_cost("xor")
    lines = [
        "Figures 5.3-5.4 / Algorithm 5.1 - mixed checker design",
        f"partition A (XOR-checked): {plan.xor_checked} "
        "(thesis: 1,2,3,4,9)",
        f"dual-rail checked:         {plan.dual_rail_checked} "
        "(thesis: 5,6,7,8)",
        f"all-dual-rail baseline: {base_gates} gates + {base_ffs} FFs "
        "(thesis: 48 + 9)",
        f"mixed, XOR combine (Fig 5.4a):       {xg} gates + {xf} FFs",
        f"mixed, dual-rail combine (Fig 5.4b): {dg} gates + {df} FFs",
        f"gate-cost ratio vs baseline: {xg / base_gates:.2f} "
        "(thesis: 'about one-half')",
        "",
        "Algorithm 5.1 on the Figure 3.4 netlist:",
        f"  sharing groups: {[tuple(sorted(g)) for g in net_spec.sharing_groups]}",
        f"  incorrectly alternating outputs: "
        f"{sorted(net_spec.incorrectly_alternating)}",
        f"  plan: XOR {net_plan.xor_checked}, dual-rail "
        f"{net_plan.dual_rail_checked} -> {ng} gates + {nf} FFs",
    ]
    ok = (
        plan.xor_checked == ("1", "2", "3", "4", "9")
        and plan.dual_rail_checked == ("5", "6", "7", "8")
        and base_gates == 48
        and xg <= base_gates * 0.55
    )
    return "\n".join(lines), ok


def test_fig5_3_mixed(benchmark):
    text, ok = benchmark(mixed_report)
    assert ok
    record("fig5_3_mixed", text)
