"""E-FIG7.5 — fault-tolerant design comparison (Section 7.4, Figure 7.5).

Paper argument regenerated:

* ADR ≈ A·S ≈ 4× a normal CPU — "probably worse than TMR";
* the Figure 7.5 normal∥SCAL pair costs 1+A ≈ 2.8×, undercutting TMR
  whenever A < 2, at the price of half speed after a fault;
* mechanisms demonstrated by fault injection on a self-dual module:
  ADR corrects every single stuck output line via the complement-pass
  retry; the Fig 7.5 pair detects, degrades, and stays correct by
  3-version voting; TMR masks at full speed.
"""

from _harness import record

from repro.system.adr import (
    AdrSystem,
    FaultyModule,
    Fig75System,
    StuckOutputBit,
    TmrSystem,
    design_comparison,
)

WIDTH = 8
MASK = 0xFF


def rotate(x: int) -> int:
    return ((x << 1) | (x >> (WIDTH - 1))) & MASK


def adr_tmr_report():
    # Mechanism demonstrations.
    adr_correct = 0
    adr_total = 0
    for k in range(WIDTH):
        for v in (0, 1):
            adr = AdrSystem(FaultyModule(rotate, WIDTH, StuckOutputBit(k, v)))
            for x in range(0, 256, 5):
                adr_total += 1
                adr_correct += adr.execute(x).correct
    fig75 = Fig75System(rotate, WIDTH, scal_fault=StuckOutputBit(3, 1))
    fig75_outcomes = [fig75.execute(x) for x in range(128)]
    fig75_correct = all(o.correct for o in fig75_outcomes)
    tmr = TmrSystem(rotate, WIDTH, faulty_copy=2, fault=StuckOutputBit(6, 0))
    tmr_correct = all(tmr.execute(x) == rotate(x) for x in range(256))

    rows = [
        f"  {'approach':36s} {'cost':>5s} {'detects':>8s} {'corrects':>9s} "
        f"{'speed ok':>9s} {'speed flt':>10s}"
    ]
    comparison = design_comparison()
    for r in comparison:
        rows.append(
            f"  {r.approach:36s} {r.cost_factor:5.2f} "
            f"{str(r.detects_single_faults):>8s} "
            f"{str(r.corrects_single_faults):>9s} "
            f"{r.speed_before_fault:9.1f} {r.speed_after_fault:10.1f}"
        )
    by_name = {r.approach: r for r in comparison}
    order_ok = (
        by_name["ADR (Shedletsky)"].cost_factor
        > by_name["TMR"].cost_factor
        > by_name["normal + SCAL parallel (Fig 7.5)"].cost_factor
    )
    lines = [
        "Section 7.4 / Figure 7.5 - fault-tolerance design comparison",
        *rows,
        "",
        f"cost ordering ADR > TMR > Fig7.5 (at A = 1.8): {order_ok}",
        f"ADR corrects {adr_correct}/{adr_total} accesses across all "
        f"single stuck output lines",
        f"Fig 7.5 pair: fault detected, degraded to half speed, all "
        f"{len(fig75_outcomes)} results correct: {fig75_correct}",
        f"TMR masks a single faulty copy at full speed: {tmr_correct}",
    ]
    ok = (
        order_ok
        and adr_correct == adr_total
        and fig75_correct
        and fig75.degraded
        and tmr_correct
    )
    return "\n".join(lines), ok


def test_fig7_5_adr_tmr(benchmark):
    text, ok = benchmark(adr_tmr_report)
    assert ok
    record("fig7_5_adr_tmr", text)
