"""E-KERNELS — the codegen kernel tier vs the vectorized interpreter
(PR 8, ROADMAP item 5).

One workload, four rungs: the randlogic single-fault universe (shared
with bench_campaigns) classified by the scalar bitmask path, the
pure-Python packed fallback, the NumPy vectorized backend, and the
program-specialized kernel tier.  The gate asserts statuses are
byte-identical across all four and that the kernel's steady-state sweep
beats the vectorized backend by at least ``MIN_KERNEL_SPEEDUP`` —
measured on whichever tier is live (the exec'd-NumPy rung alone must
hold the floor; Numba, when importable, only raises it).

The cold first sweep (kernel generation included) is reported but not
gated: auto-selection already accounts for it by keeping circuits at or
below 12 inputs on the vectorized rung.
"""

import time
from collections import Counter

from _harness import benchmark_elapsed, record

from bench_campaigns import (
    RANDLOGIC_GATES,
    RANDLOGIC_INPUTS,
    RANDLOGIC_OUTPUTS,
    RANDLOGIC_SEED,
)

import random

from repro import obs
from repro.engine import FaultSweep, engine_for
from repro.engine.vectorized import HAVE_NUMPY
from repro.workloads.randomlogic import random_mixed_network

#: The PR's floor: the kernel tier's steady-state randlogic sweep must
#: beat the vectorized backend by at least this factor (measured ~2.4x
#: to 3.0x on the exec'd-NumPy rung).
MIN_KERNEL_SPEEDUP = 2.0

#: Steady-state timings are best-of-N to damp scheduler noise.
ROUNDS = 5


def _best_of(fn, rounds=ROUNDS):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def kernels_report():
    rng = random.Random(RANDLOGIC_SEED)
    net = random_mixed_network(
        rng,
        n_inputs=RANDLOGIC_INPUTS,
        n_gates=RANDLOGIC_GATES,
        n_outputs=RANDLOGIC_OUTPUTS,
    )
    eng = engine_for(net)
    sweep = FaultSweep(net, engine=eng)
    universe = sweep.single_fault_universe()

    was_enabled = obs.metrics_enabled()
    obs.enable_metrics(False)
    try:
        scalar = [
            s for _, s in sweep.sweep(universe, backend="bitmask")
        ]
        fallback = [
            s for _, s in sweep.sweep(universe, backend="fallback")
        ]
        if HAVE_NUMPY:
            from repro.engine.kernels import HAVE_NUMBA, KernelBackend

            vec = eng.vectorized
            vectorized = vec.sweep_statuses(universe)
            vec_seconds = _best_of(
                lambda: vec.sweep_statuses(universe)
            )

            start = time.perf_counter()
            kern = KernelBackend(eng.compiled, vectorized=vec)
            kernel_statuses = kern.sweep_statuses(universe)
            cold_seconds = time.perf_counter() - start
            kern_seconds = _best_of(
                lambda: kern.sweep_statuses(universe)
            )
            cache = kern.cache_stats()
            tier = "numba" if (HAVE_NUMBA and kern.use_numba) else "numpy"
        else:
            vectorized = kernel_statuses = scalar
            vec_seconds = kern_seconds = cold_seconds = 0.0
            cache = {"kernels": 0, "blocks": 0, "tiles": 0}
            tier = "unavailable"
    finally:
        obs.enable_metrics(was_enabled)

    identical = scalar == fallback == vectorized == kernel_statuses
    speedup = vec_seconds / kern_seconds if kern_seconds > 0 else 0.0
    counts = Counter(scalar)
    lines = [
        "Program-specialized kernel tier vs vectorized interpreter "
        f"({RANDLOGIC_INPUTS} inputs, {RANDLOGIC_GATES} gates, "
        f"{len(universe)} live faults)",
        f"  statuses: {counts['detected']} detected, "
        f"{counts['silent']} silent, {counts['dangerous']} dangerous",
        f"  byte-identical across scalar/fallback/vectorized/kernel: "
        f"{identical}",
        f"  vectorized steady-state:  {vec_seconds * 1e3:8.2f} ms",
        f"  kernel steady-state:      {kern_seconds * 1e3:8.2f} ms   "
        f"({speedup:.2f}x, floor {MIN_KERNEL_SPEEDUP:.1f}x)",
        f"  kernel cold (codegen in): {cold_seconds * 1e3:8.2f} ms   "
        f"({cache['kernels']} kernels compiled, tier {tier})",
    ]
    ok = identical and (
        not HAVE_NUMPY or speedup >= MIN_KERNEL_SPEEDUP
    )
    metrics = {
        "kernels_faults": len(universe),
        "kernels_detected": counts["detected"],
        "kernels_silent": counts["silent"],
        "kernels_dangerous": counts["dangerous"],
        "kernels_statuses_identical": identical,
        "kernels_compiled": cache["kernels"],
        # the live tier (numpy/numba) is in the text report only: it
        # legitimately differs between the CI numba job and the plain
        # job, and --check compares non-timing metrics exactly
        "kernels_vectorized_seconds": vec_seconds,
        "kernels_kernel_seconds": kern_seconds,
        "kernels_cold_seconds": cold_seconds,
        "kernels_speedup": speedup,
    }
    return "\n".join(lines), ok, metrics


def test_kernels(benchmark):
    text, ok, metrics = benchmark.pedantic(
        kernels_report, rounds=2, iterations=1
    )
    record(
        "kernels",
        text,
        metrics=metrics,
        elapsed=benchmark_elapsed(benchmark),
    )
    assert ok, (
        "statuses diverged across rungs or kernel speedup below "
        f"{MIN_KERNEL_SPEEDUP}x: {metrics}"
    )
