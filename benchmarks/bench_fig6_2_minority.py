"""E-FIG6.1/6.2 — minority modules (Theorems 6.2/6.3, Figure 6.2).

Paper claims regenerated:

* Theorem 6.2: (m_I(X‖0_K), m_I(X̄‖1_K)) = (NAND(X), AND(X)) for all
  NAND widths up to 6 (exhaustive);
* Theorem 6.3: the NOR dual with the complemented clock;
* Figure 6.2: the four-NAND example converts directly to 4 modules with
  14 total inputs, but minimally to a single 3-input minority module;
* the Section 6.2 consequence: every line of a converted network
  alternates, so the network is self-checking with respect to each.
"""

import random

from _harness import record

from repro.core.simulate import ScalSimulator
from repro.logic.evaluate import line_tables, network_function
from repro.logic.gates import GateKind
from repro.logic.selfdual import first_period_function
from repro.modules.minority import (
    conversion_report,
    minimal_minority_realization,
    to_minority_network,
    verify_theorem_6_2,
    verify_theorem_6_3,
)
from repro.workloads.benchcircuits import fig62_nand_network, minority3_table
from repro.workloads.randomlogic import random_nand_network


def minority_report():
    thm62 = verify_theorem_6_2(max_n=6)
    thm63 = verify_theorem_6_3(max_n=6)

    net = fig62_nand_network()
    converted = to_minority_network(net)
    direct = conversion_report(converted)
    minimal = minimal_minority_realization(minority3_table(), ["A", "B", "C"])
    min_rep = conversion_report(minimal)
    nand_modules = [
        g for g in converted.gates
        if g.kind is GateKind.MIN and len(g.inputs) > 1
    ]

    # Random NAND networks stay correct and fully alternating.
    rnd = random.Random(71)
    random_ok = True
    for _ in range(10):
        base = random_nand_network(rnd, 3, rnd.randint(2, 6))
        conv = to_minority_network(base)
        tables = line_tables(conv)
        out = conv.outputs[0]
        if first_period_function(tables[out]).bits != network_function(base).bits:
            random_ok = False
        if not all(tables[g.name].is_self_dual() for g in conv.gates):
            random_ok = False
    oracle = ScalSimulator(converted).verdict(include_pins=False)

    lines = [
        "Chapter 6 - minority modules",
        f"Theorem 6.2 (NAND -> minority) exhaustive for N <= 6: {thm62}",
        f"Theorem 6.3 (NOR -> minority)  exhaustive for N <= 6: {thm63}",
        "",
        "Figure 6.2 example (3-input minority built from four NANDs):",
        f"  direct conversion: {len(nand_modules)} NAND-role modules, "
        f"{sum(len(g.inputs) for g in nand_modules)} total inputs "
        "(thesis: 'four minority modules ... fourteen total inputs')",
        f"  full module count incl. inverter: {direct.modules} "
        f"({direct.clock_inputs} clock fan-ins)",
        f"  minimal realization: {min_rep.modules} module, "
        f"{min_rep.total_inputs} total inputs "
        "(thesis: 'a single minority module with three total inputs')",
        f"  converted network fault-secure (oracle): {oracle.is_fault_secure}",
        f"random NAND networks: conversion correct & all lines alternate "
        f"over 10 seeds: {random_ok}",
    ]
    ok = (
        thm62
        and thm63
        and len(nand_modules) == 4
        and sum(len(g.inputs) for g in nand_modules) == 14
        and min_rep.modules == 1
        and min_rep.total_inputs == 3
        and random_ok
        and oracle.is_fault_secure
    )
    return "\n".join(lines), ok


def test_fig6_2_minority(benchmark):
    text, ok = benchmark(minority_report)
    assert ok
    record("fig6_2_minority", text)
