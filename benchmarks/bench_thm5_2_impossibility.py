"""E-THM5.2 — the clock-disable impossibility (Theorem 5.2, Figure 5.6).

Paper claim: no network of normal gates can be a *self-checking* clock
disable — meeting the Figure 5.6 freeze requirements forces a hidden
fault state that normal operation never exercises, so some stuck fault
is untestable.  Regenerated as an executable survey: every candidate in
the module family either violates a requirement on the driven transition
sequences or carries an untestable internal fault; none is both
requirement-clean and fully testable.
"""

from _harness import record

from repro.checkers.hardcore import DEFAULT_CANDIDATES, theorem_5_2_survey


def impossibility_report():
    verdicts = theorem_5_2_survey(DEFAULT_CANDIDATES)
    lines = ["Theorem 5.2 - executable impossibility survey", ""]
    theorem_holds = True
    for verdict in verdicts:
        if verdict.is_self_checking_hardcore:
            theorem_holds = False
            status = "COUNTEREXAMPLE (!!)"
        elif verdict.meets_requirements:
            status = (
                "meets the Fig 5.6 requirements but holds untestable "
                f"fault(s): {', '.join(verdict.untestable_faults)}"
            )
        else:
            status = f"violates requirements: {verdict.violation}"
        lines.append(f"  {verdict.name}: {status}")
    lines += [
        "",
        f"theorem upheld over {len(verdicts)} candidates: {theorem_holds}",
        "(the thesis's consequence: the hardcore must be replicated "
        "(Fig 5.5b) or its status merely latched and displayed (Fig 5.7))",
    ]
    return "\n".join(lines), theorem_holds


def test_thm5_2_impossibility(benchmark):
    text, ok = benchmark(impossibility_report)
    assert ok
    record("thm5_2_impossibility", text)
