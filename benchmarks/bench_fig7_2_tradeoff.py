"""E-FIG7.2 — the reliability design trade-off (Figure 7.2).

Paper figure: benefit / cost / utility bars over discrete fault-
protection degrees, with "the peak utility ... reached when single fault
protection is used".  Regenerated from the parametric model (benefit
saturates after single-fault coverage because single faults dominate
field failures; cost keeps climbing), plus a sensitivity sweep showing
the peak is stable across a range of cost scalings.
"""

from _harness import record

from repro.system.reliability import (
    peak_utility_degree,
    render_tradeoff,
    tradeoff_curve,
)


def tradeoff_report():
    points = tradeoff_curve()
    peak = peak_utility_degree(points)
    # Sensitivity: scale the cost curve and see where the peak moves.
    sensitivity = []
    stable = True
    for scale in (0.5, 0.75, 1.0, 1.5, 2.0):
        scaled = tradeoff_curve(
            cost=[c * scale for c in (0.0, 2.0, 4.5, 9.0)]
        )
        p = peak_utility_degree(scaled)
        sensitivity.append(f"  cost x{scale:>4}: peak utility at '{p}'")
        if scale >= 0.75 and p != "single fault":
            stable = False
    lines = [
        "Figure 7.2 - reliability design trade-off",
        render_tradeoff(points),
        "",
        f"peak utility degree: '{peak}' (thesis: single fault protection)",
        "sensitivity to the cost scale:",
        *sensitivity,
    ]
    return "\n".join(lines), peak == "single fault" and stable


def test_fig7_2_tradeoff(benchmark):
    text, ok = benchmark(tradeoff_report)
    assert ok
    record("fig7_2_tradeoff", text)
