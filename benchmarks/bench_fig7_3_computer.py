"""E-FIG7.3 — the SCAL computer system (Figure 7.3, Section 7.2).

Paper claim: matching codes to failure modes (alternating logic in the
CPU, parity on bus and memory, translators at the boundary) protects
"the entire system ... from single faults".  Regenerated: two programs
run under an exhaustive single-fault sweep of the CPU datapath, the bus,
and the memory (cells, data lines, address lines) — every output-
corrupting fault is detected; none is dangerous.
"""

from _harness import record

from repro.system.computer import ScalComputer, countdown_program, demo_program


def computer_report():
    computer = ScalComputer()
    program, data = demo_program()
    straight = computer.sweep(program, data)
    loops = computer.sweep(countdown_program(5), {5: 1})
    lines = [
        "Figure 7.3 - SCAL computer single-fault sweeps",
        "",
        "straight-line program (2*(a+b)-c and (a+b)>>1):",
        f"  faults {straight.total}: detected {straight.detected}, "
        f"silent(harmless) {straight.silent}, DANGEROUS {straight.dangerous}",
        f"  coverage of output-corrupting faults: {straight.coverage:.3f}",
        "",
        "branching program (countdown loop with JZ):",
        f"  faults {loops.total}: detected {loops.detected}, "
        f"silent(harmless) {loops.silent}, DANGEROUS {loops.dangerous}",
        f"  coverage of output-corrupting faults: {loops.coverage:.3f}",
        "",
        "fault classes: CPU alu_bit/acc_ff/bus_bit x 8 bits x 2 values, "
        "memory cell/data-line/address-line stuck-ats",
    ]
    ok = straight.dangerous == 0 and loops.dangerous == 0
    return "\n".join(lines), ok


def test_fig7_3_computer(benchmark):
    text, ok = benchmark.pedantic(computer_report, rounds=3, iterations=1)
    assert ok
    record("fig7_3_computer", text)
