"""E-FIG4.4 — ALPT and PALT self-checking (Figures 4.4a/4.4b, Thms 4.1/4.3).

Paper claims: "The ALPT is self-checking if the parity of its output is
checked" and "The PALT is self-checking if its 1-out-of-2 code output is
checked", proved by walking the line classes a–j.  Regenerated: an
exhaustive per-line-class stuck-at injection over all input words,
counting detections and asserting no fault ever produces a wrong word
without a code violation.
"""

from _harness import record

from repro.scal.translators import ALPT, PALT, TranslatorFault
from repro.system.memory import parity

WIDTH = 4


def _alpt_sites():
    sites = [(s, k) for s in "abcde" for k in range(WIDTH)]
    return sites + [("f", 0), ("i", 0), ("h", 0), ("j", 0)]


def _palt_sites():
    sites = [(s, k) for s in "abcde" for k in range(WIDTH)]
    return sites + [("f", 0), ("g", 0), ("h", 0)]


def translators_report():
    # ALPT sweep.
    alpt_rows = []
    alpt_ok = True
    for site, index in _alpt_sites():
        for value in (0, 1):
            alpt = ALPT(WIDTH)
            alpt.inject(TranslatorFault(site, index, value))
            detected = wrong_undetected = 0
            for word in range(1 << WIDTH):
                bits = [(word >> i) & 1 for i in range(WIDTH)]
                data, par = alpt.feed_pair(bits, [1 - b for b in bits])
                bad_code = parity(data) != par
                wrong = data != bits or par != parity(bits)
                if bad_code:
                    detected += 1
                elif wrong:
                    wrong_undetected += 1
            if wrong_undetected:
                alpt_ok = False
            alpt_rows.append(
                f"  ALPT {site}[{index}] s/{value}: detected on {detected}/16 "
                f"words, undetected-wrong {wrong_undetected}"
            )
    # PALT sweep.
    palt_ok = True
    palt_rows = []
    for site, index in _palt_sites():
        for value in (0, 1):
            palt = PALT(WIDTH)
            palt.inject(TranslatorFault(site, index, value))
            exposed = wrong_undetected = 0
            for word in range(1 << WIDTH):
                stored = [(word >> i) & 1 for i in range(WIDTH)]
                code = palt.code_output(stored, parity(stored))
                first = palt.outputs_for_period(stored, 0)
                second = palt.outputs_for_period(stored, 1)
                alternates = all(b == 1 - a for a, b in zip(first, second))
                detected = (not PALT.code_valid(code)) or not alternates
                wrong = first != stored
                if detected:
                    exposed += 1
                elif wrong:
                    wrong_undetected += 1
            if wrong_undetected:
                palt_ok = False
            palt_rows.append(
                f"  PALT {site}[{index}] s/{value}: exposed on {exposed}/16 "
                f"words, undetected-wrong {wrong_undetected}"
            )
    summary = [
        f"Figure 4.4 translators, width {WIDTH}",
        f"Theorem 4.1 (ALPT): every line-class fault fault-secure = {alpt_ok} "
        f"({len(alpt_rows)} faults injected)",
        f"Theorem 4.3 (PALT): every line-class fault fault-secure = {palt_ok} "
        f"({len(palt_rows)} faults injected)",
        "",
        "per-fault detail (first 8 rows each):",
        *alpt_rows[:8],
        "  ...",
        *palt_rows[:8],
        "  ...",
    ]
    return "\n".join(summary), alpt_ok and palt_ok


def test_fig4_4_translators(benchmark):
    text, ok = benchmark(translators_report)
    assert ok
    record("fig4_4_translators", text)
