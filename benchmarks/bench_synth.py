"""Synthesis fitness throughput and fixed-seed search regression gate.

Two claims land in ``BENCH_synth.json``:

* **batched >= 5x scalar fitness throughput** — the generational search
  charges every candidate to the word-axis backends through the
  ``synth`` chunk seam; over a deterministic candidate pool the batched
  evaluator must produce records byte-identical (modulo the advisory
  ``backend`` field) to the pointwise scalar evaluator while being at
  least ``MIN_SYNTH_SPEEDUP`` faster overall (NumPy runs only — the
  packed fallback is a correctness rung, not a performance claim);
* **fixed-seed search convergence** — the committed micro-campaign
  configurations (the same ones the tests and CI smoke drill) converge
  to perfect self-dual, self-checking winners in a pinned number of
  generations and evaluations, so a search-quality regression (operator
  drift, fitness reweighting, RNG discipline) fails ``--check`` as an
  exact metric mismatch rather than as noise.
"""

import dataclasses
import random
import time

from _harness import benchmark_elapsed, record

from repro.engine.vectorized import HAVE_NUMPY
from repro.synth import (
    SPECS,
    SynthCampaign,
    evaluate_task,
    make_task,
    random_genome,
)
from repro.synth.specs import _self_dualized

#: Acceptance bar: batched fitness evaluation must beat the scalar
#: evaluator by at least this factor over the throughput pool.
MIN_SYNTH_SPEEDUP = 5.0

#: Identity-pool size per builtin spec (every record compared
#: field-for-field against the scalar evaluator).
POOL_PER_SPEC = 20

#: Throughput pool: one 5-input (32-point) spec with campaign-sized
#: genomes, where the scalar cost (points x faults x gates) dwarfs the
#: shared per-candidate compile overhead — the shape a generation batch
#: actually has once the search grows past toy specs.
THROUGHPUT_POOL = 40

#: The committed fixed-seed micro-campaigns (spec, seed) — the same
#: convergent configurations the test suite and CI smoke drill.
CAMPAIGNS = (("and2", 2), ("or2", 2), ("maj3", 2))


def _identity_pool():
    pool = []
    for spec_name in sorted(SPECS):
        spec = SPECS[spec_name]
        rng = random.Random(f"bench-synth:{spec_name}")
        for _ in range(POOL_PER_SPEC):
            genome = random_genome(rng, spec.n_inputs, rng.randint(8, 16))
            pool.append((spec, genome))
    return pool


def _throughput_pool():
    spec = _self_dualized(
        "bench5", 4, 0b1111100010000000, "4-input spec self-dualized: "
        "the 32-point throughput target"
    )
    rng = random.Random("bench-synth:throughput")
    return [
        (spec, random_genome(rng, spec.n_inputs, rng.randint(16, 28)))
        for _ in range(THROUGHPUT_POOL)
    ]


def _evaluate_both(pool):
    start = time.perf_counter()
    batched = [
        evaluate_task(make_task(genome, spec)) for spec, genome in pool
    ]
    batched_wall = time.perf_counter() - start
    start = time.perf_counter()
    scalar = [
        evaluate_task(make_task(genome, spec, mode="scalar"))
        for spec, genome in pool
    ]
    scalar_wall = time.perf_counter() - start
    agreed = sum(
        1
        for b, s in zip(batched, scalar)
        if dataclasses.replace(b, backend="")
        == dataclasses.replace(s, backend="")
    )
    return agreed, batched_wall, scalar_wall


def synth_report():
    identity = _identity_pool()
    id_agreed, id_batched, id_scalar = _evaluate_both(identity)

    throughput = _throughput_pool()
    tp_agreed, tp_batched, tp_scalar = _evaluate_both(throughput)

    speedup = tp_scalar / tp_batched if tp_batched else float("inf")
    ok = id_agreed == len(identity) and tp_agreed == len(throughput)

    lines = [
        "Synthesis fitness: batched (word-axis) vs scalar evaluator",
        f"  identity pool: {len(identity)} candidates over "
        f"{len(SPECS)} builtin specs, records identical "
        f"{id_agreed}/{len(identity)} "
        f"(scalar {id_scalar:.3f}s, batched {id_batched:.3f}s)",
        f"  throughput pool: {len(throughput)} campaign-sized candidates "
        f"on a 32-point spec, records identical "
        f"{tp_agreed}/{len(throughput)}",
        f"  scalar {tp_scalar:.3f}s  batched {tp_batched:.3f}s  "
        f"-> {speedup:.1f}x"
        + ("" if HAVE_NUMPY else "  (packed fallback, ungated)"),
        "",
        "Fixed-seed micro-campaigns (population=24, max_gates=16):",
    ]
    metrics = {
        "identity_candidates": len(identity),
        "identity_identical": id_agreed,
        "throughput_candidates": len(throughput),
        "throughput_identical": tp_agreed,
        "scalar_seconds": round(tp_scalar, 4),
        "batched_seconds": round(tp_batched, 4),
        "fitness_speedup": round(speedup, 2),
    }
    for spec_name, seed in CAMPAIGNS:
        report = SynthCampaign(
            SPECS[spec_name],
            seed=seed,
            population=24,
            generations=20,
            max_gates=16,
        ).run()
        ok = ok and report.converged and report.best_record.perfect
        lines.append(
            f"  {spec_name:5s} seed={seed}: converged gen "
            f"{report.best_generation} after {report.evaluations} "
            f"evaluations, winner cost {report.best_record.cost:g} "
            f"(factor {report.cost_factor:.2f} vs two-level reference), "
            f"{report.best_record.detected}/{report.best_record.faults} "
            f"faults detected"
        )
        metrics[f"{spec_name}_converged"] = int(report.converged)
        metrics[f"{spec_name}_generation"] = report.best_generation
        metrics[f"{spec_name}_evaluations"] = report.evaluations
        metrics[f"{spec_name}_winner_gates"] = report.best_record.gates
    return "\n".join(lines), metrics, ok, speedup


def test_synth(benchmark):
    text, metrics, ok, speedup = benchmark.pedantic(
        synth_report, rounds=1, iterations=1
    )
    assert ok, text
    if HAVE_NUMPY:
        assert speedup >= MIN_SYNTH_SPEEDUP, (
            f"batched fitness speedup {speedup:.2f}x fell below the "
            f"{MIN_SYNTH_SPEEDUP:.0f}x acceptance bar\n{text}"
        )
    record("synth", text, metrics, benchmark_elapsed(benchmark))
