"""E-FIG3.4 — the Section 3.6 example: Figures 3.4–3.6.

Paper artifacts regenerated:

* the Algorithm 3.1 classification of the three-output network
  (F1 = MAJ(A',B,C), F2 = A^B^C, F3 = MAJ(A,B,C)): most lines admitted
  by conditions A/B, the shared line 9 (our ``nab``) only by the
  multi-output Corollary 3.2, and line 20 (our ``or_ab``) failing;
* the Figure 3.6 fault table with X (nonalternating, detected) and
  * (incorrect alternating, undetected) marks — our ``nab`` rows match
  the thesis's line 9 rows exactly;
* the final verdict: NOT self-checking, because of line 20's s-a-0.
"""

from _harness import record

from repro.core import (
    ScalSimulator,
    analyze_network,
    fault_table,
    lines_needing_multi_output,
    render_fault_table,
    undetected_faults,
)
from repro.logic.faults import StuckAt
from repro.workloads.fig34 import fig34_network


def fig36_report():
    net = fig34_network()
    analysis = analyze_network(net)
    oracle = ScalSimulator(net).verdict(include_pins=True)
    rows = fault_table(
        net,
        [
            StuckAt("nab", 0),
            StuckAt("nab", 1),
            StuckAt("or_ab", 0),
            StuckAt("or_ab", 1),
        ],
    )
    bad = undetected_faults(rows)
    lines = [
        "Figures 3.4-3.6 - the three-output example network",
        analysis.summary(),
        f"lines admitted only by Corollary 3.2 (thesis line 9): "
        f"{lines_needing_multi_output(analysis)}",
        "",
        render_fault_table(net, rows),
        "",
        f"faults with undetected wrong outputs (thesis: line 20 s/0): {bad}",
        f"oracle agrees (stem+pin sweep, {oracle.fault_count} faults): "
        f"not self-checking = {not oracle.is_self_checking}",
    ]
    ok = (
        not analysis.is_self_checking
        and bad == ["or_ab s/0"]
        and lines_needing_multi_output(analysis) == ("nab",)
    )
    return "\n".join(lines), ok


def test_fig3_6_fault_table(benchmark):
    text, ok = benchmark(fig36_report)
    assert ok
    record("fig3_6_fault_table", text)
