"""E-FIG4.5 — the complete code-conversion system (Figure 4.5, Thm 4.4).

Paper claim: the self-dual block + ALPT + parity memory + PALT loop is a
self-checking sequential machine storing only n+1 bits.  Regenerated:
functional equivalence with the symbolic machine on a long input stream,
and a full single-fault campaign across all four units (combinational
stems, ALPT lines, PALT lines, memory cells/lines/address lines) with
zero undetected wrong outputs.
"""

import random

from _harness import record

from repro.logic.faults import enumerate_stem_faults
from repro.scal.codeconv import to_code_conversion
from repro.scal.translators import TranslatorFault
from repro.system.memory import single_memory_faults
from repro.workloads.detectors import kohavi_0101


def codeconv_report():
    rnd = random.Random(41)
    machine = kohavi_0101()
    cc = to_code_conversion(machine)
    vectors = [(rnd.randint(0, 1),) for _ in range(50)]
    reference = machine.run(vectors)
    healthy = cc.run(vectors)
    equivalent = cc.decoded_outputs(healthy) == reference and not healthy.detected

    width = cc.encoding.width
    campaigns = []
    total = detected = silent = dangerous = 0

    def classify(label, run):
        nonlocal total, detected, silent, dangerous
        total += 1
        wrong = cc.decoded_outputs(run) != reference
        if run.detected:
            detected += 1
        elif wrong:
            dangerous += 1
            campaigns.append(f"  DANGEROUS: {label}")
        else:
            silent += 1

    for fault in enumerate_stem_faults(cc.network, include_inputs=False):
        classify(f"comb {fault.describe()}", cc.run(vectors, comb_fault=fault))
    sites = [(s, k) for s in "abcde" for k in range(width)]
    for site, k in sites + [("f", 0), ("i", 0), ("h", 0), ("g", 0)]:
        for v in (0, 1):
            tf = TranslatorFault(site, k, v)
            classify(f"alpt {tf.describe()}", cc.run(vectors, alpt_fault=tf))
    for site, k in sites + [("f", 0), ("g", 0), ("h", 0)]:
        for v in (0, 1):
            tf = TranslatorFault(site, k, v)
            classify(f"palt {tf.describe()}", cc.run(vectors, palt_fault=tf))
    for mf in single_memory_faults(width, cc.memory.address_bits):
        classify(f"mem {mf.describe()}", cc.run(vectors, memory_fault=mf))

    lines = [
        "Figure 4.5 - code-conversion sequential machine (0101 detector)",
        f"storage: {cc.flip_flop_count()} bits (n+1) vs 2n = "
        f"{2 * width} for dual flip-flops",
        f"functional equivalence over {len(vectors)} steps: {equivalent}",
        f"single-fault campaign: {total} faults -> detected {detected}, "
        f"silent(harmless) {silent}, DANGEROUS {dangerous}",
        *campaigns,
    ]
    return "\n".join(lines), equivalent and dangerous == 0


def test_fig4_5_codeconv(benchmark):
    text, ok = benchmark.pedantic(codeconv_report, rounds=3, iterations=1)
    assert ok
    record("fig4_5_codeconv", text)
