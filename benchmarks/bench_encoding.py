"""E-ENC — system encoding considerations (Section 7.2, extension).

Paper argument: match each subsystem's code to its failure mode — single
parity where lines are independent, Berger / m-out-of-n for space-domain
CPUs, alternating logic where time is cheaper than wires.  Regenerated:
the redundancy/capability comparison at several data widths, plus
fault-injection confirmation of each code's detection envelope and the
Figure 7.1 bus sweep (code replies leave no dangerous single bus fault).
"""

import itertools
import random

from _harness import record

from repro.checkers.codes import (
    berger_encode,
    berger_valid,
    inject_unidirectional,
    m_out_of_n_codewords,
    m_out_of_n_valid,
    render_encoding_comparison,
)
from repro.system.bus import BusSystem


def encoding_report():
    rnd = random.Random(121)
    sections = []
    for width in (4, 8, 16):
        sections.append(f"data width {width}:")
        sections.append(render_encoding_comparison(width))
        sections.append("")

    # Berger unidirectional envelope by simulation.
    berger_misses = 0
    trials = 400
    for _ in range(trials):
        data_bits = rnd.randint(2, 6)
        data = [rnd.randint(0, 1) for _ in range(data_bits)]
        encoded = berger_encode(data)
        k = rnd.randint(1, len(encoded))
        positions = rnd.sample(range(len(encoded)), k)
        direction = rnd.randint(0, 1)
        corrupted = inject_unidirectional(encoded, positions, direction)
        if corrupted != encoded and berger_valid(corrupted, data_bits):
            berger_misses += 1

    # m-out-of-n unidirectional envelope, exhaustive for 2-of-5.
    mn_misses = 0
    for word in m_out_of_n_codewords(2, 5):
        for k in range(1, 6):
            for positions in itertools.combinations(range(5), k):
                for direction in (0, 1):
                    corrupted = inject_unidirectional(
                        word, list(positions), direction
                    )
                    if tuple(corrupted) != word and m_out_of_n_valid(
                        corrupted, 2
                    ):
                        mn_misses += 1

    # Figure 7.1 bus with code replies.
    system = BusSystem(8)
    words = [[rnd.randint(0, 1) for _ in range(8)] for _ in range(24)]
    sweep = system.fault_sweep(words)

    sections += [
        f"Berger code: {berger_misses}/{trials} unidirectional errors "
        "missed (expected 0)",
        f"2-out-of-5 code: {mn_misses} unidirectional errors missed "
        "(exhaustive; expected 0)",
        f"Figure 7.1 bus sweep (8 data lines + parity, code replies): "
        f"detected {sweep['detected']}, silent {sweep['silent']}, "
        f"DANGEROUS {sweep['dangerous']}",
    ]
    ok = berger_misses == 0 and mn_misses == 0 and sweep["dangerous"] == 0
    return "\n".join(sections), ok


def test_encoding(benchmark):
    text, ok = benchmark(encoding_report)
    assert ok
    record("encoding", text)
