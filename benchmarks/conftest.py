"""Bench-local pytest hooks: the ``--check`` regression-gate flag.

``pytest benchmarks/... --check`` compares every bench's fresh
``BENCH_<name>.json`` against the committed baseline in
``benchmarks/results/`` (see ``_harness.record``): non-timing metrics
must match exactly and wall time may not exceed the baseline by more
than ``BENCH_CHECK_FACTOR`` (default 1.6x).  Implemented by exporting
``BENCH_CHECK`` so the harness (and bare ``python bench_x.py`` runs)
share one switch.

The telemetry registry is enabled (and cleared) around every bench so
``_harness.record`` can embed the final metrics snapshot in each
``BENCH_<name>.json``; benches that *time* hot paths disable it around
their measured sections (see ``bench_campaigns.randlogic_sweep_report``,
which also gates the disabled-telemetry overhead).
"""

import os

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _bench_telemetry():
    obs.reset()
    obs.enable_metrics(True)
    yield
    obs.reset()


def pytest_addoption(parser):
    parser.addoption(
        "--check",
        action="store_true",
        default=False,
        help="fail benches that regress against the committed "
        "benchmarks/results/BENCH_*.json baselines",
    )


def pytest_configure(config):
    if config.getoption("--check", default=False):
        os.environ["BENCH_CHECK"] = "1"
