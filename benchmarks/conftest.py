"""Bench-local pytest hooks: the ``--check`` regression-gate flag.

``pytest benchmarks/... --check`` compares every bench's fresh
``BENCH_<name>.json`` against the committed baseline in
``benchmarks/results/`` (see ``_harness.record``): non-timing metrics
must match exactly and wall time may not exceed the baseline by more
than ``BENCH_CHECK_FACTOR`` (default 1.6x).  Implemented by exporting
``BENCH_CHECK`` so the harness (and bare ``python bench_x.py`` runs)
share one switch.
"""

import os


def pytest_addoption(parser):
    parser.addoption(
        "--check",
        action="store_true",
        default=False,
        help="fail benches that regress against the committed "
        "benchmarks/results/BENCH_*.json baselines",
    )


def pytest_configure(config):
    if config.getoption("--check", default=False):
        os.environ["BENCH_CHECK"] = "1"
