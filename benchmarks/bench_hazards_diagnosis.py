"""E-HAZARD/E-DIAG — the redundancy trade-off and fault location
(Sections 3.2 and 1.3, extension).

Two sides of the thesis's framing, evaluated:

* the Section 3.2 caveat — redundancy is sometimes *intentional*
  (hazard masking).  Over a population of random functions, count the
  static-1 hazards of minimal covers and the redundant consensus terms a
  hazard-free cover must add; each added term is a line whose s-a-0 is
  untestable, i.e. a direct conflict with the irredundancy Algorithm 3.1
  assumes.  The textbook a·b ∨ ā·c case is shown explicitly.
* the Section 1.3 taxonomy's *diagnosis* leg — after the SCAL checker
  fires, the dictionary locator finds the faulty line: injected faults
  across the Figure 3.4 network are localized to their behavioural
  equivalence class in a handful of adaptive probes.
"""

import random

from _harness import record

from repro.core.diagnosis import build_fault_dictionary, simulate_faulty_unit
from repro.logic.evaluate import line_tables
from repro.logic.hazards import analyze_hazards, consensus_demo_table
from repro.workloads.fig34 import fig34_network
from repro.workloads.randomlogic import random_truth_table


def hazards_diagnosis_report():
    rnd = random.Random(141)
    # Hazard statistics over random functions.
    functions = 40
    hazardous = 0
    added_terms = 0
    for _ in range(functions):
        table = random_truth_table(rnd, rnd.randint(3, 4))
        if table.is_zero() or table.is_one():
            continue
        report = analyze_hazards(table)
        if report.minimal_hazards:
            hazardous += 1
        added_terms += report.redundant_terms_added
    demo = analyze_hazards(consensus_demo_table())

    # Diagnosis on the Figure 3.4 network.
    net = fig34_network()
    dictionary = build_fault_dictionary(net)
    normal = line_tables(net)
    trials = 0
    localized = 0
    probe_counts = []
    truth_ok = True
    for candidate in dictionary.candidates:
        if candidate.fault is None:
            continue
        trials += 1
        oracle = simulate_faulty_unit(net, candidate.fault)
        survivors, probes = dictionary.diagnose(oracle)
        probe_counts.append(len(probes))
        sigs = {
            c.signature for c in dictionary.candidates if c.fault in survivors
        }
        if candidate.signature not in sigs:
            truth_ok = False
        if len(sigs) == 1:
            localized += 1
    mean_probes = sum(probe_counts) / len(probe_counts)

    lines = [
        "Hazards vs irredundancy (Section 3.2) and fault diagnosis "
        "(Section 1.3)",
        "",
        f"random functions analyzed: {functions}; with static-1 hazards "
        f"in their minimal cover: {hazardous}",
        f"redundant consensus terms added for hazard freedom: "
        f"{added_terms} (each an untestable-s-a-0 line, the exact "
        "redundancy Theorem 3.4 flags)",
        f"textbook a*b | a'*c case: {demo.minimal_hazards} hazard, "
        f"+{demo.redundant_terms_added} consensus term",
        "",
        f"diagnosis on fig3.4: {trials} injected faults, localized to a "
        f"unique behaviour class: {localized}, truth always among "
        f"survivors: {truth_ok}, mean adaptive probes "
        f"{mean_probes:.1f} (of 8 possible inputs)",
    ]
    ok = truth_ok and demo.redundant_terms_added == 1 and added_terms > 0
    return "\n".join(lines), ok


def test_hazards_diagnosis(benchmark):
    text, ok = benchmark.pedantic(hazards_diagnosis_report, rounds=2, iterations=1)
    assert ok
    record("hazards_diagnosis", text)
