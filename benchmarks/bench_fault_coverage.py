"""E-COVER — single-fault coverage of SCAL networks (Section 2.4).

Paper claim: alternating logic "provides self-checking for single
faults" — every single stuck-at either never corrupts the output or is
caught as a nonalternating pair; an unchecked network detects nothing.
Regenerated over a population of random self-dual two-level networks,
with the DESIGN.md fault-granularity ablation (stem-only vs stem+pin
universes) and the broken Figure 3.4 network as the contrast case.
"""

import random

from _harness import benchmark_elapsed, record

from repro.core.simulate import ScalSimulator, fault_coverage
from repro.workloads.fig34 import fig34_network
from repro.workloads.randomlogic import random_alternating_network


def coverage_report():
    rnd = random.Random(91)
    stem_rows = []
    pin_rows = []
    dangerous_total = 0
    networks = 12
    for _ in range(networks):
        net = random_alternating_network(rnd, 3)
        sim = ScalSimulator(net)
        stem = fault_coverage(
            net, sim.single_fault_universe(include_pins=False)
        )
        both = fault_coverage(net)
        stem_rows.append(stem)
        pin_rows.append(both)
        dangerous_total += stem["dangerous"] + both["dangerous"]

    def mean(rows, key):
        return sum(r[key] for r in rows) / len(rows)

    broken = fault_coverage(fig34_network())
    lines = [
        "Section 2.4 - SCAL single-fault coverage "
        f"({networks} random self-dual two-level networks)",
        f"  stem-only universe:  detected {mean(stem_rows, 'detected'):.3f}  "
        f"silent {mean(stem_rows, 'silent'):.3f}  "
        f"dangerous {mean(stem_rows, 'dangerous'):.3f}",
        f"  stem+pin universe:   detected {mean(pin_rows, 'detected'):.3f}  "
        f"silent {mean(pin_rows, 'silent'):.3f}  "
        f"dangerous {mean(pin_rows, 'dangerous'):.3f}",
        f"  total dangerous faults across the population: "
        f"{dangerous_total:.0f} (thesis: complete single-fault coverage)",
        "",
        "contrast - the unfixed Figure 3.4 network:",
        f"  detected {broken['detected']:.3f}  silent {broken['silent']:.3f}  "
        f"dangerous {broken['dangerous']:.3f} "
        "(the line-20 fault slips through)",
    ]
    ok = dangerous_total == 0 and broken["dangerous"] > 0
    metrics = {
        "networks": networks,
        "stem_detected_mean": mean(stem_rows, "detected"),
        "pin_detected_mean": mean(pin_rows, "detected"),
        "dangerous_total": dangerous_total,
        "broken_fig34_dangerous": broken["dangerous"],
    }
    return "\n".join(lines), ok, metrics


def test_fault_coverage(benchmark):
    text, ok, metrics = benchmark.pedantic(
        coverage_report, rounds=3, iterations=1
    )
    assert ok
    record(
        "fault_coverage",
        text,
        metrics=metrics,
        elapsed=benchmark_elapsed(benchmark),
    )
