"""E-CAMPAIGN — sequential fault campaigns across a machine suite
(Chapter 4 end-to-end, extension).

The DESIGN.md "sequential style" ablation at scale: for every machine in
the workload library, build both SCAL realizations (dual flip-flop and
code conversion), run full single-fault campaigns, and compare coverage,
storage cost, and detection latency.  Also sweeps *transient* faults
(Definition 2.1's temporary case) on the dual-FF 0101 detector.
"""

import os
import random
import time
from collections import Counter

from _harness import benchmark_elapsed, check_enabled, load_baseline, record

from repro import obs

from repro.engine import FaultSweep
from repro.engine.vectorized import HAVE_NUMPY
from repro.logic.faults import enumerate_stem_faults
from repro.workloads.randomlogic import random_mixed_network
from repro.scal.codeconv import to_code_conversion
from repro.scal.dualff import to_dual_flipflop
from repro.scal.verify import codeconv_campaign, dualff_campaign, random_vectors
from repro.workloads.detectors import kohavi_0101
from repro.workloads.machines import machine_suite


def campaigns_report():
    rows = [
        f"  {'machine':14s} {'style':9s} {'FFs/bits':>8s} {'faults':>7s} "
        f"{'detected':>9s} {'DANGEROUS':>10s} {'latency':>8s}"
    ]
    all_secure = True
    faults_swept = 0
    for machine in machine_suite():
        vectors = random_vectors(machine, 30, seed=len(machine.states))
        dff = to_dual_flipflop(machine)
        d = dualff_campaign(dff, vectors)
        cc = to_code_conversion(machine)
        c = codeconv_campaign(cc, vectors)
        for style, result, storage in (
            ("dual-FF", d, dff.flip_flop_count()),
            ("codeconv", c, cc.flip_flop_count()),
        ):
            latency = (
                f"{result.mean_detection_latency:.1f}"
                if result.mean_detection_latency is not None
                else "n/a"
            )
            rows.append(
                f"  {machine.name:14s} {style:9s} {storage:8d} "
                f"{result.total:7d} {result.detected:9d} "
                f"{result.dangerous:10d} {latency:>8s}"
            )
            if not result.is_fault_secure:
                all_secure = False
            faults_swept += result.total

    # Inductive (exhaustive per-state/per-input) verification.
    from repro.scal.induction import verify_inductively

    inductive_rows = []
    all_proved = True
    for machine in machine_suite():
        dff = to_dual_flipflop(machine)
        verdict = verify_inductively(dff)
        inductive_rows.append(
            f"  {machine.name:14s}: {verdict.summary().split(': ', 1)[1]}"
        )
        if not verdict.holds:
            all_proved = False

    # Transient sweep on the 0101 detector.
    detector = kohavi_0101()
    dff = to_dual_flipflop(detector)
    vectors = random_vectors(detector, 30, seed=9)
    reference = detector.run(vectors)
    transient_total = transient_bad = 0
    for fault in enumerate_stem_faults(dff.circuit.network, include_inputs=False):
        for window in ((4, 4), (9, 9), (8, 11)):
            transient_total += 1
            run = dff.run(vectors, fault=fault, fault_window=window)
            if dff.decoded_outputs(run) != reference and not run.detected:
                transient_bad += 1
    lines = [
        "Sequential single-fault campaigns (dual flip-flop vs code "
        "conversion)",
        *rows,
        "",
        f"all campaigns fault-secure: {all_secure}",
        "inductive verification (exhaustive per-state/per-input proof):",
        *inductive_rows,
        f"transient sweep (0101 detector, windowed stem faults): "
        f"{transient_total} injections, undetected-wrong {transient_bad}",
    ]
    metrics = {
        "campaign_faults_swept": faults_swept,
        "transient_injections": transient_total,
        "transient_undetected_wrong": transient_bad,
    }
    ok = all_secure and transient_bad == 0 and all_proved
    return "\n".join(lines), ok, metrics


def test_campaigns(benchmark):
    text, ok, metrics = benchmark.pedantic(
        campaigns_report, rounds=2, iterations=1
    )
    assert ok
    record("campaigns", text, metrics=metrics, elapsed=benchmark_elapsed(benchmark))


# ----------------------------------------------------------------------
# large random-logic fault sweep: scalar bitmask vs the fault-batched
# vectorized backend on one universe, statuses byte-identical
# ----------------------------------------------------------------------
RANDLOGIC_SEED = 0xA17
RANDLOGIC_INPUTS = 12
RANDLOGIC_GATES = 240
RANDLOGIC_OUTPUTS = 8

#: The PR's floor: with NumPy installed the auto-selected backend must
#: beat the scalar bitmask sweep by at least this factor.
MIN_VECTOR_SPEEDUP = 3.0


def randlogic_sweep_report():
    rng = random.Random(RANDLOGIC_SEED)
    net = random_mixed_network(
        rng,
        n_inputs=RANDLOGIC_INPUTS,
        n_gates=RANDLOGIC_GATES,
        n_outputs=RANDLOGIC_OUTPUTS,
    )
    sweep = FaultSweep(net)
    universe = sweep.single_fault_universe()

    # Telemetry stays disabled inside the measured region: this bench's
    # fast-sweep time doubles as the disabled-overhead gate (the
    # instrumented seams may cost one branch each, nothing more).
    was_enabled = obs.metrics_enabled()
    obs.enable_metrics(False)
    try:
        start = time.perf_counter()
        scalar = sweep.sweep(universe, backend="bitmask")
        scalar_seconds = time.perf_counter() - start

        # Best-of-3 damps scheduler noise; the gate compares against
        # the committed baseline at percent granularity.
        fast_seconds = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            fast = sweep.sweep(universe, backend="auto")
            fast_seconds = min(fast_seconds, time.perf_counter() - start)
    finally:
        obs.enable_metrics(was_enabled)
    fast_backend = sweep.last_sweep_backend

    identical = fast == scalar
    speedup = scalar_seconds / fast_seconds if fast_seconds > 0 else 0.0
    counts = Counter(status for _fault, status in scalar)
    lines = [
        "Large random-logic single-fault sweep "
        f"({RANDLOGIC_INPUTS} inputs, {RANDLOGIC_GATES} gates, "
        f"{len(universe)} live faults)",
        f"  statuses: {counts['detected']} detected, "
        f"{counts['silent']} silent, {counts['dangerous']} dangerous",
        f"  scalar bitmask sweep:    {scalar_seconds:8.4f} s",
        f"  auto ({fast_backend:>10s}) sweep: {fast_seconds:8.4f} s   "
        f"({speedup:.1f}x)",
        f"  statuses byte-identical across backends: {identical}",
    ]
    ok = identical and (not HAVE_NUMPY or speedup >= MIN_VECTOR_SPEEDUP)
    metrics = {
        "randlogic_faults": len(universe),
        "randlogic_detected": counts["detected"],
        "randlogic_silent": counts["silent"],
        "randlogic_dangerous": counts["dangerous"],
        "randlogic_statuses_identical": identical,
        "randlogic_scalar_seconds": scalar_seconds,
        "randlogic_fast_seconds": fast_seconds,
        "randlogic_speedup": speedup,
    }
    return "\n".join(lines), ok, metrics


def test_randlogic_sweep(benchmark):
    text, ok, metrics = benchmark.pedantic(
        randlogic_sweep_report, rounds=2, iterations=1
    )
    # The committed baseline must be read before record() overwrites it.
    baseline = load_baseline("campaigns_randlogic") if check_enabled() else None
    record(
        "campaigns_randlogic",
        text,
        metrics=metrics,
        elapsed=benchmark_elapsed(benchmark),
    )
    assert ok, "statuses diverged or vectorized speedup below 3x"
    if baseline is not None:
        base_fast = (baseline.get("metrics") or {}).get(
            "randlogic_fast_seconds"
        )
        if base_fast:
            limit = float(os.environ.get("BENCH_OBS_OVERHEAD_PCT", "2.0"))
            overhead = (
                metrics["randlogic_fast_seconds"] / base_fast - 1.0
            ) * 100.0
            assert overhead < limit, (
                f"disabled-telemetry sweep took "
                f"{metrics['randlogic_fast_seconds']:.4f}s, "
                f"{overhead:.1f}% over the committed baseline "
                f"{base_fast:.4f}s (limit {limit:g}%; override with "
                f"BENCH_OBS_OVERHEAD_PCT)"
            )


# ----------------------------------------------------------------------
# supervised campaign runtime: fork fan-out with per-chunk supervision,
# clean and under a mid-sweep worker kill — statuses must stay
# byte-identical to the serial path and every incident must be visible
# in the CampaignReport
# ----------------------------------------------------------------------
def supervised_sweep_report():
    import os
    import tempfile

    from repro.qa.chaos import sabotage_campaign

    rng = random.Random(RANDLOGIC_SEED)
    net = random_mixed_network(
        rng,
        n_inputs=RANDLOGIC_INPUTS,
        n_gates=RANDLOGIC_GATES,
        n_outputs=RANDLOGIC_OUTPUTS,
    )
    sweep = FaultSweep(net)
    universe = sweep.single_fault_universe()

    start = time.perf_counter()
    serial = sweep.sweep(universe)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    forked = sweep.sweep(universe, processes=2)
    forked_seconds = time.perf_counter() - start
    clean = sweep.last_report

    with tempfile.TemporaryDirectory() as tmp:
        start = time.perf_counter()
        with sabotage_campaign(
            "worker-killed", once_path=os.path.join(tmp, "once")
        ):
            sabotaged = sweep.sweep(universe, processes=2)
        chaos_seconds = time.perf_counter() - start
    chaos = sweep.last_report

    forked_identical = forked == serial
    chaos_identical = sabotaged == serial
    recovered = chaos.workers_replaced >= 1 and bool(chaos.retries)
    lines = [
        "Supervised fork campaign over the random-logic universe "
        f"({len(universe)} faults, 2 workers)",
        f"  serial sweep:               {serial_seconds:8.4f} s",
        f"  supervised fork sweep:      {forked_seconds:8.4f} s   "
        f"(backend {clean.backend}, {clean.chunks_total} chunks, "
        f"{len(clean.degradations)} degradations)",
        f"  fork sweep, worker killed:  {chaos_seconds:8.4f} s   "
        f"({chaos.workers_replaced} workers replaced, "
        f"{len(chaos.retries)} retries)",
        f"  statuses byte-identical (clean / chaos): "
        f"{forked_identical} / {chaos_identical}",
    ]
    ok = forked_identical and chaos_identical and recovered
    metrics = {
        "supervised_faults": len(universe),
        "supervised_clean_identical": forked_identical,
        "supervised_clean_degradations": len(clean.degradations),
        "supervised_chaos_identical": chaos_identical,
        "supervised_chaos_recovered": recovered,
        "supervised_serial_seconds": serial_seconds,
        "supervised_forked_seconds": forked_seconds,
        "supervised_chaos_seconds": chaos_seconds,
    }
    return "\n".join(lines), ok, metrics


def test_supervised_sweep(benchmark):
    text, ok, metrics = benchmark.pedantic(
        supervised_sweep_report, rounds=2, iterations=1
    )
    record(
        "campaigns_supervised",
        text,
        metrics=metrics,
        elapsed=benchmark_elapsed(benchmark),
    )
    assert ok, "supervised sweep diverged or failed to recover from chaos"


# ----------------------------------------------------------------------
# execution transports: the same supervised universe over forked pipes
# vs spawned `repro worker` socket processes — byte-identical statuses,
# no degradations, and the socket spawn overhead on the record
# ----------------------------------------------------------------------
def transport_sweep_report():
    rng = random.Random(RANDLOGIC_SEED)
    net = random_mixed_network(
        rng,
        n_inputs=RANDLOGIC_INPUTS,
        n_gates=RANDLOGIC_GATES,
        n_outputs=RANDLOGIC_OUTPUTS,
    )
    sweep = FaultSweep(net)
    universe = sweep.single_fault_universe()

    start = time.perf_counter()
    serial = sweep.sweep(universe)
    serial_seconds = time.perf_counter() - start

    results = {}
    for transport in ("fork", "socket"):
        start = time.perf_counter()
        statuses = sweep.sweep(universe, processes=2, transport=transport)
        seconds = time.perf_counter() - start
        report = sweep.last_report
        results[transport] = {
            "seconds": seconds,
            "identical": statuses == serial,
            "backend": report.backend,
            "degradations": len(report.degradations),
        }

    lines = [
        "Execution transports over the random-logic universe "
        f"({len(universe)} faults, 2 lanes)",
        f"  serial:                     {serial_seconds:8.4f} s",
    ]
    for transport, entry in results.items():
        lines.append(
            f"  {transport + ':':27s} {entry['seconds']:8.4f} s   "
            f"(backend {entry['backend']}, "
            f"{entry['degradations']} degradations)"
        )
    identical = all(entry["identical"] for entry in results.values())
    undegraded = all(
        entry["degradations"] == 0 for entry in results.values()
    )
    lines.append(
        f"  statuses byte-identical across transports: {identical}"
    )
    ok = identical and undegraded
    metrics = {
        "transports_faults": len(universe),
        "transports_identical": identical,
        "transports_fork_degradations": results["fork"]["degradations"],
        "transports_socket_degradations": results["socket"]["degradations"],
        "transports_serial_seconds": serial_seconds,
        "transports_fork_seconds": results["fork"]["seconds"],
        "transports_socket_seconds": results["socket"]["seconds"],
    }
    return "\n".join(lines), ok, metrics


def test_transport_sweep(benchmark):
    text, ok, metrics = benchmark.pedantic(
        transport_sweep_report, rounds=2, iterations=1
    )
    record(
        "campaigns_transports",
        text,
        metrics=metrics,
        elapsed=benchmark_elapsed(benchmark),
    )
    assert ok, "transport sweep diverged from serial or degraded"
