"""E-FIG2.2 — the self-dual adder (Figure 2.2).

Paper claim: the optimal adder is inherently self-dual, so it implements
SCAL "with no hardware cost".  Regenerated: self-duality of sum and
carry, plus the full single-fault sweep showing the cell is a complete
SCAL network (every fault detected or harmless; none dangerous).
"""

from _harness import record

from repro.core.simulate import ScalSimulator
from repro.logic.evaluate import line_tables
from repro.modules.adder import full_adder_network, ripple_adder_network


def adder_report():
    cell = full_adder_network()
    tables = line_tables(cell)
    sim = ScalSimulator(cell)
    verdict = sim.verdict()
    ripple = ripple_adder_network(2)
    ripple_verdict = ScalSimulator(ripple).verdict(include_pins=False)
    lines = [
        "Figure 2.2 - the self-dual adder",
        f"full adder: s self-dual = {tables['s'].is_self_dual()}, "
        f"cout self-dual = {tables['cout'].is_self_dual()}",
        f"full adder SCAL verdict: {verdict.is_self_checking} "
        f"({verdict.fault_count} single stem+pin faults swept)",
        f"2-bit ripple adder SCAL verdict: {ripple_verdict.is_self_checking} "
        f"({ripple_verdict.fault_count} single stem faults swept)",
        f"gate cost of the cell: {cell.gate_count()} gates "
        f"(no SCAL overhead - the paper's 'free' case)",
    ]
    return "\n".join(lines), verdict.is_self_checking


def test_fig2_2_adder(benchmark):
    text, ok = benchmark(adder_report)
    assert ok
    record("fig2_2_adder", text)
