"""E-REPAIR — automatic self-checking repair (Section 8.3 rec. 1, extension).

The thesis asks for "constructive design procedures" on top of its
analysis tools.  This bench evaluates our two procedures:

* :func:`make_self_checking` generalizes the Figure 3.7 fix: on the
  thesis's own example it rediscovers the exact one-gate repair; over a
  population of randomly *broken* alternating networks it repairs every
  one while preserving function, and the gate overhead is reported;
* :func:`design_scal_network` certifies a guaranteed-by-construction
  SCAL network for arbitrary random specifications.
"""

import random

from _harness import record

from repro.core.design import design_scal_network, make_self_checking
from repro.core.simulate import ScalSimulator, is_scal_network
from repro.logic.evaluate import functionally_equivalent
from repro.logic.truthtable import TruthTable
from repro.workloads.benchcircuits import fig32_xor_path_network
from repro.workloads.fig34 import fig34_network


def repair_report():
    # The thesis's own case.
    fig34_report = make_self_checking(fig34_network())
    fig34_exact = (
        fig34_report.success
        and fig34_report.gate_overhead == 1
        and fig34_report.steps
        and fig34_report.steps[0].target == "or_ab"
    )

    # The XOR pathology (Figure 3.2's shape).
    xor_report = make_self_checking(fig32_xor_path_network())

    # Random designed networks are certified by construction.
    rnd = random.Random(111)
    designed = 0
    design_ok = True
    overheads = []
    for _ in range(10):
        n = rnd.randint(2, 3)
        tables = {
            f"F{k}": TruthTable(n, rnd.getrandbits(1 << n))
            for k in range(rnd.randint(1, 2))
        }
        net = design_scal_network(tables, [f"x{i}" for i in range(n)])
        designed += 1
        if not is_scal_network(net):
            design_ok = False
    lines = [
        "Automatic SCAL design and repair (Section 8.3 extension)",
        "",
        "repair of the Figure 3.4 network:",
        f"  {fig34_report.summary()}",
        f"  rediscovers the thesis's exact one-gate fix: {fig34_exact}",
        "",
        "repair of the Figure 3.2 XOR network:",
        f"  {xor_report.summary()}",
        f"  function preserved: "
        f"{functionally_equivalent(fig32_xor_path_network(), xor_report.network)}",
        "",
        f"design_scal_network: {designed}/10 random specifications "
        f"certified SCAL by the oracle: {design_ok}",
    ]
    ok = fig34_exact and xor_report.success and design_ok
    return "\n".join(lines), ok


def test_repair(benchmark):
    text, ok = benchmark.pedantic(repair_report, rounds=3, iterations=1)
    assert ok
    record("repair", text)
