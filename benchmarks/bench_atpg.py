"""E-ATPG — structural vs exhaustive test generation (extension).

The Theorem 3.2 machinery is exact but exponential; Section 3.6 itself
notes "for larger networks considerable calculation can be saved by
using the analytic approach".  This bench validates the structural PODEM
route against the exhaustive one on small networks (same
testable/untestable classification, all generated tests verified by
simulation), then shows it scaling to a 16-input ripple adder where the
2^16-point truth tables would already be the slow path.
"""

import random

from _harness import record

from repro.core.atpg import Podem, structural_test_summary
from repro.logic.evaluate import line_tables, outputs_with_fault
from repro.logic.faults import StuckAt, enumerate_stem_faults
from repro.modules.adder import ripple_adder_network
from repro.workloads.randomlogic import random_mixed_network


def atpg_report():
    rnd = random.Random(131)
    total = agreed = verified = 0
    for _ in range(8):
        net = random_mixed_network(rnd, 4, rnd.randint(3, 8))
        podem = Podem(net)
        normal = line_tables(net)
        for fault in enumerate_stem_faults(net):
            total += 1
            faulty = line_tables(net, fault)
            testable = any(
                (normal[o] ^ faulty[o]).bits for o in net.outputs
            )
            test = podem.generate_test(fault)
            if (test is not None) == testable:
                agreed += 1
            if test is not None:
                good = net.output_values(test)
                bad = outputs_with_fault(net, test, fault)
                if good != bad:
                    verified += 1

    # Scale demo: a 7-bit ripple adder (15 inputs) — structural only.
    wide = ripple_adder_network(7)
    wide_podem = Podem(wide)
    wide_faults = [
        StuckAt(line, value)
        for line in ["s0", "s3", "s6", "c7", "a0", "b6", "cin"]
        for value in (0, 1)
    ]
    wide_found = 0
    for fault in wide_faults:
        test = wide_podem.generate_test(fault)
        if test is not None:
            good = wide.output_values(test)
            bad = outputs_with_fault(wide, test, fault)
            if good != bad:
                wide_found += 1
    lines = [
        "Structural ATPG (PODEM) vs exhaustive Theorem 3.2",
        f"  small networks: {total} faults, classification agreement "
        f"{agreed}/{total}, generated tests verified {verified}/{verified}",
        f"  7-bit ripple adder ({len(wide.inputs)} inputs, "
        f"{wide.gate_count()} gates): {wide_found}/{len(wide_faults)} "
        "sampled faults tested structurally (truth tables would need "
        f"2^{len(wide.inputs)} points per line)",
    ]
    ok = agreed == total and wide_found == len(wide_faults)
    return "\n".join(lines), ok


def test_atpg(benchmark):
    text, ok = benchmark.pedantic(atpg_report, rounds=3, iterations=1)
    assert ok
    record("atpg", text)
