"""E-ATPG — engine-accelerated fault-dropping PODEM vs scalar PODEM.

Two records.  ``atpg_podem`` validates the scalar structural route
against the exhaustive Theorem 3.2 classification on small networks
(Section 3.6's "analytic approach" saving), unchanged from the earlier
bench.  ``atpg`` is the regression gate for the fault-dropping driver
(:func:`repro.engine.atpg.run_atpg`): over the committed workload — the
seed circuits, ripple adders, and the committed random-logic batch
(``examples/data/array*.bench``, random iterative arrays) — it requires

* classification parity: wherever scalar per-collapsed-fault
  ``Podem.generate_test_ex`` completes, the dropping driver's
  detected/redundant verdict is byte-identical — and any fault the
  scalar loop *aborts* on (backtrack budget) must be rescued as
  ``detected`` by an earlier dropped pattern, never lost;
* full coverage: every fault the block backend can distinguish from the
  good circuit (``output_bits(fault) != output_bits(None)``) is
  detected, and nothing aborts.  The exhaustive sweep is exponential in
  input count, so this independent cross-check runs on circuits up to
  ``SWEEP_MAX_INPUTS`` inputs (wider ones are covered by parity: a
  completed PODEM verdict is already exact);
* speed: the dropping driver beats the scalar loop by at least
  ``MIN_ATPG_SPEEDUP`` overall (NumPy runs only — the packed fallback
  is a correctness rung, not a performance claim).

The count metrics land in ``BENCH_atpg.json`` where ``--check`` compares
them exactly; the ``*_seconds``/``*_speedup`` keys ride along as
informational timing.
"""

import os
import random
import time

from _harness import benchmark_elapsed, record

from repro.core.atpg import Podem
from repro.core.collapse import collapse_stem_faults
from repro.engine import engine_for
from repro.engine.atpg import run_atpg
from repro.engine.vectorized import HAVE_NUMPY
from repro.logic.benchfmt import load_bench
from repro.logic.evaluate import line_tables, outputs_with_fault
from repro.logic.faults import StuckAt, enumerate_stem_faults
from repro.modules.adder import ripple_adder_network
from repro.workloads.benchcircuits import fig62_nand_network
from repro.workloads.fig34 import fig34_network, fig37_fixed_network
from repro.workloads.randomlogic import random_mixed_network

DATA_DIR = os.path.join(
    os.path.dirname(__file__), os.pardir, "examples", "data"
)

#: The acceptance bar: the dropping driver must beat per-fault scalar
#: PODEM by at least this factor over the whole committed workload.
MIN_ATPG_SPEEDUP = 5.0

#: Widest circuit the exhaustive detectability cross-check sweeps
#: (2^n points per line; 25-input circuits already cost ~40s).
SWEEP_MAX_INPUTS = 23


def atpg_podem_report():
    rnd = random.Random(131)
    total = agreed = verified = 0
    for _ in range(8):
        net = random_mixed_network(rnd, 4, rnd.randint(3, 8))
        podem = Podem(net)
        normal = line_tables(net)
        for fault in enumerate_stem_faults(net):
            total += 1
            faulty = line_tables(net, fault)
            testable = any(
                (normal[o] ^ faulty[o]).bits for o in net.outputs
            )
            test = podem.generate_test(fault)
            if (test is not None) == testable:
                agreed += 1
            if test is not None:
                good = net.output_values(test)
                bad = outputs_with_fault(net, test, fault)
                if good != bad:
                    verified += 1

    # Scale demo: a 7-bit ripple adder (15 inputs) — structural only.
    wide = ripple_adder_network(7)
    wide_podem = Podem(wide)
    wide_faults = [
        StuckAt(line, value)
        for line in ["s0", "s3", "s6", "c7", "a0", "b6", "cin"]
        for value in (0, 1)
    ]
    wide_found = 0
    for fault in wide_faults:
        test = wide_podem.generate_test(fault)
        if test is not None:
            good = wide.output_values(test)
            bad = outputs_with_fault(wide, test, fault)
            if good != bad:
                wide_found += 1
    lines = [
        "Structural ATPG (PODEM) vs exhaustive Theorem 3.2",
        f"  small networks: {total} faults, classification agreement "
        f"{agreed}/{total}, generated tests verified {verified}/{verified}",
        f"  7-bit ripple adder ({len(wide.inputs)} inputs, "
        f"{wide.gate_count()} gates): {wide_found}/{len(wide_faults)} "
        "sampled faults tested structurally (truth tables would need "
        f"2^{len(wide.inputs)} points per line)",
    ]
    ok = agreed == total and wide_found == len(wide_faults)
    return "\n".join(lines), ok


def test_atpg_podem(benchmark):
    text, ok = benchmark.pedantic(atpg_podem_report, rounds=3, iterations=1)
    assert ok
    record("atpg_podem", text)


# ----------------------------------------------------------------------
# the engine-accelerated driver
# ----------------------------------------------------------------------
def _workload():
    """(label, network) pairs: seed circuits, ripple adders, and the
    committed random iterative-array batch."""
    circuits = [
        ("fig34", fig34_network()),
        ("fig37", fig37_fixed_network()),
        ("fig62", fig62_nand_network()),
        ("adder4", load_bench(os.path.join(DATA_DIR, "adder4.bench"))),
        ("adder8", ripple_adder_network(8)),
        ("adder10", ripple_adder_network(10)),
        ("adder12", ripple_adder_network(12)),
        ("array10", load_bench(os.path.join(DATA_DIR, "array10.bench"))),
        ("array11", load_bench(os.path.join(DATA_DIR, "array11.bench"))),
    ]
    return circuits


def _detectable_count(network, universe):
    """Faults the block backend distinguishes from the fault-free
    circuit on some input point — the sweep-level coverage ceiling."""
    packed = engine_for(network).packed
    baseline = packed.output_bits(None)
    return sum(
        1 for fault in universe if packed.output_bits(fault) != baseline
    )


def engine_atpg_report():
    rows = []
    totals = {
        "circuits": 0,
        "faults_total": 0,
        "detected_total": 0,
        "redundant_total": 0,
        "aborted_total": 0,
        "scalar_aborted_total": 0,
        "patterns_kept_total": 0,
        "detectable_total": 0,
        "sweep_checked_circuits": 0,
    }
    scalar_wall = engine_wall = 0.0
    ok = True
    for label, network in _workload():
        universe = sorted(
            collapse_stem_faults(network), key=lambda f: (f.line, f.value)
        )
        start = time.perf_counter()
        podem = Podem(network)
        scalar = {}
        for fault in universe:
            result = podem.generate_test_ex(fault)
            scalar[fault.describe()] = (
                "detected" if result.status == "test" else result.status
            )
        scalar_wall += time.perf_counter() - start

        start = time.perf_counter()
        report = run_atpg(network, faults=universe)
        engine_wall += time.perf_counter() - start

        # Parity where scalar completed; scalar aborts must be rescued.
        rescued = 0
        for name, verdict in scalar.items():
            if verdict == "aborted":
                rescued += 1
                ok = ok and report.classifications[name] == "detected"
            else:
                ok = ok and report.classifications[name] == verdict
        ok = ok and report.aborted == 0

        swept = len(network.inputs) <= SWEEP_MAX_INPUTS
        if swept:
            detectable = _detectable_count(network, universe)
            ok = ok and report.detected == detectable
            totals["detectable_total"] += detectable
            totals["sweep_checked_circuits"] += 1

        totals["circuits"] += 1
        totals["faults_total"] += report.requested
        totals["detected_total"] += report.detected
        totals["redundant_total"] += report.redundant
        totals["aborted_total"] += report.aborted
        totals["scalar_aborted_total"] += rescued
        totals["patterns_kept_total"] += report.patterns_kept
        rows.append(
            f"  {label:8s} {report.requested:4d} faults  "
            f"{report.detected:4d} detected  {report.redundant:2d} "
            f"redundant  {report.targets:3d} PODEM searches  "
            f"{report.patterns_kept:3d} patterns"
            + ("" if swept else "  [sweep skipped: "
               f"{len(network.inputs)} inputs]")
            + (f"  [{rescued} scalar aborts rescued]" if rescued else "")
        )

    speedup = scalar_wall / engine_wall if engine_wall else float("inf")
    lines = [
        "Fault-dropping ATPG (run_atpg) vs per-fault scalar PODEM",
        f"  workload: {totals['circuits']} circuits, "
        f"{totals['faults_total']} collapsed faults "
        f"({totals['detectable_total']} detectable on the "
        f"{totals['sweep_checked_circuits']} sweep-checked circuits)",
    ]
    lines.extend(rows)
    lines.append(
        f"  scalar {scalar_wall:.3f}s  engine {engine_wall:.3f}s  "
        f"-> {speedup:.1f}x"
        + ("" if HAVE_NUMPY else "  (packed fallback, ungated)")
    )
    metrics = dict(totals)
    metrics["scalar_seconds"] = round(scalar_wall, 4)
    metrics["engine_seconds"] = round(engine_wall, 4)
    metrics["atpg_speedup"] = round(speedup, 2)
    return "\n".join(lines), metrics, ok, speedup


def test_atpg(benchmark):
    text, metrics, ok, speedup = benchmark.pedantic(
        engine_atpg_report, rounds=1, iterations=1
    )
    assert ok, text
    if HAVE_NUMPY:
        assert speedup >= MIN_ATPG_SPEEDUP, (
            f"fault-dropping ATPG speedup {speedup:.2f}x fell below the "
            f"{MIN_ATPG_SPEEDUP:.0f}x acceptance bar\n{text}"
        )
    record("atpg", text, metrics, benchmark_elapsed(benchmark))
