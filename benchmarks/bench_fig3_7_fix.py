"""E-FIG3.7 — the self-checking fix of Figure 3.7.

Paper claim: "it is only necessary to modify the subnetwork which
generates line 20 ... fed into a separate NAND gate so that line 20 no
longer fans out" — one extra gate makes the network fully self-checking
while the Corollary 3.2 line (9) keeps its relaxed admission.
"""

from _harness import record

from repro.core import ScalSimulator, analyze_network, lines_needing_multi_output
from repro.logic.evaluate import functionally_equivalent
from repro.logic.network import expand_fanout_branches
from repro.workloads.fig34 import fig34_network, fig37_fixed_network


def fix_report():
    broken = fig34_network()
    fixed = fig37_fixed_network()
    analysis = analyze_network(fixed)
    oracle = ScalSimulator(fixed).verdict(include_pins=True)
    expanded = analyze_network(expand_fanout_branches(fixed))
    lines = [
        "Figure 3.7 - the fanout-removing fix",
        f"functions preserved: {functionally_equivalent(broken, fixed)}",
        f"extra gates: {fixed.gate_count() - broken.gate_count()} "
        "(the thesis adds exactly one NAND)",
        analysis.summary(),
        f"line 9 analog still via Corollary 3.2: "
        f"{lines_needing_multi_output(analysis)}",
        f"oracle verdict (stem+pin, {oracle.fault_count} faults): "
        f"{oracle.is_self_checking}",
        f"branch-expanded Algorithm 3.1 verdict: {expanded.is_self_checking}",
    ]
    ok = (
        analysis.is_self_checking
        and oracle.is_self_checking
        and expanded.is_self_checking
        and fixed.gate_count() == broken.gate_count() + 1
    )
    return "\n".join(lines), ok


def test_fig3_7_fix(benchmark):
    text, ok = benchmark(fix_report)
    assert ok
    record("fig3_7_fix", text)
