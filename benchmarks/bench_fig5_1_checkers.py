"""E-FIG5.1 — dual-rail and XOR checkers (Figures 5.1–5.2).

Paper artifacts: Reynolds' dual-rail checker (flip-flops + Anderson
TSCC, (n−1)·6 gates) and the minimum-cost odd-input XOR checker.
Regenerated: gate-cost curves for both, the code-space behaviour
(healthy alternating inputs → code output; any single nonalternating
line → noncode), and the Figure 5.1c/5.2b output-stage conversions.
"""

import random

from _harness import record

from repro.checkers.tworail import (
    ScalDualRailChecker,
    alternating_output_stage,
    code_valid,
    two_rail_checker_network,
)
from repro.checkers.xorchk import check_pair, xor_checker_gate_cost


def checkers_report():
    rnd = random.Random(51)
    rows = ["  n   dual-rail gates  dual-rail FFs  xor gates"]
    for n in (2, 3, 4, 6, 9, 16):
        tr = two_rail_checker_network(n)
        rows.append(
            f"  {n:2d}  {tr.gate_count(include_buffers=False):15d}  "
            f"{n:13d}  {xor_checker_gate_cost(n):9d}"
        )
    # Behavioural validation on random snapshots.
    trials = 300
    dual_ok = xor_ok = True
    for _ in range(trials):
        n = rnd.randint(1, 8)
        first = [rnd.randint(0, 1) for _ in range(n)]
        second = [1 - b for b in first]
        chk = ScalDualRailChecker(n)
        if not code_valid(chk.feed_pair(first, second)):
            dual_ok = False
        broken = list(second)
        k = rnd.randrange(n)
        broken[k] = first[k]
        if code_valid(chk.feed_pair(first, broken)):
            dual_ok = False
        if not check_pair(first, second).valid:
            xor_ok = False
        if check_pair(first, broken).valid:
            xor_ok = False  # one nonalternating line must flip the parity
    # Figure 5.1c: one alternating output line from the dual-rail code.
    stage = [
        alternating_output_stage((1, 0), 0),
        alternating_output_stage((1, 0), 1),
        alternating_output_stage((1, 1), 0),
        alternating_output_stage((1, 1), 1),
    ]
    lines = [
        "Figures 5.1-5.2 - checker designs",
        *rows,
        f"dual-rail checker behaviour over {trials} random snapshots: "
        f"valid iff all lines alternate = {dual_ok}",
        f"XOR checker accepts healthy alternating snapshots: {xor_ok}",
        f"Figure 5.1c output stage: valid code -> (q0,q1) = "
        f"({stage[0]},{stage[1]}) alternating; noncode -> ({stage[2]},{stage[3]}) constant",
    ]
    return "\n".join(lines), dual_ok and xor_ok and stage[:2] == [1, 0]


def test_fig5_1_checkers(benchmark):
    text, ok = benchmark(checkers_report)
    assert ok
    record("fig5_1_checkers", text)
