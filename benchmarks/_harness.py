"""Shared helpers for the reproduction benches.

Every bench regenerates one thesis table or figure: it computes the
rows, prints them (visible with ``pytest benchmarks/ -s``), and writes
them under ``benchmarks/results/`` so EXPERIMENTS.md's paper-vs-measured
records can be refreshed from disk.

Alongside the human-readable ``<name>.txt`` each bench can emit a
machine-readable ``BENCH_<name>.json`` carrying the measured wall time
and any scalar metrics, so speedups can be tracked across commits
without parsing report text.
"""

import json
import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def record(name: str, text: str, metrics=None, elapsed=None) -> str:
    """Print and persist one bench's regenerated artifact.

    ``metrics`` (a flat dict of scalars) and ``elapsed`` (mean wall time
    of one report run, in seconds) additionally produce
    ``BENCH_<name>.json`` next to the text artifact.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text.rstrip() + "\n")
    if metrics is not None or elapsed is not None:
        payload = {
            "bench": name,
            "elapsed_seconds": elapsed,
            "metrics": metrics or {},
        }
        json_path = os.path.join(RESULTS_DIR, f"BENCH_{name}.json")
        with open(json_path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    print(f"\n===== {name} =====")
    print(text)
    return path


def benchmark_elapsed(benchmark):
    """Mean wall time of the benchmark's measured rounds, if available."""
    try:
        return benchmark.stats.stats.mean
    except AttributeError:
        return None
