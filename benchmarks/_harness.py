"""Shared helpers for the reproduction benches.

Every bench regenerates one thesis table or figure: it computes the
rows, prints them (visible with ``pytest benchmarks/ -s``), and writes
them under ``benchmarks/results/`` so EXPERIMENTS.md's paper-vs-measured
records can be refreshed from disk.

Alongside the human-readable ``<name>.txt`` every bench emits a
machine-readable ``BENCH_<name>.json`` carrying the measured wall time
and any scalar metrics, so speedups can be tracked across commits
without parsing report text.

**Regression gate**: running the benches with ``--check`` (or with the
``BENCH_CHECK`` environment variable set) compares each fresh run
against the *committed* ``BENCH_<name>.json`` baseline before
overwriting it:

* non-timing metrics must be exactly equal (a changed fault count or
  coverage fraction is a correctness regression, not noise);
* the measured wall time may not exceed the baseline by more than
  ``BENCH_CHECK_FACTOR`` (default 1.6×);
* timing-flavored metrics — keys ending in ``_seconds`` or
  ``_speedup`` — are informational and never compared exactly.

A missing baseline is not a failure (new benches bootstrap their own);
the fresh JSON is always written, so a failing check still leaves the
new numbers on disk for inspection.

When the telemetry registry (:data:`repro.obs.REGISTRY`) is enabled —
the bench conftest enables it per test — each ``BENCH_<name>.json``
additionally embeds the final metrics snapshot under ``"telemetry"``,
and ``--check`` gates one anomaly on it: the campaign degradation
counter may not exceed the committed baseline's (an unexpected ladder
step down is a runtime regression even when the wall time looks fine).
"""

import json
import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Wall-time regression threshold for ``--check`` runs.
DEFAULT_CHECK_FACTOR = 1.6

#: Metric-name suffixes excluded from exact comparison (machine-speed
#: dependent, tracked but never gating).
TIMING_SUFFIXES = ("_seconds", "_speedup")


class BenchRegression(AssertionError):
    """A bench run regressed against its committed baseline."""


def check_enabled() -> bool:
    return bool(os.environ.get("BENCH_CHECK"))


def _check_factor() -> float:
    return float(os.environ.get("BENCH_CHECK_FACTOR", DEFAULT_CHECK_FACTOR))


def _load_baseline(json_path):
    try:
        with open(json_path) as handle:
            return json.load(handle)
    except (OSError, ValueError):
        return None


def load_baseline(name: str):
    """The committed ``BENCH_<name>.json`` baseline, or ``None``.

    Benches that gate on baseline numbers (e.g. the telemetry overhead
    check) must call this *before* :func:`record`, which overwrites the
    file with the fresh run."""
    return _load_baseline(os.path.join(RESULTS_DIR, f"BENCH_{name}.json"))


def _counter_total(telemetry, name: str):
    """Sum of one counter across label sets in an embedded telemetry
    snapshot; ``None`` when the snapshot or metric is absent."""
    if not telemetry:
        return None
    entry = (telemetry.get("counters") or {}).get(name)
    if entry is None:
        return None
    return sum(sample.get("value", 0.0) for sample in entry.get("samples", []))


def _compare(name: str, baseline: dict, payload: dict):
    """Every regression of ``payload`` against ``baseline`` (messages)."""
    problems = []
    base_metrics = baseline.get("metrics") or {}
    new_metrics = payload.get("metrics") or {}
    for key, want in sorted(base_metrics.items()):
        if key.endswith(TIMING_SUFFIXES):
            continue
        got = new_metrics.get(key)
        if got != want:
            problems.append(
                f"{name}: metric {key!r} changed from baseline "
                f"{want!r} to {got!r}"
            )
    base_elapsed = baseline.get("elapsed_seconds")
    new_elapsed = payload.get("elapsed_seconds")
    if base_elapsed and new_elapsed:
        factor = _check_factor()
        if new_elapsed > base_elapsed * factor:
            problems.append(
                f"{name}: elapsed {new_elapsed:.4f}s exceeds baseline "
                f"{base_elapsed:.4f}s by more than {factor:.2f}x"
            )
    base_deg = _counter_total(
        baseline.get("telemetry"), "repro_campaign_degradations_total"
    )
    new_deg = _counter_total(
        payload.get("telemetry"), "repro_campaign_degradations_total"
    )
    if base_deg is not None and new_deg is not None and new_deg > base_deg:
        problems.append(
            f"{name}: campaign degradations rose from baseline "
            f"{base_deg:.0f} to {new_deg:.0f} (unexpected ladder step "
            f"down; see the embedded telemetry snapshot)"
        )
    return problems


def record(name: str, text: str, metrics=None, elapsed=None) -> str:
    """Print and persist one bench's regenerated artifact.

    Writes ``<name>.txt`` plus the machine-readable ``BENCH_<name>.json``
    (``metrics`` is a flat dict of scalars, ``elapsed`` the mean wall
    time of one report run in seconds).  Under ``--check`` /
    ``BENCH_CHECK`` the previous JSON is treated as the committed
    baseline and a :class:`BenchRegression` is raised on any metric
    change or wall-time blow-up — after the new artifacts are written.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text.rstrip() + "\n")
    payload = {
        "bench": name,
        "elapsed_seconds": elapsed,
        "metrics": metrics or {},
    }
    try:
        from repro import obs
    except ImportError:  # bare script run without src on sys.path
        obs = None
    if obs is not None and obs.metrics_enabled():
        payload["telemetry"] = obs.REGISTRY.to_json()
    json_path = os.path.join(RESULTS_DIR, f"BENCH_{name}.json")
    baseline = _load_baseline(json_path) if check_enabled() else None
    with open(json_path, "w") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\n===== {name} =====")
    print(text)
    if baseline is not None:
        problems = _compare(name, baseline, payload)
        if problems:
            raise BenchRegression("; ".join(problems))
    return path


def benchmark_elapsed(benchmark):
    """Mean wall time of the benchmark's measured rounds, if available."""
    try:
        return benchmark.stats.stats.mean
    except AttributeError:
        return None
