"""Shared helpers for the reproduction benches.

Every bench regenerates one thesis table or figure: it computes the
rows, prints them (visible with ``pytest benchmarks/ -s``), and writes
them under ``benchmarks/results/`` so EXPERIMENTS.md's paper-vs-measured
records can be refreshed from disk.
"""

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def record(name: str, text: str) -> str:
    """Print and persist one bench's regenerated artifact."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w") as handle:
        handle.write(text.rstrip() + "\n")
    print(f"\n===== {name} =====")
    print(text)
    return path
