"""E-FIG3.1 — Theorem 3.2 test generation (the Section 3.2 example).

Paper artifact: the Karnaugh-map walkthrough deriving stuck-at test
pairs for an internal line g of a four-variable self-dual function
(tests like (1011,0100), (0110,1001) in the thesis's numbering).
Regenerated: the A/B/C/D/E/F masks for our reconstruction of the
example, the derived test pairs, and a simulation check that every
derived pair really produces a nonalternating output under the fault.
"""

from _harness import record

from repro.core.simulate import ScalSimulator
from repro.core.testgen import format_pair, greedy_test_schedule
from repro.core.testgen import test_plan as make_test_plan
from repro.logic.faults import StuckAt
from repro.workloads.benchcircuits import section32_example


def testgen_report():
    net, g = section32_example()
    plan = make_test_plan(net, g)
    sim = ScalSimulator(net)
    names = net.inputs
    verified = True
    for value in (0, 1):
        resp = sim.response(StuckAt(g, value))
        for x, _ in plan.tests(value):
            if not resp.detected.value(x):
                verified = False
    schedule = greedy_test_schedule(net)
    lines = [
        "Section 3.2 / Theorem 3.2 - test generation for line g = x1*x2",
        f"E = A&B zero (s-a-0 testable): {plan.sa0_testable}",
        f"F = C&D zero (s-a-1 testable): {plan.sa1_testable}",
        "s-a-0 test pairs: "
        + ", ".join(format_pair(p, names) for p in plan.sa0_tests()),
        "s-a-1 test pairs: "
        + ", ".join(format_pair(p, names) for p in plan.sa1_tests()),
        f"all derived pairs verified to detect by simulation: {verified}",
        f"greedy complete test schedule ({len(schedule)} pairs): "
        + ", ".join(format_pair(p, names) for p in schedule),
    ]
    return "\n".join(lines), verified and plan.sa0_testable and plan.sa1_testable


def test_fig3_1_testgen(benchmark):
    text, ok = benchmark(testgen_report)
    assert ok
    record("fig3_1_testgen", text)
