"""E-MULTI — coverage beyond single faults (Sections 2.2/2.4, ablation).

Paper statements quantified: "the system is also self-checking for many
multiple faults, [but] the fault coverage is complete only for single
faults" and "not all failures are covered".  Regenerated: oracle
coverage across the fault-class ladder (single → double → unidirectional
→ general multiple) averaged over a population of SCAL networks —
dangerous fraction must be exactly zero for singles and strictly
positive somewhere beyond.
"""

import random

from _harness import record

from repro.core.multifault import coverage_by_class, render_coverage
from repro.workloads.randomlogic import random_alternating_network


def multifault_report():
    rnd = random.Random(101)
    networks = 8
    sums = {}
    for _ in range(networks):
        net = random_alternating_network(rnd, 3)
        for row in coverage_by_class(net, sample=80, seed=rnd.randint(0, 999)):
            acc = sums.setdefault(
                row.fault_class, {"total": 0, "detected": 0, "dangerous": 0}
            )
            acc["total"] += row.total
            acc["detected"] += row.detected
            acc["dangerous"] += row.dangerous
    lines = [
        "Sections 2.2/2.4 - coverage by fault class "
        f"(aggregated over {networks} random SCAL networks)",
        f"  {'class':22s} {'faults':>7s} {'detected':>9s} {'dangerous':>10s}",
    ]
    single_clean = False
    wider_leaks = False
    for cls, acc in sums.items():
        det = acc["detected"] / acc["total"]
        dang = acc["dangerous"] / acc["total"]
        lines.append(
            f"  {cls:22s} {acc['total']:7d} {det:9.3f} {dang:10.3f}"
        )
        if cls.startswith("single"):
            single_clean = acc["dangerous"] == 0
        elif acc["dangerous"] > 0:
            wider_leaks = True
    lines += [
        "",
        f"single-fault coverage complete: {single_clean} "
        "(the thesis's guarantee)",
        f"wider classes leak undetected errors: {wider_leaks} "
        "(the thesis's 'not all failures are covered')",
    ]
    return "\n".join(lines), single_clean and wider_leaks


def test_multifault_coverage(benchmark):
    text, ok = benchmark.pedantic(multifault_report, rounds=3, iterations=1)
    assert ok
    record("multifault_coverage", text)
