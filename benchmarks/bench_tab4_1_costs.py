"""E-TAB4.1 — comparative costs of the 0101 sequence detector (Table 4.1).

Paper rows (flip-flops, gates): Kohavi (2, 12), Reynolds dual flip-flop
(4, 19), translator (3, 23); general formulas (n, m), (2n, 1.8m),
(n+1, 1.8m+n+2).  Regenerated: measured counts from our own synthesis of
all three machines plus the general formulas.  Absolute gate counts
differ (our QM minimizer vs 1977 hand synthesis) but the *shape* —
flip-flop ordering translator < dual-FF at 2n vs n+1, and both SCAL
variants paying a gate premium over the plain machine — is asserted.
"""

from _harness import record

from repro.scal.costs import (
    THESIS_TABLE_4_1,
    kohavi_general,
    measured_cost,
    render_cost_table,
    reynolds_general,
    translator_general,
)
from repro.workloads.detectors import kohavi_circuit, reynolds_0101, translator_0101


def table41_report():
    kohavi = kohavi_circuit()
    reynolds = reynolds_0101()
    translator = translator_0101()
    n = kohavi.circuit.flip_flop_count()
    m = kohavi.circuit.gate_count()
    measured = [
        measured_cost("Kohavi measured", n, kohavi.circuit.network),
        measured_cost(
            "Reynolds measured",
            reynolds.flip_flop_count(),
            reynolds.circuit.network,
        ),
        measured_cost(
            "Translator measured",
            translator.flip_flop_count(),
            translator.network,
            extra_gates=translator.encoding.width + 2,
        ),
    ]
    general = [
        kohavi_general(n, m),
        reynolds_general(n, m),
        translator_general(n, m),
    ]
    lines = [
        render_cost_table(list(THESIS_TABLE_4_1), "Table 4.1 (thesis, 1977)"),
        "",
        render_cost_table(measured, "Table 4.1 (measured, this reproduction)"),
        "",
        render_cost_table(general, f"general formulas at n={n}, m={m}"),
    ]
    shape_ok = (
        reynolds.flip_flop_count() == 2 * n
        and translator.flip_flop_count() == n + 1
        and reynolds.gate_count() > m
        and translator.gate_count() > m
    )
    return "\n".join(lines), shape_ok


def test_tab4_1_costs(benchmark):
    text, ok = benchmark(table41_report)
    assert ok
    record("tab4_1_costs", text)
