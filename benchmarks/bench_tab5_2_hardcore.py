"""E-TAB5.2 — the hardcore clock-disable module (Table 5.2, Figure 5.5).

Paper artifacts: the eight-row clock-disable truth table
(out = clock · (f ⊕ g)), the undetectable XOR-output s-a-1 inside the
module, and the replication fix with failure probability p^n.
"""

import itertools

from _harness import record

from repro.checkers.hardcore import (
    clock_disable,
    clock_disable_network,
    clock_disable_truth_table,
    replicated_clock_disable,
    replication_failure_probability,
)
from repro.logic.evaluate import outputs_with_fault
from repro.logic.faults import StuckAt
from repro.system.reliability import hardcore_chain_reliability


def hardcore_report():
    rows = ["  clk f g | out"]
    for clock, f, g, out in clock_disable_truth_table():
        rows.append(f"   {clock}  {f} {g} |  {out}")
    net = clock_disable_network()
    table_ok = all(
        net.output_values({"clock": c, "f": f, "g": g})
        == (clock_disable(c, f, g),)
        for c, f, g in itertools.product((0, 1), repeat=3)
    )
    # The undetectable internal fault on code inputs.
    undetectable = all(
        outputs_with_fault(
            net, {"clock": c, "f": f, "g": 1 - f}, StuckAt("fg", 1)
        )
        == net.output_values({"clock": c, "f": f, "g": 1 - f})
        for c, f in itertools.product((0, 1), repeat=2)
    )
    # Replication series.
    series = [
        f"  n={n}: p^n = {replication_failure_probability(0.05, n):.2e}, "
        f"hardcore reliability = {hardcore_chain_reliability(0.05, n):.6f}"
        for n in (1, 2, 3, 4)
    ]
    chain_ok = replicated_clock_disable(1, [(1, 0), (0, 1)]) == 1
    chain_blocks = replicated_clock_disable(1, [(1, 0), (1, 1)]) == 0
    lines = [
        "Table 5.2 / Figure 5.5 - the hardcore clock disable",
        *rows,
        f"gate-level module matches the table: {table_ok}",
        f"XOR output s/1 undetectable during code operation: {undetectable} "
        "(the thesis's motivation for replication)",
        f"series replication gates correctly: pass={chain_ok}, "
        f"block-on-noncode={chain_blocks}",
        "replication failure probability (p = 0.05):",
        *series,
    ]
    ok = table_ok and undetectable and chain_ok and chain_blocks
    return "\n".join(lines), ok


def test_tab5_2_hardcore(benchmark):
    text, ok = benchmark(hardcore_report)
    assert ok
    record("tab5_2_hardcore", text)
