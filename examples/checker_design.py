#!/usr/bin/env python
"""Checker design for SCAL systems (Chapter 5).

* the Anderson dual-rail TSCC on alternating outputs (Figure 5.1),
* the minimum-cost XOR checker for independent lines (Figure 5.2) and
  its Table 5.1 blind spot (an even number of stuck lines),
* Algorithm 5.1's mixed design on the thesis's nine-output example and
  on the Figure 3.4 network,
* the hardcore clock-disable module (Table 5.2), its replication, and
  the executable Theorem 5.2 survey.

Run:  python examples/checker_design.py
"""

from repro.checkers.hardcore import (
    clock_disable_truth_table,
    replication_failure_probability,
    theorem_5_2_survey,
)
from repro.checkers.mixed import (
    all_dual_rail_cost,
    partition,
    spec_from_network,
    thesis_nine_output_example,
)
from repro.checkers.tworail import ScalDualRailChecker, code_valid
from repro.checkers.xorchk import check_pair, xor_checker_gate_cost
from repro.workloads.fig34 import fig34_network


def main() -> None:
    print("--- dual-rail checker on alternating outputs ---")
    checker = ScalDualRailChecker(4)
    good = checker.feed_pair([1, 0, 1, 1], [0, 1, 0, 0])
    bad = checker.feed_pair([1, 0, 1, 1], [0, 1, 0, 1])
    print(f"healthy pair -> code {good} valid={code_valid(good)}")
    print(f"line 3 stuck -> code {bad} valid={code_valid(bad)}")
    print(f"cost for 9 lines: {ScalDualRailChecker(9).gate_cost()} gates + "
          f"{ScalDualRailChecker(9).flip_flop_cost()} flip-flops")

    print("\n--- XOR checker: cheap but blind to even stuck counts ---")
    print(f"cost for 9 independent lines: {xor_checker_gate_cost(9)} XOR gates")
    first = [1, 0, 1, 1]
    one_stuck = [0, 1, 0, 1]
    two_stuck = [0, 1, 1, 1]
    print(f"1 stuck line  -> detected: {not check_pair(first, one_stuck).valid}")
    print(f"2 stuck lines -> detected: {not check_pair(first, two_stuck).valid} "
          f"(Table 5.1's forbidden case)")

    print("\n--- Algorithm 5.1 on the Section 5.4 nine-output example ---")
    plan = partition(thesis_nine_output_example())
    print(f"XOR-checked (partition A): {plan.xor_checked}")
    print(f"dual-rail checked:         {plan.dual_rail_checked}")
    gates, ffs = plan.total_cost("xor")
    base_gates, base_ffs = all_dual_rail_cost(9)
    print(f"mixed cost: {gates} gates + {ffs} FFs "
          f"vs all-dual-rail {base_gates} gates + {base_ffs} FFs "
          f"(~{100 * gates / base_gates:.0f}% of the gate cost)")

    print("\n--- Algorithm 5.1 derived from a real netlist (Figure 3.4) ---")
    spec = spec_from_network(fig34_network())
    net_plan = partition(spec)
    print(f"sharing groups: {[tuple(g) for g in spec.sharing_groups]}")
    print(f"can alternate incorrectly: {sorted(spec.incorrectly_alternating)}")
    print(f"plan: XOR {net_plan.xor_checked}, dual-rail "
          f"{net_plan.dual_rail_checked}")

    print("\n--- hardcore: the Table 5.2 clock disable ---")
    print("clk f g | out")
    for clock, f, g, out in clock_disable_truth_table():
        print(f"  {clock}  {f} {g} |  {out}")
    print("replicated hardcore failure probability p^n (p = 0.05):",
          [f"{replication_failure_probability(0.05, n):.2e}" for n in (1, 2, 3)])

    print("\n--- Theorem 5.2: no self-checking clock disable exists ---")
    for verdict in theorem_5_2_survey():
        if verdict.meets_requirements:
            reason = f"untestable fault(s): {', '.join(verdict.untestable_faults)}"
        else:
            reason = f"requirement violation: {verdict.violation}"
        print(f"  {verdict.name}: NOT a self-checking hardcore — {reason}")


if __name__ == "__main__":
    main()
