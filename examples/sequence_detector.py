#!/usr/bin/env python
"""The 0101 sequence detector three ways (Chapter 4, Table 4.1).

Builds Kohavi's overlapping 0101 detector as:

* the plain synthesized machine (Figure 4.8),
* Reynolds' dual flip-flop SCAL machine (Figure 4.9),
* the code-conversion (translator) SCAL machine (Figure 4.10),

verifies all three agree on a random serial input stream, shows fault
detection in action (inject a stuck line into the SCAL versions and
watch the alternation checker fire), and prints the Table 4.1 cost
comparison, paper numbers beside measured ones.

Run:  python examples/sequence_detector.py
"""

import random

from repro.logic.faults import StuckAt
from repro.scal.costs import (
    THESIS_TABLE_4_1,
    kohavi_general,
    measured_cost,
    render_cost_table,
    reynolds_general,
    translator_general,
)
from repro.workloads.detectors import (
    kohavi_0101,
    kohavi_circuit,
    reynolds_0101,
    translator_0101,
)


def main() -> None:
    rnd = random.Random(2026)
    bits = [rnd.randint(0, 1) for _ in range(32)]
    vectors = [(b,) for b in bits]
    machine = kohavi_0101()
    reference = [z for (z,) in machine.run(vectors)]
    print("input :", "".join(map(str, bits)))
    print("expect:", "".join(map(str, reference)))

    kohavi = kohavi_circuit()
    got_kohavi = [z for (z,) in kohavi.run_symbols(vectors)]
    print("kohavi:", "".join(map(str, got_kohavi)), "(plain machine)")

    reynolds = reynolds_0101()
    run = reynolds.run(vectors)
    got_reynolds = [z for (z,) in reynolds.decoded_outputs(run)]
    print("dualff:", "".join(map(str, got_reynolds)),
          f"(alternation checked, fault detected: {run.detected})")

    translator = translator_0101()
    run_t = translator.run(vectors)
    got_translator = [z for (z,) in translator.decoded_outputs(run_t)]
    print("transl:", "".join(map(str, got_translator)),
          f"(1-out-of-2 code checked, fault detected: {run_t.detected})")

    assert got_kohavi == got_reynolds == got_translator == reference

    # Inject a fault into the dual-FF machine's combinational block.
    print("\n--- injecting Z0 stuck-at-1 into the dual flip-flop machine ---")
    bad = reynolds.run(vectors, fault=StuckAt("Z0", 1))
    print(f"detected: {bad.detected} at logical step {bad.first_detection}")

    # Inject a stored-state bit fault into the translator machine.
    print("--- injecting a memory data-line fault into the translator machine ---")
    from repro.system.memory import MemoryFault

    bad_t = translator.run(vectors, memory_fault=MemoryFault("data_line", 0, 1))
    print(f"detected: {bad_t.detected} at logical step {bad_t.first_detection}")

    # Table 4.1 — paper vs measured.
    print("\n" + render_cost_table(list(THESIS_TABLE_4_1), "Table 4.1 (thesis)"))
    n = kohavi.circuit.flip_flop_count()
    m = kohavi.circuit.gate_count()
    measured = [
        measured_cost("Kohavi measured", n, kohavi.circuit.network),
        measured_cost(
            "Reynolds measured",
            reynolds.flip_flop_count(),
            reynolds.circuit.network,
        ),
        measured_cost(
            "Translator measured",
            translator.flip_flop_count(),
            translator.network,
            extra_gates=translator.encoding.width + 2,
        ),
    ]
    print("\n" + render_cost_table(measured, "Table 4.1 (this reproduction)"))
    print("\n" + render_cost_table(
        [kohavi_general(n, m), reynolds_general(n, m), translator_general(n, m)],
        f"Table 4.1 general formulas at n={n}, m={m}",
    ))


if __name__ == "__main__":
    main()
