#!/usr/bin/env python
"""The SCAL computer (Figure 7.3) and fault-tolerant designs (Fig 7.5).

* runs a program on the alternating-logic CPU with parity memory,
* sweeps every single CPU/bus/memory fault and shows none corrupts the
  results silently,
* demonstrates alternate data retry (ADR) correcting a stuck line, the
  Figure 7.5 normal∥SCAL pair degrading to half speed, and TMR masking,
* prints the Section 7.4 design-comparison table and the Figure 7.2
  reliability trade-off.

Run:  python examples/scal_computer.py
"""

from repro.system.adr import (
    AdrSystem,
    FaultyModule,
    Fig75System,
    StuckOutputBit,
    TmrSystem,
    design_comparison,
)
from repro.system.computer import ScalComputer, demo_program
from repro.system.cpu import CpuFault, reference_run
from repro.system.reliability import render_tradeoff, tradeoff_curve


def main() -> None:
    computer = ScalComputer()
    program, data = demo_program()
    golden_acc, golden_mem = reference_run(program, data)
    print("program: mem[10] = 2*(a+b) - c;  mem[11] = (a+b) >> 1")
    result = computer.run(program, data)
    print(f"healthy run: halted={result.halted} detected={result.detected} "
          f"mem[10]={result.memory_words[10]} (golden {golden_mem[10]}) "
          f"mem[11]={result.memory_words[11]} (golden {golden_mem[11]})")

    faulty = computer.run(program, data, cpu_fault=CpuFault("alu_bit", 3, 1))
    print(f"with ALU bit 3 stuck-at-1: detected={faulty.detected} "
          f"({faulty.detection_reason}) at step {faulty.detection_step}")

    print("\n--- single-fault sweep over CPU + bus + memory ---")
    outcome = computer.sweep(program, data)
    print(f"faults: {outcome.total}  detected: {outcome.detected}  "
          f"silent(harmless): {outcome.silent}  DANGEROUS: {outcome.dangerous}")
    assert outcome.dangerous == 0

    print("\n--- alternate data retry (Shedletsky) on a self-dual module ---")
    width = 8
    rotate = lambda x: ((x << 1) | (x >> (width - 1))) & 0xFF
    adr = AdrSystem(FaultyModule(rotate, width, StuckOutputBit(0, 0)))
    corrected = sum(adr.execute(x).correct for x in range(256))
    retried = sum(adr.execute(x).retried for x in range(256))
    print(f"stuck output bit 0: {corrected}/256 accesses correct "
          f"({retried} needed the complement-pass retry)")

    print("\n--- Figure 7.5: normal CPU ∥ SCAL CPU ---")
    pair = Fig75System(rotate, width, scal_fault=StuckOutputBit(2, 0))
    outcomes = [pair.execute(x) for x in range(64)]
    first_detect = next(i for i, o in enumerate(outcomes) if o.fault_detected)
    print(f"fault detected at access {first_detect}; system degraded to "
          f"half speed; all {len(outcomes)} results still correct: "
          f"{all(o.correct for o in outcomes)}")

    tmr = TmrSystem(rotate, width, faulty_copy=1, fault=StuckOutputBit(4, 1))
    print(f"TMR masks the same fault at full speed: "
          f"{all(tmr.execute(x) == rotate(x) for x in range(64))}")

    print("\n--- Section 7.4 design comparison ---")
    print(f"{'approach':36s} {'cost':>5s} {'detects':>8s} {'corrects':>9s} "
          f"{'speed(ok)':>10s} {'speed(fault)':>12s}")
    for row in design_comparison():
        print(f"{row.approach:36s} {row.cost_factor:5.2f} "
              f"{str(row.detects_single_faults):>8s} "
              f"{str(row.corrects_single_faults):>9s} "
              f"{row.speed_before_fault:10.1f} {row.speed_after_fault:12.1f}")

    print("\n--- Figure 7.2 reliability trade-off ---")
    print(render_tradeoff(tradeoff_curve()))


if __name__ == "__main__":
    main()
