#!/usr/bin/env python
"""Quickstart: analyze a network for the self-checking property.

Walks the thesis's core loop on the Section 3.6 example:

1. build the three-output network of Figure 3.4,
2. check it is an *alternating network* (Theorem 2.1: self-dual outputs),
3. run Algorithm 3.1 and the exhaustive SCAL oracle — both find the
   network is NOT self-checking because of one line (the thesis's line
   20; ours is named ``or_ab``),
4. print the Figure 3.6 fault table showing the undetected incorrect
   alternation,
5. apply the Figure 3.7 fix (duplicate one gate) and re-verify.

Run:  python examples/quickstart.py
"""

from repro.core import (
    ScalSimulator,
    analyze_network,
    fault_table,
    lines_needing_multi_output,
    render_fault_table,
    undetected_faults,
)
from repro.logic import StuckAt, line_tables
from repro.workloads.fig34 import fig34_network, fig37_fixed_network


def main() -> None:
    net = fig34_network()
    print(f"Network: {net.name} — inputs {net.inputs}, outputs {net.outputs}")

    # 1. Alternating network check (Theorem 2.1).
    tables = line_tables(net)
    for out in net.outputs:
        print(f"  {out} self-dual: {tables[out].is_self_dual()}")

    # 2. Algorithm 3.1.
    print()
    analysis = analyze_network(net)
    print(analysis.summary())
    print(f"  lines admitted only by Corollary 3.2: "
          f"{lines_needing_multi_output(analysis)}")

    # 3. The exhaustive oracle agrees.
    print()
    verdict = ScalSimulator(net).verdict()
    print(verdict.summary())

    # 4. The Figure 3.6 table for the interesting lines.
    print()
    rows = fault_table(
        net,
        [StuckAt("nab", 0), StuckAt("nab", 1),
         StuckAt("or_ab", 0), StuckAt("or_ab", 1)],
    )
    print(render_fault_table(net, rows))
    print(f"\nFaults with undetected wrong outputs: {undetected_faults(rows)}")

    # 5. The Figure 3.7 fix.
    print("\n--- applying the Figure 3.7 fix (duplicate the or_ab gate) ---\n")
    fixed = fig37_fixed_network()
    print(analyze_network(fixed).summary())
    print(ScalSimulator(fixed).verdict().summary())


if __name__ == "__main__":
    main()
