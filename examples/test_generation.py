#!/usr/bin/env python
"""Test generation for alternating networks (Theorem 3.2, Section 3.2).

For every line of a network, derive the alternating input pairs that
test each stuck-at direction, report any untestable directions (the
E/F ≠ 0 cases that make the network non-self-checking), and build a
compact greedy test schedule covering every testable fault.

Run:  python examples/test_generation.py
"""

from repro.core.simulate import ScalSimulator
from repro.core.testgen import (
    all_test_pairs,
    format_pair,
    greedy_test_schedule,
    test_plan,
)
from repro.logic.faults import StuckAt
from repro.workloads.benchcircuits import section32_example


def main() -> None:
    net, g = section32_example()
    print(f"network {net.name}: inputs {net.inputs}, analyzing line {g!r}\n")

    plan = test_plan(net, g)
    names = net.inputs
    print(f"line {g} stuck-at-0 testable (E = 0): {plan.sa0_testable}")
    print("  test pairs:",
          ", ".join(format_pair(p, names) for p in plan.sa0_tests()))
    print(f"line {g} stuck-at-1 testable (F = 0): {plan.sa1_testable}")
    print("  test pairs:",
          ", ".join(format_pair(p, names) for p in plan.sa1_tests()))

    # Demonstrate that a generated pair really detects the fault.
    pair = plan.sa0_tests()[0]
    sim = ScalSimulator(net)
    resp = sim.response(StuckAt(g, 0))
    print(f"\napplying pair {format_pair(pair, names)} under {g} s/0: "
          f"output pair nonalternating = {bool(resp.detected.value(pair[0]))}")

    print("\n--- compact test schedule for the whole network ---")
    schedule = greedy_test_schedule(net)
    print(f"{len(schedule)} alternating input pairs cover every testable "
          f"single stuck-at fault:")
    for pair in schedule:
        print("  ", format_pair(pair, names))

    plans = all_test_pairs(net)
    untestable = [key for key, tests in plans.items() if not tests]
    print(f"\nuntestable (line, stuck-value) entries: {untestable or 'none'}")


if __name__ == "__main__":
    main()
