#!/usr/bin/env python
"""Netlist interchange: run the SCAL tools on .bench files.

The library speaks the ISCAS '85 ``.bench`` format, so circuits from
other tools drop straight into the analysis.  This example drives the
same entry points the ``python -m repro`` CLI exposes:

* load `examples/data/fig34.bench`, analyze, render the annotated
  listing and a Graphviz DOT file with the failing line highlighted;
* repair it and write the fixed netlist back out;
* convert `fig62.bench` to minority modules.

Run:  python examples/netlist_interchange.py
"""

import os
import tempfile

from repro.core import ScalSimulator, analyze_network
from repro.core.design import make_self_checking
from repro.logic import (
    annotate_with_analysis,
    load_bench,
    render_dot,
    render_listing,
    save_bench,
)
from repro.modules.minority import conversion_report, to_minority_network

DATA = os.path.join(os.path.dirname(__file__), "data")


def main() -> None:
    fig34 = load_bench(os.path.join(DATA, "fig34.bench"))
    analysis = analyze_network(fig34)
    print(analysis.summary())
    print()
    print(render_listing(fig34, annotations=annotate_with_analysis(fig34, analysis)))

    out_dir = tempfile.mkdtemp(prefix="repro_")
    dot_path = os.path.join(out_dir, "fig34.dot")
    with open(dot_path, "w") as handle:
        handle.write(render_dot(fig34, highlight=analysis.failing_lines()))
    print(f"\nwrote {dot_path} (render with: dot -Tpng {dot_path})")

    report = make_self_checking(fig34)
    fixed_path = os.path.join(out_dir, "fig34_fixed.bench")
    save_bench(report.network, fixed_path, header="auto-repaired")
    print(f"{report.summary()}")
    print(f"wrote {fixed_path}; oracle says: "
          f"{ScalSimulator(report.network).verdict(include_pins=False).is_self_checking}")

    fig62 = load_bench(os.path.join(DATA, "fig62.bench"))
    converted = to_minority_network(fig62)
    rep = conversion_report(converted)
    min_path = os.path.join(out_dir, "fig62_minority.bench")
    save_bench(converted, min_path, header="minority conversion")
    print(f"\nconverted fig62 to {rep.modules} minority modules "
          f"({rep.total_inputs} inputs); wrote {min_path}")


if __name__ == "__main__":
    main()
