#!/usr/bin/env python
"""A streaming client for the ``repro serve`` campaign service.

Start the service in one terminal::

    PYTHONPATH=src python -m repro serve --port 8341

then submit a netlist and watch the campaign stream back as NDJSON —
one JSON object per line: the ``accepted`` header (carrying the content
fingerprint and whether this submission was coalesced onto an identical
in-flight campaign), every ``campaign.*`` flight event as it happens
(chunk completions, retries, degradations, steals), and finally the
``result`` line with the coverage fractions and the structured
campaign report::

    python examples/serve_client.py http://127.0.0.1:8341 \\
        examples/data/adder4.bench

Submitting the same netlist twice concurrently demonstrates the
service's coalescing: both clients receive the full stream, but only
one campaign executes (``disposition: coalesced`` on the second).
``--smoke URL`` runs exactly that as a self-checking scenario — the CI
serve-smoke job's driver.  ``--recover-drill`` exercises the service's
crash tolerance end to end: it SIGKILLs a serving subprocess
mid-campaign, restarts it with ``--recover``, and checks the journaled
request completes byte-identically — the CI serve-chaos job's driver.

Uses only the standard library: the NDJSON stream is plain HTTP/1.1,
so ``urllib`` consumes it line by line.
"""

import json
import sys
import threading
from urllib.request import Request, urlopen

SMOKE_BENCH = """\
INPUT(a)
INPUT(b)
INPUT(cin)
s1 = XOR(a, b)
sum = XOR(s1, cin)
c1 = AND(a, b)
c2 = AND(s1, cin)
cout = OR(c1, c2)
OUTPUT(sum)
OUTPUT(cout)
"""


def submit(
    base_url, netlist, processes=2, transport="auto", quiet=False, **fields
):
    """POST one campaign and yield each NDJSON event as a dict.

    Extra keyword ``fields`` go into the request body verbatim —
    ``statuses=True`` for per-fault statuses, ``deadline_s=5.0`` for a
    server-enforced deadline, and so on."""
    body = json.dumps(
        dict(
            {
                "netlist": netlist,
                "processes": processes,
                "transport": transport,
            },
            **fields,
        )
    ).encode()
    request = Request(
        base_url.rstrip("/") + "/campaign",
        data=body,
        headers={"Content-Type": "application/json"},
    )
    with urlopen(request) as response:
        for raw in response:
            event = json.loads(raw)
            if not quiet:
                print(json.dumps(event, sort_keys=True))
            yield event


def run_smoke(base_url):
    """Two identical concurrent submissions: both must stream, exactly
    one may execute."""
    streams = [[], []]

    def client(slot):
        for event in submit(base_url, SMOKE_BENCH, quiet=True):
            streams[slot].append(event)

    threads = [
        threading.Thread(target=client, args=(slot,)) for slot in (0, 1)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    dispositions = sorted(stream[0]["disposition"] for stream in streams)
    results = [stream[-1] for stream in streams]
    for stream, result in zip(streams, results):
        assert stream[0]["event"] == "accepted", stream[0]
        assert result["event"] == "result", result
        assert "error" not in result, result
    assert dispositions == ["coalesced", "executed"], dispositions
    assert results[0]["faults"] == results[1]["faults"] > 0, results
    same = json.dumps(results[0], sort_keys=True) == json.dumps(
        results[1], sort_keys=True
    )
    assert same, "coalesced clients received different results"
    print(
        f"serve smoke OK: {dispositions}, one execution, "
        f"{results[0]['faults']} faults via {results[0]['backend']}, "
        f"dangerous fraction {results[0]['dangerous']:.1%}"
    )


def _spawn_serve(args, env):
    """Start a real ``repro serve`` subprocess; return (proc, base URL)."""
    import re
    import subprocess

    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0"] + args,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    for line in proc.stdout:
        match = re.search(r"listening on (http://[\d.]+:\d+)", line)
        if match:
            return proc, match.group(1)
    proc.kill()
    raise RuntimeError("serve subprocess never reported its address")


def run_recover_drill():
    """SIGKILL a serving process mid-campaign, restart it with
    ``--recover``, and check the journaled request completes with
    statuses byte-identical to an uninterrupted run — the CI
    serve-chaos job's end-to-end driver."""
    import os
    import shutil
    import signal
    import tempfile
    import time

    import repro

    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    request = {"processes": None, "transport": "inline", "statuses": True}
    workdir = tempfile.mkdtemp(prefix="repro-recover-drill-")
    procs = []
    try:
        # 1. The uninterrupted yardstick.
        proc, url = _spawn_serve(
            ["--state-dir", os.path.join(workdir, "ref")], env
        )
        procs.append(proc)
        expected = None
        for event in submit(url, SMOKE_BENCH, quiet=True, **request):
            expected = event
        assert expected["event"] == "result", expected
        assert "error" not in expected, expected
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=20)

        # 2. A chaos-slowed server, SIGKILLed mid-campaign: the WAL has
        # the accepted record, the checkpoint has the finished chunks.
        state = os.path.join(workdir, "state")
        chaos_env = dict(
            env, REPRO_CHAOS_SERVE="campaign-slow", REPRO_CHAOS_SLOW_S="0.3"
        )
        proc, url = _spawn_serve(["--state-dir", state], chaos_env)
        procs.append(proc)
        for event in submit(url, SMOKE_BENCH, quiet=True, **request):
            if event["event"] == "campaign.chunk":
                proc.send_signal(signal.SIGKILL)
                break
        proc.wait(timeout=20)

        # 3. Recovery replays the journaled request from its checkpoint.
        proc, url = _spawn_serve(["--state-dir", state, "--recover"], env)
        procs.append(proc)
        deadline = time.time() + 60
        while True:
            with urlopen(url + "/healthz") as response:
                health = json.loads(response.read())
            if health["recovered"] >= 1 and health["replaying"] == 0:
                break
            assert time.time() < deadline, health
            time.sleep(0.1)
        final = None
        for event in submit(url, SMOKE_BENCH, quiet=True, **request):
            final = event
        assert final["event"] == "result", final
        assert final["replayed"] is True, final
        assert final["statuses"] == expected["statuses"], (
            "recovered statuses diverged from the uninterrupted run"
        )
        proc.send_signal(signal.SIGTERM)
        proc.wait(timeout=20)
        print(
            f"recover drill OK: SIGKILL mid-campaign, --recover replayed "
            f"{health['recovered']} request(s), {len(final['statuses'])} "
            f"statuses byte-identical"
        )
        return 0
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
            proc.stdout.close()
        shutil.rmtree(workdir, ignore_errors=True)


def run_local_demo():
    """No URL given: start a service in-process on an ephemeral port
    and run the coalescing scenario against it — the self-contained
    form the example guard test executes."""
    import asyncio

    from repro import obs
    from repro.engine.store import STORE
    from repro.server import CampaignServer

    previous_metrics = obs.metrics_enabled()
    server = CampaignServer(host="127.0.0.1", port=0)
    loop = asyncio.new_event_loop()
    ready = threading.Event()

    async def lifecycle():
        await server.start()
        ready.set()
        await stop

    def run_loop():
        asyncio.set_event_loop(loop)
        loop.run_until_complete(lifecycle())

    stop = loop.create_future()
    thread = threading.Thread(target=run_loop, daemon=True)
    thread.start()
    ready.wait(timeout=10)
    try:
        run_smoke(f"http://{server.host}:{server.port}")
    finally:
        loop.call_soon_threadsafe(stop.set_result, None)
        thread.join(timeout=10)
        # The server flips process-global switches; an in-process demo
        # must hand them back the way it found them.
        STORE.enabled = False
        STORE.clear()
        obs.enable_metrics(previous_metrics)
    return 0


def main(argv):
    if len(argv) >= 2 and argv[1] == "--smoke":
        run_smoke(argv[2] if len(argv) > 2 else "http://127.0.0.1:8341")
        return 0
    if len(argv) >= 2 and argv[1] == "--recover-drill":
        return run_recover_drill()
    if len(argv) >= 3 and argv[1].startswith("http"):
        with open(argv[2]) as handle:
            netlist = handle.read()
        final = None
        for event in submit(argv[1], netlist):
            final = event
        return 0 if final and final.get("dangerous") == 0.0 else 1
    return run_local_demo()


if __name__ == "__main__":
    status = main(sys.argv)
    if status:  # plain return keeps the example guard test quiet
        sys.exit(status)
