#!/usr/bin/env python
"""Minority-module conversion (Chapter 6, Figure 6.2).

Takes a NAND network, converts it to minority modules with period-clock
fan-in (Theorem 6.2), verifies the result computes the original function
in the first period and its complement in the second (so it is a SCAL
network "for free" — every line alternates), and reproduces the thesis's
cost observation: the contrived four-NAND example is really a single
3-input minority module.

Run:  python examples/minority_conversion.py
"""

from repro.core import ScalSimulator
from repro.logic import line_tables, network_function
from repro.logic.selfdual import first_period_function
from repro.modules.minority import (
    conversion_report,
    minimal_minority_realization,
    to_minority_network,
    verify_theorem_6_2,
    verify_theorem_6_3,
)
from repro.workloads.benchcircuits import fig62_nand_network, minority3_table


def main() -> None:
    print("Theorem 6.2 (NAND) verified for N ≤ 6:", verify_theorem_6_2())
    print("Theorem 6.3 (NOR)  verified for N ≤ 6:", verify_theorem_6_3())

    net = fig62_nand_network()
    original = network_function(net)
    print(f"\nFigure 6.2a network: {net.gate_count()} NAND gates, "
          f"{net.gate_input_count()} gate inputs")
    print("function = 3-input minority:",
          original.bits == minority3_table().bits)

    converted = to_minority_network(net)
    report = conversion_report(converted)
    print(f"\ndirect conversion (Figure 6.2b): {report.modules} minority "
          f"modules, {report.total_inputs} total inputs "
          f"({report.clock_inputs} of them clock fan-in)")

    tables = line_tables(converted)
    out = converted.outputs[0]
    print("period-1 function preserved:",
          first_period_function(tables[out]).bits == original.bits)
    print("output alternates (self-dual):", tables[out].is_self_dual())
    print("every module line alternates:",
          all(tables[g.name].is_self_dual() for g in converted.gates))

    sim = ScalSimulator(converted)
    verdict = sim.verdict(include_pins=False)
    print(f"SCAL oracle: fault-secure for all {verdict.fault_count} "
          f"single stem faults: {verdict.is_fault_secure}")

    minimal = minimal_minority_realization(minority3_table(), ["A", "B", "C"])
    min_report = conversion_report(minimal)
    print(f"\nminimal realization (Figure 6.2c): {min_report.modules} module, "
          f"{min_report.total_inputs} total inputs — the thesis's point that "
          f"'a single minority module with three total inputs is all that is "
          f"actually required'")


if __name__ == "__main__":
    main()
