#!/usr/bin/env python
"""The constructive SCAL design flow (Section 8.3's asked-for procedure).

Two routes from an arbitrary specification to a verified SCAL network:

1. **design** — self-dualize with the period clock and synthesize
   two-level: self-checking by construction, certified by the oracle;
2. **repair** — take an existing alternating netlist that fails
   Algorithm 3.1 and fix it automatically: gate duplication per fanout
   branch (the Figure 3.7 move) where possible, cone re-synthesis where
   not.  On the thesis's own Figure 3.4 network the repairer rediscovers
   the exact one-gate fix.

Run:  python examples/design_flow.py
"""

import random

from repro.core import ScalSimulator, analyze_network
from repro.core.design import design_scal_network, make_self_checking
from repro.logic import functionally_equivalent
from repro.logic.truthtable import TruthTable
from repro.workloads.benchcircuits import fig32_xor_path_network
from repro.workloads.fig34 import fig34_network


def main() -> None:
    print("--- route 1: design from a truth-table specification ---")
    rnd = random.Random(2026)
    spec = {
        "F0": TruthTable(3, rnd.getrandbits(8), ("x0", "x1", "x2")),
        "F1": TruthTable(3, rnd.getrandbits(8), ("x0", "x1", "x2")),
    }
    for name, table in spec.items():
        print(f"  spec {name}: minterms {table.minterms()}")
    net = design_scal_network(spec, ["x0", "x1", "x2"])
    print(f"  designed network: {net.gate_count()} gates, "
          f"inputs {net.inputs} (phi = period clock)")
    print(f"  oracle certificate: "
          f"{ScalSimulator(net).verdict().is_self_checking}")

    print("\n--- route 2: repair the thesis's Figure 3.4 network ---")
    broken = fig34_network()
    print(f"  before: {analyze_network(broken).summary().splitlines()[0]}")
    report = make_self_checking(broken)
    print(f"  {report.summary()}")
    print(f"  function preserved: "
          f"{functionally_equivalent(broken, report.network)}")

    print("\n--- route 2 on a harder case: the XOR-path network ---")
    xor_net = fig32_xor_path_network()
    report2 = make_self_checking(xor_net)
    print(f"  {report2.summary()}")
    print(f"  function preserved: "
          f"{functionally_equivalent(xor_net, report2.network)}")
    print(f"  oracle certificate: "
          f"{ScalSimulator(report2.network).verdict(include_pins=False).is_self_checking}")


if __name__ == "__main__":
    main()
