"""Setup script for the SCAL reproduction package.

A classic setup.py (rather than a PEP 517 pyproject build) so that
``pip install -e .`` works in fully offline environments: the legacy
editable path needs neither network access nor the ``wheel`` package.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Self-Checking Alternating Logic (SCAL): reproduction of "
        "Woodard & Metze, ISCA 1978"
    ),
    long_description=open("README.md").read() if __import__("os").path.exists("README.md") else "",
    long_description_content_type="text/markdown",
    author="SCAL reproduction authors",
    license="MIT",
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
        # NumPy accelerates the fault-batched vectorized backend; the
        # package runs fully (packed-word fallback) without it.
        "fast": ["numpy"],
        # Numba opportunistically njit-compiles the codegen'd sweep
        # kernels (engine/kernels.py) behind a feature probe; the
        # exec'd-NumPy rung serves identically without it.
        "kernel": ["numpy", "numba"],
    },
    keywords=[
        "self-checking",
        "alternating-logic",
        "fault-tolerance",
        "logic-simulation",
        "stuck-at-faults",
    ],
)
