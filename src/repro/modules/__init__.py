"""SCAL building-block modules (Chapters 2, 6, 7): minority modules, the
self-dual adder, shift register, and status storage."""

from .catalog import (
    CatalogEntry,
    biased_majority_table,
    closest_self_dual,
    compose_self_dual,
    majority_table,
    minority_table,
    self_dual_count,
    self_dual_fraction,
    standard_catalog,
    xor_table,
)
from .adder import (
    add_words,
    alternating_add,
    full_adder_network,
    ripple_adder_network,
)
from .minority import (
    ConversionReport,
    conversion_report,
    majority,
    majority_from_minority,
    minimal_minority_realization,
    minority,
    nand_via_minority,
    nor_via_minority,
    to_minority_network,
    verify_theorem_6_2,
    verify_theorem_6_3,
)
from .shifter import AlternatingShiftRegister, shift_word
from .status import AlternatingStatusBit, AlternatingStatusRegister

__all__ = [
    "AlternatingShiftRegister",
    "AlternatingStatusBit",
    "AlternatingStatusRegister",
    "CatalogEntry",
    "ConversionReport",
    "biased_majority_table",
    "closest_self_dual",
    "compose_self_dual",
    "majority_table",
    "minority_table",
    "self_dual_count",
    "self_dual_fraction",
    "standard_catalog",
    "xor_table",
    "add_words",
    "alternating_add",
    "conversion_report",
    "full_adder_network",
    "majority",
    "majority_from_minority",
    "minimal_minority_realization",
    "minority",
    "nand_via_minority",
    "nor_via_minority",
    "ripple_adder_network",
    "shift_word",
    "to_minority_network",
    "verify_theorem_6_2",
    "verify_theorem_6_3",
]
