"""Self-dual status storage (Figure 7.4b).

CPU status conditions (zero, carry, negative, …) are one-bit state; the
thesis stores each "in two flip-flops as opposed to the usual one to
achieve self-dual operation": one flip-flop latches the first-period
(true) value, the other the second-period (complemented) value, and the
visible status output alternates with the period clock like every other
SCAL signal.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..seq.dff import DFlipFlop


class AlternatingStatusBit:
    """One status condition stored as a (true, complement) flip-flop pair."""

    def __init__(self, initial: int = 0) -> None:
        self.ff_true = DFlipFlop(int(initial) & 1)
        self.ff_comp = DFlipFlop(1 - (int(initial) & 1))

    def store_pair(self, value_true: int, value_comp: int) -> None:
        """Latch one alternating pair (period 1 then period 2)."""
        self.ff_true.clock_edge(value_true, 1)
        self.ff_true.clock_edge(value_true, 0)
        self.ff_comp.clock_edge(value_comp, 1)
        self.ff_comp.clock_edge(value_comp, 0)

    def read(self, phase: int) -> int:
        return self.ff_comp.output if int(phase) & 1 else self.ff_true.output

    @property
    def alternates(self) -> bool:
        """Healthy invariant — a violated pair is a detected fault."""
        return self.ff_comp.output == 1 - self.ff_true.output

    @property
    def value(self) -> int:
        return self.ff_true.output


class AlternatingStatusRegister:
    """A named bank of :class:`AlternatingStatusBit` (Z, C, N, V...)."""

    def __init__(self, names: Sequence[str]) -> None:
        self.bits: Dict[str, AlternatingStatusBit] = {
            name: AlternatingStatusBit() for name in names
        }

    def store_pairs(
        self, true_values: Dict[str, int], comp_values: Dict[str, int]
    ) -> None:
        for name, bit in self.bits.items():
            bit.store_pair(true_values[name], comp_values[name])

    def read(self, name: str, phase: int) -> int:
        return self.bits[name].read(phase)

    def values(self) -> Dict[str, int]:
        return {name: bit.value for name, bit in self.bits.items()}

    def alternates(self) -> bool:
        return all(bit.alternates for bit in self.bits.values())

    def flip_flop_count(self) -> int:
        return 2 * len(self.bits)
