"""Self-dual shift operation (Figure 7.4a).

"The shift operation is self-dual.  It can be easily implemented ... by
using two flip-flops instead of the usual one."  In alternating
operation the shift register stores each bit's (value, complement) pair
across the two time periods: stage k holds the true value after the
first period and the complemented value after the second, so the
register's outputs alternate exactly like the rest of the datapath.

:class:`AlternatingShiftRegister` is the Figure 7.4a dual-flip-flop
serial register; :func:`shift_word` is the behavioural word operation
used by the CPU datapath (trivially self-dual: shifting the complement
equals complementing the shift when the fill bit alternates too).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..seq.dff import DFlipFlop


def shift_word(
    word: Sequence[int], direction: str = "left", fill: int = 0
) -> List[int]:
    """Logical shift of a little-endian bit list by one position.

    Self-duality: ``shift(w̄, fill=f̄) = ¬shift(w, fill=f)`` — the fill
    bit participates in the alternation like any data input.
    """
    bits = [int(b) & 1 for b in word]
    fill = int(fill) & 1
    if direction == "left":
        return [fill] + bits[:-1]
    if direction == "right":
        return bits[1:] + [fill]
    raise ValueError(f"unknown direction {direction!r}")


class AlternatingShiftRegister:
    """The Figure 7.4a serial shift register: two flip-flops per bit.

    Per time period one new value enters; over an alternating pair the
    register advances one logical position while its outputs alternate.
    The per-bit second flip-flop is what makes the stored state alternate
    visibly, so the standard SCAL checkers can monitor it.
    """

    def __init__(self, width: int) -> None:
        self.width = width
        # stage pairs: [ (ff_true, ff_comp) ] per bit position
        self.cells: List[Tuple[DFlipFlop, DFlipFlop]] = [
            (DFlipFlop(0), DFlipFlop(1)) for _ in range(width)
        ]

    def reset(self, values: Optional[Sequence[int]] = None) -> None:
        values = list(values) if values is not None else [0] * self.width
        for (ff_a, ff_b), v in zip(self.cells, values):
            ff_a.reset(int(v) & 1)
            ff_b.reset(1 - (int(v) & 1))

    def outputs(self, phase: int) -> List[int]:
        """The register contents as seen in period ``phase``."""
        if int(phase) & 1:
            return [ff_b.output for _, ff_b in self.cells]
        return [ff_a.output for ff_a, _ in self.cells]

    def shift_pair(self, bit_true: int, bit_comp: int) -> Tuple[List[int], List[int]]:
        """Advance one logical position given the incoming alternating
        pair; returns the (first period, second period) output views."""
        first = self.outputs(0)
        prev_true = [ff_a.output for ff_a, _ in self.cells]
        prev_comp = [ff_b.output for _, ff_b in self.cells]
        new_true = [int(bit_true) & 1] + prev_true[:-1]
        new_comp = [int(bit_comp) & 1] + prev_comp[:-1]
        for (ff_a, ff_b), t, c in zip(self.cells, new_true, new_comp):
            ff_a.clock_edge(t, 1)
            ff_a.clock_edge(t, 0)
            ff_b.clock_edge(c, 1)
            ff_b.clock_edge(c, 0)
        second = self.outputs(1)
        return first, second

    def alternates(self) -> bool:
        """Healthy invariant: the two views are complementary."""
        return all(
            ff_b.output == 1 - ff_a.output for ff_a, ff_b in self.cells
        )

    def flip_flop_count(self) -> int:
        return 2 * self.width
