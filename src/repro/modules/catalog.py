"""A catalog of self-dual functions and modules (Section 7.3).

Designing a SCAL CPU means assembling self-dual datapath pieces; the
thesis names the adder, the shifter, and status storage and leaves "the
study of the design of an alternating logic CPU" to further research.
This catalog provides the raw material:

* recognizers and counters for the self-dual function class (there are
  exactly ``2**(2**(n-1))`` self-dual functions of n variables — the
  low half of the table is free, the high half is forced);
* named self-dual families with constructors: majority/minority of odd
  arity, odd-arity XOR/XNOR-of-odd, the full-adder pair, multiplexers of
  self-dual arms, and the Yamamoto closure operations (complement,
  composition) under which the class is closed;
* :func:`closest_self_dual` — the nearest self-dual function to an
  arbitrary specification (minimum Hamming distance on the truth table),
  useful when a designer may bend the spec instead of paying for φ.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence, Tuple

from ..logic.truthtable import TruthTable


def self_dual_count(n: int) -> int:
    """``2**(2**(n-1))`` — choose the low half freely."""
    if n < 1:
        raise ValueError("need at least one variable")
    return 1 << (1 << (n - 1))


def is_closed_under_complement(table: TruthTable) -> bool:
    """The class is closed under complement: ¬F is self-dual iff F is."""
    return (~table).is_self_dual() == table.is_self_dual()


def compose_self_dual(
    outer: TruthTable, inners: Sequence[TruthTable]
) -> TruthTable:
    """Compose self-dual functions: ``F(G1(X), ..., Gk(X))``.

    Self-dual functions are closed under composition (complementing X
    complements every G_i, and the self-dual outer then complements) —
    the structural fact behind building whole self-dual datapaths from
    self-dual cells (the ripple adder argument).
    """
    if len(inners) != outer.n:
        raise ValueError("arity mismatch")
    if not inners:
        raise ValueError("need at least one inner function")
    n = inners[0].n
    if any(g.n != n for g in inners):
        raise ValueError("inner functions over different variable counts")
    bits = 0
    for point in range(1 << n):
        inner_vals = tuple(g.value(point) for g in inners)
        outer_point = sum(v << i for i, v in enumerate(inner_vals))
        if outer.value(outer_point):
            bits |= 1 << point
    return TruthTable(n, bits)


# ----------------------------------------------------------------------
# named families
# ----------------------------------------------------------------------


def majority_table(n: int) -> TruthTable:
    if n % 2 == 0:
        raise ValueError("majority needs odd arity")
    return TruthTable.from_function(
        lambda *xs: int(2 * sum(xs) > len(xs)), n
    )


def minority_table(n: int) -> TruthTable:
    if n % 2 == 0:
        raise ValueError("minority needs odd arity")
    return TruthTable.from_function(
        lambda *xs: int(2 * sum(xs) < len(xs)), n
    )


def xor_table(n: int) -> TruthTable:
    """Odd-arity XOR is self-dual; even-arity is not."""
    return TruthTable.from_function(lambda *xs: sum(xs) % 2, n)


def mux_table() -> TruthTable:
    """The 2:1 multiplexer ``s ? b : a`` — the catalog's *negative*
    example: complementing all inputs steers the *other* complemented
    arm (``F(ā,b̄,s̄) = s ? ā : b̄ ≠ ¬F``), so a plain mux needs the φ
    treatment before it can live in a SCAL datapath.  Variables
    (a, b, s)."""
    return TruthTable.from_function(
        lambda a, b, s: b if s else a, 3
    )


def biased_majority_table() -> TruthTable:
    """``MAJ(a, b, c̄)`` — self-dual (self-dual functions are closed
    under complementing inputs), a useful carry-style steering cell."""
    return TruthTable.from_function(
        lambda a, b, c: int(a + b + (1 - c) > 1.5), 3
    )


def full_adder_sum_table() -> TruthTable:
    return xor_table(3)


def full_adder_carry_table() -> TruthTable:
    return majority_table(3)


@dataclasses.dataclass(frozen=True)
class CatalogEntry:
    name: str
    table: TruthTable
    section: str  # where the thesis uses it

    @property
    def self_dual(self) -> bool:
        return self.table.is_self_dual()


def standard_catalog() -> List[CatalogEntry]:
    """The named self-dual modules a SCAL datapath draws from."""
    return [
        CatalogEntry("identity", TruthTable.variable(0, 1), "trivial"),
        CatalogEntry("complement", ~TruthTable.variable(0, 1), "trivial"),
        CatalogEntry("majority-3", majority_table(3), "Fig 2.2 carry"),
        CatalogEntry("minority-3", minority_table(3), "Ch 6 module"),
        CatalogEntry("majority-5", majority_table(5), "Ch 6 module"),
        CatalogEntry("xor-3 (adder sum)", xor_table(3), "Fig 2.2 sum"),
        CatalogEntry("xor-5", xor_table(5), "parity datapath"),
        CatalogEntry(
            "biased-majority MAJ(a,b,c')",
            biased_majority_table(),
            "datapath steering",
        ),
    ]


def closest_self_dual(table: TruthTable) -> Tuple[TruthTable, int]:
    """The self-dual function nearest to ``table`` (Hamming distance on
    the truth table) and that distance.

    For each complement pair (p, p̄) a self-dual function must take
    complementary values; choose per pair whichever orientation agrees
    with more of the specification — each disagreeing pair costs 1.
    """
    n = table.n
    full_mask = (1 << n) - 1
    bits = 0
    distance = 0
    for point in range(1 << (n - 1)):
        mate = point ^ full_mask
        v_low = table.value(point)
        v_high = table.value(mate)
        if v_high == 1 - v_low:
            # Already consistent: keep both.
            if v_low:
                bits |= 1 << point
            if v_high:
                bits |= 1 << mate
            continue
        distance += 1
        # Pick the orientation keeping the low point's value.
        if v_low:
            bits |= 1 << point
        else:
            bits |= 1 << mate
    return TruthTable(n, bits, table.names), distance


def self_dual_fraction(n: int) -> float:
    """The vanishing fraction of boolean functions that are self-dual —
    why arbitrary logic needs the φ variable."""
    total = 1 << (1 << n)
    return self_dual_count(n) / total
