"""Minority modules and the NAND/NOR conversion theorems (Chapter 6).

A minority module ``m_I`` outputs 1 iff fewer than half of its I inputs
are 1 (Figure 6.1a).  It is a complete gate set (Theorem 6.1: a 2-input
NAND is ``m(x1, x2, 0)``), and with period-clock fan-in it realizes
alternating logic directly:

* **Theorem 6.2** — for an N-input NAND, with K = N−1 clock lines and
  I = 2N−1 total inputs:
  ``(m_I(X ‖ 0_K), m_I(X̄ ‖ 1_K)) = (NAND(X), AND(X))``
* **Theorem 6.3** — dually for NOR/OR with the complemented clock.

Since every line in or out of such a module alternates, the converted
network is self-checking with respect to every line (Theorem 3.6).  The
converter below rewrites any NAND or NOR network into minority modules
with the right clock fan-in, and a small optimizer recognizes functions
that *are* a single minority/majority module (the thesis's Figure 6.2c
point: the contrived four-NAND example is really one 3-input minority
gate).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from ..logic.gates import GateKind
from ..logic.network import Gate, Network, NetworkBuilder
from ..logic.truthtable import TruthTable

PERIOD_CLOCK = "phi"


def minority(values: Sequence[int]) -> int:
    """``m_I``: 1 iff ``W(A) < I/2`` (Figure 6.1a)."""
    total = sum(int(v) & 1 for v in values)
    return int(2 * total < len(values))


def majority(values: Sequence[int]) -> int:
    """Figure 6.1b; two minority modules implement it (Figure 6.1c)."""
    return int(2 * sum(int(v) & 1 for v in values) > len(values))


def majority_from_minority(values: Sequence[int]) -> int:
    """Figure 6.1c: MAJ(X) = m₁(m_I(X)) — a minority inverter on a
    minority module."""
    return minority([minority(values)])


def nand_via_minority(values: Sequence[int], phase: int) -> int:
    """Theorem 6.2 applied pointwise: the module computes NAND in the
    first period (clock lines at 0) and AND of the complemented inputs
    in the second (clock lines at 1)."""
    n = len(values)
    k = n - 1
    pad = [int(phase) & 1] * k
    return minority(list(values) + pad)


def nor_via_minority(values: Sequence[int], phase: int) -> int:
    """Theorem 6.3: NOR in the first period with the *complemented*
    period clock (pads at 1), OR of complements in the second."""
    n = len(values)
    k = n - 1
    pad = [1 - (int(phase) & 1)] * k
    return minority(list(values) + pad)


@dataclasses.dataclass(frozen=True)
class ConversionReport:
    """Cost accounting of a minority conversion (Section 6.2's weighting:
    module count and total input count, clock fan-in included)."""

    modules: int
    total_inputs: int
    clock_inputs: int


def to_minority_network(
    network: Network,
    clock_name: str = PERIOD_CLOCK,
    name_suffix: str = "_minority",
) -> Network:
    """Rewrite a NAND/NOR/NOT network into minority modules (Thms 6.2/6.3).

    NOT gates are 1-input NANDs (``m₁`` with no clock pads — a bare
    minority inverter).  The produced network has the period clock as an
    extra primary input; driving it with (0, 1) and the data inputs with
    (X, X̄) yields the alternating pair (F(X), ¬F(X)).
    """
    allowed = {GateKind.NAND, GateKind.NOR, GateKind.NOT, GateKind.BUF}
    for gate in network.gates:
        if gate.kind not in allowed:
            raise ValueError(
                f"minority conversion handles NAND/NOR/NOT networks only; "
                f"{gate.name} is {gate.kind.value}"
            )
    builder = NetworkBuilder(list(network.inputs) + [clock_name],
                             name=network.name + name_suffix)
    clock_n: Optional[str] = None
    for gate in network.gates:
        if gate.kind is GateKind.BUF:
            builder.add(gate.name, GateKind.BUF, list(gate.inputs))
            continue
        n = len(gate.inputs)
        if gate.kind in (GateKind.NOT,):
            builder.add(gate.name, GateKind.MIN, list(gate.inputs))
            continue
        k = n - 1
        if gate.kind is GateKind.NAND:
            pads = [clock_name] * k
        else:  # NOR uses the complemented clock (Theorem 6.3)
            if clock_n is None and k > 0:
                clock_n = builder.add(f"{clock_name}_n", GateKind.MIN, [clock_name])
            pads = [clock_n] * k if k > 0 else []
        builder.add(gate.name, GateKind.MIN, list(gate.inputs) + pads)
    return builder.build(list(network.outputs))


def conversion_report(minority_net: Network, clock_name: str = PERIOD_CLOCK) -> ConversionReport:
    """Module/input counts of a converted network."""
    modules = 0
    total_inputs = 0
    clock_inputs = 0
    clock_lines = {clock_name, f"{clock_name}_n"}
    for gate in minority_net.gates:
        if gate.kind is not GateKind.MIN:
            continue
        modules += 1
        total_inputs += len(gate.inputs)
        clock_inputs += sum(1 for src in gate.inputs if src in clock_lines)
    return ConversionReport(modules, total_inputs, clock_inputs)


def minimal_minority_realization(
    table: TruthTable, names: Sequence[str], clock_name: str = PERIOD_CLOCK
) -> Optional[Network]:
    """Recognize functions realizable as a single minority module.

    The Figure 6.2 example: four NANDs (14 total inputs after direct
    conversion) collapse to one 3-input minority module.  Pads, when
    needed to shift the threshold, are period-clock lines so that the
    module still alternates: a pad at value ``v`` in the first period is
    φ (v = 0, Theorem 6.2 style) or φ̄ (v = 1, Theorem 6.3 style) and
    automatically takes the complementary value in the second period.
    Returns ``None`` when no single-module realization exists.
    """
    n = table.n
    for pads in range(0, n):
        for pad_value in (0, 1):
            def fn(*xs: int, pads=pads, pad_value=pad_value) -> int:
                return minority(list(xs) + [pad_value] * pads)

            if TruthTable.from_function(fn, n).bits != table.bits:
                continue
            builder = NetworkBuilder(
                list(names) + ([clock_name] if pads else []),
                name="minority_minimal",
            )
            sources = list(names)
            if pads:
                pad_line = clock_name
                if pad_value == 1:
                    pad_line = builder.add(
                        f"{clock_name}_n", GateKind.MIN, [clock_name]
                    )
                sources += [pad_line] * pads
            builder.add("F", GateKind.MIN, sources)
            return builder.build(["F"])
    return None


def verify_theorem_6_2(max_n: int = 6) -> bool:
    """Exhaustively check Theorem 6.2 for all NAND widths up to ``max_n``."""
    for n in range(1, max_n + 1):
        for point in range(1 << n):
            xs = [(point >> i) & 1 for i in range(n)]
            nand = 1 - int(all(xs))
            and_ = int(all(xs))
            if nand_via_minority(xs, 0) != nand:
                return False
            comp = [1 - x for x in xs]
            if nand_via_minority(comp, 1) != and_:
                return False
    return True


def verify_theorem_6_3(max_n: int = 6) -> bool:
    """Exhaustively check Theorem 6.3 for all NOR widths up to ``max_n``."""
    for n in range(1, max_n + 1):
        for point in range(1 << n):
            xs = [(point >> i) & 1 for i in range(n)]
            nor = 1 - int(any(xs))
            or_ = int(any(xs))
            if nor_via_minority(xs, 0) != nor:
                return False
            comp = [1 - x for x in xs]
            if nor_via_minority(comp, 1) != or_:
                return False
    return True
