"""Self-dual adders (Figure 2.2, Section 7.3).

The full adder is the thesis's flagship free lunch: sum and carry are
*inherently self-dual* ("some basic functions are already self-dual and
involve no hardware cost to implement as SCAL — for example, the optimal
adder").  Check: complementing a, b and carry-in complements both the sum
bit and the carry-out.  A ripple adder of self-dual cells is therefore an
alternating network as built.

Two realizations are provided: a gate-level network per bit (for the
self-checking analysis and the E-FIG2.2 bench) and a fast behavioural
word adder for the CPU datapath.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..logic.gates import GateKind
from ..logic.network import Network, NetworkBuilder


def full_adder_network(name: str = "full_adder") -> Network:
    """One self-dual full adder cell (inputs a, b, cin; outputs s, cout).

    Realized two-level (AND–OR with an input inverter level) so the
    Yamamoto result makes it self-checking as well as self-dual:
      s    = Σ odd-parity minterms of (a, b, cin)
      cout = MAJ(a, b, cin) = ab ∨ a·cin ∨ b·cin
    """
    builder = NetworkBuilder(["a", "b", "cin"], name=name)
    an = builder.add("a_n", GateKind.NOT, ["a"])
    bn = builder.add("b_n", GateKind.NOT, ["b"])
    cn = builder.add("c_n", GateKind.NOT, ["cin"])
    # Sum: the four odd-parity products.
    p1 = builder.add("p1", GateKind.AND, ["a", bn, cn])
    p2 = builder.add("p2", GateKind.AND, [an, "b", cn])
    p3 = builder.add("p3", GateKind.AND, [an, bn, "cin"])
    p4 = builder.add("p4", GateKind.AND, ["a", "b", "cin"])
    builder.add("s", GateKind.OR, [p1, p2, p3, p4])
    # Carry: majority products.
    q1 = builder.add("q1", GateKind.AND, ["a", "b"])
    q2 = builder.add("q2", GateKind.AND, ["a", "cin"])
    q3 = builder.add("q3", GateKind.AND, ["b", "cin"])
    builder.add("cout", GateKind.OR, [q1, q2, q3])
    return builder.build(["s", "cout"])


def ripple_adder_network(width: int, name: str = "ripple_adder") -> Network:
    """A ``width``-bit ripple-carry adder from self-dual cells.

    Inputs ``a0.., b0.., cin``; outputs ``s0.., cout``.  Each cell is the
    two-level full adder, so every output function of the whole adder is
    self-dual (composition of self-dual functions with self-dual
    arguments is self-dual).
    """
    if width < 1:
        raise ValueError("width must be positive")
    inputs = [f"a{i}" for i in range(width)] + [f"b{i}" for i in range(width)]
    inputs.append("cin")
    builder = NetworkBuilder(inputs, name=name)
    carry = "cin"
    for i in range(width):
        a, b = f"a{i}", f"b{i}"
        an = builder.add(f"a{i}_n", GateKind.NOT, [a])
        bn = builder.add(f"b{i}_n", GateKind.NOT, [b])
        cn = builder.add(f"c{i}_n", GateKind.NOT, [carry])
        p1 = builder.add(f"s{i}_p1", GateKind.AND, [a, bn, cn])
        p2 = builder.add(f"s{i}_p2", GateKind.AND, [an, b, cn])
        p3 = builder.add(f"s{i}_p3", GateKind.AND, [an, bn, carry])
        p4 = builder.add(f"s{i}_p4", GateKind.AND, [a, b, carry])
        builder.add(f"s{i}", GateKind.OR, [p1, p2, p3, p4])
        q1 = builder.add(f"c{i}_q1", GateKind.AND, [a, b])
        q2 = builder.add(f"c{i}_q2", GateKind.AND, [a, carry])
        q3 = builder.add(f"c{i}_q3", GateKind.AND, [b, carry])
        carry = builder.add(f"c{i+1}", GateKind.OR, [q1, q2, q3])
    outputs = [f"s{i}" for i in range(width)] + [carry]
    return builder.build(outputs)


def add_words(
    a: Sequence[int], b: Sequence[int], carry_in: int = 0
) -> Tuple[List[int], int]:
    """Behavioural ripple addition over little-endian bit lists."""
    if len(a) != len(b):
        raise ValueError("word width mismatch")
    carry = int(carry_in) & 1
    out: List[int] = []
    for x, y in zip(a, b):
        x, y = int(x) & 1, int(y) & 1
        out.append(x ^ y ^ carry)
        carry = (x & y) | (x & carry) | (y & carry)
    return out, carry


def alternating_add(
    a: Sequence[int], b: Sequence[int], carry_in: int, phase: int
) -> Tuple[List[int], int]:
    """The adder as used in an alternating datapath: period 2 receives
    complemented operands and, because the function is self-dual, returns
    the complemented sum and carry.  This helper just evaluates the real
    function on whatever it is given — the *alternation* emerges from the
    self-duality, which the tests assert."""
    return add_words(a, b, carry_in)
