"""Structural path analysis: fanout, path parity, unate paths.

Conditions B and C of Algorithm 3.1 are purely structural:

* **B** (Theorem 3.7): the line does not fan out on its way to the output
  and every gate on that single path is unate — then a stuck value can
  push the output in only one direction, so a fault is never an
  *incorrect alternation*, only a detectable non-alternation.
* **C** (Theorem 3.8 / Definition 3.1): all paths from the line to the
  output have the same parity (modulo-2 count of inversions).

Both are computed here over the *cone subnetwork* of one output, because
Algorithm 3.1 step 1 regards each output as independent ("Each network
output will be regarded as independent of the others") — a line may fan
out to gates of other outputs without affecting its condition B status for
this one.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .gates import GateKind, inverts, is_unate
from .network import Gate, Network


def cone_subnetwork(network: Network, output: str) -> Network:
    """The single-output subnetwork generating ``output`` (Figure 3.5)."""
    cone = network.cone(output)
    inputs = [i for i in network.inputs if i in cone]
    gates = [g for g in network.gates if g.name in cone]
    return Network(inputs, gates, [output], name=f"{network.name}/{output}")


def fans_out(network: Network, line: str) -> bool:
    """True when the line drives more than one gate pin."""
    return network.fanout_count(line) > 1


def single_path_to_output(
    network: Network, line: str, output: str
) -> Optional[List[str]]:
    """The unique line path from ``line`` to ``output``, or ``None``.

    Exists when ``line`` and every intermediate line each drive exactly
    one gate pin (within this network — call on a cone subnetwork for the
    per-output view), ending at ``output``.  ``output`` itself may fan out
    externally; only lines strictly before it must be fanout-free.
    """
    if not network.has_line(line):
        raise KeyError(line)
    path = [line]
    current = line
    while current != output:
        dests = network.fanout(current)
        pin_count = network.fanout_count(current)
        if pin_count != 1 or len(dests) != 1:
            return None
        current = dests[0]
        path.append(current)
    return path


def path_is_unate(network: Network, path: List[str]) -> bool:
    """True when every gate on the path (after the first line) is unate."""
    for name in path[1:]:
        if not is_unate(network.gate(name).kind):
            return False
    return True


def condition_b_holds(network: Network, line: str, output: str) -> bool:
    """Theorem 3.7 check within one output cone."""
    path = single_path_to_output(network, line, output)
    if path is None:
        return False
    return path_is_unate(network, path)


def path_parities(network: Network, line: str, output: str) -> FrozenSet[int]:
    """The set of path parities (Definition 3.1) from ``line`` to ``output``.

    Parity is counted over the gates the signal passes *through*, i.e. the
    gates strictly after ``line`` on each path.  XOR/XNOR gates are not
    signal-monotone, so a path through them has no well-defined single
    parity; following the thesis's usage (condition C is about inversion
    counts through standard/unate logic) a path through a non-unate gate
    contributes *both* parities, which correctly disqualifies it from
    condition C unless compensated.
    """
    memo: Dict[str, FrozenSet[int]] = {}

    def walk(current: str) -> FrozenSet[int]:
        if current == output:
            return frozenset({0})
        if current in memo:
            return memo[current]
        memo[current] = frozenset()  # cycle guard; networks are acyclic anyway
        result: Set[int] = set()
        for dest in network.fanout(current):
            gate = network.gate(dest)
            downstream = walk(dest)
            pins = gate.inputs.count(current)
            if pins == 0:
                continue
            kind = gate.kind
            if kind in (GateKind.XOR, GateKind.XNOR):
                contributions = {0, 1}
            else:
                contributions = {1 if inverts(kind) else 0}
            for p in downstream:
                for c in contributions:
                    result.add(p ^ c)
        memo[current] = frozenset(result)
        return memo[current]

    return walk(line)


def condition_c_holds(network: Network, line: str, output: str) -> bool:
    """Theorem 3.8 check: all paths to the output share one parity."""
    parities = path_parities(network, line, output)
    return len(parities) == 1


def lines_of_output(network: Network, output: str) -> Tuple[str, ...]:
    """All lines used in generating one output, in topological order
    (Section 3.6 step 1)."""
    cone = network.cone(output)
    return tuple(line for line in network.lines() if line in cone)


def equivalent_line_classes(network: Network) -> List[Tuple[str, ...]]:
    """Group lines that are stuck-at-equivalent through buffer chains.

    The thesis's Section 3.6 step 2 collapses "equivalent pairs of lines"
    before analysis.  At netlist level the clean equivalence is a BUF gate:
    its input stem and output stem always carry equal values and a stuck-at
    on either is indistinguishable when the input stem has no other fanout.
    """
    parent: Dict[str, str] = {}

    def find(x: str) -> str:
        while parent.get(x, x) != x:
            parent[x] = parent.get(parent[x], parent[x])
            x = parent[x]
        return x

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for gate in network.gates:
        if gate.kind is GateKind.BUF and network.fanout_count(gate.inputs[0]) == 1:
            union(gate.inputs[0], gate.name)
    groups: Dict[str, List[str]] = {}
    for line in network.lines():
        groups.setdefault(find(line), []).append(line)
    return [tuple(members) for members in groups.values() if len(members) > 1]
