"""Netlist model: named lines, gates, and combinational networks.

The thesis analyzes *networks* — gate-level implementations of functions
(its Section 2.1 vocabulary: function = logical operation, network =
implementation, system = combination of networks).  A :class:`Network`
here is a named, acyclic netlist:

* every *line* is either a primary input or the output of exactly one gate;
* gates reference their input lines by name, so fanout is implicit
  (several gates reading the same line);
* a subset of lines is designated as the network outputs.

The model deliberately keeps lines first-class and nameable because the
whole of Chapter 3 is phrased per-line ("the network is self-checking
with respect to line g").
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from .gates import GateKind, check_arity, evaluate


class NetworkError(ValueError):
    """Raised on malformed netlists (cycles, missing lines, bad arities)."""


@dataclasses.dataclass(frozen=True)
class Gate:
    """One gate: drives line ``name`` from the lines in ``inputs``."""

    name: str
    kind: GateKind
    inputs: Tuple[str, ...]

    def __post_init__(self) -> None:
        check_arity(self.kind, len(self.inputs))


class Network:
    """An acyclic combinational netlist with named lines.

    Build one either with :class:`NetworkBuilder` or from an explicit gate
    list.  The network is immutable once constructed; transformations
    (self-dualization, minority conversion, the Figure 3.7 fix...) build
    new networks.
    """

    def __init__(
        self,
        inputs: Sequence[str],
        gates: Sequence[Gate],
        outputs: Sequence[str],
        name: str = "network",
    ) -> None:
        self.name = name
        self.inputs: Tuple[str, ...] = tuple(inputs)
        self.outputs: Tuple[str, ...] = tuple(outputs)
        self._gates: Dict[str, Gate] = {}
        if len(set(self.inputs)) != len(self.inputs):
            raise NetworkError("duplicate primary input names")
        defined: Set[str] = set(self.inputs)
        for gate in gates:
            if gate.name in defined:
                raise NetworkError(f"line {gate.name!r} defined twice")
            defined.add(gate.name)
            self._gates[gate.name] = gate
        for gate in gates:
            for src in gate.inputs:
                if src not in defined:
                    raise NetworkError(
                        f"gate {gate.name!r} reads undefined line {src!r}"
                    )
        for out in self.outputs:
            if out not in defined:
                raise NetworkError(f"output {out!r} is not a defined line")
        if len(set(self.outputs)) != len(self.outputs):
            raise NetworkError("duplicate output names")
        self._topo: Tuple[str, ...] = self._toposort()
        self._fanout: Dict[str, Tuple[str, ...]] = self._fanout_map()

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def _toposort(self) -> Tuple[str, ...]:
        order: List[str] = []
        state: Dict[str, int] = {}  # 0 = visiting, 1 = done
        for name in self.inputs:
            state[name] = 1

        def visit(root: str) -> None:
            stack: List[Tuple[str, int]] = [(root, 0)]
            while stack:
                node, idx = stack.pop()
                if state.get(node) == 1:
                    continue
                gate = self._gates[node]
                if idx == 0:
                    if state.get(node) == 0:
                        raise NetworkError(f"combinational cycle through {node!r}")
                    state[node] = 0
                if idx < len(gate.inputs):
                    stack.append((node, idx + 1))
                    child = gate.inputs[idx]
                    if state.get(child) != 1:
                        if state.get(child) == 0:
                            raise NetworkError(
                                f"combinational cycle through {child!r}"
                            )
                        stack.append((child, 0))
                else:
                    state[node] = 1
                    order.append(node)

        for name in self._gates:
            if state.get(name) != 1:
                visit(name)
        return tuple(order)

    def _fanout_map(self) -> Dict[str, Tuple[str, ...]]:
        fan: Dict[str, List[str]] = {name: [] for name in self.lines()}
        for gate in self._gates.values():
            for src in set(gate.inputs):
                fan[src].append(gate.name)
        return {name: tuple(dests) for name, dests in fan.items()}

    def lines(self) -> Iterator[str]:
        """All line names: primary inputs first, then gates in topo order."""
        yield from self.inputs
        yield from self._topo

    def gate(self, line: str) -> Gate:
        """The gate driving ``line`` (KeyError for primary inputs)."""
        return self._gates[line]

    def is_input(self, line: str) -> bool:
        return line in self.inputs and line not in self._gates

    def has_line(self, line: str) -> bool:
        return line in self._gates or line in self.inputs

    @property
    def gates(self) -> Tuple[Gate, ...]:
        """All gates in topological order."""
        return tuple(self._gates[name] for name in self._topo)

    def fanout(self, line: str) -> Tuple[str, ...]:
        """Names of the gates that read ``line``."""
        return self._fanout.get(line, ())

    def fanout_count(self, line: str) -> int:
        """Number of gate *pins* the line drives (for the output lines of
        the network the external observation does not count as fanout)."""
        count = 0
        for dest in self._fanout.get(line, ()):
            count += self._gates[dest].inputs.count(line)
        return count

    def cone(self, output: str) -> Set[str]:
        """The set of lines in the transitive fan-in cone of ``output``,
        including ``output`` itself and any primary inputs it reads.

        Chapter 3's multiple-output analysis partitions lines by which
        outputs their cones reach; :meth:`outputs_using` is the inverse.
        """
        seen: Set[str] = set()
        stack = [output]
        while stack:
            line = stack.pop()
            if line in seen:
                continue
            seen.add(line)
            if line in self._gates:
                stack.extend(self._gates[line].inputs)
        return seen

    def outputs_using(self, line: str) -> Tuple[str, ...]:
        """The network outputs whose cones contain ``line``."""
        return tuple(out for out in self.outputs if line in self.cone(out))

    def reachable_outputs(self) -> Dict[str, Tuple[str, ...]]:
        """Map every line to the tuple of outputs its value can reach."""
        reach: Dict[str, Set[str]] = {name: set() for name in self.lines()}
        for out in self.outputs:
            for line in self.cone(out):
                reach[line].add(out)
        ordered: Dict[str, Tuple[str, ...]] = {}
        for line in self.lines():
            ordered[line] = tuple(o for o in self.outputs if o in reach[line])
        return ordered

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def evaluate(
        self,
        assignment: Mapping[str, int],
        overrides: Optional[Mapping[str, int]] = None,
    ) -> Dict[str, int]:
        """Evaluate every line for one input assignment.

        ``overrides`` maps line names to forced values — the stem stuck-at
        fault model (Definition 2.1).  Pin (branch) faults are handled by
        :func:`repro.logic.evaluate.evaluate_with_fault`, which needs
        per-pin resolution.
        """
        values: Dict[str, int] = {}
        overrides = overrides or {}
        for name in self.inputs:
            if name not in assignment:
                raise NetworkError(f"missing value for input {name!r}")
            values[name] = overrides.get(name, int(assignment[name]) & 1)
        for name in self._topo:
            gate = self._gates[name]
            if name in overrides:
                values[name] = overrides[name]
                continue
            values[name] = evaluate(gate.kind, [values[src] for src in gate.inputs])
        return values

    def output_values(
        self,
        assignment: Mapping[str, int],
        overrides: Optional[Mapping[str, int]] = None,
    ) -> Tuple[int, ...]:
        """The output tuple for one input assignment."""
        values = self.evaluate(assignment, overrides)
        return tuple(values[out] for out in self.outputs)

    def assignment_from_index(self, index: int) -> Dict[str, int]:
        """Decode a truth-table index into an input assignment.

        Bit *i* of ``index`` is the value of ``self.inputs[i]`` — the same
        convention :mod:`repro.logic.truthtable` uses.
        """
        return {name: (index >> i) & 1 for i, name in enumerate(self.inputs)}

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    def gate_count(self, include_buffers: bool = True) -> int:
        """Number of gates (constants excluded; buffers optionally)."""
        count = 0
        for gate in self._gates.values():
            if gate.kind in (GateKind.CONST0, GateKind.CONST1):
                continue
            if gate.kind is GateKind.BUF and not include_buffers:
                continue
            count += 1
        return count

    def gate_input_count(self) -> int:
        """Total number of gate input pins — the thesis's secondary cost
        metric ('the number of gate inputs ... may also be cost factors')."""
        return sum(
            len(gate.inputs)
            for gate in self._gates.values()
            if gate.kind not in (GateKind.CONST0, GateKind.CONST1)
        )

    def kind_histogram(self) -> Dict[GateKind, int]:
        hist: Dict[GateKind, int] = {}
        for gate in self._gates.values():
            hist[gate.kind] = hist.get(gate.kind, 0) + 1
        return hist

    def depth(self) -> int:
        """Maximum number of gates on any input-to-output path."""
        level: Dict[str, int] = {name: 0 for name in self.inputs}
        for name in self._topo:
            gate = self._gates[name]
            level[name] = 1 + max((level[src] for src in gate.inputs), default=0)
        return max((level[out] for out in self.outputs), default=0)

    def renamed(self, prefix: str) -> "Network":
        """A copy with every line renamed ``prefix + old_name``.

        Useful when instantiating a network as a sub-block of a larger
        system (e.g. replicating checker trees).
        """

        def ren(line: str) -> str:
            return prefix + line

        gates = [
            Gate(ren(g.name), g.kind, tuple(ren(s) for s in g.inputs))
            for g in self.gates
        ]
        return Network(
            [ren(i) for i in self.inputs],
            gates,
            [ren(o) for o in self.outputs],
            name=prefix + self.name,
        )

    def with_outputs(self, outputs: Sequence[str]) -> "Network":
        """A copy exposing a different output list (same gates)."""
        return Network(self.inputs, self.gates, outputs, name=self.name)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Network({self.name!r}, {len(self.inputs)} inputs, "
            f"{len(self._gates)} gates, {len(self.outputs)} outputs)"
        )


class NetworkBuilder:
    """Incremental construction of a :class:`Network`.

    >>> b = NetworkBuilder(["a", "b"])
    >>> _ = b.add("n1", GateKind.NAND, ["a", "b"])
    >>> net = b.build(["n1"])
    >>> net.output_values({"a": 1, "b": 1})
    (0,)
    """

    def __init__(self, inputs: Sequence[str], name: str = "network") -> None:
        self.name = name
        self._inputs = list(inputs)
        self._gates: List[Gate] = []
        self._defined: Set[str] = set(inputs)
        self._auto = 0

    def add(self, name: str, kind: GateKind, inputs: Sequence[str]) -> str:
        """Add a gate driving line ``name``; returns ``name`` for chaining."""
        if name in self._defined:
            raise NetworkError(f"line {name!r} already defined")
        for src in inputs:
            if src not in self._defined:
                raise NetworkError(f"gate {name!r} reads undefined line {src!r}")
        self._gates.append(Gate(name, kind, tuple(inputs)))
        self._defined.add(name)
        return name

    def fresh(self, kind: GateKind, inputs: Sequence[str], stem: str = "t") -> str:
        """Add a gate with an auto-generated line name."""
        self._auto += 1
        return self.add(f"{stem}{self._auto}", kind, inputs)

    def add_input(self, name: str) -> str:
        if name in self._defined:
            raise NetworkError(f"line {name!r} already defined")
        self._inputs.append(name)
        self._defined.add(name)
        return name

    def has_line(self, name: str) -> bool:
        return name in self._defined

    def build(self, outputs: Sequence[str]) -> Network:
        return Network(self._inputs, self._gates, outputs, name=self.name)


def map_lines(network: Network, transform: Callable[[Gate], Gate]) -> Network:
    """Rebuild ``network`` applying ``transform`` to every gate."""
    gates = [transform(g) for g in network.gates]
    return Network(network.inputs, gates, network.outputs, name=network.name)


def expand_fanout_branches(network: Network, suffix: str = "_br") -> Network:
    """Give every fanout branch its own named line via a BUF gate.

    The thesis numbers each wire segment of a fanout stem separately (the
    "equivalent pairs of lines" bookkeeping of Section 3.6 then collapses
    the trivial ones).  After this transform every *pin* fault of the
    original network corresponds to a *stem* fault of the expanded one, so
    the per-line Algorithm 3.1 analysis covers the full stem+pin fault
    universe.  Branch lines are named ``<stem><suffix><k>``.
    """
    fan_pins: Dict[str, int] = {}
    for gate in network.gates:
        for src in gate.inputs:
            fan_pins[src] = fan_pins.get(src, 0) + 1
    needs_branches = {line for line, pins in fan_pins.items() if pins > 1}
    counters: Dict[str, int] = {}
    new_gates: List[Gate] = []
    branch_gates: List[Gate] = []
    for gate in network.gates:
        new_inputs = []
        for src in gate.inputs:
            if src in needs_branches:
                counters[src] = counters.get(src, 0) + 1
                branch = f"{src}{suffix}{counters[src]}"
                branch_gates.append(Gate(branch, GateKind.BUF, (src,)))
                new_inputs.append(branch)
            else:
                new_inputs.append(src)
        new_gates.append(Gate(gate.name, gate.kind, tuple(new_inputs)))
    return Network(
        network.inputs,
        branch_gates + new_gates,
        network.outputs,
        name=f"{network.name}_expanded",
    )


def merge_disjoint(
    a: Network, b: Network, outputs: Optional[Iterable[str]] = None
) -> Network:
    """Union of two networks over shared primary inputs.

    Gate line names must be disjoint (rename with :meth:`Network.renamed`
    first when composing copies).  Primary inputs with equal names are
    identified — this is how multi-output systems sharing input busses are
    assembled.
    """
    inputs = list(a.inputs) + [i for i in b.inputs if i not in a.inputs]
    a_lines = {g.name for g in a.gates}
    for gate in b.gates:
        if gate.name in a_lines:
            raise NetworkError(f"gate line {gate.name!r} defined in both networks")
    gates = list(a.gates) + list(b.gates)
    outs = list(outputs) if outputs is not None else list(a.outputs) + list(b.outputs)
    return Network(inputs, gates, outs, name=f"{a.name}+{b.name}")
