"""Self-dual functions and self-dualization (Definitions 2.5–2.7, Thm 2.1).

A network realizes *alternating logic* iff its function is self-dual
(Theorem 2.1): ``F(X̄) = ¬F(X)``.  Any function can be made self-dual with
one extra input — the *period clock* φ, 0 in the first time period and 1
in the second (Yamamoto et al., cited in Section 2.3).  Two constructions
are provided:

* :func:`self_dualize_table` — the canonical truth-table construction
  ``F'(φ, X) = φ̄·F(X) ∨ φ·F^d(X)``; re-synthesizing it two-level (via
  :mod:`repro.logic.synthesis`) yields networks that are self-checking by
  the Yamamoto two-level theorem (Section 3.3).
* :func:`self_dualize_network_xor` — the structural wrapper
  ``F'(φ, X) = φ ⊕ F(x₁⊕φ, …, x_n⊕φ)``, which reuses the original netlist
  at the cost of ``n+1`` XOR gates.  It is cheap but the XORs defeat
  conditions B and D of Algorithm 3.1, so the result must be re-analyzed —
  this is one of the ablations DESIGN.md calls out.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .evaluate import line_tables, network_function
from .gates import GateKind
from .network import Gate, Network, NetworkBuilder
from .truthtable import TruthTable

PERIOD_CLOCK = "phi"


def is_self_dual_table(table: TruthTable) -> bool:
    """Definition 2.7 on a truth table."""
    return table.is_self_dual()


def is_alternating_network(network: Network) -> bool:
    """Theorem 2.1: the network is an alternating network iff every output
    function is self-dual."""
    tables = line_tables(network)
    return all(tables[out].is_self_dual() for out in network.outputs)


def self_dual_defect(table: TruthTable) -> Tuple[int, ...]:
    """The input points where ``F(X̄) ≠ ¬F(X)`` — empty iff self-dual.

    Useful in tests and in the design loop: the defect set localizes where
    a hand-built "self-dual" module actually fails to alternate.
    """
    mismatch = table.co_reflect() ^ (~table)
    return tuple(mismatch.minterms())


def self_dualize_table(table: TruthTable, clock_name: str = PERIOD_CLOCK) -> TruthTable:
    """Yamamoto construction: one extra variable makes any function self-dual.

    The new variable is appended as the *last* (highest-index) variable so
    existing point indices stay valid in the low half of the new table:
    point ``i`` (φ=0) keeps value ``F(i)``; point ``i + 2**n`` (φ=1) takes
    the dual's value ``F^d(i) = ¬F(ī)``.
    """
    n = table.n
    dual = table.dual()
    bits = table.bits | (dual.bits << (1 << n))
    names = tuple(table.names) + (clock_name,) if table.names else ()
    return TruthTable(n + 1, bits, names)


def self_dualize_network_xor(
    network: Network,
    clock_name: str = PERIOD_CLOCK,
    output: Optional[str] = None,
) -> Network:
    """Structural self-dualization: ``φ ⊕ F(X ⊕ φ)``.

    Identity check: for ``H(φ,X) = φ ⊕ F(x₁⊕φ, …)`` we get
    ``H(φ̄, X̄) = ¬φ ⊕ F(X ⊕ φ) = ¬H(φ, X)``, so H is self-dual, and
    ``H(0, X) = F(X)`` recovers the original function in the first period.
    Applied to every output when ``output`` is None.
    """
    outputs = [output] if output is not None else list(network.outputs)
    builder = NetworkBuilder(list(network.inputs) + [clock_name], name=f"sd_{network.name}")
    # XOR every primary input with the period clock.
    mapped: Dict[str, str] = {}
    for inp in network.inputs:
        mapped[inp] = builder.add(f"{inp}_x", GateKind.XOR, [inp, clock_name])
    for gate in network.gates:
        builder.add(
            gate.name, gate.kind, [mapped.get(src, src) for src in gate.inputs]
        )
        mapped.setdefault(gate.name, gate.name)
    new_outputs = []
    for out in outputs:
        new_outputs.append(builder.add(f"{out}_sd", GateKind.XOR, [mapped[out], clock_name]))
    return builder.build(new_outputs)


def first_period_function(
    sd_table: TruthTable, clock_index: Optional[int] = None
) -> TruthTable:
    """Recover ``F`` from a self-dualized table (the φ=0 cofactor with the
    clock variable dropped)."""
    n = sd_table.n
    if clock_index is None:
        clock_index = n - 1
    bits = 0
    for i in range(1 << (n - 1)):
        # Rebuild the full-space index with clock=0.
        low = i & ((1 << clock_index) - 1)
        high = i >> clock_index
        j = low | (high << (clock_index + 1))
        if sd_table.value(j):
            bits |= 1 << i
    names = tuple(
        name for k, name in enumerate(sd_table.names) if k != clock_index
    ) if sd_table.names else ()
    return TruthTable(n - 1, bits, names)


def verify_self_dualization(original: TruthTable, dualized: TruthTable) -> bool:
    """True when ``dualized`` is self-dual *and* restricts to ``original``
    in the first period — the contract of both constructions."""
    if not dualized.is_self_dual():
        return False
    return first_period_function(dualized).bits == original.bits


def network_is_self_dual(network: Network, output: Optional[str] = None) -> bool:
    """Self-duality of one network output (default: the only output)."""
    return network_function(network, output).is_self_dual()
