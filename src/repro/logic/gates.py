"""Gate primitives for the SCAL logic substrate.

The thesis (Woodard 1977 / Woodard & Metze, ISCA 1978) reasons about
networks built from *standard gates* (Definition 3.2: NOT, NAND, AND, NOR,
OR), XOR-style gates (which are explicitly *not* standard — Theorem 3.9
does not apply to them), and threshold gates (majority and minority
modules, Chapter 6). This module defines the gate alphabet, the boolean
semantics of each gate, and the structural attributes the self-checking
analysis needs:

* *standardness* (Definition 3.2) — used by condition D of Algorithm 3.1,
* *unateness* — used by condition B (Theorem 3.7),
* *dominant input values* — the value that forces a standard gate's output
  regardless of its other inputs (0 for AND/NAND, 1 for OR/NOR),
* *inversion parity* — whether the gate inverts, used by the path-parity
  analysis of condition C (Theorem 3.8 / Definition 3.1).

All gate evaluation is defined both pointwise (``evaluate``) and
word-parallel over integer bitmasks (``evaluate_mask``), the latter being
what makes exhaustive fault simulation over all ``2**n`` inputs cheap.
"""

from __future__ import annotations

import enum
from typing import Sequence


class GateKind(enum.Enum):
    """The gate alphabet of the SCAL substrate."""

    INPUT = "input"
    CONST0 = "const0"
    CONST1 = "const1"
    BUF = "buf"
    NOT = "not"
    AND = "and"
    OR = "or"
    NAND = "nand"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"
    MAJ = "maj"
    MIN = "min"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GateKind.{self.name}"


#: Gates named by Definition 3.2 of the thesis.  Condition D of Algorithm
#: 3.1 ("input to the same standard gate as an alternating line") only
#: applies to these, because only these exhibit the dominance property.
STANDARD_GATES = frozenset(
    {GateKind.NOT, GateKind.NAND, GateKind.AND, GateKind.NOR, GateKind.OR}
)

#: Gates that are monotone (unate) in every input.  Condition B of
#: Algorithm 3.1 (Theorem 3.7) requires the path from a line to the output
#: to pass only through unate gates.  NOT/NAND/NOR are unate (negative
#: unate in each input); XOR/XNOR are not unate in any input.
UNATE_GATES = frozenset(
    {
        GateKind.BUF,
        GateKind.NOT,
        GateKind.AND,
        GateKind.OR,
        GateKind.NAND,
        GateKind.NOR,
        GateKind.MAJ,
        GateKind.MIN,
    }
)

#: Gates whose output is the complement of a monotone-increasing function
#: of the inputs.  Used to compute path *parity* (Definition 3.1): the
#: modulo-2 number of inversions along a path.
INVERTING_GATES = frozenset(
    {GateKind.NOT, GateKind.NAND, GateKind.NOR, GateKind.XNOR, GateKind.MIN}
)

#: ``kind -> (dominant input value, forced output value)`` for standard
#: multi-input gates (Theorem 3.9): applying the dominant value to any one
#: input forces the gate output independent of the other inputs.
DOMINANT_VALUE = {
    GateKind.AND: (0, 0),
    GateKind.NAND: (0, 1),
    GateKind.OR: (1, 1),
    GateKind.NOR: (1, 0),
}

#: Minimum and maximum input arity for each kind; ``None`` = unbounded.
_ARITY = {
    GateKind.INPUT: (0, 0),
    GateKind.CONST0: (0, 0),
    GateKind.CONST1: (0, 0),
    GateKind.BUF: (1, 1),
    GateKind.NOT: (1, 1),
    GateKind.AND: (1, None),
    GateKind.OR: (1, None),
    GateKind.NAND: (1, None),
    GateKind.NOR: (1, None),
    GateKind.XOR: (1, None),
    GateKind.XNOR: (1, None),
    GateKind.MAJ: (3, None),
    GateKind.MIN: (1, None),
}


class GateArityError(ValueError):
    """Raised when a gate is built with an illegal number of inputs."""


def check_arity(kind: GateKind, n_inputs: int) -> None:
    """Raise :class:`GateArityError` unless ``n_inputs`` is legal for ``kind``.

    Majority gates additionally require an odd number of inputs so that
    "more than half" is unambiguous; minority modules follow the thesis's
    Chapter 6 convention of an odd total input count (the conversion of
    Theorem 6.2 always produces odd ``2N-1``), but even-input minority
    gates are permitted and mean "strictly fewer than half ones".
    """
    low, high = _ARITY[kind]
    if n_inputs < low or (high is not None and n_inputs > high):
        raise GateArityError(f"{kind.value} gate cannot take {n_inputs} inputs")
    if kind is GateKind.MAJ and n_inputs % 2 == 0:
        raise GateArityError("majority gate requires an odd number of inputs")


def evaluate(kind: GateKind, values: Sequence[int]) -> int:
    """Evaluate one gate pointwise on 0/1 input values.

    ``MAJ`` returns 1 iff more than half of the inputs are 1; ``MIN``
    (the minority module of Figure 6.1a) returns 1 iff *fewer than half*
    of the inputs are 1, i.e. ``W(A) < I/2`` in the thesis's notation.
    """
    if kind is GateKind.CONST0:
        return 0
    if kind is GateKind.CONST1:
        return 1
    if kind is GateKind.BUF:
        return values[0]
    if kind is GateKind.NOT:
        return 1 - values[0]
    if kind is GateKind.AND:
        return int(all(values))
    if kind is GateKind.OR:
        return int(any(values))
    if kind is GateKind.NAND:
        return 1 - int(all(values))
    if kind is GateKind.NOR:
        return 1 - int(any(values))
    if kind is GateKind.XOR:
        return sum(values) % 2
    if kind is GateKind.XNOR:
        return 1 - (sum(values) % 2)
    if kind is GateKind.MAJ:
        return int(2 * sum(values) > len(values))
    if kind is GateKind.MIN:
        return int(2 * sum(values) < len(values))
    raise ValueError(f"gate kind {kind} has no pointwise evaluation")


def evaluate_mask(kind: GateKind, masks: Sequence[int], full: int) -> int:
    """Evaluate one gate word-parallel over truth-table bitmasks.

    ``masks[i]`` holds the value of input *i* for every point of the input
    space as a bitmask; ``full`` is the all-ones mask for that space.  The
    return value is the output bitmask.  This is the core primitive behind
    exhaustive condition-E evaluation (Corollary 3.1) and the SCAL fault
    oracle: one pass over the netlist evaluates all ``2**n`` inputs.
    """
    if kind is GateKind.CONST0:
        return 0
    if kind is GateKind.CONST1:
        return full
    if kind is GateKind.BUF:
        return masks[0]
    if kind is GateKind.NOT:
        return ~masks[0] & full
    if kind is GateKind.AND:
        out = full
        for m in masks:
            out &= m
        return out
    if kind is GateKind.OR:
        out = 0
        for m in masks:
            out |= m
        return out
    if kind is GateKind.NAND:
        out = full
        for m in masks:
            out &= m
        return ~out & full
    if kind is GateKind.NOR:
        out = 0
        for m in masks:
            out |= m
        return ~out & full
    if kind is GateKind.XOR:
        out = 0
        for m in masks:
            out ^= m
        return out
    if kind is GateKind.XNOR:
        out = 0
        for m in masks:
            out ^= m
        return ~out & full
    if kind in (GateKind.MAJ, GateKind.MIN):
        return _threshold_mask(kind, masks, full)
    raise ValueError(f"gate kind {kind} has no mask evaluation")


def _threshold_mask(kind: GateKind, masks: Sequence[int], full: int) -> int:
    """Word-parallel threshold evaluation via a bit-sliced population count.

    Maintains a little-endian binary counter of how many inputs are 1 at
    each truth-table point, then thresholds the count against ``len/2``.
    """
    counter: list[int] = []
    for m in masks:
        carry = m
        for i, c in enumerate(counter):
            new_carry = c & carry
            counter[i] = c ^ carry
            carry = new_carry
            if not carry:
                break
        if carry:
            counter.append(carry)
    n = len(masks)
    out = 0
    # A point satisfies the threshold if its count, read from the bit-sliced
    # counter, compares correctly with n/2.  Enumerate achievable counts.
    for count in range(n + 1):
        if kind is GateKind.MAJ and not 2 * count > n:
            continue
        if kind is GateKind.MIN and not 2 * count < n:
            continue
        sel = full
        for bit, slice_mask in enumerate(counter):
            if (count >> bit) & 1:
                sel &= slice_mask
            else:
                sel &= ~slice_mask & full
        if count >> len(counter):
            sel = 0  # count not representable in the counter width
        out |= sel
    return out


def is_standard(kind: GateKind) -> bool:
    """True for the standard gates of Definition 3.2."""
    return kind in STANDARD_GATES


def is_unate(kind: GateKind) -> bool:
    """True when the gate is monotone (possibly inverted) in every input."""
    return kind in UNATE_GATES


def inverts(kind: GateKind) -> bool:
    """True when the gate contributes one inversion to path parity."""
    return kind in INVERTING_GATES
