"""Fault models (Section 1.2 / Definitions 2.1–2.3).

The thesis's design method is validated against the **single stuck-at
fault model** (Definition 2.1): one line stuck-at 0 or stuck-at 1,
permanent or transient.  Unidirectional faults (Definition 2.2, any number
of lines stuck at *one* value) and multiple faults (Definition 2.3) are
also modelled because the coverage discussion (Section 2.4: "not all
failures are covered") needs them as the comparison classes.

Two granularities of fault site are supported:

* **stem faults** — the output of a gate (or a primary input) is stuck.
  This is the granularity the thesis numbers its lines at.
* **pin faults** — a single input pin of a single gate is stuck, leaving
  the stem and the other branches healthy.  The thesis's "equivalent
  lines" bookkeeping (e.g. pairs (3,24) in Section 3.6) is exactly the
  stem/branch identification for non-fanout lines; for fanout stems the
  branches are distinct fault sites and pin faults model them.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterator, List, Sequence, Tuple, Union

from .network import Network


@dataclasses.dataclass(frozen=True)
class StuckAt:
    """Line (stem) ``line`` stuck at ``value``."""

    line: str
    value: int

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise ValueError("stuck-at value must be 0 or 1")

    def describe(self) -> str:
        return f"{self.line} s/{self.value}"


@dataclasses.dataclass(frozen=True)
class PinStuckAt:
    """Input pin ``pin_index`` of gate ``gate`` stuck at ``value``."""

    gate: str
    pin_index: int
    value: int

    def __post_init__(self) -> None:
        if self.value not in (0, 1):
            raise ValueError("stuck-at value must be 0 or 1")
        if self.pin_index < 0:
            raise ValueError("pin index must be non-negative")

    def describe(self) -> str:
        return f"{self.gate}.pin{self.pin_index} s/{self.value}"


Fault = Union[StuckAt, PinStuckAt]


@dataclasses.dataclass(frozen=True)
class MultipleFault:
    """A set of simultaneous stem/pin faults (Definition 2.3)."""

    faults: Tuple[Fault, ...]

    def describe(self) -> str:
        return " & ".join(f.describe() for f in self.faults)

    def is_unidirectional(self) -> bool:
        """Definition 2.2: all constituent lines stuck at the same value."""
        values = {f.value for f in self.faults}
        return len(values) <= 1


def enumerate_stem_faults(
    network: Network, include_inputs: bool = True
) -> Iterator[StuckAt]:
    """All single stem stuck-at faults of the network.

    ``include_inputs=False`` skips primary-input stems — useful when the
    inputs are themselves outputs of a previously checked stage, as in the
    system-composition arguments of Chapter 5.
    """
    for line in network.lines():
        if not include_inputs and network.is_input(line):
            continue
        yield StuckAt(line, 0)
        yield StuckAt(line, 1)


def enumerate_pin_faults(network: Network) -> Iterator[PinStuckAt]:
    """All single input-pin stuck-at faults of the network."""
    for gate in network.gates:
        for pin in range(len(gate.inputs)):
            yield PinStuckAt(gate.name, pin, 0)
            yield PinStuckAt(gate.name, pin, 1)


def enumerate_single_faults(
    network: Network,
    include_inputs: bool = True,
    include_pins: bool = True,
    collapse: bool = True,
) -> List[Fault]:
    """The single-fault universe the SCAL analysis is run against.

    With ``collapse=True`` a pin fault on the only branch of a non-fanout
    stem is dropped as equivalent to the stem fault (the thesis's
    "equivalent pairs of lines", Section 3.6 step 2).
    """
    faults: List[Fault] = list(enumerate_stem_faults(network, include_inputs))
    if not include_pins:
        return faults
    for pf in enumerate_pin_faults(network):
        gate = network.gate(pf.gate)
        stem = gate.inputs[pf.pin_index]
        if collapse and network.fanout_count(stem) == 1 and stem not in network.outputs:
            continue  # equivalent to the stem fault already enumerated
        faults.append(pf)
    return faults


def fault_overrides(fault: Union[Fault, MultipleFault]) -> Tuple[Dict[str, int], Dict[Tuple[str, int], int]]:
    """Split a fault into (stem overrides, pin overrides) for evaluation."""
    stems: Dict[str, int] = {}
    pins: Dict[Tuple[str, int], int] = {}
    parts: Sequence[Fault]
    if isinstance(fault, MultipleFault):
        parts = fault.faults
    else:
        parts = (fault,)
    for part in parts:
        if isinstance(part, StuckAt):
            stems[part.line] = part.value
        else:
            pins[(part.gate, part.pin_index)] = part.value
    return stems, pins
