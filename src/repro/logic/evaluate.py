"""Exhaustive, word-parallel network evaluation with fault injection.

Every Chapter-3 condition quantifies over *all* inputs, so the natural
evaluator computes each line of the netlist as a full truth table (an
integer bitmask over all ``2**n`` input points, see
:mod:`repro.logic.truthtable`) in one topological pass.  Fault injection
is then free: a stuck stem replaces a line's mask with all-0/all-1; a
stuck pin overrides one operand of one gate.

For networks whose input count makes ``2**n`` impractical the same entry
points accept an explicit list of input points to evaluate ("sampled"
mode); the SCAL oracle in :mod:`repro.core.simulate` uses that for the
randomized coverage experiments.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from .faults import Fault, MultipleFault, fault_overrides
from .gates import evaluate as eval_gate
from .gates import evaluate_mask
from .network import Network
from .truthtable import TruthTable


def line_tables(
    network: Network,
    fault: Optional[Union[Fault, MultipleFault]] = None,
) -> Dict[str, TruthTable]:
    """Truth tables of every line, optionally under a fault.

    The variable order of the tables is ``network.inputs`` (bit *i* of a
    table index is input *i*), so tables from the same network compose
    with plain ``&``/``|``/``^``.
    """
    n = len(network.inputs)
    full = (1 << (1 << n)) - 1
    stems: Mapping[str, int] = {}
    pins: Mapping[Tuple[str, int], int] = {}
    if fault is not None:
        stems, pins = fault_overrides(fault)

    masks: Dict[str, int] = {}
    for i, name in enumerate(network.inputs):
        if name in stems:
            masks[name] = full if stems[name] else 0
        else:
            masks[name] = TruthTable.variable(i, n).bits
    for gate in network.gates:
        if gate.name in stems:
            masks[gate.name] = full if stems[gate.name] else 0
            continue
        operands: List[int] = []
        for pin, src in enumerate(gate.inputs):
            key = (gate.name, pin)
            if key in pins:
                operands.append(full if pins[key] else 0)
            else:
                operands.append(masks[src])
        masks[gate.name] = evaluate_mask(gate.kind, operands, full)
    names = tuple(network.inputs)
    return {line: TruthTable(n, bits, names) for line, bits in masks.items()}


def output_tables(
    network: Network,
    fault: Optional[Union[Fault, MultipleFault]] = None,
) -> Dict[str, TruthTable]:
    """Truth tables of the network outputs, optionally under a fault."""
    tables = line_tables(network, fault)
    return {out: tables[out] for out in network.outputs}


def network_function(network: Network, output: Optional[str] = None) -> TruthTable:
    """The fault-free function of one output (default: the only output)."""
    if output is None:
        if len(network.outputs) != 1:
            raise ValueError("network has multiple outputs; name one")
        output = network.outputs[0]
    return line_tables(network)[output]


def evaluate_with_fault(
    network: Network,
    assignment: Mapping[str, int],
    fault: Optional[Union[Fault, MultipleFault]] = None,
) -> Dict[str, int]:
    """Pointwise evaluation of every line under a fault."""
    if fault is None:
        return network.evaluate(assignment)
    stems, pins = fault_overrides(fault)
    values: Dict[str, int] = {}
    for name in network.inputs:
        values[name] = stems.get(name, int(assignment[name]) & 1)
    for gate in network.gates:
        if gate.name in stems:
            values[gate.name] = stems[gate.name]
            continue
        operands = []
        for pin, src in enumerate(gate.inputs):
            key = (gate.name, pin)
            operands.append(pins.get(key, values[src]))
        values[gate.name] = eval_gate(gate.kind, operands)
    return values


def outputs_with_fault(
    network: Network,
    assignment: Mapping[str, int],
    fault: Optional[Union[Fault, MultipleFault]] = None,
) -> Tuple[int, ...]:
    """Output tuple for one input assignment under a fault."""
    values = evaluate_with_fault(network, assignment, fault)
    return tuple(values[out] for out in network.outputs)


def sampled_output_vectors(
    network: Network,
    points: Iterable[int],
    fault: Optional[Union[Fault, MultipleFault]] = None,
) -> List[Tuple[int, ...]]:
    """Output tuples at an explicit list of truth-table points.

    Used when the input space is too large to enumerate — the randomized
    coverage benchmarks sample points instead.
    """
    results = []
    for point in points:
        assignment = network.assignment_from_index(point)
        results.append(outputs_with_fault(network, assignment, fault))
    return results


def functionally_equivalent(a: Network, b: Network) -> bool:
    """True when two networks compute identical output tuples everywhere.

    Inputs are matched by name; both networks must have the same input
    set and the same number of outputs (output *names* may differ — the
    transformations of Chapters 4 and 6 rename lines).
    """
    if set(a.inputs) != set(b.inputs) or len(a.outputs) != len(b.outputs):
        return False
    ta = line_tables(a)
    tb_raw = line_tables(b)
    # Re-tabulate b's outputs under a's variable order so bitmasks align.
    n = len(a.inputs)
    order = {name: i for i, name in enumerate(a.inputs)}
    for out_a, out_b in zip(a.outputs, b.outputs):
        table_b = tb_raw[out_b]
        remapped = 0
        for i in range(1 << n):
            # Build b's index for a's point i.
            j = 0
            for bi, name in enumerate(b.inputs):
                if (i >> order[name]) & 1:
                    j |= 1 << bi
            if table_b.value(j):
                remapped |= 1 << i
        if remapped != ta[out_a].bits:
            return False
    return True
