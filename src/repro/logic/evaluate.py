"""Exhaustive, word-parallel network evaluation with fault injection.

Every Chapter-3 condition quantifies over *all* inputs, so the natural
evaluator computes each line of the netlist as a full truth table (an
integer bitmask over all ``2**n`` input points, see
:mod:`repro.logic.truthtable`) in one topological pass.  Fault injection
is then free: a stuck stem replaces a line's mask with all-0/all-1; a
stuck pin overrides one operand of one gate.

For networks whose input count makes ``2**n`` impractical the same entry
points accept an explicit list of input points to evaluate ("sampled"
mode); the SCAL oracle in :mod:`repro.core.simulate` uses that for the
randomized coverage experiments.

These functions are thin name-keyed wrappers over the compiled engine
(:mod:`repro.engine`): the network is compiled once into a flat op
program, the fault-free baseline is cached, and each faulty query
re-simulates only the fault's output cone.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Union

from ..engine import engine_for
from .faults import Fault, MultipleFault
from .network import Network, NetworkError
from .truthtable import TruthTable


def line_tables(
    network: Network,
    fault: Optional[Union[Fault, MultipleFault]] = None,
) -> Dict[str, TruthTable]:
    """Truth tables of every line, optionally under a fault.

    The variable order of the tables is ``network.inputs`` (bit *i* of a
    table index is input *i*), so tables from the same network compose
    with plain ``&``/``|``/``^``.
    """
    engine = engine_for(network)
    bits = engine.bitmask.line_bits(fault)
    n = engine.compiled.n_inputs
    names = engine.compiled.input_names
    return {
        line: TruthTable(n, line_bits, names)
        for line, line_bits in zip(engine.compiled.names, bits)
    }


def output_tables(
    network: Network,
    fault: Optional[Union[Fault, MultipleFault]] = None,
) -> Dict[str, TruthTable]:
    """Truth tables of the network outputs, optionally under a fault."""
    engine = engine_for(network)
    bits = engine.bitmask.line_bits(fault)
    n = engine.compiled.n_inputs
    names = engine.compiled.input_names
    return {
        out: TruthTable(n, bits[idx], names)
        for out, idx in zip(network.outputs, engine.compiled.out_idx)
    }


def network_function(network: Network, output: Optional[str] = None) -> TruthTable:
    """The fault-free function of one output (default: the only output)."""
    if output is None:
        if len(network.outputs) != 1:
            raise ValueError("network has multiple outputs; name one")
        output = network.outputs[0]
    return line_tables(network)[output]


def _input_point(network: Network, assignment: Mapping[str, int]) -> Tuple[int, ...]:
    try:
        return tuple(int(assignment[name]) & 1 for name in network.inputs)
    except KeyError as missing:
        raise NetworkError(f"missing value for input {missing.args[0]!r}") from None


def evaluate_with_fault(
    network: Network,
    assignment: Mapping[str, int],
    fault: Optional[Union[Fault, MultipleFault]] = None,
) -> Dict[str, int]:
    """Pointwise evaluation of every line under a fault."""
    engine = engine_for(network)
    values = engine.pointwise.line_values(_input_point(network, assignment), fault)
    return dict(zip(engine.compiled.names, values))


def outputs_with_fault(
    network: Network,
    assignment: Mapping[str, int],
    fault: Optional[Union[Fault, MultipleFault]] = None,
) -> Tuple[int, ...]:
    """Output tuple for one input assignment under a fault."""
    engine = engine_for(network)
    return engine.pointwise.output_values(_input_point(network, assignment), fault)


def sampled_output_vectors(
    network: Network,
    points: Iterable[int],
    fault: Optional[Union[Fault, MultipleFault]] = None,
) -> List[Tuple[int, ...]]:
    """Output tuples at an explicit list of truth-table points.

    Used when the input space is too large to enumerate — the randomized
    coverage benchmarks sample points instead.
    """
    return engine_for(network).sampled.output_vectors(points, fault)


def functionally_equivalent(a: Network, b: Network) -> bool:
    """True when two networks compute identical output tuples everywhere.

    Inputs are matched by name; both networks must have the same input
    set and the same number of outputs (output *names* may differ — the
    transformations of Chapters 4 and 6 rename lines).
    """
    if set(a.inputs) != set(b.inputs) or len(a.outputs) != len(b.outputs):
        return False
    eng_a = engine_for(a)
    eng_b = engine_for(b)
    bits_a = eng_a.bitmask.baseline()
    bits_b = eng_b.bitmask.baseline()
    n = len(a.inputs)
    if a.inputs == b.inputs:
        perm = None
    else:
        # b's table index for a's point i, built once (incrementally from
        # the lowest set bit) and reused across every output pair.
        order = {name: i for i, name in enumerate(a.inputs)}
        bit_for = [0] * n
        for bi, name in enumerate(b.inputs):
            bit_for[order[name]] = 1 << bi
        perm = [0] * (1 << n)
        for i in range(1, 1 << n):
            low = i & -i
            perm[i] = perm[i ^ low] | bit_for[low.bit_length() - 1]
    for out_a, out_b in zip(a.outputs, b.outputs):
        table_a = bits_a[eng_a.compiled.index[out_a]]
        table_b = bits_b[eng_b.compiled.index[out_b]]
        if perm is None:
            if table_a != table_b:
                return False
            continue
        for i in range(1 << n):
            if ((table_a >> i) & 1) != ((table_b >> perm[i]) & 1):
                return False
    return True
