"""A small boolean-expression front end for building networks.

The thesis specifies its example functions algebraically
(``F1 = A'B ∨ A'C ∨ BC``, ``F2 = A ⊕ B ⊕ C`` …); this parser turns the
same notation into netlists so examples and tests can quote the paper
directly.

Grammar (precedence low→high)::

    expr   := xor ( '|' xor | '+' xor )*
    xor    := term ( '^' term )*
    term   := factor ( '&' factor | '*' factor | factor )*   # juxtaposition = AND
    factor := '~' factor | '!' factor | atom ("'")*
    atom   := NAME | '0' | '1' | '(' expr ')'

Common subexpressions are shared structurally (one gate per distinct
normalized subterm), mirroring the thesis's recommendation to share logic.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

from .gates import GateKind
from .network import Network, NetworkBuilder

_TOKEN = re.compile(r"\s*([A-Za-z_][A-Za-z_0-9]*|[()~!'&*|+^]|0|1)")


class ParseError(ValueError):
    """Raised on malformed boolean expressions."""


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None:
            remainder = text[pos:].strip()
            if not remainder:
                break
            raise ParseError(f"cannot tokenize {remainder[:10]!r}")
        tokens.append(match.group(1))
        pos = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser emitting gates into a NetworkBuilder."""

    def __init__(self, builder: NetworkBuilder, tokens: List[str]) -> None:
        self.builder = builder
        self.tokens = tokens
        self.pos = 0
        self._cache: Dict[Tuple[str, Tuple[str, ...]], str] = {}
        self._counter = 0

    def peek(self) -> Optional[str]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def take(self) -> str:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of expression")
        self.pos += 1
        return token

    def emit(self, kind: GateKind, sources: Sequence[str]) -> str:
        key = (kind.value, tuple(sorted(sources)))
        if key in self._cache:
            return self._cache[key]
        self._counter += 1
        line = self.builder.add(f"e{len(self.builder._gates) + 1}_{kind.value}", kind, list(sources))
        self._cache[key] = line
        return line

    def parse_expr(self) -> str:
        parts = [self.parse_xor()]
        while self.peek() in ("|", "+"):
            self.take()
            parts.append(self.parse_xor())
        if len(parts) == 1:
            return parts[0]
        return self.emit(GateKind.OR, parts)

    def parse_xor(self) -> str:
        parts = [self.parse_term()]
        while self.peek() == "^":
            self.take()
            parts.append(self.parse_term())
        if len(parts) == 1:
            return parts[0]
        return self.emit(GateKind.XOR, parts)

    def parse_term(self) -> str:
        parts = [self.parse_factor()]
        while True:
            nxt = self.peek()
            if nxt in ("&", "*"):
                self.take()
                parts.append(self.parse_factor())
            elif nxt is not None and (nxt == "(" or nxt in ("0", "1") or nxt[0].isalpha() or nxt in ("~", "!")):
                parts.append(self.parse_factor())
            else:
                break
        if len(parts) == 1:
            return parts[0]
        return self.emit(GateKind.AND, parts)

    def parse_factor(self) -> str:
        token = self.peek()
        if token in ("~", "!"):
            self.take()
            inner = self.parse_factor()
            return self.emit(GateKind.NOT, [inner])
        line = self.parse_atom()
        while self.peek() == "'":
            self.take()
            line = self.emit(GateKind.NOT, [line])
        return line

    def parse_atom(self) -> str:
        token = self.take()
        if token == "(":
            inner = self.parse_expr()
            if self.take() != ")":
                raise ParseError("missing closing parenthesis")
            return inner
        if token == "0":
            return self.emit(GateKind.CONST0, [])
        if token == "1":
            return self.emit(GateKind.CONST1, [])
        if token[0].isalpha() or token[0] == "_":
            if not self.builder.has_line(token):
                self.builder.add_input(token)
            return token
        raise ParseError(f"unexpected token {token!r}")


def parse_expressions(
    expressions: Dict[str, str],
    inputs: Optional[Sequence[str]] = None,
    name: str = "expr",
) -> Network:
    """Build one network computing several named expressions.

    ``inputs`` fixes the primary-input order (important because truth-table
    bit positions follow it); variables encountered in the expressions but
    not listed are appended in order of first use.
    """
    builder = NetworkBuilder(list(inputs or []), name=name)
    parser: Optional[_Parser] = None
    outputs: List[str] = []
    for out_name, text in expressions.items():
        tokens = _tokenize(text)
        if parser is None:
            parser = _Parser(builder, tokens)
        else:
            parser.tokens = tokens
            parser.pos = 0
        line = parser.parse_expr()
        if parser.peek() is not None:
            raise ParseError(f"trailing tokens in {text!r}")
        builder.add(out_name, GateKind.BUF, [line])
        outputs.append(out_name)
    return builder.build(outputs)


def parse_expression(
    text: str,
    inputs: Optional[Sequence[str]] = None,
    output_name: str = "F",
    name: str = "expr",
) -> Network:
    """Build a single-output network from one expression."""
    return parse_expressions({output_name: text}, inputs=inputs, name=name)
