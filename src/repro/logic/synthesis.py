"""Two-level synthesis: Quine–McCluskey minimization and SOP netlists.

The thesis leans on two-level realizations twice:

* Section 3.3 (after Theorem 3.7): *two-level self-dual networks with
  monotonic gates are self-checking* — the result of Yamamoto et al.  So
  re-synthesizing a self-dualized function two-level (AND–OR plus an input
  inverter level, or NAND–NAND) is the guaranteed-safe SCAL construction.
* Chapter 4's cost comparisons (Table 4.1) need *minimal* gate counts for
  the combinational parts of the sequence-detector machines, which a
  sum-of-products minimizer provides.

The minimizer is a textbook Quine–McCluskey: prime implicant generation
by iterated adjacent-term merging, then cover selection by essential
primes plus a greedy completion (exact enough for the ≤10-variable
functions this reproduction synthesizes; the cover is verified equal to
the specification by construction in :func:`minimize`).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .gates import GateKind
from .network import Network, NetworkBuilder
from .truthtable import TruthTable


@dataclasses.dataclass(frozen=True)
class Implicant:
    """A product term: ``values`` on the cared bits, ``mask`` = cared bits.

    Bit *i* of ``mask`` is 1 when variable *i* appears in the term; then
    bit *i* of ``values`` gives its polarity (1 = positive literal).
    """

    values: int
    mask: int

    def covers(self, minterm: int) -> bool:
        return (minterm & self.mask) == (self.values & self.mask)

    def literals(self, n: int) -> Tuple[Tuple[int, int], ...]:
        """``(variable index, polarity)`` pairs of the term."""
        return tuple(
            (i, (self.values >> i) & 1) for i in range(n) if (self.mask >> i) & 1
        )

    def size(self, n: int) -> int:
        """Number of minterms covered, ``2**(n - #literals)``."""
        return 1 << (n - bin(self.mask).count("1"))

    def to_string(self, names: Sequence[str]) -> str:
        parts = []
        for i, name in enumerate(names):
            if (self.mask >> i) & 1:
                parts.append(name if (self.values >> i) & 1 else name + "'")
        return "".join(parts) if parts else "1"


def prime_implicants(
    minterms: Iterable[int], dont_cares: Iterable[int], n: int
) -> List[Implicant]:
    """All prime implicants of the on-set ∪ don't-care set."""
    care = set(minterms)
    terms: Set[Tuple[int, int]] = {(m, (1 << n) - 1) for m in care}
    terms |= {(m, (1 << n) - 1) for m in dont_cares}
    primes: Set[Tuple[int, int]] = set()
    while terms:
        merged: Set[Tuple[int, int]] = set()
        used: Set[Tuple[int, int]] = set()
        by_mask: Dict[int, List[int]] = {}
        for values, mask in terms:
            by_mask.setdefault(mask, []).append(values)
        for mask, group in by_mask.items():
            group_set = set(group)
            for values in group:
                for i in range(n):
                    bit = 1 << i
                    if not (mask & bit):
                        continue
                    partner = values ^ bit
                    if partner in group_set and (values & bit) == 0:
                        merged.add((values & ~bit, mask & ~bit))
                        used.add((values, mask))
                        used.add((partner, mask))
        primes |= terms - used
        terms = merged
    return [Implicant(v & m, m) for v, m in primes]


def select_cover(
    primes: List[Implicant], minterms: Iterable[int], n: int
) -> List[Implicant]:
    """Essential primes + greedy completion covering every on-set minterm."""
    remaining = set(minterms)
    cover: List[Implicant] = []
    if not remaining:
        return cover
    covering: Dict[int, List[Implicant]] = {
        m: [p for p in primes if p.covers(m)] for m in remaining
    }
    # Essential primes first.
    for m, ps in covering.items():
        if len(ps) == 1 and ps[0] not in cover:
            cover.append(ps[0])
    for p in cover:
        remaining -= {m for m in remaining if p.covers(m)}
    # Greedy completion: repeatedly take the prime covering the most
    # uncovered minterms (largest term breaks ties — fewer literals).
    while remaining:
        best = max(
            primes,
            key=lambda p: (sum(1 for m in remaining if p.covers(m)), p.size(n)),
        )
        gained = {m for m in remaining if best.covers(m)}
        if not gained:
            raise ValueError("prime implicants do not cover the on-set")
        cover.append(best)
        remaining -= gained
    return cover


def minimize(
    table: TruthTable, dont_cares: Optional[TruthTable] = None
) -> List[Implicant]:
    """A minimal-ish sum-of-products cover of ``table``.

    Postcondition (asserted): the cover evaluates exactly to ``table`` on
    all cared points.
    """
    n = table.n
    dc = set(dont_cares.minterms()) if dont_cares is not None else set()
    on = [m for m in table.minterms() if m not in dc]
    primes = prime_implicants(on, dc, n)
    cover = select_cover(primes, on, n)
    for m in range(1 << n):
        if m in dc:
            continue
        covered = any(p.covers(m) for p in cover)
        if covered != bool(table.value(m)):
            raise AssertionError("QM cover does not match specification")
    return cover


def cover_to_table(cover: Sequence[Implicant], n: int) -> TruthTable:
    """Tabulate a sum-of-products cover."""
    bits = 0
    for m in range(1 << n):
        if any(p.covers(m) for p in cover):
            bits |= 1 << m
    return TruthTable(n, bits)


def literal_count(cover: Sequence[Implicant], n: int) -> int:
    return sum(len(p.literals(n)) for p in cover)


def sop_network(
    table: TruthTable,
    names: Optional[Sequence[str]] = None,
    style: str = "and-or",
    output_name: str = "F",
    network_name: str = "sop",
    dont_cares: Optional[TruthTable] = None,
) -> Network:
    """Synthesize a two-level network (plus an input inverter level).

    ``style`` is ``"and-or"`` (AND product terms into one OR) or
    ``"nand-nand"``.  Both are monotone beyond the inverter level, so a
    self-dual ``table`` yields a network that is self-checking by the
    Yamamoto two-level result quoted after Theorem 3.7.
    """
    if style not in ("and-or", "nand-nand"):
        raise ValueError(f"unknown style {style!r}")
    n = table.n
    if names is None:
        names = tuple(table.names) if table.names else tuple(f"x{i}" for i in range(n))
    if len(names) != n:
        raise ValueError("names length must equal variable count")
    builder = NetworkBuilder(list(names), name=network_name)
    if table.is_zero():
        builder.add(output_name, GateKind.CONST0, [])
        return builder.build([output_name])
    if table.is_one():
        builder.add(output_name, GateKind.CONST1, [])
        return builder.build([output_name])
    cover = minimize(table, dont_cares)
    inverted: Dict[str, str] = {}

    def literal_line(var: int, polarity: int) -> str:
        name = names[var]
        if polarity:
            return name
        if name not in inverted:
            inverted[name] = builder.add(f"{name}_n", GateKind.NOT, [name])
        return inverted[name]

    first_kind = GateKind.AND if style == "and-or" else GateKind.NAND
    second_kind = GateKind.OR if style == "and-or" else GateKind.NAND
    product_lines: List[str] = []
    for k, imp in enumerate(cover):
        literals = imp.literals(n)
        if not literals:
            # Tautological product: the whole function is 1 (handled above)
            # unless combined with others; realize as CONST1 feed.
            line = builder.add(f"p{k}", GateKind.CONST1, [])
        else:
            sources = [literal_line(v, pol) for v, pol in literals]
            if len(sources) == 1 and style == "and-or":
                line = sources[0]
            else:
                line = builder.add(f"p{k}", first_kind, sources)
        product_lines.append(line)
    if len(product_lines) == 1 and style == "and-or":
        builder.add(output_name, GateKind.BUF, product_lines)
    else:
        builder.add(output_name, second_kind, product_lines)
    return builder.build([output_name])


def multi_output_sop(
    tables: Dict[str, TruthTable],
    names: Sequence[str],
    style: str = "and-or",
    network_name: str = "sop",
    share_products: bool = True,
) -> Network:
    """Synthesize several outputs over shared inputs.

    With ``share_products=True`` identical product terms are realized once
    and fanned out — the thesis's design recommendation 3 after Algorithm
    3.1 ("share logic between as many outputs as possible") — at the price
    that shared lines must then pass the relaxed Corollary 3.2 check.
    """
    if style not in ("and-or", "nand-nand"):
        raise ValueError(f"unknown style {style!r}")
    builder = NetworkBuilder(list(names), name=network_name)
    inverted: Dict[str, str] = {}
    product_cache: Dict[Tuple[Tuple[int, int], ...], str] = {}
    n = len(names)
    counter = [0]

    def literal_line(var: int, polarity: int) -> str:
        name = names[var]
        if polarity:
            return name
        if name not in inverted:
            inverted[name] = builder.add(f"{name}_n", GateKind.NOT, [name])
        return inverted[name]

    first_kind = GateKind.AND if style == "and-or" else GateKind.NAND
    second_kind = GateKind.OR if style == "and-or" else GateKind.NAND
    outputs: List[str] = []
    for out_name, table in tables.items():
        if table.n != n:
            raise ValueError(f"table for {out_name!r} has wrong variable count")
        if table.is_zero():
            builder.add(out_name, GateKind.CONST0, [])
            outputs.append(out_name)
            continue
        if table.is_one():
            builder.add(out_name, GateKind.CONST1, [])
            outputs.append(out_name)
            continue
        product_lines = []
        for imp in minimize(table):
            key = imp.literals(n)
            if share_products and key in product_cache:
                product_lines.append(product_cache[key])
                continue
            sources = [literal_line(v, pol) for v, pol in key]
            if len(sources) == 1 and style == "and-or":
                line = sources[0]
            else:
                counter[0] += 1
                line = builder.add(f"p{counter[0]}", first_kind, sources)
            if share_products:
                product_cache[key] = line
            product_lines.append(line)
        if len(product_lines) == 1 and style == "and-or":
            builder.add(out_name, GateKind.BUF, product_lines)
        else:
            builder.add(out_name, second_kind, product_lines)
        outputs.append(out_name)
    return builder.build(outputs)
