"""Netlist rendering: human-readable listings and Graphviz DOT export.

Reproducing a 1977 paper means redrawing its figures; these helpers turn
any :class:`Network` into (a) an indented text listing in topological
order with fanout annotations — the form the worked examples print — and
(b) DOT source for rendering with Graphviz, with optional highlights for
the lines an analysis flags (the Figure 3.4 walkthrough marks lines 9
and 20).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

from .gates import GateKind
from .network import Network

_DOT_SHAPES = {
    GateKind.AND: "house",
    GateKind.NAND: "invhouse",
    GateKind.OR: "ellipse",
    GateKind.NOR: "ellipse",
    GateKind.NOT: "invtriangle",
    GateKind.BUF: "triangle",
    GateKind.XOR: "diamond",
    GateKind.XNOR: "diamond",
    GateKind.MAJ: "hexagon",
    GateKind.MIN: "hexagon",
    GateKind.CONST0: "plaintext",
    GateKind.CONST1: "plaintext",
}


def render_listing(network: Network, annotations: Optional[Mapping[str, str]] = None) -> str:
    """A topological text listing with fanout counts.

    ``annotations`` attaches a note to chosen lines (e.g. the condition
    that admitted each line in an Algorithm 3.1 run).
    """
    annotations = dict(annotations or {})
    rows = [f"network {network.name}"]
    rows.append(f"  inputs:  {', '.join(network.inputs)}")
    rows.append(f"  outputs: {', '.join(network.outputs)}")
    for gate in network.gates:
        fan = network.fanout_count(gate.name)
        note = f"   # {annotations[gate.name]}" if gate.name in annotations else ""
        args = ", ".join(gate.inputs)
        rows.append(
            f"  {gate.name:12s} = {gate.kind.value.upper():5s}({args})"
            f"  [fanout {fan}]{note}"
        )
    return "\n".join(rows)


def render_dot(
    network: Network,
    highlight: Sequence[str] = (),
    title: Optional[str] = None,
) -> str:
    """Graphviz DOT source for the netlist.

    ``highlight`` lines are drawn red — hand it an analysis's failing
    lines to reproduce the thesis's marked figures.
    """
    marked = set(highlight)
    lines = ["digraph network {", "  rankdir=LR;"]
    if title or network.name:
        lines.append(f'  label="{title or network.name}";')
    for inp in network.inputs:
        color = ' color="red"' if inp in marked else ""
        lines.append(f'  "{inp}" [shape=circle{color}];')
    for gate in network.gates:
        shape = _DOT_SHAPES.get(gate.kind, "box")
        color = ' color="red" fontcolor="red"' if gate.name in marked else ""
        label = f"{gate.name}\\n{gate.kind.value.upper()}"
        lines.append(f'  "{gate.name}" [shape={shape} label="{label}"{color}];')
        for src in gate.inputs:
            edge_color = ' [color="red"]' if src in marked else ""
            lines.append(f'  "{src}" -> "{gate.name}"{edge_color};')
    for out in network.outputs:
        lines.append(f'  "out_{out}" [shape=doublecircle label="{out}"];')
        lines.append(f'  "{out}" -> "out_{out}";')
    lines.append("}")
    return "\n".join(lines)


def annotate_with_analysis(network: Network, analysis) -> Dict[str, str]:
    """Annotations from a :class:`~repro.core.analysis.NetworkAnalysis`:
    which condition admitted each line, or FAILS for the violators."""
    notes: Dict[str, str] = {}
    for line, verdict in analysis.lines.items():
        if not verdict.admitted_by:
            continue
        if not verdict.self_checking:
            notes[line] = "FAILS Algorithm 3.1"
            continue
        conditions = sorted(
            {str(c) for c in verdict.admitted_by.values() if c is not None}
        )
        notes[line] = "condition " + "/".join(conditions)
    return notes
