"""Gate-level logic substrate for the SCAL reproduction.

Everything the thesis's analysis runs on: gates, netlists, truth tables,
fault models, exhaustive fault-injected evaluation, self-duality tools,
structural path analysis, two-level synthesis, and an expression parser.
"""

from .benchfmt import (
    BenchFormatError,
    load_bench,
    parse_bench,
    save_bench,
    write_bench,
)
from .hazards import HazardReport, analyze_hazards, hazard_free_cover, static_1_hazards
from .render import annotate_with_analysis, render_dot, render_listing
from .evaluate import (
    evaluate_with_fault,
    functionally_equivalent,
    line_tables,
    network_function,
    output_tables,
    outputs_with_fault,
)
from .faults import (
    Fault,
    MultipleFault,
    PinStuckAt,
    StuckAt,
    enumerate_pin_faults,
    enumerate_single_faults,
    enumerate_stem_faults,
)
from .gates import GateKind, is_standard, is_unate
from .network import Gate, Network, NetworkBuilder, NetworkError, merge_disjoint
from .parse import parse_expression, parse_expressions
from .paths import condition_b_holds, condition_c_holds, cone_subnetwork
from .selfdual import (
    PERIOD_CLOCK,
    is_alternating_network,
    network_is_self_dual,
    self_dualize_network_xor,
    self_dualize_table,
)
from .synthesis import Implicant, minimize, multi_output_sop, sop_network
from .truthtable import TruthTable

__all__ = [
    "BenchFormatError",
    "HazardReport",
    "analyze_hazards",
    "hazard_free_cover",
    "static_1_hazards",
    "Fault",
    "Gate",
    "GateKind",
    "Implicant",
    "MultipleFault",
    "Network",
    "NetworkBuilder",
    "NetworkError",
    "PERIOD_CLOCK",
    "PinStuckAt",
    "StuckAt",
    "TruthTable",
    "condition_b_holds",
    "condition_c_holds",
    "cone_subnetwork",
    "enumerate_pin_faults",
    "enumerate_single_faults",
    "enumerate_stem_faults",
    "evaluate_with_fault",
    "functionally_equivalent",
    "is_alternating_network",
    "is_standard",
    "is_unate",
    "line_tables",
    "merge_disjoint",
    "minimize",
    "multi_output_sop",
    "network_function",
    "network_is_self_dual",
    "output_tables",
    "outputs_with_fault",
    "annotate_with_analysis",
    "load_bench",
    "parse_bench",
    "render_dot",
    "render_listing",
    "save_bench",
    "write_bench",
    "parse_expression",
    "parse_expressions",
    "self_dualize_network_xor",
    "self_dualize_table",
    "sop_network",
]
