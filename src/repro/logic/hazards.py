"""Static hazard analysis for two-level networks.

Section 3.2's redundancy discussion carries a caveat: "The redundancies
will also be assumed to be unintentional, i.e., not intended for such
purposes as protecting from sequential logic hazard conditions."  This
module supplies the other side of that trade so users can see it
concretely:

* a **static-1 hazard** exists in an AND–OR network when two adjacent
  on-set points (Hamming distance 1) are covered by *different* products
  only — during the input transition both products can momentarily be 0
  and the output glitches;
* the classical fix adds the **consensus term** bridging the pair — a
  term that is logically redundant, and whose s-a-0 fault is therefore
  untestable (exactly the one-direction redundancy of Theorem 3.4).

So hazard-freedom and SCAL self-testing pull in opposite directions;
:func:`hazard_free_cover` and :func:`analyze_hazards` put numbers on the
conflict, and the E-HAZARD bench reports it as an ablation.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

from .synthesis import Implicant, cover_to_table, minimize, prime_implicants
from .truthtable import TruthTable


@dataclasses.dataclass(frozen=True)
class Hazard:
    """One static-1 hazard: an adjacent on-set pair split across products."""

    point_a: int
    point_b: int
    variable: int  # the toggling variable

    def describe(self, names: Sequence[str] = ()) -> str:
        var = names[self.variable] if names else f"x{self.variable}"
        return f"static-1 hazard on {var} between points {self.point_a} and {self.point_b}"


def static_1_hazards(
    cover: Sequence[Implicant], table: TruthTable
) -> List[Hazard]:
    """All static-1 hazards of an AND–OR realization of ``cover``."""
    hazards: List[Hazard] = []
    n = table.n
    for point in range(1 << n):
        if not table.value(point):
            continue
        for var in range(n):
            mate = point ^ (1 << var)
            if mate < point or not table.value(mate):
                continue
            # Is some single product covering both endpoints?
            if any(p.covers(point) and p.covers(mate) for p in cover):
                continue
            hazards.append(Hazard(point, mate, var))
    return hazards


def hazard_free_cover(table: TruthTable) -> List[Implicant]:
    """A static-1-hazard-free AND–OR cover.

    Start from a minimal cover and add prime implicants (consensus-style
    terms) until every adjacent on-set pair shares a product.  Every
    added term is logically redundant — the cost the thesis's
    irredundancy assumption rules out.
    """
    cover = list(minimize(table))
    primes = prime_implicants(table.minterms(), [], table.n)
    remaining = static_1_hazards(cover, table)
    guard = 0
    while remaining and guard < 4 * len(primes) + 8:
        guard += 1
        hazard = remaining[0]
        bridging = [
            p
            for p in primes
            if p.covers(hazard.point_a) and p.covers(hazard.point_b)
        ]
        if not bridging:
            # Should not happen: adjacent on-set points always share a
            # prime (their merge is an implicant contained in a prime).
            break
        best = max(bridging, key=lambda p: p.size(table.n))
        cover.append(best)
        remaining = static_1_hazards(cover, table)
    return cover


@dataclasses.dataclass(frozen=True)
class HazardReport:
    """The hazard-vs-testability trade-off for one function."""

    minimal_products: int
    minimal_hazards: int
    hazard_free_products: int
    redundant_terms_added: int

    @property
    def testability_cost(self) -> int:
        """Each added consensus term is a line whose s-a-0 is untestable
        (Theorem 3.4's one-direction redundancy)."""
        return self.redundant_terms_added


def analyze_hazards(table: TruthTable) -> HazardReport:
    """Compare the minimal cover with the hazard-free one."""
    minimal = minimize(table)
    hazards = static_1_hazards(minimal, table)
    free = hazard_free_cover(table)
    assert cover_to_table(free, table.n).bits == table.bits
    return HazardReport(
        minimal_products=len(minimal),
        minimal_hazards=len(hazards),
        hazard_free_products=len(free),
        redundant_terms_added=len(free) - len(minimal),
    )


def consensus_demo_table() -> TruthTable:
    """The textbook case: ``F = a·b ∨ ā·c`` has a static-1 hazard on
    ``a`` at b = c = 1; the consensus term ``b·c`` fixes it and is the
    classic untestable-s-a-0 redundancy."""
    return TruthTable.from_function(
        lambda a, b, c: (a & b) | ((1 - a) & c), 3, ("a", "b", "c")
    )
