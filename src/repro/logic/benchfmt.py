"""ISCAS '85 ``.bench`` netlist format: parser and writer.

The de-facto interchange format for gate-level benchmark circuits::

    # comment
    INPUT(a)
    INPUT(b)
    OUTPUT(f)
    n1 = NAND(a, b)
    f = NOT(n1)

Supported gate names: AND, OR, NAND, NOR, NOT, XOR, XNOR, BUF/BUFF, and
the extensions MAJ and MIN for this library's threshold modules.  The
writer emits files the parser round-trips, so SCAL analyses can be run
on circuits exchanged with other tools.
"""

from __future__ import annotations

import re
from typing import Dict, List

from .gates import GateKind
from .network import Gate, Network

_GATE_NAMES: Dict[str, GateKind] = {
    "AND": GateKind.AND,
    "OR": GateKind.OR,
    "NAND": GateKind.NAND,
    "NOR": GateKind.NOR,
    "NOT": GateKind.NOT,
    "INV": GateKind.NOT,
    "XOR": GateKind.XOR,
    "XNOR": GateKind.XNOR,
    "BUF": GateKind.BUF,
    "BUFF": GateKind.BUF,
    "MAJ": GateKind.MAJ,
    "MIN": GateKind.MIN,
    "CONST0": GateKind.CONST0,
    "CONST1": GateKind.CONST1,
}

_KIND_NAMES: Dict[GateKind, str] = {
    kind: name
    for name, kind in _GATE_NAMES.items()
    if name not in ("INV", "BUFF")
}

_IO_RE = re.compile(r"^(INPUT|OUTPUT)\s*\(\s*([^\s()]+)\s*\)$")
_GATE_RE = re.compile(r"^([^\s=]+)\s*=\s*([A-Za-z01]+)\s*\(([^()]*)\)$")


class BenchFormatError(ValueError):
    """Raised on malformed .bench text."""


def parse_bench(text: str, name: str = "bench") -> Network:
    """Parse ``.bench`` text into a :class:`Network`."""
    inputs: List[str] = []
    outputs: List[str] = []
    gates: List[Gate] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        io_match = _IO_RE.match(line)
        if io_match:
            keyword, signal = io_match.groups()
            if keyword == "INPUT":
                inputs.append(signal)
            else:
                outputs.append(signal)
            continue
        gate_match = _GATE_RE.match(line)
        if gate_match is None:
            raise BenchFormatError(f"line {lineno}: cannot parse {raw!r}")
        target, gate_name, arg_text = gate_match.groups()
        kind = _GATE_NAMES.get(gate_name.upper())
        if kind is None:
            raise BenchFormatError(
                f"line {lineno}: unknown gate type {gate_name!r}"
            )
        args = tuple(a.strip() for a in arg_text.split(",") if a.strip())
        gates.append(Gate(target, kind, args))
    if not outputs:
        raise BenchFormatError("no OUTPUT declarations")
    return Network(inputs, gates, outputs, name=name)


def write_bench(network: Network, header: str = "") -> str:
    """Serialize a network to ``.bench`` text (parser round-trips it)."""
    lines: List[str] = []
    if header:
        for row in header.splitlines():
            lines.append(f"# {row}")
    lines.append(f"# {len(network.inputs)} inputs, "
                 f"{len(network.outputs)} outputs, "
                 f"{network.gate_count()} gates")
    for inp in network.inputs:
        lines.append(f"INPUT({inp})")
    for out in network.outputs:
        lines.append(f"OUTPUT({out})")
    lines.append("")
    for gate in network.gates:
        kind_name = _KIND_NAMES[gate.kind]
        args = ", ".join(gate.inputs)
        lines.append(f"{gate.name} = {kind_name}({args})")
    return "\n".join(lines) + "\n"


def load_bench(path: str, name: str = None) -> Network:
    """Parse a ``.bench`` file from disk."""
    with open(path) as handle:
        text = handle.read()
    if name is None:
        name = path.rsplit("/", 1)[-1].rsplit(".", 1)[0]
    return parse_bench(text, name=name)


def save_bench(network: Network, path: str, header: str = "") -> None:
    with open(path, "w") as handle:
        handle.write(write_bench(network, header=header))
