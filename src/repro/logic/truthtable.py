"""Integer-bitmask truth tables.

The self-checking conditions of Chapter 3 are universally quantified
boolean identities ("for all X: F(X,G(X)) & [...] = 0", Corollary 3.1).
The natural executable form is truth-table algebra: a function of *n*
variables is a ``2**n``-bit integer where bit ``i`` holds the value at the
input point whose variable *j* equals bit *j* of ``i``.  Python's
arbitrary-precision integers make the pointwise ``&``, ``|``, ``^``, ``~``
of the thesis's equations single machine operations for all ``2**n``
points at once.

The one SCAL-specific operation is :meth:`TruthTable.co_reflect`: the
thesis constantly pairs the value at ``X`` with the value at the
complemented input ``X̄``.  At the bitmask level ``X̄`` is the index
``i ^ (2**n - 1)``, so ``co_reflect`` permutes the bits of the table by
complementing their indices.  With it, e.g. the self-dual test
``F(X̄) = ¬F(X)`` becomes ``tt.co_reflect() == ~tt``.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

MAX_COMPLEMENT_CACHE_VARS = 16

_reflect_cache: Dict[int, Tuple[int, ...]] = {}


def _complement_permutation(n: int) -> Tuple[int, ...]:
    """``perm[i] = i ^ (2**n - 1)`` with caching for small n."""
    if n in _reflect_cache:
        return _reflect_cache[n]
    mask = (1 << n) - 1
    perm = tuple(i ^ mask for i in range(1 << n))
    if n <= MAX_COMPLEMENT_CACHE_VARS:
        _reflect_cache[n] = perm
    return perm


@dataclasses.dataclass(frozen=True)
class TruthTable:
    """A boolean function of ``n`` named variables as a ``2**n``-bit mask."""

    n: int
    bits: int
    names: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.names and len(self.names) != self.n:
            raise ValueError("names length must equal variable count")
        size = 1 << self.n
        if self.bits < 0 or self.bits >> size:
            raise ValueError("bits outside the 2**n-entry table")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def variable(index: int, n: int, names: Sequence[str] = ()) -> "TruthTable":
        """The projection onto variable ``index`` (bit ``index`` of the
        input point)."""
        if not 0 <= index < n:
            raise ValueError("variable index out of range")
        bits = 0
        for i in range(1 << n):
            if (i >> index) & 1:
                bits |= 1 << i
        return TruthTable(n, bits, tuple(names))

    @staticmethod
    def constant(value: int, n: int, names: Sequence[str] = ()) -> "TruthTable":
        full = (1 << (1 << n)) - 1
        return TruthTable(n, full if value else 0, tuple(names))

    @staticmethod
    def from_function(
        fn: Callable[..., int], n: int, names: Sequence[str] = ()
    ) -> "TruthTable":
        """Tabulate a Python predicate ``fn(x0, ..., x_{n-1}) -> 0/1``."""
        bits = 0
        for i in range(1 << n):
            point = tuple((i >> j) & 1 for j in range(n))
            if fn(*point):
                bits |= 1 << i
        return TruthTable(n, bits, tuple(names))

    @staticmethod
    def from_values(values: Sequence[int], names: Sequence[str] = ()) -> "TruthTable":
        """Tabulate from an explicit output list indexed by input point."""
        size = len(values)
        n = size.bit_length() - 1
        if 1 << n != size:
            raise ValueError("values length must be a power of two")
        bits = 0
        for i, v in enumerate(values):
            if v:
                bits |= 1 << i
        return TruthTable(n, bits, tuple(names))

    @staticmethod
    def from_minterms(
        minterms: Iterable[int], n: int, names: Sequence[str] = ()
    ) -> "TruthTable":
        bits = 0
        for m in minterms:
            if not 0 <= m < (1 << n):
                raise ValueError(f"minterm {m} out of range for {n} variables")
            bits |= 1 << m
        return TruthTable(n, bits, tuple(names))

    # ------------------------------------------------------------------
    # algebra
    # ------------------------------------------------------------------
    @property
    def full(self) -> int:
        return (1 << (1 << self.n)) - 1

    def _check_compatible(self, other: "TruthTable") -> None:
        if self.n != other.n:
            raise ValueError("truth tables over different variable counts")

    def __and__(self, other: "TruthTable") -> "TruthTable":
        self._check_compatible(other)
        return TruthTable(self.n, self.bits & other.bits, self.names)

    def __or__(self, other: "TruthTable") -> "TruthTable":
        self._check_compatible(other)
        return TruthTable(self.n, self.bits | other.bits, self.names)

    def __xor__(self, other: "TruthTable") -> "TruthTable":
        self._check_compatible(other)
        return TruthTable(self.n, self.bits ^ other.bits, self.names)

    def __invert__(self) -> "TruthTable":
        return TruthTable(self.n, ~self.bits & self.full, self.names)

    def is_zero(self) -> bool:
        return self.bits == 0

    def is_one(self) -> bool:
        return self.bits == self.full

    def value(self, point: int) -> int:
        """The function value at input point ``point``."""
        return (self.bits >> point) & 1

    def minterms(self) -> List[int]:
        """Input points where the function is 1."""
        return [i for i in range(1 << self.n) if (self.bits >> i) & 1]

    def count_ones(self) -> int:
        return bin(self.bits).count("1")

    def points(self) -> Iterator[Tuple[int, int]]:
        """Iterate ``(point, value)`` over the whole table."""
        for i in range(1 << self.n):
            yield i, (self.bits >> i) & 1

    # ------------------------------------------------------------------
    # SCAL-specific operations
    # ------------------------------------------------------------------
    def co_reflect(self) -> "TruthTable":
        """The table ``G(X) = F(X̄)`` — the *second time period* view.

        SCAL applies the complemented input in the second period; every
        chapter-3 equation that mentions ``F(X̄, ...)`` is, in bitmask
        form, a ``co_reflect`` of the corresponding first-period table.
        """
        perm = _complement_permutation(self.n)
        bits = 0
        src = self.bits
        for i in range(1 << self.n):
            if (src >> i) & 1:
                bits |= 1 << perm[i]
        return TruthTable(self.n, bits, self.names)

    def dual(self) -> "TruthTable":
        """The dual function ``F^d(X) = ¬F(X̄)``."""
        return ~self.co_reflect()

    def is_self_dual(self) -> bool:
        """Definition 2.7: ``F(X̄) = ¬F(X)`` for every ``X``."""
        return self.co_reflect().bits == (~self.bits & self.full)

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------
    def cofactor(self, index: int, value: int) -> "TruthTable":
        """Shannon cofactor: substitute ``value`` for variable ``index``,
        replicated back over the full space so tables stay composable."""
        if not 0 <= index < self.n:
            raise ValueError("variable index out of range")
        bits = 0
        for i in range(1 << self.n):
            j = (i & ~(1 << index)) | (value << index)
            if (self.bits >> j) & 1:
                bits |= 1 << i
        return TruthTable(self.n, bits, self.names)

    def depends_on(self, index: int) -> bool:
        return self.cofactor(index, 0).bits != self.cofactor(index, 1).bits

    def support(self) -> Tuple[int, ...]:
        return tuple(i for i in range(self.n) if self.depends_on(i))

    def unateness(self, index: int) -> Optional[int]:
        """``+1`` if positive unate in variable ``index``, ``-1`` if
        negative unate, ``0`` if independent, ``None`` if binate."""
        lo, hi = self.cofactor(index, 0), self.cofactor(index, 1)
        if lo.bits == hi.bits:
            return 0
        rising_ok = (lo.bits & ~hi.bits) == 0  # f(x=0) <= f(x=1) pointwise
        falling_ok = (hi.bits & ~lo.bits) == 0
        if rising_ok:
            return 1
        if falling_ok:
            return -1
        return None

    def restrict_names(self, names: Sequence[str]) -> "TruthTable":
        return TruthTable(self.n, self.bits, tuple(names))

    def __str__(self) -> str:
        rows = []
        for i in range(1 << self.n):
            point = "".join(str((i >> j) & 1) for j in range(self.n))
            rows.append(f"{point}:{(self.bits >> i) & 1}")
        return " ".join(rows)


def all_functions(n: int) -> Iterator[TruthTable]:
    """Every boolean function of ``n`` variables (use only for tiny n)."""
    for bits in range(1 << (1 << n)):
        yield TruthTable(n, bits)


def all_points(n: int) -> Iterator[Tuple[int, ...]]:
    """Every 0/1 assignment of ``n`` variables, little-endian order."""
    for point in itertools.product((0, 1), repeat=n):
        yield point[::-1]


def assignment_of_point(point: int, names: Sequence[str]) -> Dict[str, int]:
    """Decode a table index into a ``{name: value}`` assignment."""
    return {name: (point >> i) & 1 for i, name in enumerate(names)}


def point_of_assignment(assignment: Dict[str, int], names: Sequence[str]) -> int:
    """Encode a ``{name: value}`` assignment into a table index."""
    point = 0
    for i, name in enumerate(names):
        if assignment[name]:
            point |= 1 << i
    return point
