"""Hardcore elements: the clock-disable module and Theorem 5.2
(Section 5.5).

A self-checking system must *act* on its checker: stop the clock once the
dual-rail pair (f, g) goes noncode, freezing the state where the failure
occurred.  Table 5.2 specifies the module: ``clock_out = clock_in · (f ⊕ g)``
(Figure 5.5a).  The module itself is **hardcore** — assumed fault-free —
because Theorem 5.2 shows no network of normal gates can implement a
*self-checking* clock disable: meeting the freeze requirements forces a
hidden fault state that normal operation can never exercise, so some
stuck fault is untestable.  The thesis's two mitigations are modelled
here: replication (Figure 5.5b — hardcore failure probability ``p^n``)
and latching the checker outputs (Figure 5.7).

The theorem is made executable: :func:`check_candidate` drives any
candidate module through the Figure 5.6 transition sequences and reports
either a fault-security violation (the output pulses when it must hold)
or, for candidates that pass, the untestable internal stuck faults that
normal operation can never reveal.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from ..logic.gates import GateKind
from ..logic.network import Network, NetworkBuilder

# ----------------------------------------------------------------------
# Table 5.2 / Figure 5.5a
# ----------------------------------------------------------------------


def clock_disable(clock_in: int, f: int, g: int) -> int:
    """Table 5.2: pass the clock only while the code pair is valid."""
    return (int(clock_in) & 1) & ((int(f) & 1) ^ (int(g) & 1))


def clock_disable_truth_table() -> List[Tuple[int, int, int, int]]:
    """All eight rows of Table 5.2 as (clock, f, g, clock_out)."""
    rows = []
    for clock, f, g in itertools.product((0, 1), repeat=3):
        rows.append((clock, f, g, clock_disable(clock, f, g)))
    return rows


def clock_disable_network() -> Network:
    """Gate-level Figure 5.5a module (one XOR, one AND).

    The XOR output stuck-at 1 is the undetectable fault the thesis points
    out: the module then passes the clock forever and "there will be no
    way of knowing when another fault occurs".
    """
    builder = NetworkBuilder(["clock", "f", "g"], name="clock_disable")
    builder.add("fg", GateKind.XOR, ["f", "g"])
    builder.add("clock_out", GateKind.AND, ["clock", "fg"])
    return builder.build(["clock_out"])


def replicated_clock_disable(clock_in: int, codes: Sequence[Tuple[int, int]]) -> int:
    """Figure 5.5b: modules in series, each gating on its own code pair."""
    clock = clock_in
    for f, g in codes:
        clock = clock_disable(clock, f, g)
    return clock


def replication_failure_probability(p: float, n: int) -> float:
    """Probability all ``n`` replicated hardcore modules fail: ``p**n``
    ("It can be made arbitrarily small for p < 1")."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be a probability")
    if n < 1:
        raise ValueError("need at least one module")
    return p ** n


# ----------------------------------------------------------------------
# Figure 5.7: latching checker outputs
# ----------------------------------------------------------------------


class LatchingCheckerOutput:
    """Feed the checker outputs back so a noncode word, once signalled,
    persists (Figure 5.7).  The status is displayed rather than used to
    stop the clock — the thesis's fallback when no self-checking
    hardcore exists."""

    def __init__(self) -> None:
        self.f = 1
        self.g = 0

    def step(self, f_in: int, g_in: int) -> Tuple[int, int]:
        if self.f == self.g:
            return self.f, self.g  # latched noncode state persists
        self.f, self.g = int(f_in) & 1, int(g_in) & 1
        return self.f, self.g

    @property
    def latched_fault(self) -> bool:
        return self.f == self.g


# ----------------------------------------------------------------------
# Theorem 5.2: executable impossibility harness
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class CandidateVerdict:
    """What the Theorem 5.2 harness found for one candidate module."""

    name: str
    meets_requirements: bool
    violation: Optional[str]
    untestable_faults: Tuple[str, ...]

    @property
    def is_self_checking_hardcore(self) -> bool:
        """True would contradict Theorem 5.2 — the bench asserts no
        candidate ever achieves it."""
        return self.meets_requirements and not self.untestable_faults


class HardcoreCandidate:
    """Interface for candidate clock-disable implementations.

    A candidate is a (possibly sequential) module over standard gates and
    flip-flops with inputs (clock, f, g) and one output.  Subclasses
    provide ``fault_sites`` and honour the ``fault`` constructor argument
    so the harness can probe testability.
    """

    name = "candidate"
    fault_sites: Tuple[str, ...] = ()

    def __init__(self, fault: Optional[Tuple[str, int]] = None) -> None:
        self.fault = fault

    def reset(self) -> None:  # pragma: no cover - interface default
        pass

    def step(self, clock: int, f: int, g: int) -> int:
        raise NotImplementedError

    def _apply(self, site: str, value: int) -> int:
        if self.fault is not None and self.fault[0] == site:
            return self.fault[1]
        return value


class CombinationalDisable(HardcoreCandidate):
    """Figure 5.5a taken literally: ``out = clock · (f ⊕ g)``."""

    name = "combinational c&(f^g)"
    fault_sites = ("xor_out", "and_out")

    def step(self, clock: int, f: int, g: int) -> int:
        fg = self._apply("xor_out", f ^ g)
        return self._apply("and_out", clock & fg)


class LatchedErrorDisable(HardcoreCandidate):
    """A stateful candidate: remember any noncode observation in an error
    latch and kill the clock forever after."""

    name = "latched-error disable"
    fault_sites = ("err_latch", "xor_out", "and_out")

    def __init__(self, fault: Optional[Tuple[str, int]] = None) -> None:
        super().__init__(fault)
        self.err = 0

    def reset(self) -> None:
        self.err = 0

    def step(self, clock: int, f: int, g: int) -> int:
        fg = self._apply("xor_out", f ^ g)
        if fg == 0:
            self.err = 1
        err = self._apply("err_latch", self.err)
        return self._apply("and_out", clock & (1 - err))


class HoldLastDisable(HardcoreCandidate):
    """A candidate that freezes its output at the last value whenever the
    code goes invalid (output-hold latch)."""

    name = "hold-last disable"
    fault_sites = ("hold_latch", "xor_out")

    def __init__(self, fault: Optional[Tuple[str, int]] = None) -> None:
        super().__init__(fault)
        self.held = 0

    def reset(self) -> None:
        self.held = 0

    def step(self, clock: int, f: int, g: int) -> int:
        fg = self._apply("xor_out", f ^ g)
        if fg:
            self.held = clock
        return self._apply("hold_latch", self.held)


DEFAULT_CANDIDATES: Tuple[Callable[..., HardcoreCandidate], ...] = (
    CombinationalDisable,
    LatchedErrorDisable,
    HoldLastDisable,
)


def _requirement_sequences() -> List[Tuple[str, List[Tuple[int, int, int]], List[Optional[int]]]]:
    """The Figure 5.6 drive sequences with their required outputs.

    Each entry: (description, (clock, f, g) steps, required output per
    step or None when unconstrained).  The three requirements from the
    proof of Theorem 5.2:

    * R1 — noncode at clock rise: from (0,1,1) to (1,1,1) the output must
      stay 0 (a pulse would trigger an operation on bad data);
    * R2 — f fails mid-cycle: from (1,1,0) to (1,1,1) the output must
      stay 1 (a falling edge would glitch the system);
    * R3 — after R2, the clock falls: (1,1,1) → (0,1,1) with the output
      still held at 1.
    """
    return [
        (
            "R1: noncode seen before clock rise -> output holds 0",
            [(0, 1, 0), (0, 1, 1), (1, 1, 1)],
            [None, 0, 0],
        ),
        (
            "R2/R3: code fails while clock high -> output holds 1",
            [(0, 1, 0), (1, 1, 0), (1, 1, 1), (0, 1, 1)],
            [None, 1, 1, 1],
        ),
    ]


#: Normal-operation sequences (Figure 5.6b): the clock toggles while the
#: code pair stays valid, in both polarities.
NORMAL_SEQUENCES: Tuple[Tuple[Tuple[int, int, int], ...], ...] = (
    ((0, 1, 0), (1, 1, 0), (0, 1, 0), (1, 1, 0)),
    ((0, 0, 1), (1, 0, 1), (0, 0, 1), (1, 0, 1)),
    ((0, 1, 0), (0, 0, 1), (1, 0, 1), (0, 0, 1), (0, 1, 0), (1, 1, 0)),
)


def meets_requirements(candidate: HardcoreCandidate) -> Optional[str]:
    """None when all Figure 5.6 requirements hold; else the violation."""
    for description, steps, required in _requirement_sequences():
        candidate.reset()
        for (clock, f, g), want in zip(steps, required):
            out = candidate.step(clock, f, g)
            if want is not None and out != want:
                return (
                    f"{description}: at input {(clock, f, g)} output was "
                    f"{out}, required {want}"
                )
    return None


def untestable_faults(
    factory: Callable[..., HardcoreCandidate],
    max_extra_random: int = 0,
) -> Tuple[str, ...]:
    """Internal stuck faults no normal-operation sequence can reveal.

    Drives the golden and each faulty instance through every normal
    sequence (Figure 5.6b); a fault whose outputs always match the golden
    run is untestable — the hidden fault state of Theorem 5.2's proof.
    """
    golden = factory()
    untestable: List[str] = []
    for site in golden.fault_sites:
        for value in (0, 1):
            if _fault_is_silent(factory, (site, value)):
                untestable.append(f"{site} s/{value}")
    return tuple(untestable)


def _fault_is_silent(
    factory: Callable[..., HardcoreCandidate], fault: Tuple[str, int]
) -> bool:
    for sequence in NORMAL_SEQUENCES:
        good = factory()
        bad = factory(fault=fault)
        good.reset()
        bad.reset()
        for clock, f, g in sequence:
            if good.step(clock, f, g) != bad.step(clock, f, g):
                return False
    return True


def check_candidate(factory: Callable[..., HardcoreCandidate]) -> CandidateVerdict:
    """Run the full Theorem 5.2 examination of one candidate."""
    instance = factory()
    violation = meets_requirements(instance)
    untestable: Tuple[str, ...] = ()
    if violation is None:
        untestable = untestable_faults(factory)
    return CandidateVerdict(
        name=instance.name,
        meets_requirements=violation is None,
        violation=violation,
        untestable_faults=untestable,
    )


def theorem_5_2_survey(
    candidates: Iterable[Callable[..., HardcoreCandidate]] = DEFAULT_CANDIDATES,
) -> List[CandidateVerdict]:
    """Examine a candidate family; Theorem 5.2 predicts that none is a
    self-checking hardcore (every verdict fails one way or the other)."""
    return [check_candidate(factory) for factory in candidates]
