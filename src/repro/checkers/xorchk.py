"""XOR-tree checkers for independent outputs (Section 5.3, Theorem 5.1).

When the checked lines are *independent* (no shared logic upstream), an
XOR tree is the minimum-cost SCAL checker: if every XOR gate has an odd
number of inputs and every input alternates, every line in the tree
alternates (Theorem 5.1) — the single output alternates iff the checked
lines do.  The period clock φ is itself an alternating line and is used
to pad gates up to odd arity (the thesis's Figure 5.2a adds φ to the last
gate).

The limitation quantified by Table 5.1: an *even* number of stuck checked
lines leaves the output parity alternating and the checker blind —
that is why dependent lines (which can fail several-at-once from one
internal fault) need the dual-rail checker instead.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence, Tuple

from ..logic.gates import GateKind
from ..logic.network import Network, NetworkBuilder

PERIOD_CLOCK = "phi"


def xor_checker_network(
    n_lines: int,
    fan_in: int = 3,
    clock_name: str = PERIOD_CLOCK,
    name: str = "xor_checker",
) -> Network:
    """Gate-level odd-input XOR tree over ``n_lines`` checked lines + φ.

    Every gate is padded to odd arity with fresh branches of the period
    clock, so Theorem 5.1 applies: all internal lines alternate and the
    checker is self-checking with respect to every one of its own lines.

    In a tree where every gate has odd arity the total leaf count is odd,
    so the number of φ pad branches is ``≡ n+1 (mod 2)`` automatically —
    exactly what makes the output alternate for any width of healthy
    alternating inputs.
    """
    if n_lines < 1:
        raise ValueError("need at least one checked line")
    if fan_in < 2:
        raise ValueError("fan-in must be at least 2")
    inputs = [f"x{i}" for i in range(n_lines)] + [clock_name]
    builder = NetworkBuilder(inputs, name=name)
    level: List[str] = [f"x{i}" for i in range(n_lines)]
    counter = 0
    while len(level) > 1:
        nxt: List[str] = []
        for j in range(0, len(level), fan_in):
            group = list(level[j : j + fan_in])
            if len(group) == 1:
                nxt.append(group[0])
                continue
            if len(group) % 2 == 0:
                group.append(clock_name)
            counter += 1
            nxt.append(builder.add(f"n{counter}", GateKind.XOR, group))
        level = nxt
    root = level[0]
    if root in inputs:
        # Degenerate single-line checker: an arity-1 XOR (odd) exposes it.
        root = builder.add("q", GateKind.XOR, [root])
    return builder.build([root])


def evaluate_xor_checker(values: Sequence[int], phase: int) -> int:
    """Behavioural view: the checker output for one period.

    Equivalent to the network when the padding clock branches cancel —
    the output is the parity of the checked lines, with φ folded in an
    odd number of times only when padding required it; for analysis the
    *alternation* of the output across the two periods is what matters,
    and that is independent of how many φ branches were added.
    """
    acc = 0
    for v in values:
        acc ^= int(v) & 1
    return acc


@dataclasses.dataclass(frozen=True)
class XorCheckerVerdict:
    """Alternation verdict of the XOR checker over one period pair."""

    first: int
    second: int

    @property
    def valid(self) -> bool:
        return self.first != self.second


def check_pair(
    first_values: Sequence[int], second_values: Sequence[int]
) -> XorCheckerVerdict:
    """Feed one alternating pair of checked-line snapshots.

    With ``n`` checked lines, healthy operation makes the parity of the
    second snapshot the complement of the first iff ``n`` is odd; the
    gate-level tree's φ padding normalizes this, which we mirror by
    folding φ once when ``n`` is even.
    """
    n = len(first_values)
    # φ contributes 0 in the first period always; in the second period it
    # contributes 1 exactly when the tree needed an odd number of pads,
    # i.e. when n is even.
    pad_second = 0 if n % 2 else 1
    return XorCheckerVerdict(
        evaluate_xor_checker(first_values, 0),
        evaluate_xor_checker(second_values, 1) ^ pad_second,
    )


def dual_rail_output_stage(
    verdict: XorCheckerVerdict,
) -> Tuple[int, int]:
    """Figure 5.2b: latch the first-period value, pair it with the second
    — a two-rail code valid iff the checker output alternates."""
    return verdict.first, verdict.second


def even_input_checker_pair(
    first_values: Sequence[int], second_values: Sequence[int]
) -> Tuple[int, int]:
    """Figure 5.2c: the even-input variant folds φ into the tree, so the
    only code output is (0, 1); anything else is noncode.  Less
    cost-effective (the thesis's words) but included for the comparison
    bench."""
    first = evaluate_xor_checker(list(first_values) + [0], 0)
    second = evaluate_xor_checker(list(second_values) + [1], 1)
    return first, second


def xor_checker_gate_cost(n_lines: int, fan_in: int = 3) -> int:
    """Number of XOR gates in the tree built by
    :func:`xor_checker_network`."""
    return xor_checker_network(n_lines, fan_in).gate_count(include_buffers=False)
