"""Anderson's dual-rail totally self-checking checker (Section 5.2).

The conventional SCAL checker for *dependent* outputs: latch the network
outputs in the first time period, then compare each latched first-period
value with the live second-period value as a two-rail pair — a healthy
alternating output yields complementary rails, and the Anderson TSCC tree
compresses n such pairs into one two-rail output (f, g), valid iff
f ≠ g.

The tree is built from the standard two-rail cell

    z0 = x0·y0 ∨ x1·y1        z1 = x0·y1 ∨ x1·y0

(6 two-input gates per cell, hence the thesis's cost formula
"(n−1)·6 two-input gates" for an n-pair checker), which is code-disjoint:
any noncode input pair forces a noncode output pair.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..logic.gates import GateKind
from ..logic.network import Network, NetworkBuilder

#: Gate cost of one two-rail cell (4 AND + 2 OR).
CELL_GATES = 6


def two_rail_cell_values(
    x: Tuple[int, int], y: Tuple[int, int]
) -> Tuple[int, int]:
    """Pointwise evaluation of one Anderson cell."""
    x0, x1 = x
    y0, y1 = y
    z0 = (x0 & y0) | (x1 & y1)
    z1 = (x0 & y1) | (x1 & y0)
    return z0, z1


def two_rail_checker_network(
    n_pairs: int, prefix: str = "a", name: str = "tscc"
) -> Network:
    """Gate-level Anderson TSCC tree for ``n_pairs`` rail pairs.

    Inputs are ``{prefix}{i}_0`` / ``{prefix}{i}_1``; outputs ``f, g``.
    For a single pair the checker is the identity (buffers).
    """
    if n_pairs < 1:
        raise ValueError("need at least one rail pair")
    inputs = []
    for i in range(n_pairs):
        inputs += [f"{prefix}{i}_0", f"{prefix}{i}_1"]
    builder = NetworkBuilder(inputs, name=name)
    level: List[Tuple[str, str]] = [
        (f"{prefix}{i}_0", f"{prefix}{i}_1") for i in range(n_pairs)
    ]
    counter = 0
    while len(level) > 1:
        nxt: List[Tuple[str, str]] = []
        for j in range(0, len(level) - 1, 2):
            (x0, x1), (y0, y1) = level[j], level[j + 1]
            counter += 1
            p = builder.add(f"c{counter}_p", GateKind.AND, [x0, y0])
            q = builder.add(f"c{counter}_q", GateKind.AND, [x1, y1])
            r = builder.add(f"c{counter}_r", GateKind.AND, [x0, y1])
            s = builder.add(f"c{counter}_s", GateKind.AND, [x1, y0])
            z0 = builder.add(f"c{counter}_z0", GateKind.OR, [p, q])
            z1 = builder.add(f"c{counter}_z1", GateKind.OR, [r, s])
            nxt.append((z0, z1))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    f0, f1 = level[0]
    builder.add("f", GateKind.BUF, [f0])
    builder.add("g", GateKind.BUF, [f1])
    return builder.build(["f", "g"])


def evaluate_two_rail_tree(pairs: Sequence[Tuple[int, int]]) -> Tuple[int, int]:
    """Behavioural tree evaluation (matches the gate-level network)."""
    level = [tuple(p) for p in pairs]
    if not level:
        raise ValueError("need at least one rail pair")
    while len(level) > 1:
        nxt = []
        for j in range(0, len(level) - 1, 2):
            nxt.append(two_rail_cell_values(level[j], level[j + 1]))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return level[0]


def code_valid(code: Tuple[int, int]) -> bool:
    """1-out-of-2 validity of a checker output."""
    return code[0] != code[1]


class ScalDualRailChecker:
    """Reynolds' SCAL checker (Figure 5.1a/b): flip-flops record the
    first-period outputs; in the second period the (recorded, live) pairs
    feed the Anderson tree.  A healthy alternating network gives every
    pair complementary rails → valid code out."""

    def __init__(self, width: int) -> None:
        self.width = width
        self.latches: List[int] = [0] * width

    def feed_pair(
        self, first: Sequence[int], second: Sequence[int]
    ) -> Tuple[int, int]:
        """One logical step: latch period 1, compare in period 2."""
        if len(first) != self.width or len(second) != self.width:
            raise ValueError("width mismatch")
        self.latches = [int(v) & 1 for v in first]
        pairs = [
            (self.latches[i], int(second[i]) & 1) for i in range(self.width)
        ]
        return evaluate_two_rail_tree(pairs)

    def gate_cost(self) -> int:
        """(n−1)·6 two-input gates for the tree (Section 5.4)."""
        return max(self.width - 1, 0) * CELL_GATES

    def flip_flop_cost(self) -> int:
        return self.width


def alternating_output_stage(code: Tuple[int, int], phase: int) -> int:
    """The Figure 5.1c conversion of a dual-rail code to one alternating
    line: ``q = φ̄ · (f ⊕ g)`` is (1, 0) over a healthy period pair and
    constant 0 once the code goes invalid."""
    f, g = code
    return (1 - (int(phase) & 1)) & (f ^ g)
