"""Space-domain codes for system encoding (Section 7.2).

The thesis's encoding argument compares codes per subsystem: a single
parity bit where output lines are independent (bus, memory), but "in the
central processing unit generating a parity bit output is almost as
costly as building an entire CPU.  In this case an m-out-of-n code or
Berger code is useful in space domain self-checking."  This module
supplies those comparison codes so the encoding-considerations bench can
put numbers on the trade:

* **Berger code** — data word + binary count of its 0-bits; detects all
  unidirectional errors (a unidirectional flip moves the zero count in
  one direction and the check bits in the other).
* **m-out-of-n code** — fixed-weight words; any unidirectional error
  changes the weight.  1-out-of-2 (the checker-output code of Chapter 5)
  is the special case ``m=1, n=2``.
"""

from __future__ import annotations

import dataclasses
import itertools
import math
from typing import List, Sequence, Tuple


# ----------------------------------------------------------------------
# Berger code
# ----------------------------------------------------------------------


def berger_check_width(data_bits: int) -> int:
    """Check bits needed: ``ceil(log2(data_bits + 1))``."""
    if data_bits < 1:
        raise ValueError("need at least one data bit")
    return max(1, math.ceil(math.log2(data_bits + 1)))


def berger_encode(data: Sequence[int]) -> List[int]:
    """Append the binary count of zero bits (little-endian)."""
    zeros = sum(1 for b in data if not int(b) & 1)
    width = berger_check_width(len(data))
    check = [(zeros >> i) & 1 for i in range(width)]
    return [int(b) & 1 for b in data] + check


def berger_valid(word: Sequence[int], data_bits: int) -> bool:
    data = [int(b) & 1 for b in word[:data_bits]]
    check = word[data_bits:]
    zeros = sum(1 for b in data if not b)
    width = berger_check_width(data_bits)
    if len(check) != width:
        return False
    return all(((zeros >> i) & 1) == (int(c) & 1) for i, c in enumerate(check))


def berger_error_detected(
    word: Sequence[int],
    data_bits: int,
    positions: Sequence[int],
    direction: int,
) -> bool:
    """Apply a unidirectional error (force ``positions`` to
    ``direction``) to a valid Berger word and report whether the check
    fails — which Berger codes guarantee whenever the word actually
    changed (data flips toward 1 can only lower the zero count while
    check flips toward 1 can only raise the represented count, so they
    never compensate; dually for flips toward 0)."""
    corrupted = inject_unidirectional(word, positions, direction)
    if corrupted == [int(b) & 1 for b in word]:
        return False  # nothing flipped: not an error
    return not berger_valid(corrupted, data_bits)


# ----------------------------------------------------------------------
# m-out-of-n codes
# ----------------------------------------------------------------------


def m_out_of_n_codewords(m: int, n: int) -> List[Tuple[int, ...]]:
    """All weight-m words of n bits."""
    if not 0 <= m <= n:
        raise ValueError("need 0 <= m <= n")
    words = []
    for ones in itertools.combinations(range(n), m):
        word = [0] * n
        for i in ones:
            word[i] = 1
        words.append(tuple(word))
    return words


def m_out_of_n_valid(word: Sequence[int], m: int) -> bool:
    return sum(int(b) & 1 for b in word) == m


def code_size(m: int, n: int) -> int:
    return math.comb(n, m)


def data_capacity(m: int, n: int) -> int:
    """Bits of information an m-of-n code can carry."""
    return int(math.floor(math.log2(code_size(m, n)))) if code_size(m, n) else 0


# ----------------------------------------------------------------------
# encoding comparison (Section 7.2)
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class EncodingRow:
    """One row of the encoding-considerations comparison."""

    code: str
    total_bits: int
    redundancy_bits: int
    detects_single: bool
    detects_unidirectional: bool

    def row(self) -> str:
        return (
            f"{self.code:18s} {self.total_bits:10d} {self.redundancy_bits:10d} "
            f"{str(self.detects_single):>7s} {str(self.detects_unidirectional):>15s}"
        )


def encoding_comparison(data_bits: int) -> List[EncodingRow]:
    """Parity vs Berger vs balanced m-of-n for one data width."""
    berger_bits = berger_check_width(data_bits)
    # Smallest balanced code carrying data_bits of information.
    n = data_bits + 1
    while data_capacity(n // 2, n) < data_bits:
        n += 1
    rows = [
        EncodingRow("single parity", data_bits + 1, 1, True, False),
        EncodingRow(
            "Berger", data_bits + berger_bits, berger_bits, True, True
        ),
        EncodingRow(
            f"{n // 2}-out-of-{n}", n, n - data_bits, True, True
        ),
        EncodingRow(
            "alternating (time)", data_bits, 0, True, False
        ),
    ]
    return rows


def render_encoding_comparison(data_bits: int) -> str:
    header = (
        f"{'code':18s} {'total bits':>10s} {'redundant':>10s} "
        f"{'single':>7s} {'unidirectional':>15s}"
    )
    rows = encoding_comparison(data_bits)
    note = (
        "(alternating logic pays its redundancy in time, not wires - the "
        "Section 7.2 argument for using it inside the CPU)"
    )
    return "\n".join([header] + [r.row() for r in rows] + [note])


# ----------------------------------------------------------------------
# behavioural checkers (for fault-injection tests)
# ----------------------------------------------------------------------


def inject_unidirectional(
    word: Sequence[int], positions: Sequence[int], direction: int
) -> List[int]:
    """Force the given positions to ``direction`` (a unidirectional
    error if any of them actually change)."""
    out = [int(b) & 1 for b in word]
    for k in positions:
        out[k] = int(direction) & 1
    return out
