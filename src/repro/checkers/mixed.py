"""Mixed checker design — Algorithm 5.1 (Section 5.4).

Networks usually have a mix of outputs: some independent (cheap XOR
checking suffices), some sharing logic (a single internal fault can break
several at once, or produce an incorrect alternation that only *another*
output reveals — those need the dual-rail checker).  Algorithm 5.1
partitions the outputs:

1. outputs independent of all others → partition **A**;
2. the rest → **B**, subdivided into groups ``B_i`` of outputs that share
   logic only within the group;
3. from each ``B_i``, one output that never alternates incorrectly under
   any fault may be promoted to **A** (its faults are covered by the
   remaining B outputs of its group, and an extra stuck B-output is
   exactly the single-parity-flip the XOR checker catches);
4. A-outputs are checked by the XOR tree, remaining B-outputs by the
   dual-rail checker; the two checker outputs combine through either one
   more XOR stage (Figure 5.4a) or a dual-rail stage (Figure 5.4b).

The partitioner works from either an abstract dependency specification
(the thesis's nine-output example) or a real :class:`Network`, for which
sharing groups come from cone overlaps and the "alternates incorrectly"
set from exhaustive fault simulation.
"""

from __future__ import annotations

import dataclasses
from typing import FrozenSet, List, Sequence, Set, Tuple

from ..logic.faults import enumerate_single_faults
from ..logic.network import Network
from .tworail import CELL_GATES
from .xorchk import xor_checker_gate_cost


@dataclasses.dataclass(frozen=True)
class CheckerSpec:
    """Abstract input to Algorithm 5.1: output names, sharing groups, and
    which outputs can alternate incorrectly under some fault."""

    outputs: Tuple[str, ...]
    #: groups of outputs that share logic pairwise-overlapping; outputs
    #: absent from every group are independent.
    sharing_groups: Tuple[FrozenSet[str], ...]
    incorrectly_alternating: FrozenSet[str]


@dataclasses.dataclass(frozen=True)
class CheckerPlan:
    """Outcome of Algorithm 5.1."""

    xor_checked: Tuple[str, ...]          # partition A
    dual_rail_checked: Tuple[str, ...]    # what stays in B
    groups: Tuple[Tuple[str, ...], ...]   # the B_i subpartitions (pre-step 3)

    def xor_gate_cost(self, fan_in: int = 3) -> int:
        if not self.xor_checked:
            return 0
        return xor_checker_gate_cost(len(self.xor_checked), fan_in)

    def dual_rail_gate_cost(self) -> int:
        n = len(self.dual_rail_checked)
        return max(n - 1, 0) * CELL_GATES

    def dual_rail_flip_flops(self) -> int:
        return len(self.dual_rail_checked)

    def combine_cost(self, style: str = "xor") -> Tuple[int, int]:
        """(gates, flip-flops) of the combining stage.

        ``"xor"`` (Figure 5.4a): fold the dual-rail pair into the XOR
        tree — one 3-input XOR gate.  ``"dual-rail"`` (Figure 5.4b):
        latch the XOR output and add one two-rail cell.
        """
        if not self.xor_checked or not self.dual_rail_checked:
            return (0, 0)
        if style == "xor":
            return (1, 0)
        if style == "dual-rail":
            return (CELL_GATES, 1)
        raise ValueError(f"unknown combining style {style!r}")

    def total_cost(self, style: str = "xor", fan_in: int = 3) -> Tuple[int, int]:
        """(gates, flip-flops) of the whole mixed checker."""
        cg, cf = self.combine_cost(style)
        gates = self.xor_gate_cost(fan_in) + self.dual_rail_gate_cost() + cg
        ffs = self.dual_rail_flip_flops() + cf
        return gates, ffs


def all_dual_rail_cost(n_outputs: int) -> Tuple[int, int]:
    """(gates, flip-flops) of the conventional all-dual-rail checker —
    the baseline the thesis halves (48 gates + 9 FFs for nine lines)."""
    return max(n_outputs - 1, 0) * CELL_GATES, n_outputs


def partition(spec: CheckerSpec) -> CheckerPlan:
    """Run Algorithm 5.1 on an abstract specification."""
    grouped: Set[str] = set()
    for group in spec.sharing_groups:
        grouped |= set(group)
    # Step 1: independent outputs.
    a_part: List[str] = [o for o in spec.outputs if o not in grouped]
    # Step 2: merge overlapping sharing groups into the B_i partitions.
    b_groups = _merge_groups(spec.sharing_groups)
    # Step 3: one never-incorrectly-alternating output per B_i may move.
    remaining: List[str] = []
    for group in b_groups:
        promotable = [
            o for o in spec.outputs
            if o in group and o not in spec.incorrectly_alternating
        ]
        promoted = promotable[0] if promotable else None
        if promoted is not None:
            a_part.append(promoted)
        remaining.extend(
            o for o in spec.outputs if o in group and o != promoted
        )
    order = {name: i for i, name in enumerate(spec.outputs)}
    a_part.sort(key=order.__getitem__)
    remaining.sort(key=order.__getitem__)
    return CheckerPlan(
        xor_checked=tuple(a_part),
        dual_rail_checked=tuple(remaining),
        groups=tuple(
            tuple(o for o in spec.outputs if o in g) for g in b_groups
        ),
    )


def _merge_groups(
    groups: Sequence[FrozenSet[str]],
) -> List[FrozenSet[str]]:
    """Union overlapping sharing groups (transitive closure)."""
    merged: List[Set[str]] = []
    for group in groups:
        touching = [m for m in merged if m & group]
        for m in touching:
            merged.remove(m)
        union: Set[str] = set(group)
        for m in touching:
            union |= m
        merged.append(union)
    return [frozenset(m) for m in merged]


def spec_from_network(network: Network) -> CheckerSpec:
    """Derive the Algorithm 5.1 specification from a real netlist.

    Sharing groups: outputs whose cones overlap on a non-input line.
    Incorrectly-alternating set: outputs showing an incorrect alternating
    pair under some single (stem or pin) stuck-at fault — computed by
    exhaustive SCAL fault simulation.
    """
    from ..logic.evaluate import line_tables

    cones = {out: network.cone(out) for out in network.outputs}
    groups: List[FrozenSet[str]] = []
    outs = list(network.outputs)
    for i, a in enumerate(outs):
        for b in outs[i + 1 :]:
            shared = {
                line
                for line in cones[a] & cones[b]
                if not network.is_input(line)
            }
            if shared:
                groups.append(frozenset({a, b}))
    bad: Set[str] = set()
    normal = line_tables(network)
    for fault in enumerate_single_faults(network):
        faulty = line_tables(network, fault)
        for out in network.outputs:
            if out in bad:
                continue
            t, tf = normal[out], faulty[out]
            wrong = t ^ tf
            agrees_pairing = ~(t ^ tf.co_reflect())
            if not (wrong & agrees_pairing).is_zero():
                bad.add(out)
        if bad == set(network.outputs):
            break
    return CheckerSpec(
        outputs=tuple(network.outputs),
        sharing_groups=tuple(groups),
        incorrectly_alternating=frozenset(bad),
    )


def thesis_nine_output_example() -> CheckerSpec:
    """The Section 5.4 example: nine outputs, groups (4,5,6), (6,7),
    (8,9); outputs 5 and 8 can alternate incorrectly."""
    return CheckerSpec(
        outputs=tuple(str(i) for i in range(1, 10)),
        sharing_groups=(
            frozenset({"4", "5", "6"}),
            frozenset({"6", "7"}),
            frozenset({"8", "9"}),
        ),
        incorrectly_alternating=frozenset({"5", "8"}),
    )
