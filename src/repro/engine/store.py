"""Content-addressed artifact store for campaign reuse.

Repeated campaigns over the same netlist — the normal shape once
``repro serve`` queues requests from many clients — keep recomputing
two expensive artifacts: the fault-free packed baseline and the full
campaign status vector.  This store keys both by *content*, not by
object identity:

* ``program_fingerprint(compiled)`` — sha256 over the compiled
  program's structure (input count, line names, op list, output
  indices).  Two separately constructed but identical netlists hash the
  same, so artifacts survive across ``Network`` instances, across
  transports, and across ``serve`` requests.
* :func:`repro.engine.supervisor.universe_fingerprint` — the existing
  sha256 of the ordered fault universe.

Keys are tuples ``(kind, *fingerprints)``; kinds in use are
``"baseline"`` (program fp), ``"campaign"`` (program fp + universe fp +
the request shape that affects the statuses), ``"network"`` (raw
netlist text, used by the server to dedup parses), and ``"kernel"``
(program fp + block-signature digest — the generated source of one
specialized sweep kernel, shared across engines of identical programs).

The store is **opt-in** (``STORE.enabled`` defaults to ``False``): the
chaos/fuzz suites intentionally sabotage engines and must observe the
sabotage, not a cached clean artifact.  ``repro serve`` enables it for
the process; library users can flip it or build private instances.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import Optional, Tuple

from .. import obs

_REG = obs.REGISTRY
_M_HITS = _REG.counter(
    "repro_store_hits_total", "Artifact store hits, by artifact kind"
)
_M_MISSES = _REG.counter(
    "repro_store_misses_total", "Artifact store misses, by artifact kind"
)
_M_EVICTIONS = _REG.counter(
    "repro_store_evictions_total", "Artifact store LRU evictions"
)


def program_fingerprint(compiled) -> str:
    """sha256 of a compiled program's structure.

    Content-addressed: hashes the input count, the ordered line names,
    every op's ``(out, kind, srcs)``, and the output indices — exactly
    the fields that determine what the program computes.  Cached on the
    compiled instance (compiled programs are immutable after
    construction).
    """
    cached = getattr(compiled, "_program_fingerprint", None)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    digest.update(str(compiled.n_inputs).encode())
    for name in compiled.names:
        digest.update(b"\x00")
        digest.update(name.encode())
    for op in compiled.ops:
        digest.update(
            f"\x01{op.out}\x02{op.kind.value}\x02"
            f"{','.join(map(str, op.srcs))}".encode()
        )
    for out in compiled.out_idx:
        digest.update(f"\x03{out}".encode())
    fingerprint = digest.hexdigest()
    try:
        compiled._program_fingerprint = fingerprint
    except AttributeError:  # pragma: no cover - frozen/slotted compiled
        pass
    return fingerprint


def text_fingerprint(text: str) -> str:
    """sha256 of raw netlist text (the server's parse-dedup key)."""
    return hashlib.sha256(text.encode()).hexdigest()


class ArtifactStore:
    """A bounded, thread-safe, LRU map from content keys to artifacts.

    Artifacts must be immutable (tuples, frozen dataclasses, report
    dicts the caller promises not to mutate) — the store hands back the
    same object to every caller.
    """

    def __init__(self, max_entries: int = 64, enabled: bool = False) -> None:
        self.enabled = enabled
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple, object]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, kind: str, *fingerprints: str) -> Optional[object]:
        """The stored artifact, or ``None`` (also when disabled)."""
        if not self.enabled:
            return None
        key = (kind,) + fingerprints
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
                _M_MISSES.inc(kind=kind)
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            _M_HITS.inc(kind=kind)
            return value

    def put(self, kind: str, *fingerprints: str, value: object) -> None:
        """Store ``value`` under the content key (no-op when disabled)."""
        if not self.enabled:
            return
        key = (kind,) + fingerprints
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                _M_EVICTIONS.inc()

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> dict:
        with self._lock:
            return {
                "enabled": self.enabled,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: The process-wide store.  Disabled by default — sabotage-driven test
#: suites must see their sabotage, not cached clean artifacts; the
#: campaign service enables it at startup.
STORE = ArtifactStore()
