"""Batched multi-fault campaign driver over the compiled engine.

A fault campaign asks one question many times: "how does this network
respond to fault *f*?".  :class:`FaultSweep` amortizes everything that is
fault-independent — the compiled op program, the fault-free baseline
masks, and the per-output alternation masks — so each fault costs only a
cone-pruned re-simulation plus a handful of integer operations.

The SCAL pair-level classification lives here in raw-integer form (the
:class:`~repro.core.simulate.ScalSimulator` wraps it back into
:class:`TruthTable` objects for the thesis-facing API):

* **affected** — pairs where some output differs from fault-free,
* **detected** — pairs where some output is nonalternating,
* **violations** — pairs where some output is wrong yet every output
  alternates: the undetected fault-secure violation of Theorem 3.1.

Bulk sweeps route through a backend-selection heuristic
(:func:`~repro.engine.vectorized.select_backend`): small batches stay on
the scalar big-int path, large ones go to the fault-batched vectorized
backend (NumPy PPSFP, or its pure-Python packed fallback).  Campaigns
can additionally fan out across fork workers; the parent ships the
fault-free baseline to the workers through
:mod:`multiprocessing.shared_memory` so no worker re-derives it, and on
platforms without fork the sweep degrades to the serial vectorized path
instead of silently losing the batching.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Optional, Sequence, Tuple

from ..logic.faults import enumerate_single_faults
from ..logic.network import Network
from .compiled import FaultLike
from .vectorized import HAVE_NUMPY, VECTOR_MIN_FAULTS, select_backend


@dataclasses.dataclass(frozen=True)
class ResponseBits:
    """Pair-level response masks of one fault, as raw integers."""

    affected: int
    detected: int
    violations: int

    @property
    def status(self) -> str:
        """``dangerous`` | ``detected`` | ``silent`` — the Section 2.4
        coverage buckets (dangerous = fault-secure violation)."""
        if self.violations:
            return "dangerous"
        if self.detected:
            return "detected"
        return "silent"


#: Backend names accepted by :meth:`FaultSweep.sweep`.
SWEEP_BACKENDS = ("auto", "bitmask", "vectorized", "fallback")


class FaultSweep:
    """Compile once, baseline once, then classify faults in batches.

    ``engine`` lets callers that insist on fresh state (the QA
    determinism properties) supply their own
    :class:`~repro.engine.NetworkEngine`; by default the weakly-cached
    shared engine of ``network`` is used, so every sweep over the same
    network instance shares baselines and fault plans.
    """

    def __init__(self, network: Network, engine=None) -> None:
        from . import engine_for  # local: engine/__init__ imports us

        self.network = network
        self.engine = engine if engine is not None else engine_for(network)
        self.compiled = self.engine.compiled
        self.bitmask = self.engine.bitmask
        self.n = self.compiled.n_inputs
        self.full = self.bitmask.full
        #: Name of the backend the most recent :meth:`sweep` ran on
        #: (``"fork:<name>"`` when fanned out across workers).
        self.last_sweep_backend: Optional[str] = None

    def response_bits(self, fault: FaultLike) -> ResponseBits:
        """The pair-level response masks for one fault."""
        return ResponseBits(*self.engine.packed.response_triple(fault))

    def classify(self, fault: FaultLike) -> str:
        return self.response_bits(fault).status

    # ------------------------------------------------------------------
    # batched drivers
    # ------------------------------------------------------------------
    def single_fault_universe(
        self, include_inputs: bool = True, include_pins: bool = True
    ) -> List[FaultLike]:
        """All single faults on lines that can reach some output (dead
        lines are not lines of the network in the thesis's sense)."""
        live = set()
        for out in self.network.outputs:
            live |= self.network.cone(out)
        kept: List[FaultLike] = []
        for fault in enumerate_single_faults(
            self.network,
            include_inputs=include_inputs,
            include_pins=include_pins,
        ):
            line = fault.line if hasattr(fault, "line") else fault.gate
            if line in live:
                kept.append(fault)
        return kept

    def _resolve_backend(self, backend: str, n_faults: int) -> str:
        if backend not in SWEEP_BACKENDS:
            raise ValueError(
                f"unknown sweep backend {backend!r}; "
                f"expected one of {SWEEP_BACKENDS}"
            )
        if backend == "auto":
            backend = select_backend(self.n, n_faults)
        if backend == "vectorized" and not HAVE_NUMPY:
            backend = "fallback"
        return backend

    def _statuses(self, universe: Sequence[FaultLike], backend: str) -> List[str]:
        """Serial classification of ``universe`` on a resolved backend."""
        if backend == "vectorized":
            vec = self.engine.vectorized
            if vec is not None:
                return vec.sweep_statuses(universe)
            backend = "fallback"
        if backend == "fallback":
            return self.engine.packed.sweep_statuses(universe)
        # "bitmask": the scalar per-fault big-int path.
        return [self.classify(fault) for fault in universe]

    def sweep(
        self,
        faults: Iterable[FaultLike],
        processes: Optional[int] = None,
        backend: str = "auto",
    ) -> List[Tuple[FaultLike, str]]:
        """Classify every fault.

        ``backend`` is ``auto`` (the :func:`select_backend` heuristic),
        ``bitmask`` (scalar big-int masks), ``vectorized`` (NumPy
        fault-batched; degrades to ``fallback`` without NumPy), or
        ``fallback`` (pure-Python packed words).  With ``processes > 1``
        the universe is fanned out across fork workers that receive the
        fault-free baseline through shared memory; when fork is
        unavailable the sweep falls back to the serial vectorized path.
        """
        universe = list(faults)
        chosen = self._resolve_backend(backend, len(universe))
        if processes and processes > 1 and len(universe) >= 4 * processes:
            parallel = _sweep_parallel(
                self.network, universe, processes, chosen, self
            )
            if parallel is not None:
                self.last_sweep_backend = f"fork:{chosen}"
                return parallel
            # No fork on this platform: serve the batch serially on the
            # block backend rather than degrading to per-fault scalar.
            if chosen == "bitmask" and len(universe) >= VECTOR_MIN_FAULTS:
                chosen = "vectorized" if HAVE_NUMPY else "fallback"
        self.last_sweep_backend = chosen
        statuses = self._statuses(universe, chosen)
        return list(zip(universe, statuses))

    def coverage(
        self,
        faults: Optional[Sequence[FaultLike]] = None,
        processes: Optional[int] = None,
        backend: str = "auto",
    ) -> dict:
        """Section 2.4 coverage fractions over a fault universe."""
        universe = (
            list(faults) if faults is not None else self.single_fault_universe()
        )
        counts = {"detected": 0, "silent": 0, "dangerous": 0}
        for _fault, status in self.sweep(
            universe, processes=processes, backend=backend
        ):
            counts[status] += 1
        total = max(len(universe), 1)
        return {
            "faults": float(len(universe)),
            "detected": counts["detected"] / total,
            "silent": counts["silent"] / total,
            "dangerous": counts["dangerous"] / total,
        }



# ----------------------------------------------------------------------
# process fan-out: workers share the parent's fault-free baseline via
# multiprocessing.shared_memory instead of re-deriving it
# ----------------------------------------------------------------------
_worker_sweep: Optional[FaultSweep] = None


def _baseline_line_bytes(n_inputs: int) -> int:
    """Bytes per packed line in the shared baseline buffer (whole
    64-bit words, minimum one word)."""
    return max(1, (1 << n_inputs) >> 6) * 8


def _init_worker(
    network: Network, shm_name: Optional[str], line_bytes: int
) -> None:
    global _worker_sweep
    from . import NetworkEngine

    engine = NetworkEngine(network)
    if shm_name is not None:
        try:
            from multiprocessing import shared_memory

            shm = shared_memory.SharedMemory(name=shm_name)
            try:
                buf = bytes(shm.buf)
            finally:
                shm.close()
            engine.bitmask._baseline = [
                int.from_bytes(
                    buf[i * line_bytes : (i + 1) * line_bytes], "little"
                )
                for i in range(len(engine.compiled.names))
            ]
        except Exception:
            pass  # worker derives its own baseline; correctness unchanged
    _worker_sweep = FaultSweep(network, engine=engine)


def _classify_chunk(job: Tuple[Sequence[FaultLike], str]) -> List[str]:
    assert _worker_sweep is not None
    faults, backend = job
    return _worker_sweep._statuses(list(faults), backend)


def _sweep_parallel(
    network: Network,
    universe: List[FaultLike],
    processes: int,
    backend: str,
    sweep: Optional[FaultSweep] = None,
) -> Optional[List[Tuple[FaultLike, str]]]:
    try:
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
    except (ImportError, ValueError):
        return None
    chunk = max(1, (len(universe) + processes - 1) // processes)
    chunks = [
        universe[start : start + chunk]
        for start in range(0, len(universe), chunk)
    ]
    shm = None
    shm_name = None
    line_bytes = 8
    if sweep is not None:
        try:
            from multiprocessing import shared_memory

            baseline = sweep.bitmask.baseline()
            line_bytes = _baseline_line_bytes(sweep.n)
            payload = b"".join(
                value.to_bytes(line_bytes, "little") for value in baseline
            )
            shm = shared_memory.SharedMemory(create=True, size=len(payload))
            shm.buf[: len(payload)] = payload
            shm_name = shm.name
        except Exception:
            shm = None
            shm_name = None
    try:
        with ctx.Pool(
            processes=min(processes, len(chunks)),
            initializer=_init_worker,
            initargs=(network, shm_name, line_bytes),
        ) as pool:
            results = pool.map(
                _classify_chunk, [(block, backend) for block in chunks]
            )
    except OSError:
        return None
    finally:
        if shm is not None:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
    statuses = [status for block in results for status in block]
    return list(zip(universe, statuses))
