"""Batched multi-fault campaign driver over the compiled engine.

A fault campaign asks one question many times: "how does this network
respond to fault *f*?".  :class:`FaultSweep` amortizes everything that is
fault-independent — the compiled op program, the fault-free baseline
masks, and the per-output alternation masks — so each fault costs only a
cone-pruned re-simulation plus a handful of integer operations.

The SCAL pair-level classification lives here in raw-integer form (the
:class:`~repro.core.simulate.ScalSimulator` wraps it back into
:class:`TruthTable` objects for the thesis-facing API):

* **affected** — pairs where some output differs from fault-free,
* **detected** — pairs where some output is nonalternating,
* **violations** — pairs where some output is wrong yet every output
  alternates: the undetected fault-secure violation of Theorem 3.1.

Bulk sweeps route through a backend-selection heuristic
(:func:`~repro.engine.vectorized.select_backend`): small batches stay on
the scalar big-int path, large ones go to the fault-batched vectorized
backend (NumPy PPSFP, or its pure-Python packed fallback).  Execution —
serial or fanned out across supervised workers on a pluggable transport
(fork pipes, shared-memory fork, or ``repro worker`` sockets) with
per-chunk timeouts, retries, work stealing, checkpoint/resume, and the
explicit socket → fork+shm → fork → serial → scalar degradation ladder —
is delegated to
:func:`repro.engine.supervisor.run_campaign`; every sweep leaves a
structured :class:`~repro.engine.supervisor.CampaignReport` in
:attr:`FaultSweep.last_report`.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Optional, Sequence, Tuple

from .. import obs
from ..logic.faults import enumerate_single_faults
from ..logic.network import Network
from .compiled import FaultLike
from .supervisor import CampaignReport, CancelToken, run_campaign
from .vectorized import HAVE_NUMPY, chunk_statuses, select_backend


@dataclasses.dataclass(frozen=True)
class ResponseBits:
    """Pair-level response masks of one fault, as raw integers."""

    affected: int
    detected: int
    violations: int

    @property
    def status(self) -> str:
        """``dangerous`` | ``detected`` | ``silent`` — the Section 2.4
        coverage buckets (dangerous = fault-secure violation)."""
        if self.violations:
            return "dangerous"
        if self.detected:
            return "detected"
        return "silent"


#: Backend names accepted by :meth:`FaultSweep.sweep`.
SWEEP_BACKENDS = ("auto", "bitmask", "vectorized", "fallback", "kernel")


class FaultSweep:
    """Compile once, baseline once, then classify faults in batches.

    ``engine`` lets callers that insist on fresh state (the QA
    determinism properties) supply their own
    :class:`~repro.engine.NetworkEngine`; by default the weakly-cached
    shared engine of ``network`` is used, so every sweep over the same
    network instance shares baselines and fault plans.
    """

    def __init__(self, network: Network, engine=None) -> None:
        from . import engine_for  # local: engine/__init__ imports us

        self.network = network
        self.engine = engine if engine is not None else engine_for(network)
        self.compiled = self.engine.compiled
        self.n = self.compiled.n_inputs
        #: Name of the backend the most recent :meth:`sweep` ran on
        #: (``"fork:<name>"`` when fanned out across workers).
        self.last_sweep_backend: Optional[str] = None
        #: Structured :class:`CampaignReport` of the most recent
        #: :meth:`sweep` — backend, degradations, retries, wall time.
        self.last_report: Optional[CampaignReport] = None

    @property
    def bitmask(self):
        """The engine's exhaustive backend, built lazily — wide-input
        sweeps (sampled/vectorized paths) never pay or risk the 2^n-bit
        allocation, and touching this on a >MAX_BITMASK_INPUTS circuit
        raises the backend's clear ``ValueError``."""
        return self.engine.bitmask

    @property
    def full(self) -> int:
        """The all-ones 2^n-bit input-space mask (lazy, exhaustive-only)."""
        return self.bitmask.full

    def response_bits(self, fault: FaultLike) -> ResponseBits:
        """The pair-level response masks for one fault."""
        return ResponseBits(*self.engine.packed.response_triple(fault))

    def classify(self, fault: FaultLike) -> str:
        return self.response_bits(fault).status

    # ------------------------------------------------------------------
    # batched drivers
    # ------------------------------------------------------------------
    def single_fault_universe(
        self, include_inputs: bool = True, include_pins: bool = True
    ) -> List[FaultLike]:
        """All single faults on lines that can reach some output (dead
        lines are not lines of the network in the thesis's sense)."""
        live = set()
        for out in self.network.outputs:
            live |= self.network.cone(out)
        kept: List[FaultLike] = []
        for fault in enumerate_single_faults(
            self.network,
            include_inputs=include_inputs,
            include_pins=include_pins,
        ):
            line = fault.line if hasattr(fault, "line") else fault.gate
            if line in live:
                kept.append(fault)
        return kept

    def _resolve_backend(self, backend: str, n_faults: int) -> str:
        if backend not in SWEEP_BACKENDS:
            raise ValueError(
                f"unknown sweep backend {backend!r}; "
                f"expected one of {SWEEP_BACKENDS}"
            )
        if backend == "auto":
            backend = select_backend(self.n, n_faults)
        if backend == "kernel" and self.engine.kernel is None:
            backend = "vectorized"
        if backend == "vectorized" and not HAVE_NUMPY:
            backend = "fallback"
        return backend

    def _statuses(self, universe: Sequence[FaultLike], backend: str) -> List[str]:
        """Serial classification of ``universe`` on a resolved backend
        (one chunk, no supervision — the supervised drivers build on the
        same :func:`chunk_statuses` seam)."""
        return chunk_statuses(self.engine, universe, backend)

    def sweep(
        self,
        faults: Iterable[FaultLike],
        processes: Optional[int] = None,
        backend: str = "auto",
        timeout: Optional[float] = None,
        checkpoint: Optional[str] = None,
        resume: bool = False,
        chunk_faults: Optional[int] = None,
        abort_after_chunks: Optional[int] = None,
        transport: str = "auto",
        cancel: Optional[CancelToken] = None,
    ) -> List[Tuple[FaultLike, str]]:
        """Classify every fault under the supervised campaign runtime.

        ``backend`` is ``auto`` (the :func:`select_backend` heuristic),
        ``bitmask`` (scalar big-int masks), ``vectorized`` (NumPy
        fault-batched; degrades to ``fallback`` without NumPy),
        ``kernel`` (codegen'd specialized sweep kernels; degrades to
        ``vectorized``/``fallback`` when NumPy is absent or the circuit
        exceeds the kernel input ceiling), or ``fallback`` (pure-Python
        packed words).  ``transport`` picks the
        execution fabric (``auto`` / ``inline`` / ``fork`` / ``fork+shm``
        / ``socket`` — see :mod:`repro.engine.transport`).  With
        ``processes > 1`` (or an explicit worker transport) the universe
        is fanned out across supervised worker lanes: each
        chunk carries an optional per-chunk ``timeout`` (seconds),
        failed or hung chunks are retried with exponential backoff and
        re-chunked smaller on repeat failure, and dead workers are
        replaced instead of aborting the sweep.  ``checkpoint`` names a
        JSON artifact that records completed chunks after each one;
        ``resume=True`` reloads it and re-simulates only the uncovered
        remainder (statuses are byte-identical either way).  Every
        fallback taken is recorded in :attr:`last_report`;
        ``abort_after_chunks`` is the deliberate-interruption hook used
        by tests and resume drills.  ``cancel`` threads a
        :class:`~repro.engine.supervisor.CancelToken` into the
        supervision loop: a fired token (explicit cancel or blown
        deadline) raises
        :class:`~repro.engine.supervisor.CampaignCancelled` within one
        poll interval, with completed chunks already checkpointed.
        """
        universe = list(faults)
        chosen = self._resolve_backend(backend, len(universe))
        with obs.span(
            "campaign.sweep",
            faults=len(universe),
            requested=backend,
            backend=chosen,
            transport=transport,
        ):
            statuses, report = run_campaign(
                self,
                universe,
                chosen,
                processes=processes,
                timeout=timeout,
                checkpoint=checkpoint,
                resume=resume,
                chunk_faults=chunk_faults,
                abort_after_chunks=abort_after_chunks,
                transport=transport,
                cancel=cancel,
            )
        self.last_report = report
        self.last_sweep_backend = _legacy_backend_name(report)
        return list(zip(universe, statuses))

    def coverage(
        self,
        faults: Optional[Sequence[FaultLike]] = None,
        processes: Optional[int] = None,
        backend: str = "auto",
        timeout: Optional[float] = None,
        checkpoint: Optional[str] = None,
        resume: bool = False,
        transport: str = "auto",
    ) -> dict:
        """Section 2.4 coverage fractions over a fault universe."""
        universe = (
            list(faults) if faults is not None else self.single_fault_universe()
        )
        counts = {"detected": 0, "silent": 0, "dangerous": 0}
        for _fault, status in self.sweep(
            universe,
            processes=processes,
            backend=backend,
            timeout=timeout,
            checkpoint=checkpoint,
            resume=resume,
            transport=transport,
        ):
            counts[status] += 1
        total = max(len(universe), 1)
        return {
            "faults": float(len(universe)),
            "detected": counts["detected"] / total,
            "silent": counts["silent"] / total,
            "dangerous": counts["dangerous"] / total,
        }


def _legacy_backend_name(report: CampaignReport) -> str:
    """The :attr:`FaultSweep.last_sweep_backend` convention predating the
    structured report: ``"fork:<block>"`` / ``"socket:<block>"`` for
    fanned-out sweeps, the plain block-backend name otherwise."""
    if report.backend.startswith("socket"):
        return f"socket:{report.block_backend}"
    if report.backend.startswith("fork"):
        return f"fork:{report.block_backend}"
    return report.block_backend
