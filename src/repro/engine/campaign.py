"""Batched multi-fault campaign driver over the compiled engine.

A fault campaign asks one question many times: "how does this network
respond to fault *f*?".  :class:`FaultSweep` amortizes everything that is
fault-independent — the compiled op program, the fault-free baseline
masks, and the per-output alternation masks — so each fault costs only a
cone-pruned re-simulation plus a handful of integer operations.

The SCAL pair-level classification lives here in raw-integer form (the
:class:`~repro.core.simulate.ScalSimulator` wraps it back into
:class:`TruthTable` objects for the thesis-facing API):

* **affected** — pairs where some output differs from fault-free,
* **detected** — pairs where some output is nonalternating,
* **violations** — pairs where some output is wrong yet every output
  alternates: the undetected fault-secure violation of Theorem 3.1.

Campaigns over large fault lists can optionally fan out across worker
processes (fork start method); each worker compiles the network once and
sweeps its own share of the fault list.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable, List, Optional, Sequence, Tuple

from ..logic.faults import enumerate_single_faults
from ..logic.network import Network
from .backends import BitmaskBackend
from .compiled import FaultLike, compile_network, reflect_bits


@dataclasses.dataclass(frozen=True)
class ResponseBits:
    """Pair-level response masks of one fault, as raw integers."""

    affected: int
    detected: int
    violations: int

    @property
    def status(self) -> str:
        """``dangerous`` | ``detected`` | ``silent`` — the Section 2.4
        coverage buckets (dangerous = fault-secure violation)."""
        if self.violations:
            return "dangerous"
        if self.detected:
            return "detected"
        return "silent"


class FaultSweep:
    """Compile once, baseline once, then classify faults one cone at a time."""

    def __init__(self, network: Network) -> None:
        self.network = network
        self.compiled = compile_network(network)
        self.bitmask = BitmaskBackend(self.compiled)
        self.n = self.compiled.n_inputs
        self.full = self.bitmask.full
        baseline = self.bitmask.baseline()
        self.normal_out: Tuple[int, ...] = tuple(
            baseline[i] for i in self.compiled.out_idx
        )
        # Alternation mask of each fault-free output: 1 where the (X, X̄)
        # pair alternates.  Reused verbatim for outputs a fault leaves
        # untouched, which skips most reflect work in a sweep.
        self._normal_alt: Tuple[int, ...] = tuple(
            bits ^ reflect_bits(bits, self.n) for bits in self.normal_out
        )

    def response_bits(self, fault: FaultLike) -> ResponseBits:
        """The pair-level response masks for one fault."""
        values = self.bitmask.line_bits(fault)
        n = self.n
        full = self.full
        wrong = 0
        detected = 0
        all_alternate = full
        for pos, idx in enumerate(self.compiled.out_idx):
            t_fault = values[idx]
            t_normal = self.normal_out[pos]
            if t_fault == t_normal:
                alternates = self._normal_alt[pos]
            else:
                alternates = t_fault ^ reflect_bits(t_fault, n)
                wrong |= t_normal ^ t_fault
            detected |= alternates ^ full  # nonalternating pairs
            all_alternate &= alternates
        # Close point sets under the X ↔ X̄ pairing (alternation masks are
        # already pair-symmetric, so `detected` needs no closing).
        affected = wrong | reflect_bits(wrong, n)
        violations = affected & all_alternate
        return ResponseBits(affected, detected, violations)

    def classify(self, fault: FaultLike) -> str:
        return self.response_bits(fault).status

    # ------------------------------------------------------------------
    # batched drivers
    # ------------------------------------------------------------------
    def single_fault_universe(
        self, include_inputs: bool = True, include_pins: bool = True
    ) -> List[FaultLike]:
        """All single faults on lines that can reach some output (dead
        lines are not lines of the network in the thesis's sense)."""
        live = set()
        for out in self.network.outputs:
            live |= self.network.cone(out)
        kept: List[FaultLike] = []
        for fault in enumerate_single_faults(
            self.network,
            include_inputs=include_inputs,
            include_pins=include_pins,
        ):
            line = fault.line if hasattr(fault, "line") else fault.gate
            if line in live:
                kept.append(fault)
        return kept

    def sweep(
        self,
        faults: Iterable[FaultLike],
        processes: Optional[int] = None,
    ) -> List[Tuple[FaultLike, str]]:
        """Classify every fault; optionally fan out across ``processes``
        fork workers (falls back to serial when fork is unavailable or
        the batch is too small to amortize worker start-up)."""
        universe = list(faults)
        if processes and processes > 1 and len(universe) >= 4 * processes:
            parallel = _sweep_parallel(self.network, universe, processes)
            if parallel is not None:
                return parallel
        return [(fault, self.classify(fault)) for fault in universe]

    def coverage(
        self,
        faults: Optional[Sequence[FaultLike]] = None,
        processes: Optional[int] = None,
    ) -> dict:
        """Section 2.4 coverage fractions over a fault universe."""
        universe = (
            list(faults) if faults is not None else self.single_fault_universe()
        )
        counts = {"detected": 0, "silent": 0, "dangerous": 0}
        for _fault, status in self.sweep(universe, processes=processes):
            counts[status] += 1
        total = max(len(universe), 1)
        return {
            "faults": float(len(universe)),
            "detected": counts["detected"] / total,
            "silent": counts["silent"] / total,
            "dangerous": counts["dangerous"] / total,
        }


# ----------------------------------------------------------------------
# process fan-out: each worker compiles the network once, sweeps a chunk
# ----------------------------------------------------------------------
_worker_sweep: Optional[FaultSweep] = None


def _init_worker(network: Network) -> None:
    global _worker_sweep
    _worker_sweep = FaultSweep(network)


def _classify_chunk(faults: Sequence[FaultLike]) -> List[str]:
    assert _worker_sweep is not None
    return [_worker_sweep.classify(fault) for fault in faults]


def _sweep_parallel(
    network: Network, universe: List[FaultLike], processes: int
) -> Optional[List[Tuple[FaultLike, str]]]:
    try:
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
    except (ImportError, ValueError):
        return None
    chunk = max(1, (len(universe) + processes - 1) // processes)
    chunks = [
        universe[start : start + chunk]
        for start in range(0, len(universe), chunk)
    ]
    try:
        with ctx.Pool(
            processes=min(processes, len(chunks)),
            initializer=_init_worker,
            initargs=(network,),
        ) as pool:
            results = pool.map(_classify_chunk, chunks)
    except OSError:
        return None
    statuses = [status for block in results for status in block]
    return list(zip(universe, statuses))
