"""Supervised fault-campaign runtime: retries, timeouts, checkpoints.

:mod:`repro.engine.campaign` makes sweeps fast; this module makes them
survive.  A long campaign over a large fault universe dies in boring
ways — a worker segfaults or is OOM-killed, a chunk hangs on a
pathological cone, shared memory is unavailable inside a container —
and an all-or-nothing ``pool.map`` turns any of those into a lost
campaign.  :func:`run_campaign` replaces it with per-chunk supervision:

* the universe is split into **chunk tasks** (contiguous index ranges),
  each with a configurable ``timeout``;
* a failed or hung chunk is retried with exponential backoff and, on
  repeat failure, **split in half** so a single poisoned fault cannot
  hold a whole chunk hostage;
* a dead worker is **replaced** instead of killing the sweep, and a
  runtime that cannot keep workers alive salvages every completed
  chunk and finishes the remainder serially;
* completed chunks are **checkpointed** to a JSON artifact so an
  interrupted campaign can resume without re-simulating them, with
  byte-identical statuses (classification is per-fault deterministic,
  so chunking never changes results).

Every step down the **degradation ladder** —

    ``fork+shm`` → ``fork`` → ``serial`` → ``scalar``

— is recorded as a :class:`Degradation` in the :class:`CampaignReport`
instead of being swallowed by a bare ``except``.  ``fork+shm`` fans
chunks across fork workers that attach the parent's fault-free baseline
through :mod:`multiprocessing.shared_memory`; ``fork`` lets each worker
re-derive it; ``serial`` runs the block backend in-process; ``scalar``
is the per-fault big-int loop that needs nothing but the interpreter.

Chaos hooks (:data:`WORKER_CHUNK_HOOK`, swapped by
:mod:`repro.qa.chaos`) let the test suite SIGKILL a worker, hang a
chunk, or deny shared memory mid-campaign and assert the sweep still
finishes with statuses identical to the serial path.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs
from .vectorized import HAVE_NUMPY, VECTOR_MIN_FAULTS, chunk_statuses

# Telemetry: campaign-level counters are incremented by the supervising
# parent (fork workers keep their own process-local registries, which
# die with them — their per-chunk detail travels as flight-recorder
# events over the result channel instead).
_REG = obs.REGISTRY
_M_CHUNKS_DONE = _REG.counter(
    "repro_campaign_chunks_total", "Chunks completed, by campaign outcome"
)
_M_RETRIES = _REG.counter(
    "repro_campaign_retries_total", "Chunk retries, by supervisor action"
)
_M_DEGRADATIONS = _REG.counter(
    "repro_campaign_degradations_total", "Ladder steps down, by rung edge"
)
_M_REPLACED = _REG.counter(
    "repro_campaign_workers_replaced_total", "Dead fork workers replaced"
)
_M_CHECKPOINTS = _REG.counter(
    "repro_campaign_checkpoint_writes_total", "Checkpoint chunk flushes"
)
_M_FAULTS = _REG.counter(
    "repro_campaign_faults_total", "Faults classified by campaigns, by status"
)
_M_WALL = _REG.histogram(
    "repro_campaign_wall_seconds", "End-to-end campaign wall time"
)

#: Attempts on one chunk before it is split (multi-fault chunks) or
#: escalated to the parent's serial path (single-fault chunks).
MAX_CHUNK_ATTEMPTS = 3

#: Worker replacements tolerated before the runtime concludes fork
#: workers cannot be kept alive and degrades to the serial rung.
def _max_replacements(processes: int) -> int:
    return max(2 * processes, 4)

#: Exponential-backoff schedule for chunk retries (seconds).
BACKOFF_BASE = 0.05
BACKOFF_CAP = 2.0

#: Supervision poll interval: deadline precision and the latency of
#: noticing a dead worker (seconds).
POLL_SECONDS = 0.05

#: Grace given to SIGTERM before a hung worker is SIGKILLed (seconds).
KILL_GRACE = 0.25

#: Statuses a checkpoint may legally contain.
VALID_STATUSES = frozenset({"dangerous", "detected", "silent"})

#: Test/chaos seam: when set, every worker calls this with
#: ``(chunk_key, attempt)`` before classifying the chunk.  Fork workers
#: inherit the value at spawn time, so arming it in the parent sabotages
#: the children (see :func:`repro.qa.chaos.sabotage_campaign`).
WORKER_CHUNK_HOOK: Optional[Callable[[str, int], None]] = None


class CheckpointError(ValueError):
    """A checkpoint artifact is unreadable or belongs to a different
    campaign (wrong fault universe, corrupted statuses)."""


class CampaignInterrupted(RuntimeError):
    """Raised when a campaign stops early on purpose (the
    ``abort_after_chunks`` hook); the checkpoint holds every chunk
    completed so far and ``--resume`` picks up from it."""


class _SupervisionFailure(RuntimeError):
    """The fork runtime cannot make progress (workers cannot be spawned
    or kept alive); completed chunks are salvaged serially."""


# ----------------------------------------------------------------------
# report structures
# ----------------------------------------------------------------------
@dataclasses.dataclass
class Degradation:
    """One step down the ladder, with the reason it was taken."""

    frm: str
    to: str
    reason: str


@dataclasses.dataclass
class RetryEvent:
    """One chunk failure and what the supervisor did about it."""

    chunk: str  #: index range ``"start:stop"``
    attempt: int
    reason: str
    action: str  #: ``retried`` | ``split`` | ``parent-serial``


@dataclasses.dataclass
class CampaignReport:
    """Structured account of how a sweep actually ran.

    ``backend`` is the ladder rung plus block backend that served the
    bulk of the campaign (e.g. ``"fork+shm:vectorized"``,
    ``"serial:fallback"``, ``"scalar:bitmask"``, or ``"resumed"`` when
    every chunk came from the checkpoint); ``block_backend`` is the
    final resolved block-backend name alone.  ``degradations`` lists
    every ladder step down with its reason — an empty list means the
    requested mode is exactly what ran.
    """

    requested: str
    backend: str = ""
    block_backend: str = ""
    faults: int = 0
    chunks_total: int = 0
    chunks_completed: int = 0
    chunks_resumed: int = 0
    workers_replaced: int = 0
    degradations: List[Degradation] = dataclasses.field(default_factory=list)
    retries: List[RetryEvent] = dataclasses.field(default_factory=list)
    wall_seconds: float = 0.0
    checkpoint_path: Optional[str] = None

    def degrade(self, frm: str, to: str, reason: str) -> None:
        self.degradations.append(Degradation(frm, to, reason))
        _M_DEGRADATIONS.inc(frm=frm, to=to)
        obs.event("campaign.degradation", frm=frm, to=to, reason=reason)

    def retry(self, chunk: str, attempt: int, reason: str, action: str) -> None:
        """Record one chunk failure (report, metrics, and flight)."""
        self.retries.append(RetryEvent(chunk, attempt, reason, action))
        _M_RETRIES.inc(action=action)
        obs.event(
            "campaign.retry",
            chunk=chunk,
            attempt=attempt,
            reason=reason,
            action=action,
        )

    @property
    def degraded(self) -> bool:
        return bool(self.degradations)

    def to_dict(self) -> dict:
        return {
            "requested": self.requested,
            "backend": self.backend,
            "block_backend": self.block_backend,
            "faults": self.faults,
            "chunks_total": self.chunks_total,
            "chunks_completed": self.chunks_completed,
            "chunks_resumed": self.chunks_resumed,
            "workers_replaced": self.workers_replaced,
            "degradations": [dataclasses.asdict(d) for d in self.degradations],
            "retries": [dataclasses.asdict(r) for r in self.retries],
            "wall_seconds": self.wall_seconds,
            "checkpoint": self.checkpoint_path,
        }

    def summary(self) -> str:
        lines = [
            f"campaign: {self.faults} faults via {self.backend} "
            f"(requested {self.requested}) in {self.wall_seconds:.3f}s",
            f"  chunks: {self.chunks_completed} simulated, "
            f"{self.chunks_resumed} resumed of {self.chunks_total}",
        ]
        if self.workers_replaced:
            lines.append(f"  workers replaced: {self.workers_replaced}")
        for event in self.retries:
            lines.append(
                f"  retry [{event.chunk}] attempt {event.attempt}: "
                f"{event.reason} -> {event.action}"
            )
        for deg in self.degradations:
            lines.append(f"  degraded {deg.frm} -> {deg.to}: {deg.reason}")
        if not self.degradations:
            lines.append("  no degradations")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# checkpoint artifact
# ----------------------------------------------------------------------
def describe_fault(fault) -> str:
    describe = getattr(fault, "describe", None)
    return describe() if callable(describe) else repr(fault)


def universe_fingerprint(universe: Sequence, n_inputs: int) -> str:
    """Identity of a campaign: the ordered fault universe plus the
    input width.  Statuses are backend-independent, so this is all a
    checkpoint needs to match to be resumable."""
    digest = hashlib.sha256()
    digest.update(f"n_inputs={n_inputs}".encode())
    for fault in universe:
        digest.update(b"\x00" + describe_fault(fault).encode())
    return digest.hexdigest()


class CampaignCheckpoint:
    """Completed chunk statuses, flushed to JSON after every chunk.

    The artifact maps contiguous index ranges of the ordered fault
    universe to their statuses; resuming fills those ranges and
    re-chunks only the uncovered remainder, so chunk-size changes
    between runs cannot corrupt a resume.
    """

    VERSION = 1

    def __init__(self, path: str, fingerprint: str, n_faults: int) -> None:
        self.path = path
        self.fingerprint = fingerprint
        self.n_faults = n_faults
        self.ranges: Dict[Tuple[int, int], List[str]] = {}

    def load(self) -> None:
        """Read and validate an existing artifact (for ``--resume``)."""
        try:
            with open(self.path) as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            raise CheckpointError(
                f"checkpoint {self.path!r} does not exist; run without "
                f"--resume to start a fresh campaign"
            )
        except (OSError, ValueError) as error:
            raise CheckpointError(
                f"checkpoint {self.path!r} is unreadable: {error}"
            )
        if not isinstance(payload, dict) or payload.get("version") != self.VERSION:
            raise CheckpointError(
                f"checkpoint {self.path!r} has an unsupported format"
            )
        if payload.get("fingerprint") != self.fingerprint:
            raise CheckpointError(
                f"checkpoint {self.path!r} belongs to a different campaign "
                f"(fault universe or netlist changed); run without --resume"
            )
        if payload.get("n_faults") != self.n_faults:
            raise CheckpointError(
                f"checkpoint {self.path!r} covers {payload.get('n_faults')} "
                f"faults, campaign has {self.n_faults}"
            )
        for entry in payload.get("ranges", []):
            try:
                start, stop = int(entry["start"]), int(entry["stop"])
                statuses = list(entry["statuses"])
            except (KeyError, TypeError, ValueError):
                raise CheckpointError(
                    f"checkpoint {self.path!r} has a malformed range entry"
                )
            if not (0 <= start < stop <= self.n_faults):
                raise CheckpointError(
                    f"checkpoint {self.path!r} range {start}:{stop} is out "
                    f"of bounds for {self.n_faults} faults"
                )
            if len(statuses) != stop - start or not all(
                s in VALID_STATUSES for s in statuses
            ):
                raise CheckpointError(
                    f"checkpoint {self.path!r} range {start}:{stop} holds "
                    f"corrupt statuses"
                )
            self.ranges[(start, stop)] = statuses

    def apply(self, statuses: List[Optional[str]]) -> int:
        """Fill ``statuses`` from the loaded ranges; returns the number
        of resumed chunks."""
        for (start, stop), values in self.ranges.items():
            statuses[start:stop] = values
        return len(self.ranges)

    def record(self, start: int, stop: int, values: Sequence[str]) -> None:
        self.ranges[(start, stop)] = list(values)
        self._flush()
        _M_CHECKPOINTS.inc()
        obs.event(
            "campaign.checkpoint",
            path=self.path,
            start=start,
            stop=stop,
            ranges=len(self.ranges),
        )

    def _flush(self) -> None:
        payload = {
            "version": self.VERSION,
            "fingerprint": self.fingerprint,
            "n_faults": self.n_faults,
            "ranges": [
                {"start": start, "stop": stop, "statuses": values}
                for (start, stop), values in sorted(self.ranges.items())
            ],
        }
        tmp = f"{self.path}.tmp"
        with open(tmp, "w") as handle:
            json.dump(payload, handle, indent=1)
            handle.write("\n")
        os.replace(tmp, self.path)


# ----------------------------------------------------------------------
# chunk tasks
# ----------------------------------------------------------------------
@dataclasses.dataclass
class _Task:
    start: int
    stop: int
    faults: List
    attempt: int = 0
    not_before: float = 0.0

    @property
    def key(self) -> str:
        return f"{self.start}:{self.stop}"


def _uncovered_runs(statuses: List[Optional[str]]) -> List[Tuple[int, int]]:
    """Maximal contiguous index ranges still lacking a status."""
    runs: List[Tuple[int, int]] = []
    i, n = 0, len(statuses)
    while i < n:
        if statuses[i] is None:
            j = i
            while j < n and statuses[j] is None:
                j += 1
            runs.append((i, j))
            i = j
        else:
            i += 1
    return runs


def default_chunk_faults(n_remaining: int, processes: Optional[int]) -> int:
    """Chunk size balancing checkpoint granularity against per-chunk
    overhead: roughly four chunks per worker lane."""
    lanes = max(processes or 1, 1)
    return max(1, -(-n_remaining // max(4 * lanes, 8)))


def _build_tasks(
    universe: Sequence,
    statuses: List[Optional[str]],
    chunk: int,
) -> List[_Task]:
    tasks: List[_Task] = []
    for run_start, run_stop in _uncovered_runs(statuses):
        for start in range(run_start, run_stop, chunk):
            stop = min(start + chunk, run_stop)
            tasks.append(_Task(start, stop, list(universe[start:stop])))
    return tasks


# ----------------------------------------------------------------------
# shared-memory baseline fan-out (parent side)
# ----------------------------------------------------------------------
def _baseline_line_bytes(n_inputs: int) -> int:
    """Bytes per packed line in the shared baseline buffer (whole
    64-bit words, minimum one word)."""
    return max(1, (1 << n_inputs) >> 6) * 8


def _create_shared_baseline(sweep):
    """Publish the parent's fault-free baseline for workers to attach.

    Returns ``(shm, name, line_bytes)``.  Raises the *narrow* set of
    failures shared memory can legitimately produce — ``ImportError``
    (no ``multiprocessing.shared_memory``), ``OSError`` (``/dev/shm``
    missing, quota, permissions), ``ValueError`` (bad size) — so the
    caller can record exactly why the ladder stepped down instead of
    swallowing everything.  Swapped out by chaos tests.
    """
    from multiprocessing import shared_memory

    baseline = sweep.bitmask.baseline()
    line_bytes = _baseline_line_bytes(sweep.n)
    payload = b"".join(
        value.to_bytes(line_bytes, "little") for value in baseline
    )
    shm = shared_memory.SharedMemory(create=True, size=max(len(payload), 1))
    shm.buf[: len(payload)] = payload
    return shm, shm.name, line_bytes


def _attach_shared_baseline(engine, shm_name: str, line_bytes: int) -> bool:
    """Worker side: adopt the parent's baseline from shared memory.

    Returns ``False`` (worker derives its own baseline — correctness
    unchanged, throughput degraded) only on the narrow attach failures;
    the supervisor records that as a ``fork+shm -> fork`` degradation.
    """
    try:
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=shm_name)
    except (ImportError, OSError, ValueError):
        return False
    try:
        buf = bytes(shm.buf)
    finally:
        shm.close()
    expected = len(engine.compiled.names) * line_bytes
    if len(buf) < expected:
        return False
    engine.bitmask._baseline = [
        int.from_bytes(buf[i * line_bytes : (i + 1) * line_bytes], "little")
        for i in range(len(engine.compiled.names))
    ]
    return True


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------
def _supervised_worker(conn, network, shm_name, line_bytes) -> None:
    """One fork worker: build an engine, then serve chunk jobs until a
    ``None`` shutdown sentinel (or the parent disappears)."""
    from . import NetworkEngine

    engine = NetworkEngine(network)
    shm_ok = True
    if shm_name is not None:
        shm_ok = _attach_shared_baseline(engine, shm_name, line_bytes)
    while True:
        try:
            job = conn.recv()
        except (EOFError, OSError):  # pragma: no cover - parent vanished
            break
        if job is None:
            break
        key, faults, backend, attempt = job
        hook = WORKER_CHUNK_HOOK
        try:
            with obs.span("worker.chunk", chunk=key, attempt=attempt):
                if hook is not None:
                    hook(key, attempt)
                statuses = chunk_statuses(engine, faults, backend)
        except Exception as error:  # reported, retried by the supervisor
            conn.send(
                (
                    "error",
                    key,
                    f"{type(error).__name__}: {error}",
                    shm_ok,
                    obs.drain_child_events(),
                )
            )
        else:
            # The drained buffer carries this chunk's spans back to the
            # parent, which merges them into the flight exactly once.
            conn.send(("ok", key, statuses, shm_ok, obs.drain_child_events()))
    conn.close()


class _Worker:
    __slots__ = ("process", "conn", "task", "deadline")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.task: Optional[_Task] = None
        self.deadline: Optional[float] = None


def _spawn_worker(ctx, network, shm_name, line_bytes) -> _Worker:
    parent_conn, child_conn = ctx.Pipe(duplex=True)
    process = ctx.Process(
        target=_supervised_worker,
        args=(child_conn, network, shm_name, line_bytes),
        daemon=True,
    )
    process.start()
    child_conn.close()
    return _Worker(process, parent_conn)


def _stop_worker(worker: _Worker) -> None:
    """Tear one worker down, escalating SIGTERM -> SIGKILL."""
    try:
        worker.conn.close()
    except OSError:  # pragma: no cover
        pass
    process = worker.process
    if process.is_alive():
        process.terminate()
        process.join(KILL_GRACE)
        if process.is_alive():
            process.kill()
            process.join(KILL_GRACE)
    else:
        process.join(0)


# ----------------------------------------------------------------------
# the supervised fork runtime
# ----------------------------------------------------------------------
class _ForkSupervisor:
    """Drives chunk tasks across replaceable fork workers."""

    def __init__(
        self,
        sweep,
        ctx,
        chosen: str,
        processes: int,
        timeout: Optional[float],
        report: CampaignReport,
        shm_name: Optional[str],
        line_bytes: int,
        complete: Callable[[_Task, List[str]], None],
    ) -> None:
        self.sweep = sweep
        self.ctx = ctx
        self.chosen = chosen
        self.processes = processes
        self.timeout = timeout
        self.report = report
        self.shm_name = shm_name
        self.line_bytes = line_bytes
        self.complete = complete
        self.workers: List[_Worker] = []
        self.pending: deque = deque()
        self.replaced = 0
        self._noted_attach_failure = False

    # -- lifecycle -----------------------------------------------------
    def run(self, tasks: List[_Task]) -> None:
        self.pending = deque(tasks)
        try:
            for _ in range(min(self.processes, max(len(tasks), 1))):
                self.workers.append(self._spawn())
            self._loop()
        finally:
            self._shutdown()

    def _spawn(self) -> _Worker:
        try:
            return _spawn_worker(
                self.ctx, self.sweep.network, self.shm_name, self.line_bytes
            )
        except OSError as error:
            raise _SupervisionFailure(f"cannot spawn fork worker: {error}")

    def _replace(self, worker: _Worker) -> None:
        _stop_worker(worker)
        self.replaced += 1
        self.report.workers_replaced += 1
        _M_REPLACED.inc()
        obs.event(
            "campaign.worker_replaced",
            worker_pid=worker.process.pid,
            replacements=self.replaced,
        )
        if self.replaced > _max_replacements(self.processes):
            self.workers.remove(worker)
            raise _SupervisionFailure(
                f"{self.replaced} worker replacements exceeded the limit"
            )
        index = self.workers.index(worker)
        self.workers[index] = self._spawn()

    def _shutdown(self) -> None:
        for worker in self.workers:
            try:
                worker.conn.send(None)
            except (OSError, ValueError):
                pass
        for worker in self.workers:
            _stop_worker(worker)
        self.workers = []

    # -- supervision loop ----------------------------------------------
    def _loop(self) -> None:
        from multiprocessing import connection as mp_connection

        while self.pending or any(w.task is not None for w in self.workers):
            now = time.monotonic()
            self._assign(now)
            busy = [w for w in self.workers if w.task is not None]
            if not busy:
                if self.pending:
                    delay = min(t.not_before for t in self.pending) - now
                    time.sleep(max(delay, 0.005))
                continue
            ready = mp_connection.wait(
                [w.conn for w in busy], timeout=POLL_SECONDS
            )
            for conn in ready:
                worker = next(w for w in busy if w.conn is conn)
                self._drain(worker)
            self._enforce_deadlines()

    def _assign(self, now: float) -> None:
        for worker in self.workers:
            if worker.task is not None or not self.pending:
                continue
            task = self._next_ready(now)
            if task is None:
                break
            try:
                worker.conn.send(
                    (task.key, task.faults, self.chosen, task.attempt)
                )
            except (OSError, ValueError) as error:
                # Worker died while idle: put the task back, replace it.
                self.pending.appendleft(task)
                self.report.retry(
                    task.key,
                    task.attempt,
                    f"worker unreachable at assignment: {error}",
                    "retried",
                )
                self._replace(worker)
                continue
            worker.task = task
            worker.deadline = (
                now + self.timeout if self.timeout is not None else None
            )

    def _next_ready(self, now: float) -> Optional[_Task]:
        for _ in range(len(self.pending)):
            task = self.pending.popleft()
            if task.not_before <= now:
                return task
            self.pending.append(task)
        return None

    def _drain(self, worker: _Worker) -> None:
        try:
            message = worker.conn.recv()
        except (EOFError, OSError):
            self._on_death(worker)
            return
        kind, key, payload, shm_ok, worker_events = message
        if worker_events:
            recorder = obs.get_recorder()
            if recorder is not None:
                recorder.merge(worker_events)
        if not shm_ok:
            self._note_attach_failure()
        task, worker.task, worker.deadline = worker.task, None, None
        if task is None or key != task.key:  # pragma: no cover - stale
            return
        if kind == "ok" and len(payload) == len(task.faults):
            self.complete(task, payload)
        else:
            reason = (
                f"chunk raised: {payload}"
                if kind == "error"
                else "malformed chunk result"
            )
            self._requeue(task, reason)

    def _on_death(self, worker: _Worker) -> None:
        task, worker.task, worker.deadline = worker.task, None, None
        self._replace(worker)
        if task is not None:
            self._requeue(task, "worker died mid-chunk")

    def _enforce_deadlines(self) -> None:
        now = time.monotonic()
        for worker in self.workers:
            if worker.task is None:
                continue
            if worker.deadline is not None and now >= worker.deadline:
                task, worker.task, worker.deadline = worker.task, None, None
                self._replace(worker)
                self._requeue(
                    task, f"timeout after {self.timeout:g}s"
                )
            elif not worker.process.is_alive():
                self._on_death(worker)

    def _note_attach_failure(self) -> None:
        if not self._noted_attach_failure:
            self._noted_attach_failure = True
            self.report.degrade(
                "fork+shm",
                "fork",
                "a worker could not attach the shared-memory baseline "
                "and re-derived it locally",
            )

    # -- retry policy ---------------------------------------------------
    def _requeue(self, task: _Task, reason: str) -> None:
        task.attempt += 1
        now = time.monotonic()
        if task.attempt >= MAX_CHUNK_ATTEMPTS:
            if task.stop - task.start > 1:
                # Re-chunk smaller: a repeatedly failing chunk is split
                # so one poisoned fault cannot sink its neighbours.
                mid = (task.start + task.stop) // 2
                cut = mid - task.start
                left = _Task(task.start, mid, task.faults[:cut])
                right = _Task(mid, task.stop, task.faults[cut:])
                self.report.retry(task.key, task.attempt, reason, "split")
                self.report.chunks_total += 1
                self.pending.appendleft(right)
                self.pending.appendleft(left)
            else:
                # A single fault that keeps failing runs in the parent,
                # stepping down the block ladder if it must.
                self.report.retry(
                    task.key, task.attempt, reason, "parent-serial"
                )
                statuses = _parent_serial_chunk(
                    self.sweep, task.faults, self.chosen, self.report
                )
                self.complete(task, statuses)
        else:
            task.not_before = now + min(
                BACKOFF_BASE * (2 ** (task.attempt - 1)), BACKOFF_CAP
            )
            self.report.retry(task.key, task.attempt, reason, "retried")
            self.pending.append(task)


def _parent_serial_chunk(sweep, faults, chosen, report) -> List[str]:
    """Classify one chunk in the parent, degrading serial -> scalar on a
    block-backend failure (recorded, never swallowed)."""
    try:
        return chunk_statuses(sweep.engine, faults, chosen)
    except Exception as error:
        if chosen == "bitmask":
            raise
        report.degrade(
            "serial",
            "scalar",
            f"{chosen} block backend failed: "
            f"{type(error).__name__}: {error}",
        )
        return chunk_statuses(sweep.engine, faults, "bitmask")


# ----------------------------------------------------------------------
# the campaign driver
# ----------------------------------------------------------------------
def run_campaign(
    sweep,
    universe: Sequence,
    chosen: str,
    processes: Optional[int] = None,
    timeout: Optional[float] = None,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    chunk_faults: Optional[int] = None,
    abort_after_chunks: Optional[int] = None,
) -> Tuple[List[str], CampaignReport]:
    """Run one supervised campaign; returns ``(statuses, report)``.

    ``chosen`` is a resolved block-backend name (``bitmask`` /
    ``vectorized`` / ``fallback``).  ``abort_after_chunks`` is the
    interruption hook used by tests and drills: the campaign raises
    :class:`CampaignInterrupted` after that many newly simulated chunks,
    leaving the checkpoint resumable.

    One :class:`~repro.obs.Stopwatch` times the whole campaign;
    ``report.wall_seconds`` is assigned exactly once from it, and the
    flight's ``campaign.report`` event carries that same value, so the
    two records cannot disagree.
    """
    watch = obs.Stopwatch()
    with obs.span(
        "campaign.run",
        faults=len(universe),
        backend=chosen,
        processes=processes or 0,
    ):
        statuses, report = _run_campaign(
            sweep,
            universe,
            chosen,
            processes=processes,
            timeout=timeout,
            checkpoint=checkpoint,
            resume=resume,
            chunk_faults=chunk_faults,
            abort_after_chunks=abort_after_chunks,
        )
    report.wall_seconds = watch.elapsed()
    if _REG.enabled:
        _M_WALL.observe(report.wall_seconds)
        for status in VALID_STATUSES:
            count = sum(1 for s in statuses if s == status)
            if count:
                _M_FAULTS.inc(count, status=status)
    obs.event("campaign.report", **report.to_dict())
    return statuses, report


def _run_campaign(
    sweep,
    universe: Sequence,
    chosen: str,
    processes: Optional[int] = None,
    timeout: Optional[float] = None,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    chunk_faults: Optional[int] = None,
    abort_after_chunks: Optional[int] = None,
) -> Tuple[List[str], CampaignReport]:
    n = len(universe)
    want_fork = bool(processes and processes > 1)
    report = CampaignReport(
        requested=(f"fork+shm:{chosen}" if want_fork else _serial_rung(chosen)),
        block_backend=chosen,
        faults=n,
        checkpoint_path=checkpoint,
    )
    statuses: List[Optional[str]] = [None] * n

    if resume and checkpoint is None:
        raise CheckpointError("resume requires a checkpoint path")
    store: Optional[CampaignCheckpoint] = None
    if checkpoint is not None:
        store = CampaignCheckpoint(
            checkpoint, universe_fingerprint(universe, sweep.n), n
        )
        if resume:
            store.load()
            report.chunks_resumed = store.apply(statuses)
            report.chunks_total += report.chunks_resumed

    abort_state = (
        {"remaining": abort_after_chunks}
        if abort_after_chunks is not None
        else None
    )

    def complete(task: _Task, values: List[str]) -> None:
        statuses[task.start : task.stop] = values
        report.chunks_completed += 1
        if _REG.enabled:
            _M_CHUNKS_DONE.inc()
        obs.event("campaign.chunk", chunk=task.key, n=len(values))
        if store is not None:
            store.record(task.start, task.stop, values)
        if abort_state is not None:
            abort_state["remaining"] -= 1
            if abort_state["remaining"] <= 0:
                raise CampaignInterrupted(
                    f"campaign interrupted after "
                    f"{report.chunks_completed} chunks (checkpoint "
                    f"{checkpoint!r} is resumable)"
                )

    n_remaining = sum(1 for s in statuses if s is None)
    if n_remaining == 0:
        # Everything came from the checkpoint (or the universe is empty).
        report.backend = "resumed" if report.chunks_resumed else _serial_rung(chosen)
        return [s for s in statuses], report

    # Degenerate-fan-out guard: never fork more lanes than chunks.
    use_fork = want_fork and n_remaining >= 4 * processes
    if want_fork and not use_fork:
        report.degrade(
            "fork+shm",
            "serial" if chosen != "bitmask" else "scalar",
            f"{n_remaining} remaining faults cannot amortize {processes} "
            f"fork workers (need >= {4 * processes}); running in-process",
        )
    chunk = chunk_faults or default_chunk_faults(
        n_remaining, processes if use_fork else None
    )
    tasks = _build_tasks(universe, statuses, chunk)
    report.chunks_total += len(tasks)

    forked = False
    if use_fork:
        forked = _try_forked(
            sweep, tasks, chosen, processes, timeout, report, complete
        )
        if not forked and chosen == "bitmask" and n_remaining >= VECTOR_MIN_FAULTS:
            # Serve the bulk request on the serial block backend rather
            # than degrading all the way to the per-fault scalar loop.
            chosen = "vectorized" if HAVE_NUMPY else "fallback"
            report.block_backend = chosen

    if not forked:
        chosen = _serial_fill(
            sweep, universe, statuses, chosen, report, store, complete, chunk
        )
        report.block_backend = chosen
        report.backend = _serial_rung(chosen)
    else:
        rung = (
            "fork"
            if any(
                d.frm == "fork+shm" and d.to == "fork"
                for d in report.degradations
            )
            else "fork+shm"
        )
        report.backend = f"{rung}:{chosen}"

    missing = [i for i, s in enumerate(statuses) if s is None]
    if missing:  # pragma: no cover - defended invariant
        raise RuntimeError(
            f"campaign finished with {len(missing)} unclassified faults"
        )
    return [s for s in statuses], report


def _serial_rung(chosen: str) -> str:
    return f"scalar:{chosen}" if chosen == "bitmask" else f"serial:{chosen}"


def _try_forked(
    sweep,
    tasks: List[_Task],
    chosen: str,
    processes: int,
    timeout: Optional[float],
    report: CampaignReport,
    complete: Callable[[_Task, List[str]], None],
) -> bool:
    """Attempt the fork rungs; returns False (with the degradation
    recorded) when the campaign must continue serially."""
    try:
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
    except (ImportError, ValueError) as error:
        report.degrade(
            "fork+shm",
            "serial",
            f"fork start method unavailable: {error}; serving the batch "
            f"on the serial block backend",
        )
        return False

    shm = None
    shm_name: Optional[str] = None
    line_bytes = 8
    try:
        shm, shm_name, line_bytes = _create_shared_baseline(sweep)
    except (ImportError, OSError, ValueError) as error:
        report.degrade(
            "fork+shm",
            "fork",
            f"shared-memory baseline unavailable: "
            f"{type(error).__name__}: {error}; workers re-derive it",
        )
    supervisor = _ForkSupervisor(
        sweep,
        ctx,
        chosen,
        processes,
        timeout,
        report,
        shm_name,
        line_bytes,
        complete,
    )
    try:
        supervisor.run(tasks)
        return True
    except _SupervisionFailure as error:
        rung = (
            "fork"
            if any(
                d.frm == "fork+shm" and d.to == "fork"
                for d in report.degradations
            )
            else "fork+shm"
        )
        report.degrade(
            rung,
            "serial",
            f"supervised fork runtime failed: {error}; salvaging "
            f"completed chunks and finishing serially",
        )
        return False
    finally:
        if shm is not None:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass


def _serial_fill(
    sweep,
    universe: Sequence,
    statuses: List[Optional[str]],
    chosen: str,
    report: CampaignReport,
    store: Optional[CampaignCheckpoint],
    complete: Callable[[_Task, List[str]], None],
    chunk: int,
) -> str:
    """Classify every still-uncovered fault in-process, stepping down to
    the scalar rung on a block-backend failure.  Returns the backend
    that finished the job."""
    tasks = _build_tasks(universe, statuses, chunk)
    # _build_tasks was already counted for the fork attempt; only count
    # tasks that re-chunked differently after a partial fork salvage.
    already = report.chunks_completed + report.chunks_resumed
    report.chunks_total = already + len(tasks)
    for task in tasks:
        try:
            values = chunk_statuses(sweep.engine, task.faults, chosen)
        except Exception as error:
            if chosen == "bitmask":
                raise
            report.degrade(
                "serial",
                "scalar",
                f"{chosen} block backend failed: "
                f"{type(error).__name__}: {error}",
            )
            chosen = "bitmask"
            values = chunk_statuses(sweep.engine, task.faults, chosen)
        complete(task, values)
    return chosen
