"""Supervised fault-campaign runtime: retries, timeouts, checkpoints.

:mod:`repro.engine.campaign` makes sweeps fast; this module makes them
survive.  A long campaign over a large fault universe dies in boring
ways — a worker segfaults or is OOM-killed, a chunk hangs on a
pathological cone, shared memory is unavailable inside a container —
and an all-or-nothing ``pool.map`` turns any of those into a lost
campaign.  :func:`run_campaign` replaces it with per-chunk supervision:

* the universe is split into **chunk tasks** (contiguous index ranges),
  each with a configurable ``timeout``;
* a failed or hung chunk is retried with exponential backoff and, on
  repeat failure, **split in half** so a single poisoned fault cannot
  hold a whole chunk hostage;
* an idle lane **steals** half of the largest long-running chunk
  instead of going to waste, so one slow shard cannot serialize the
  tail of a campaign;
* a dead worker is **replaced** instead of killing the sweep, and a
  runtime that cannot keep workers alive salvages every completed
  chunk and finishes the remainder serially;
* completed chunks are **checkpointed** to a JSON artifact so an
  interrupted campaign can resume without re-simulating them, with
  byte-identical statuses (classification is per-fault deterministic,
  so chunking never changes results).

This module owns *policy* only.  Execution mechanics — where chunks
actually run — live behind the :class:`repro.engine.transport.Transport`
seam, with four fabrics: ``inline`` (in-process), ``fork`` and
``fork+shm`` (forked workers, optionally attaching the parent's
baseline through shared memory), and ``socket`` (``python -m repro
worker`` subprocesses over TCP/Unix sockets).  Every step down the
**degradation ladder** —

    ``socket`` → ``fork+shm`` → ``fork`` → ``serial`` → ``scalar``

— is recorded as a :class:`Degradation` in the :class:`CampaignReport`
instead of being swallowed by a bare ``except``.

Chaos hooks (:data:`WORKER_CHUNK_HOOK`, swapped by
:mod:`repro.qa.chaos`) let the test suite SIGKILL a worker, hang a
chunk, drop a socket, or deny shared memory mid-campaign and assert the
sweep still finishes with statuses identical to the serial path.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import obs
from .transport import (
    ChunkTask,
    SubmitFailed,
    Transport,
    TransportFailure,
    TransportUnavailable,
    create_transport,
)
from .vectorized import HAVE_NUMPY, VECTOR_MIN_FAULTS, chunk_statuses

# Telemetry: campaign-level counters are incremented by the supervising
# parent (workers keep their own process-local registries, which die
# with them — their per-chunk detail travels as flight-recorder events
# over the result channel instead).
_REG = obs.REGISTRY
_M_CHUNKS_DONE = _REG.counter(
    "repro_campaign_chunks_total", "Chunks completed, by campaign outcome"
)
_M_RETRIES = _REG.counter(
    "repro_campaign_retries_total", "Chunk retries, by supervisor action"
)
_M_DEGRADATIONS = _REG.counter(
    "repro_campaign_degradations_total", "Ladder steps down, by rung edge"
)
_M_REPLACED = _REG.counter(
    "repro_campaign_workers_replaced_total", "Dead workers replaced"
)
_M_CHECKPOINTS = _REG.counter(
    "repro_campaign_checkpoint_writes_total", "Checkpoint chunk flushes"
)
_M_FAULTS = _REG.counter(
    "repro_campaign_faults_total", "Faults classified by campaigns, by status"
)
_M_STEALS = _REG.counter(
    "repro_campaign_steals_total", "Chunk halves stolen by idle lanes"
)
_M_CANCELLED = _REG.counter(
    "repro_campaign_cancelled_total",
    "Campaigns cancelled cooperatively, by reason kind",
)
_M_WALL = _REG.histogram(
    "repro_campaign_wall_seconds", "End-to-end campaign wall time"
)

#: Attempts on one chunk before it is split (multi-fault chunks) or
#: escalated to the parent's serial path (single-fault chunks).
MAX_CHUNK_ATTEMPTS = 3

#: Worker replacements tolerated before the runtime concludes workers
#: cannot be kept alive and degrades to the serial rung.
def _max_replacements(lanes: int) -> int:
    return max(2 * lanes, 4)

#: Exponential-backoff schedule for chunk retries (seconds).
BACKOFF_BASE = 0.05
BACKOFF_CAP = 2.0

#: Supervision poll interval: deadline precision and the latency of
#: noticing a dead worker (seconds).
POLL_SECONDS = 0.05

#: How long a chunk must have been in flight, with the queue empty and
#: a lane idle, before half of it is stolen (seconds).
STEAL_AGE_SECONDS = 0.2

#: Statuses a checkpoint may legally contain.
VALID_STATUSES = frozenset({"dangerous", "detected", "silent"})

#: Test/chaos seam: when set, every worker calls this with
#: ``(chunk_key, attempt)`` before classifying the chunk.  Fork workers
#: inherit the value at spawn time, so arming it in the parent sabotages
#: the children; socket workers arm it from the environment at startup
#: (see :func:`repro.qa.chaos.sabotage_campaign`).
WORKER_CHUNK_HOOK: Optional[Callable[[str, int], None]] = None


class CheckpointError(ValueError):
    """A checkpoint artifact is unreadable or belongs to a different
    campaign (wrong fault universe, corrupted statuses)."""


class CampaignInterrupted(RuntimeError):
    """Raised when a campaign stops early on purpose (the
    ``abort_after_chunks`` hook); the checkpoint holds every chunk
    completed so far and ``--resume`` picks up from it."""


class CampaignCancelled(RuntimeError):
    """Raised when a campaign's :class:`CancelToken` fires — an explicit
    cancel (client gone, server draining) or a blown deadline.  Like
    :class:`CampaignInterrupted`, every chunk completed before the
    cancellation is already in the checkpoint, so a later run resumes
    byte-identically."""


class CancelToken:
    """Cooperative cancellation threaded from a caller (the ``repro
    serve`` HTTP layer) into :func:`run_campaign`'s supervision loop.

    The token fires when :meth:`cancel` is called from any thread, or —
    with ``deadline_s`` set — once the deadline has elapsed.  The
    supervision loop checks it once per poll interval, so a running
    campaign stops and frees its transport lanes within roughly
    :data:`POLL_SECONDS` plus the cost of the chunk currently in flight.
    Reads and writes are simple attribute operations (atomic under the
    GIL); no lock is needed.
    """

    __slots__ = ("_cancelled", "_reason", "_deadline", "deadline_s")

    def __init__(self, deadline_s: Optional[float] = None) -> None:
        self._cancelled = False
        self._reason = "cancelled"
        self.deadline_s = deadline_s
        self._deadline = (
            time.monotonic() + deadline_s if deadline_s is not None else None
        )

    def cancel(self, reason: str = "cancelled") -> None:
        """Fire the token (idempotent; the first reason wins)."""
        if not self._cancelled:
            self._reason = reason
            self._cancelled = True

    @property
    def cancelled(self) -> bool:
        if self._cancelled:
            return True
        if self._deadline is not None and time.monotonic() >= self._deadline:
            self.cancel(f"deadline exceeded after {self.deadline_s:g}s")
            return True
        return False

    @property
    def reason(self) -> str:
        return self._reason

    def check(self) -> None:
        """Raise :class:`CampaignCancelled` if the token has fired."""
        if self.cancelled:
            raise CampaignCancelled(self._reason)


class _SupervisionFailure(RuntimeError):
    """The worker runtime cannot make progress (workers cannot be
    spawned or kept alive); completed chunks are salvaged on a lower
    rung."""


# ----------------------------------------------------------------------
# report structures
# ----------------------------------------------------------------------
@dataclasses.dataclass
class Degradation:
    """One step down the ladder, with the reason it was taken."""

    frm: str
    to: str
    reason: str


@dataclasses.dataclass
class RetryEvent:
    """One chunk failure and what the supervisor did about it."""

    chunk: str  #: index range ``"start:stop"``
    attempt: int
    reason: str
    action: str  #: ``retried`` | ``split`` | ``parent-serial``


@dataclasses.dataclass
class CampaignReport:
    """Structured account of how a sweep actually ran.

    ``backend`` is the ladder rung plus block backend that served the
    bulk of the campaign (e.g. ``"fork+shm:vectorized"``,
    ``"socket:vectorized"``, ``"serial:fallback"``,
    ``"scalar:bitmask"``, or ``"resumed"`` when every chunk came from
    the checkpoint); ``block_backend`` is the final resolved
    block-backend name alone.  ``degradations`` lists every ladder step
    down with its reason — an empty list means the requested mode is
    exactly what ran.  ``steals`` counts chunk halves re-assigned to
    idle lanes by the work-stealing scheduler.
    """

    requested: str
    backend: str = ""
    block_backend: str = ""
    faults: int = 0
    chunks_total: int = 0
    chunks_completed: int = 0
    chunks_resumed: int = 0
    workers_replaced: int = 0
    steals: int = 0
    degradations: List[Degradation] = dataclasses.field(default_factory=list)
    retries: List[RetryEvent] = dataclasses.field(default_factory=list)
    wall_seconds: float = 0.0
    checkpoint_path: Optional[str] = None

    def degrade(self, frm: str, to: str, reason: str) -> None:
        self.degradations.append(Degradation(frm, to, reason))
        _M_DEGRADATIONS.inc(frm=frm, to=to)
        obs.event("campaign.degradation", frm=frm, to=to, reason=reason)

    def retry(self, chunk: str, attempt: int, reason: str, action: str) -> None:
        """Record one chunk failure (report, metrics, and flight)."""
        self.retries.append(RetryEvent(chunk, attempt, reason, action))
        _M_RETRIES.inc(action=action)
        obs.event(
            "campaign.retry",
            chunk=chunk,
            attempt=attempt,
            reason=reason,
            action=action,
        )

    @property
    def degraded(self) -> bool:
        return bool(self.degradations)

    def to_dict(self) -> dict:
        return {
            "requested": self.requested,
            "backend": self.backend,
            "block_backend": self.block_backend,
            "faults": self.faults,
            "chunks_total": self.chunks_total,
            "chunks_completed": self.chunks_completed,
            "chunks_resumed": self.chunks_resumed,
            "workers_replaced": self.workers_replaced,
            "steals": self.steals,
            "degradations": [dataclasses.asdict(d) for d in self.degradations],
            "retries": [dataclasses.asdict(r) for r in self.retries],
            "wall_seconds": self.wall_seconds,
            "checkpoint": self.checkpoint_path,
        }

    def summary(self) -> str:
        lines = [
            f"campaign: {self.faults} faults via {self.backend} "
            f"(requested {self.requested}) in {self.wall_seconds:.3f}s",
            f"  chunks: {self.chunks_completed} simulated, "
            f"{self.chunks_resumed} resumed of {self.chunks_total}",
        ]
        if self.workers_replaced:
            lines.append(f"  workers replaced: {self.workers_replaced}")
        if self.steals:
            lines.append(f"  chunks stolen by idle lanes: {self.steals}")
        for event in self.retries:
            lines.append(
                f"  retry [{event.chunk}] attempt {event.attempt}: "
                f"{event.reason} -> {event.action}"
            )
        for deg in self.degradations:
            lines.append(f"  degraded {deg.frm} -> {deg.to}: {deg.reason}")
        if not self.degradations:
            lines.append("  no degradations")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# checkpoint artifact
# ----------------------------------------------------------------------
def describe_fault(fault) -> str:
    describe = getattr(fault, "describe", None)
    return describe() if callable(describe) else repr(fault)


def universe_fingerprint(universe: Sequence, n_inputs: int) -> str:
    """Identity of a campaign: the ordered fault universe plus the
    input width.  Statuses are backend-independent, so this is all a
    checkpoint needs to match to be resumable."""
    digest = hashlib.sha256()
    digest.update(f"n_inputs={n_inputs}".encode())
    for fault in universe:
        digest.update(b"\x00" + describe_fault(fault).encode())
    return digest.hexdigest()


class CampaignCheckpoint:
    """Completed chunk statuses, flushed to JSON after every chunk.

    The artifact maps contiguous index ranges of the ordered fault
    universe to their statuses; resuming fills those ranges and
    re-chunks only the uncovered remainder, so chunk-size changes
    between runs cannot corrupt a resume.
    """

    VERSION = 1

    def __init__(self, path: str, fingerprint: str, n_faults: int) -> None:
        self.path = path
        self.fingerprint = fingerprint
        self.n_faults = n_faults
        self.ranges: Dict[Tuple[int, int], List[str]] = {}

    def load(self) -> None:
        """Read and validate an existing artifact (for ``--resume``)."""
        try:
            with open(self.path) as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            raise CheckpointError(
                f"checkpoint {self.path!r} does not exist; run without "
                f"--resume to start a fresh campaign"
            )
        except (OSError, ValueError) as error:
            raise CheckpointError(
                f"checkpoint {self.path!r} is unreadable: {error}"
            )
        if not isinstance(payload, dict) or payload.get("version") != self.VERSION:
            raise CheckpointError(
                f"checkpoint {self.path!r} has an unsupported format"
            )
        if payload.get("fingerprint") != self.fingerprint:
            raise CheckpointError(
                f"checkpoint {self.path!r} belongs to a different campaign "
                f"(fault universe or netlist changed); run without --resume"
            )
        if payload.get("n_faults") != self.n_faults:
            raise CheckpointError(
                f"checkpoint {self.path!r} covers {payload.get('n_faults')} "
                f"faults, campaign has {self.n_faults}"
            )
        for entry in payload.get("ranges", []):
            try:
                start, stop = int(entry["start"]), int(entry["stop"])
                statuses = list(entry["statuses"])
            except (KeyError, TypeError, ValueError):
                raise CheckpointError(
                    f"checkpoint {self.path!r} has a malformed range entry"
                )
            if not (0 <= start < stop <= self.n_faults):
                raise CheckpointError(
                    f"checkpoint {self.path!r} range {start}:{stop} is out "
                    f"of bounds for {self.n_faults} faults"
                )
            if len(statuses) != stop - start or not all(
                s in VALID_STATUSES for s in statuses
            ):
                raise CheckpointError(
                    f"checkpoint {self.path!r} range {start}:{stop} holds "
                    f"corrupt statuses"
                )
            self.ranges[(start, stop)] = statuses

    def apply(self, statuses: List[Optional[str]]) -> int:
        """Fill ``statuses`` from the loaded ranges; returns the number
        of resumed chunks."""
        for (start, stop), values in self.ranges.items():
            statuses[start:stop] = values
        return len(self.ranges)

    def record(self, start: int, stop: int, values: Sequence[str]) -> None:
        self.ranges[(start, stop)] = list(values)
        self._flush()
        _M_CHECKPOINTS.inc()
        obs.event(
            "campaign.checkpoint",
            path=self.path,
            start=start,
            stop=stop,
            ranges=len(self.ranges),
        )

    def _flush(self) -> None:
        payload = {
            "version": self.VERSION,
            "fingerprint": self.fingerprint,
            "n_faults": self.n_faults,
            "ranges": [
                {"start": start, "stop": stop, "statuses": values}
                for (start, stop), values in sorted(self.ranges.items())
            ],
        }
        # Atomic flush: a kill at any instant leaves either the previous
        # complete artifact or the new one, never a truncated JSON that
        # would poison --resume.  The fsync makes the rename durable.
        tmp = f"{self.path}.tmp"
        with open(tmp, "w") as handle:
            json.dump(payload, handle, indent=1)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.path)


# ----------------------------------------------------------------------
# chunk tasks
# ----------------------------------------------------------------------
@dataclasses.dataclass
class _Task:
    start: int
    stop: int
    faults: List
    attempt: int = 0
    not_before: float = 0.0

    @property
    def key(self) -> str:
        return f"{self.start}:{self.stop}"


def _uncovered_runs(statuses: List[Optional[str]]) -> List[Tuple[int, int]]:
    """Maximal contiguous index ranges still lacking a status."""
    runs: List[Tuple[int, int]] = []
    i, n = 0, len(statuses)
    while i < n:
        if statuses[i] is None:
            j = i
            while j < n and statuses[j] is None:
                j += 1
            runs.append((i, j))
            i = j
        else:
            i += 1
    return runs


def default_chunk_faults(n_remaining: int, processes: Optional[int]) -> int:
    """Chunk size balancing checkpoint granularity against per-chunk
    overhead: roughly four chunks per worker lane."""
    lanes = max(processes or 1, 1)
    return max(1, -(-n_remaining // max(4 * lanes, 8)))


def _build_tasks(
    universe: Sequence,
    statuses: List[Optional[str]],
    chunk: int,
) -> List[_Task]:
    tasks: List[_Task] = []
    for run_start, run_stop in _uncovered_runs(statuses):
        for start in range(run_start, run_stop, chunk):
            stop = min(start + chunk, run_stop)
            tasks.append(_Task(start, stop, list(universe[start:stop])))
    return tasks


def _parent_serial_chunk(sweep, faults, chosen, report) -> List[str]:
    """Classify one chunk in the parent, degrading serial -> scalar on a
    block-backend failure (recorded, never swallowed)."""
    try:
        return chunk_statuses(sweep.engine, faults, chosen)
    except Exception as error:
        if chosen in ("bitmask", "synth"):
            # bitmask has nowhere lower to go; synth chunks are not
            # fault sweeps and must never degrade onto the scalar path.
            raise
        report.degrade(
            "serial",
            "scalar",
            f"{chosen} block backend failed: "
            f"{type(error).__name__}: {error}",
        )
        return chunk_statuses(sweep.engine, faults, "bitmask")


# ----------------------------------------------------------------------
# the transport-agnostic supervision loop
# ----------------------------------------------------------------------
class _Inflight:
    """Parent-side record of one submitted chunk.  ``sent_key`` and
    ``sent_len`` are snapshotted at submit time: work stealing may
    shrink ``task`` while the lane is still computing the original
    range, and the (full-width) result is matched against the snapshot,
    then sliced to the surviving width."""

    __slots__ = ("task", "deadline", "started", "sent_key", "sent_len")

    def __init__(self, task: _Task, deadline: Optional[float],
                 started: float) -> None:
        self.task = task
        self.deadline = deadline
        self.started = started
        self.sent_key = task.key
        self.sent_len = len(task.faults)


class _TransportSupervisor:
    """Drives chunk tasks through any :class:`Transport`.

    Owns every piece of policy: backoff retries, split-on-repeat-failure,
    per-chunk deadlines, lane replacement with a global cap, work
    stealing, the inline serial->scalar step-down, and flight-recorder
    merging.  The transport only moves tasks and results.
    """

    def __init__(
        self,
        sweep,
        transport: Transport,
        chosen: str,
        timeout: Optional[float],
        report: CampaignReport,
        complete: Callable[[_Task, List[str]], None],
        cancel: Optional[CancelToken] = None,
    ) -> None:
        self.sweep = sweep
        self.transport = transport
        self.chosen = chosen
        self.timeout = None if transport.in_process else timeout
        self.report = report
        self.complete = complete
        self.cancel = cancel
        self.pending: deque = deque()
        self.inflight: Dict[int, _Inflight] = {}
        self.replaced = 0
        self._noted_attach_failure = False

    def run(self, tasks: List[_Task]) -> None:
        """Drive ``tasks`` to completion; the transport must already be
        started and is always shut down on the way out."""
        self.pending = deque(tasks)
        try:
            self._loop()
        finally:
            self.transport.shutdown()

    # -- supervision loop ----------------------------------------------
    def _loop(self) -> None:
        while self.pending or self.inflight:
            if self.cancel is not None:
                self.cancel.check()
            now = time.monotonic()
            self._assign(now)
            self._maybe_steal(now)
            if not self.inflight:
                if self.pending:
                    delay = min(t.not_before for t in self.pending) - now
                    time.sleep(max(delay, 0.005))
                continue
            for result in self.transport.poll(POLL_SECONDS):
                self._handle(result)
            self._enforce_deadlines()

    def _assign(self, now: float) -> None:
        while self.pending and self.transport.free_lanes > 0:
            task = self._next_ready(now)
            if task is None:
                break
            try:
                lane = self.transport.submit(
                    ChunkTask(task.key, task.faults, self.chosen, task.attempt)
                )
            except SubmitFailed as error:
                # Worker died while idle: put the task back, replace it.
                self.pending.appendleft(task)
                self.report.retry(task.key, task.attempt, str(error), "retried")
                self._replace_lane(error.lane)
                continue
            deadline = now + self.timeout if self.timeout is not None else None
            self.inflight[lane] = _Inflight(task, deadline, now)

    def _next_ready(self, now: float) -> Optional[_Task]:
        for _ in range(len(self.pending)):
            task = self.pending.popleft()
            if task.not_before <= now:
                return task
            self.pending.append(task)
        return None

    def _maybe_steal(self, now: float) -> None:
        """Re-assign half of the widest long-running chunk to an idle
        lane.  The victim lane keeps computing its original range; its
        result is sliced to the surviving half on arrival, so statuses
        stay byte-identical while the tail stops serializing the sweep.
        """
        if (
            self.transport.in_process
            or self.pending
            or self.transport.free_lanes <= 0
        ):
            return
        victim: Optional[_Inflight] = None
        for entry in self.inflight.values():
            if entry.task.stop - entry.task.start < 2:
                continue
            if now - entry.started < STEAL_AGE_SECONDS:
                continue
            if (
                victim is None
                or entry.task.stop - entry.task.start
                > victim.task.stop - victim.task.start
            ):
                victim = entry
        if victim is None:
            return
        task = victim.task
        mid = (task.start + task.stop) // 2
        cut = mid - task.start
        stolen = _Task(mid, task.stop, task.faults[cut:])
        task.stop = mid
        task.faults = task.faults[:cut]
        victim.started = now  # restart the age clock for this victim
        self.pending.append(stolen)
        self.report.chunks_total += 1
        self.report.steals += 1
        _M_STEALS.inc()
        obs.event(
            "campaign.steal",
            victim=victim.sent_key,
            chunk=stolen.key,
            n=len(stolen.faults),
        )

    def _handle(self, result) -> None:
        if result.events:
            recorder = obs.get_recorder()
            if recorder is not None:
                recorder.merge(result.events)
        if not result.shm_ok:
            self._note_attach_failure()
        entry = self.inflight.get(result.lane)
        if result.kind == "died":
            self.inflight.pop(result.lane, None)
            self._replace_lane(result.lane)
            if entry is not None:
                self._requeue(entry.task, "worker died mid-chunk")
            return
        if entry is None or result.key != entry.sent_key:
            return  # pragma: no cover - stale reply from a replaced lane
        del self.inflight[result.lane]
        task = entry.task
        if result.kind == "ok" and len(result.payload) == entry.sent_len:
            self.complete(task, list(result.payload[: task.stop - task.start]))
        elif result.kind == "error" and self.transport.in_process:
            self._inline_error(task, result)
        else:
            reason = (
                f"chunk raised: {result.payload}"
                if result.kind == "error"
                else "malformed chunk result"
            )
            self._requeue(task, reason)

    def _inline_error(self, task: _Task, result) -> None:
        """The in-process rung has no worker to blame: a block-backend
        failure steps the whole remainder down to the scalar rung once;
        the scalar rung itself has nowhere lower to go (and synth
        fitness chunks, which are not fault sweeps, never step down)."""
        if self.chosen in ("bitmask", "synth"):
            if result.error is not None:
                raise result.error
            raise RuntimeError(str(result.payload))  # pragma: no cover
        self.report.degrade(
            "serial",
            "scalar",
            f"{self.chosen} block backend failed: {result.payload}",
        )
        self.chosen = "bitmask"
        task.not_before = 0.0
        self.pending.appendleft(task)

    def _enforce_deadlines(self) -> None:
        now = time.monotonic()
        for lane in list(self.inflight):
            entry = self.inflight[lane]
            if entry.deadline is not None and now >= entry.deadline:
                del self.inflight[lane]
                self._replace_lane(lane)
                self._requeue(entry.task, f"timeout after {self.timeout:g}s")

    def _replace_lane(self, lane: int) -> None:
        self.replaced += 1
        self.report.workers_replaced += 1
        _M_REPLACED.inc()
        obs.event(
            "campaign.worker_replaced",
            worker_pid=self.transport.lane_pid(lane),
            replacements=self.replaced,
        )
        if self.replaced > _max_replacements(self.transport.lanes):
            raise _SupervisionFailure(
                f"{self.replaced} worker replacements exceeded the limit"
            )
        try:
            self.transport.replace(lane)
        except TransportFailure as error:
            raise _SupervisionFailure(str(error))

    def _note_attach_failure(self) -> None:
        if not self._noted_attach_failure:
            self._noted_attach_failure = True
            self.report.degrade(
                "fork+shm",
                "fork",
                "a worker could not attach the shared-memory baseline "
                "and re-derived it locally",
            )

    # -- retry policy ---------------------------------------------------
    def _requeue(self, task: _Task, reason: str) -> None:
        task.attempt += 1
        now = time.monotonic()
        if task.attempt >= MAX_CHUNK_ATTEMPTS:
            if task.stop - task.start > 1:
                # Re-chunk smaller: a repeatedly failing chunk is split
                # so one poisoned fault cannot sink its neighbours.
                mid = (task.start + task.stop) // 2
                cut = mid - task.start
                left = _Task(task.start, mid, task.faults[:cut])
                right = _Task(mid, task.stop, task.faults[cut:])
                self.report.retry(task.key, task.attempt, reason, "split")
                self.report.chunks_total += 1
                self.pending.appendleft(right)
                self.pending.appendleft(left)
            else:
                # A single fault that keeps failing runs in the parent,
                # stepping down the block ladder if it must.
                self.report.retry(
                    task.key, task.attempt, reason, "parent-serial"
                )
                statuses = _parent_serial_chunk(
                    self.sweep, task.faults, self.chosen, self.report
                )
                self.complete(task, statuses)
        else:
            task.not_before = now + min(
                BACKOFF_BASE * (2 ** (task.attempt - 1)), BACKOFF_CAP
            )
            self.report.retry(task.key, task.attempt, reason, "retried")
            self.pending.append(task)


# ----------------------------------------------------------------------
# the campaign driver
# ----------------------------------------------------------------------
def run_campaign(
    sweep,
    universe: Sequence,
    chosen: str,
    processes: Optional[int] = None,
    timeout: Optional[float] = None,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    chunk_faults: Optional[int] = None,
    abort_after_chunks: Optional[int] = None,
    transport: str = "auto",
    cancel: Optional[CancelToken] = None,
) -> Tuple[List[str], CampaignReport]:
    """Run one supervised campaign; returns ``(statuses, report)``.

    ``chosen`` is a resolved block-backend name (``bitmask`` /
    ``vectorized`` / ``fallback``).  ``transport`` picks the execution
    fabric: ``auto`` (fork workers when ``processes > 1``, in-process
    otherwise), ``inline``, ``fork``, ``fork+shm``, or ``socket``.
    ``abort_after_chunks`` is the interruption hook used by tests and
    drills: the campaign raises :class:`CampaignInterrupted` after that
    many newly simulated chunks, leaving the checkpoint resumable.
    ``cancel`` is a :class:`CancelToken` checked once per supervision
    poll interval; when it fires the campaign raises
    :class:`CampaignCancelled` (after shutting its transport down and
    recording a ``campaign.cancelled`` flight event), with every
    completed chunk already checkpointed.

    One :class:`~repro.obs.Stopwatch` times the whole campaign;
    ``report.wall_seconds`` is assigned exactly once from it, and the
    flight's ``campaign.report`` event carries that same value, so the
    two records cannot disagree.
    """
    watch = obs.Stopwatch()
    with obs.span(
        "campaign.run",
        faults=len(universe),
        backend=chosen,
        processes=processes or 0,
        transport=transport,
    ):
        try:
            statuses, report = _run_campaign(
                sweep,
                universe,
                chosen,
                processes=processes,
                timeout=timeout,
                checkpoint=checkpoint,
                resume=resume,
                chunk_faults=chunk_faults,
                abort_after_chunks=abort_after_chunks,
                transport=transport,
                cancel=cancel,
            )
        except CampaignCancelled as error:
            kind = (
                "deadline"
                if str(error).startswith("deadline exceeded")
                else "explicit"
            )
            _M_CANCELLED.inc(kind=kind)
            obs.event(
                "campaign.cancelled",
                reason=str(error),
                wall_seconds=watch.elapsed(),
            )
            raise
    report.wall_seconds = watch.elapsed()
    if _REG.enabled:
        _M_WALL.observe(report.wall_seconds)
        for status in VALID_STATUSES:
            count = sum(1 for s in statuses if s == status)
            if count:
                _M_FAULTS.inc(count, status=status)
    obs.event("campaign.report", **report.to_dict())
    return statuses, report


#: Worker-rung ladders by requested transport: each rung is tried in
#: order, with a recorded degradation between steps; the serial rungs
#: (always available, in-process) are the implicit floor.
_LADDERS = {
    "auto": ("fork+shm",),
    "fork+shm": ("fork+shm",),
    "fork": ("fork",),
    "socket": ("socket", "fork+shm"),
    "inline": (),
}


def _run_campaign(
    sweep,
    universe: Sequence,
    chosen: str,
    processes: Optional[int] = None,
    timeout: Optional[float] = None,
    checkpoint: Optional[str] = None,
    resume: bool = False,
    chunk_faults: Optional[int] = None,
    abort_after_chunks: Optional[int] = None,
    transport: str = "auto",
    cancel: Optional[CancelToken] = None,
) -> Tuple[List[str], CampaignReport]:
    if cancel is not None:
        cancel.check()
    if transport not in _LADDERS:
        raise ValueError(
            f"unknown transport {transport!r}; "
            f"expected one of {sorted(_LADDERS)}"
        )
    n = len(universe)
    lanes = max(processes or 1, 1)
    want_workers = (
        transport in ("fork", "fork+shm", "socket")
        or (transport == "auto" and lanes > 1)
    )
    requested_rung = _LADDERS[transport][0] if want_workers else None
    report = CampaignReport(
        requested=(
            f"{requested_rung}:{chosen}"
            if want_workers
            else _serial_rung(chosen)
        ),
        block_backend=chosen,
        faults=n,
        checkpoint_path=checkpoint,
    )
    statuses: List[Optional[str]] = [None] * n

    if resume and checkpoint is None:
        raise CheckpointError("resume requires a checkpoint path")
    store: Optional[CampaignCheckpoint] = None
    if checkpoint is not None:
        store = CampaignCheckpoint(
            checkpoint, universe_fingerprint(universe, sweep.n), n
        )
        if resume:
            store.load()
            report.chunks_resumed = store.apply(statuses)
            report.chunks_total += report.chunks_resumed

    abort_state = (
        {"remaining": abort_after_chunks}
        if abort_after_chunks is not None
        else None
    )

    def complete(task: _Task, values: List[str]) -> None:
        statuses[task.start : task.stop] = values
        report.chunks_completed += 1
        if _REG.enabled:
            _M_CHUNKS_DONE.inc()
        obs.event("campaign.chunk", chunk=task.key, n=len(values))
        if store is not None:
            store.record(task.start, task.stop, values)
        if abort_state is not None:
            abort_state["remaining"] -= 1
            if abort_state["remaining"] <= 0:
                raise CampaignInterrupted(
                    f"campaign interrupted after "
                    f"{report.chunks_completed} chunks (checkpoint "
                    f"{checkpoint!r} is resumable)"
                )

    n_remaining = sum(1 for s in statuses if s is None)
    if n_remaining == 0:
        # Everything came from the checkpoint (or the universe is empty).
        report.backend = "resumed" if report.chunks_resumed else _serial_rung(chosen)
        return [s for s in statuses], report

    # Degenerate-fan-out guard: never spawn more lanes than chunks can
    # amortize.
    use_workers = want_workers and n_remaining >= 4 * lanes
    if want_workers and not use_workers:
        report.degrade(
            requested_rung,
            "serial" if chosen != "bitmask" else "scalar",
            f"{n_remaining} remaining faults cannot amortize {lanes} "
            f"{requested_rung} workers (need >= {4 * lanes}); running "
            f"in-process",
        )
    chunk = chunk_faults or default_chunk_faults(
        n_remaining, lanes if use_workers else None
    )
    tasks = _build_tasks(universe, statuses, chunk)
    report.chunks_total += len(tasks)

    served_rung: Optional[str] = None
    if use_workers:
        served_rung = _try_worker_rungs(
            sweep,
            _LADDERS[transport],
            chosen,
            min(lanes, max(len(tasks), 1)),
            timeout,
            report,
            complete,
            lambda: _build_tasks(universe, statuses, chunk),
            tasks,
            cancel,
        )
        n_left = sum(1 for s in statuses if s is None)
        if (
            served_rung is None
            and chosen == "bitmask"
            and n_left >= VECTOR_MIN_FAULTS
        ):
            # Serve the bulk remainder on the serial block backend rather
            # than degrading all the way to the per-fault scalar loop.
            chosen = "vectorized" if HAVE_NUMPY else "fallback"
            report.block_backend = chosen

    if served_rung is None:
        chosen = _serial_fill(
            sweep, universe, statuses, chosen, report, complete, chunk, cancel
        )
        report.block_backend = chosen
        report.backend = _serial_rung(chosen)
    else:
        report.backend = f"{served_rung}:{chosen}"

    missing = [i for i, s in enumerate(statuses) if s is None]
    if missing:  # pragma: no cover - defended invariant
        raise RuntimeError(
            f"campaign finished with {len(missing)} unclassified faults"
        )
    return [s for s in statuses], report


def _serial_rung(chosen: str) -> str:
    return f"scalar:{chosen}" if chosen == "bitmask" else f"serial:{chosen}"


def _try_worker_rungs(
    sweep,
    rungs: Sequence[str],
    chosen: str,
    lanes: int,
    timeout: Optional[float],
    report: CampaignReport,
    complete: Callable[[_Task, List[str]], None],
    remaining_tasks: Callable[[], List[_Task]],
    first_tasks: List[_Task],
    cancel: Optional[CancelToken] = None,
) -> Optional[str]:
    """Walk the worker rungs of the ladder; returns the rung that served
    the campaign, or ``None`` (with every degradation recorded) when the
    remainder must be finished in-process."""
    tasks = first_tasks
    for index, rung in enumerate(rungs):
        if tasks is None:
            # A previous rung completed some chunks before failing:
            # re-chunk the uncovered remainder and fix the ledger.
            tasks = remaining_tasks()
            report.chunks_total = (
                report.chunks_completed
                + report.chunks_resumed
                + len(tasks)
            )
            if not tasks:
                return rung
        next_rung = rungs[index + 1] if index + 1 < len(rungs) else "serial"
        fabric = create_transport(
            rung,
            sweep,
            lanes,
            on_degrade=report.degrade,
            tracing=obs.get_recorder() is not None,
        )
        try:
            fabric.start()
        except TransportUnavailable as error:
            if next_rung == "serial":
                report.degrade(
                    rung,
                    "serial",
                    f"{error}; serving the batch on the serial block "
                    f"backend",
                )
            else:
                report.degrade(
                    rung,
                    next_rung,
                    f"{error}; stepping down to {next_rung} workers",
                )
            continue
        supervisor = _TransportSupervisor(
            sweep, fabric, chosen, timeout, report, complete, cancel
        )
        try:
            supervisor.run(tasks)
            return _served_rung(fabric, report)
        except _SupervisionFailure as error:
            served = _served_rung(fabric, report)
            tail = (
                "finishing serially"
                if next_rung == "serial"
                else f"finishing on {next_rung} workers"
            )
            report.degrade(
                served,
                next_rung,
                f"supervised {served} runtime failed: {error}; salvaging "
                f"completed chunks and {tail}",
            )
            tasks = None
    return None


def _served_rung(fabric: Transport, report: CampaignReport) -> str:
    """The ladder rung a worker transport actually served: ``fork+shm``
    collapses to ``fork`` when any worker fell back to re-deriving the
    baseline locally."""
    rung = fabric.rung
    if rung == "fork+shm" and any(
        d.frm == "fork+shm" and d.to == "fork" for d in report.degradations
    ):
        rung = "fork"
    return rung


def _serial_fill(
    sweep,
    universe: Sequence,
    statuses: List[Optional[str]],
    chosen: str,
    report: CampaignReport,
    complete: Callable[[_Task, List[str]], None],
    chunk: int,
    cancel: Optional[CancelToken] = None,
) -> str:
    """Classify every still-uncovered fault in-process through the
    inline transport, stepping down to the scalar rung on a
    block-backend failure.  Returns the backend that finished the job."""
    from .transport import InlineTransport

    tasks = _build_tasks(universe, statuses, chunk)
    # _build_tasks was already counted for the worker attempt; only count
    # tasks that re-chunked differently after a partial salvage.
    already = report.chunks_completed + report.chunks_resumed
    report.chunks_total = already + len(tasks)
    if not tasks:
        return chosen
    fabric = InlineTransport(sweep.engine)
    fabric.start()
    supervisor = _TransportSupervisor(
        sweep, fabric, chosen, None, report, complete, cancel
    )
    supervisor.run(tasks)
    return supervisor.chosen


# ----------------------------------------------------------------------
# the generation-batch seam (synthesis campaigns)
# ----------------------------------------------------------------------
def run_generation_batch(
    sweep,
    tasks: Sequence,
    processes: Optional[int] = None,
    timeout: Optional[float] = None,
    transport: str = "auto",
    cancel: Optional[CancelToken] = None,
    chunk_tasks: Optional[int] = None,
) -> Tuple[List[str], CampaignReport]:
    """Evaluate one generation of synthesis candidates as a supervised
    campaign; returns ``(payloads, report)``.

    ``tasks`` are candidate-evaluation dicts (see
    :func:`repro.synth.fitness.evaluate_chunk`) and each returned payload
    is the matching JSON-encoded fitness record, in order.  The batch
    rides the exact same supervision machinery as fault campaigns — the
    transport ladder, per-chunk timeouts, retries with splitting, work
    stealing, dead-worker replacement — under the reserved ``synth``
    chunk backend, which never degrades to the scalar fault path.
    ``sweep`` hosts the transport (its network seeds fork/socket
    workers) but takes no part in scoring: every candidate compiles its
    own engine inside the worker.

    Unlike :func:`run_campaign` this emits a ``synth.batch`` span rather
    than a ``campaign.report`` flight event — a synthesis run makes one
    call per generation, and the campaign-level story is told by the
    ``synth.*`` events the driver emits instead.
    """
    watch = obs.Stopwatch()
    batch = list(tasks)
    with obs.span(
        "synth.batch",
        candidates=len(batch),
        processes=processes or 0,
        transport=transport,
    ):
        payloads, report = _run_campaign(
            sweep,
            batch,
            "synth",
            processes=processes,
            timeout=timeout,
            chunk_faults=chunk_tasks,
            transport=transport,
            cancel=cancel,
        )
    report.wall_seconds = watch.elapsed()
    return payloads, report
