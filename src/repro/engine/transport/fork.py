"""The fork transport: chunk lanes across forked worker processes.

This is the machinery that used to live inline in
``repro.engine.supervisor`` (``_ForkSupervisor`` / ``_spawn_worker`` /
the pipe result channel), now behind the :class:`Transport` seam.  Two
rungs share one implementation:

* ``fork+shm`` — the parent publishes its fault-free baseline through
  :mod:`multiprocessing.shared_memory`; workers attach instead of
  re-deriving it.  Allocation or attach failure steps down to plain
  ``fork`` *inside* the running transport (recorded through the
  supervisor's ``on_degrade`` callback — the sweep never restarts for
  it).
* ``fork`` — workers re-derive the baseline; correctness identical.

Workers classify through the supervisor module's ``chunk_statuses``
seam and honour :data:`repro.engine.supervisor.WORKER_CHUNK_HOOK`, both
looked up late so the chaos suite's patches reach forked children
exactly as they always did (fork inherits the armed parent state).
"""

from __future__ import annotations

import time
from typing import List, Optional

from ... import obs
from .base import (
    ChunkResult,
    ChunkTask,
    SubmitFailed,
    Transport,
    TransportFailure,
    TransportUnavailable,
)

#: Grace given to SIGTERM before a hung worker is SIGKILLed (seconds).
KILL_GRACE = 0.25


# ----------------------------------------------------------------------
# shared-memory baseline fan-out (parent side)
# ----------------------------------------------------------------------
def _baseline_line_bytes(n_inputs: int) -> int:
    """Bytes per packed line in the shared baseline buffer (whole
    64-bit words, minimum one word)."""
    return max(1, (1 << n_inputs) >> 6) * 8


def _create_shared_baseline(sweep):
    """Publish the parent's fault-free baseline for workers to attach.

    Returns ``(shm, name, line_bytes)``.  Raises the *narrow* set of
    failures shared memory can legitimately produce — ``ImportError``
    (no ``multiprocessing.shared_memory``), ``OSError`` (``/dev/shm``
    missing, quota, permissions), ``ValueError`` (bad size) — so the
    caller can record exactly why the ladder stepped down instead of
    swallowing everything.  Swapped out by chaos tests.
    """
    from multiprocessing import shared_memory

    baseline = sweep.bitmask.baseline()
    line_bytes = _baseline_line_bytes(sweep.n)
    payload = b"".join(
        value.to_bytes(line_bytes, "little") for value in baseline
    )
    shm = shared_memory.SharedMemory(create=True, size=max(len(payload), 1))
    shm.buf[: len(payload)] = payload
    return shm, shm.name, line_bytes


def _attach_shared_baseline(engine, shm_name: str, line_bytes: int) -> bool:
    """Worker side: adopt the parent's baseline from shared memory.

    Returns ``False`` (worker derives its own baseline — correctness
    unchanged, throughput degraded) only on the narrow attach failures;
    the supervisor records that as a ``fork+shm -> fork`` degradation.
    The adopted baseline is installed as an immutable tuple, same as a
    locally derived one.
    """
    try:
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=shm_name)
    except (ImportError, OSError, ValueError):
        return False
    try:
        buf = bytes(shm.buf)
    finally:
        shm.close()
    expected = len(engine.compiled.names) * line_bytes
    if len(buf) < expected:
        return False
    engine.bitmask._baseline = tuple(
        int.from_bytes(buf[i * line_bytes : (i + 1) * line_bytes], "little")
        for i in range(len(engine.compiled.names))
    )
    return True


# ----------------------------------------------------------------------
# worker process
# ----------------------------------------------------------------------
def run_chunk_jobs(conn, engine, shm_ok: bool = True,
                   drain=obs.drain_child_events) -> None:
    """Serve chunk jobs on ``conn`` until a ``None`` shutdown sentinel
    (or the parent disappears).  Shared by the fork and socket workers:
    job messages are ``(key, faults, backend, attempt)`` tuples, replies
    are ``(kind, key, payload, shm_ok, events)``.

    The supervisor module is consulted late for both the chunk hook and
    ``chunk_statuses`` so chaos patches stay effective inside workers.
    ``drain`` yields the worker's buffered flight events per chunk
    (fork workers use the inherited recorder's child buffer; socket
    workers install their own recorder and drain it directly).
    """
    from .. import supervisor as _sup

    while True:
        try:
            job = conn.recv()
        except (EOFError, OSError):  # pragma: no cover - parent vanished
            break
        if job is None:
            break
        key, faults, backend, attempt = job
        hook = _sup.WORKER_CHUNK_HOOK
        try:
            with obs.span("worker.chunk", chunk=key, attempt=attempt):
                if hook is not None:
                    hook(key, attempt)
                statuses = _sup.chunk_statuses(engine, faults, backend)
        except Exception as error:  # reported, retried by the supervisor
            conn.send(
                (
                    "error",
                    key,
                    f"{type(error).__name__}: {error}",
                    shm_ok,
                    drain(),
                )
            )
        else:
            # The drained buffer carries this chunk's spans back to the
            # parent, which merges them into the flight exactly once.
            conn.send(("ok", key, statuses, shm_ok, drain()))
    conn.close()


def _forked_worker(conn, network, shm_name, line_bytes) -> None:
    """One fork worker: build an engine, attach the shared baseline if
    offered, then serve chunk jobs."""
    from .. import NetworkEngine

    engine = NetworkEngine(network)
    shm_ok = True
    if shm_name is not None:
        shm_ok = _attach_shared_baseline(engine, shm_name, line_bytes)
    run_chunk_jobs(conn, engine, shm_ok=shm_ok)


class _Lane:
    __slots__ = ("process", "conn", "busy", "dead")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.busy = False
        self.dead = False


def _stop_lane(lane: _Lane) -> None:
    """Tear one worker down, escalating SIGTERM -> SIGKILL."""
    try:
        lane.conn.close()
    except OSError:  # pragma: no cover
        pass
    process = lane.process
    if process.is_alive():
        process.terminate()
        process.join(KILL_GRACE)
        if process.is_alive():
            process.kill()
            process.join(KILL_GRACE)
    else:
        process.join(0)


class ForkTransport(Transport):
    """Replaceable fork-worker lanes over duplex pipes."""

    in_process = False

    def __init__(self, sweep, lanes: int, use_shm: bool = True,
                 on_degrade=None) -> None:
        self.sweep = sweep
        self.lanes = max(lanes, 1)
        self.use_shm = use_shm
        self.on_degrade = on_degrade
        self.name = "fork+shm" if use_shm else "fork"
        self._ctx = None
        self._lanes: List[_Lane] = []
        self._tasks: List[Optional[ChunkTask]] = []
        self._shm = None
        self._shm_name: Optional[str] = None
        self._line_bytes = 8

    @property
    def rung(self) -> str:
        return "fork+shm" if self._shm_name is not None else "fork"

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        try:
            import multiprocessing

            self._ctx = multiprocessing.get_context("fork")
        except (ImportError, ValueError) as error:
            raise TransportUnavailable(
                f"fork start method unavailable: {error}"
            )
        if self.use_shm:
            try:
                self._shm, self._shm_name, self._line_bytes = (
                    _create_shared_baseline(self.sweep)
                )
            except (ImportError, OSError, ValueError) as error:
                self._shm, self._shm_name = None, None
                if self.on_degrade is not None:
                    self.on_degrade(
                        "fork+shm",
                        "fork",
                        f"shared-memory baseline unavailable: "
                        f"{type(error).__name__}: {error}; workers "
                        f"re-derive it",
                    )
        try:
            for _ in range(self.lanes):
                self._lanes.append(self._spawn())
                self._tasks.append(None)
        except TransportFailure:
            self.shutdown()
            raise

    def _spawn(self) -> _Lane:
        try:
            parent_conn, child_conn = self._ctx.Pipe(duplex=True)
            process = self._ctx.Process(
                target=_forked_worker,
                args=(
                    child_conn,
                    self.sweep.network,
                    self._shm_name,
                    self._line_bytes,
                ),
                daemon=True,
            )
            process.start()
        except OSError as error:
            raise TransportFailure(f"cannot spawn fork worker: {error}")
        child_conn.close()
        return _Lane(process, parent_conn)

    def replace(self, lane: int) -> None:
        _stop_lane(self._lanes[lane])
        self._tasks[lane] = None
        self._lanes[lane] = self._spawn()

    def shutdown(self) -> None:
        for entry in self._lanes:
            try:
                entry.conn.send(None)
            except (OSError, ValueError):
                pass
        for entry in self._lanes:
            _stop_lane(entry)
        self._lanes = []
        self._tasks = []
        if self._shm is not None:
            self._shm.close()
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
            self._shm = None

    # -- task flow -----------------------------------------------------
    @property
    def free_lanes(self) -> int:
        return sum(
            1
            for entry in self._lanes
            if not entry.busy and not entry.dead
        )

    def lane_pid(self, lane: int) -> Optional[int]:
        return self._lanes[lane].process.pid

    def submit(self, task: ChunkTask) -> int:
        for index, entry in enumerate(self._lanes):
            if entry.busy or entry.dead:
                continue
            try:
                entry.conn.send(
                    (task.key, task.faults, task.backend, task.attempt)
                )
            except (OSError, ValueError) as error:
                entry.dead = True
                raise SubmitFailed(
                    index, f"worker unreachable at assignment: {error}"
                )
            entry.busy = True
            self._tasks[index] = task
            return index
        raise RuntimeError("no free lane")  # pragma: no cover - defended

    def poll(self, timeout: float) -> List[ChunkResult]:
        from multiprocessing import connection as mp_connection

        busy = [
            (i, entry)
            for i, entry in enumerate(self._lanes)
            if entry.busy and not entry.dead
        ]
        if not busy:
            time.sleep(min(timeout, 0.005))
            return []
        ready = mp_connection.wait(
            [entry.conn for _i, entry in busy], timeout=timeout
        )
        results: List[ChunkResult] = []
        for index, entry in busy:
            if entry.conn in ready:
                results.extend(self._drain(index, entry))
            elif not entry.process.is_alive():
                results.append(self._death(index, entry))
        return results

    def _drain(self, index: int, entry: _Lane) -> List[ChunkResult]:
        try:
            message = entry.conn.recv()
        except (EOFError, OSError):
            return [self._death(index, entry)]
        kind, key, payload, shm_ok, events = message
        entry.busy = False
        self._tasks[index] = None
        return [
            ChunkResult(
                kind, key, index, payload=payload, shm_ok=shm_ok,
                events=events,
            )
        ]

    def _death(self, index: int, entry: _Lane) -> ChunkResult:
        entry.dead = True
        entry.busy = False
        task, self._tasks[index] = self._tasks[index], None
        return ChunkResult(
            "died", task.key if task else None, index,
            payload="worker died mid-chunk",
        )
