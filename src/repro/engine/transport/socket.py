"""The socket transport: ``python -m repro worker`` lanes over sockets.

The stepping stone from one machine's fork pool to a multi-host fabric:
the supervisor listens on a Unix socket (or TCP on ``127.0.0.1``),
spawns ``python -m repro worker --connect <spec>`` subprocesses, and
drives them with exactly the message shapes the fork transport uses —
``(key, faults, backend, attempt)`` jobs, ``(kind, key, payload,
shm_ok, events)`` replies — framed and pickled by
:class:`multiprocessing.connection.Connection` over the socket.

Workers authenticate with a per-campaign shared secret delivered
through the ``REPRO_WORKER_TOKEN`` environment variable (never on the
command line, where it would leak via ``ps``).  A worker that connects
without the right token is dropped before any netlist is exchanged.

Unlike fork workers, socket workers are *spawned* interpreters: they
inherit no parent state, so the netlist travels over the connection
(``("init", network, tracing)``) and chaos sabotage is armed through
the environment (``REPRO_CHAOS_KIND`` / ``REPRO_CHAOS_ONCE`` — see
:func:`repro.qa.chaos.sabotage_campaign`) instead of an inherited hook.
"""

from __future__ import annotations

import os
import secrets
import socket as _socket
import subprocess
import sys
import tempfile
import time
from typing import List, Optional

from .base import (
    ChunkResult,
    ChunkTask,
    SubmitFailed,
    Transport,
    TransportError,
    TransportFailure,
    TransportUnavailable,
)
from .fork import KILL_GRACE, run_chunk_jobs

#: Seconds a freshly spawned worker gets to connect and say hello
#: (a cold interpreter importing repro + NumPy needs a moment).
CONNECT_TIMEOUT = 20.0

#: Environment variable carrying the shared connection secret.
TOKEN_ENV = "REPRO_WORKER_TOKEN"

#: The worker's live connection, published for the chaos suite
#: (``socket-dropped`` closes it mid-chunk and leaves the process up).
CURRENT_CONNECTION = None


def _wrap(sock) -> "object":
    """An accepted/raw socket as a pickling, pollable Connection."""
    from multiprocessing import connection as mp_connection

    return mp_connection.Connection(sock.detach())


class _Lane:
    __slots__ = ("process", "conn", "busy", "dead")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.busy = False
        self.dead = False


def _stop_lane(lane: _Lane) -> None:
    if lane.conn is not None:
        try:
            lane.conn.close()
        except OSError:  # pragma: no cover
            pass
    process = lane.process
    if process is not None and process.poll() is None:
        process.terminate()
        try:
            process.wait(KILL_GRACE)
        except subprocess.TimeoutExpired:
            process.kill()
            try:
                process.wait(KILL_GRACE)
            except subprocess.TimeoutExpired:  # pragma: no cover
                pass


class SocketTransport(Transport):
    """``repro worker`` subprocess lanes over an authenticated socket."""

    name = "socket"
    in_process = False

    def __init__(self, sweep, lanes: int, address: Optional[str] = None,
                 tracing: bool = False) -> None:
        self.sweep = sweep
        self.lanes = max(lanes, 1)
        self.address = address
        self.tracing = tracing
        self._token = secrets.token_hex(16)
        self._listener: Optional[_socket.socket] = None
        self._spec: Optional[str] = None
        self._tmpdir: Optional[str] = None
        self._lanes: List[_Lane] = []
        self._tasks: List[Optional[ChunkTask]] = []

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        try:
            self._listen()
        except OSError as error:
            raise TransportUnavailable(
                f"socket transport cannot listen: {error}"
            )
        try:
            for _ in range(self.lanes):
                self._lanes.append(self._spawn())
                self._tasks.append(None)
        except TransportError as error:
            self.shutdown()
            raise TransportUnavailable(str(error))

    def _listen(self) -> None:
        if self.address is not None:
            host, _, port = self.address.partition(":")
            listener = _socket.socket(_socket.AF_INET)
            listener.setsockopt(
                _socket.SOL_SOCKET, _socket.SO_REUSEADDR, 1
            )
            listener.bind((host, int(port or 0)))
            bound = listener.getsockname()
            self._spec = f"tcp:{bound[0]}:{bound[1]}"
        elif hasattr(_socket, "AF_UNIX"):
            self._tmpdir = tempfile.mkdtemp(prefix="repro-transport-")
            path = os.path.join(self._tmpdir, "campaign.sock")
            listener = _socket.socket(_socket.AF_UNIX)
            listener.bind(path)
            self._spec = f"unix:{path}"
        else:  # pragma: no cover - non-unix fallback
            listener = _socket.socket(_socket.AF_INET)
            listener.bind(("127.0.0.1", 0))
            bound = listener.getsockname()
            self._spec = f"tcp:{bound[0]}:{bound[1]}"
        listener.listen(self.lanes + 2)
        listener.settimeout(0.25)
        self._listener = listener

    def _worker_env(self) -> dict:
        env = dict(os.environ)
        env[TOKEN_ENV] = self._token
        # The spawned interpreter must find the repro package even when
        # the repo runs uninstalled from a source tree.
        import repro

        src_root = os.path.dirname(os.path.dirname(repro.__file__))
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src_root if not existing
            else src_root + os.pathsep + existing
        )
        return env

    def _spawn(self) -> _Lane:
        try:
            process = subprocess.Popen(
                [sys.executable, "-m", "repro", "worker",
                 "--connect", self._spec],
                env=self._worker_env(),
                stdin=subprocess.DEVNULL,
            )
        except OSError as error:
            raise TransportFailure(f"cannot spawn socket worker: {error}")
        conn = self._accept(process)
        try:
            conn.send(("init", self.sweep.network, self.tracing))
            if not conn.poll(CONNECT_TIMEOUT):
                raise TransportFailure("socket worker never became ready")
            ready = conn.recv()
        except (OSError, EOFError, ValueError) as error:
            _stop_lane(_Lane(process, conn))
            raise TransportFailure(
                f"socket worker failed during init: {error}"
            )
        if not (isinstance(ready, tuple) and ready[:1] == ("ready",)):
            _stop_lane(_Lane(process, conn))
            raise TransportFailure(
                f"socket worker sent a bad ready message: {ready!r}"
            )
        return _Lane(process, conn)

    def _accept(self, process):
        """One authenticated worker connection, or a TransportFailure."""
        deadline = time.monotonic() + CONNECT_TIMEOUT
        while time.monotonic() < deadline:
            if process.poll() is not None:
                raise TransportFailure(
                    f"socket worker exited with code {process.returncode} "
                    f"before connecting"
                )
            try:
                sock, _peer = self._listener.accept()
            except _socket.timeout:
                continue
            except OSError as error:  # pragma: no cover
                raise TransportFailure(f"accept failed: {error}")
            conn = _wrap(sock)
            try:
                if not conn.poll(CONNECT_TIMEOUT):
                    raise EOFError("no hello")
                hello = conn.recv()
            except (EOFError, OSError, ValueError):
                conn.close()
                continue
            if (
                isinstance(hello, tuple)
                and len(hello) == 2
                and hello[0] == "hello"
                and secrets.compare_digest(str(hello[1]), self._token)
            ):
                return conn
            conn.close()  # wrong secret: drop before sharing anything
        raise TransportFailure(
            f"socket worker did not connect within {CONNECT_TIMEOUT:g}s"
        )

    def replace(self, lane: int) -> None:
        _stop_lane(self._lanes[lane])
        self._tasks[lane] = None
        self._lanes[lane] = self._spawn()

    def shutdown(self) -> None:
        for entry in self._lanes:
            try:
                entry.conn.send(None)
            except (OSError, ValueError):
                pass
        for entry in self._lanes:
            _stop_lane(entry)
        self._lanes = []
        self._tasks = []
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass
            self._listener = None
        if self._tmpdir is not None:
            try:
                os.unlink(os.path.join(self._tmpdir, "campaign.sock"))
                os.rmdir(self._tmpdir)
            except OSError:  # pragma: no cover
                pass
            self._tmpdir = None

    # -- task flow -----------------------------------------------------
    @property
    def free_lanes(self) -> int:
        return sum(
            1 for entry in self._lanes if not entry.busy and not entry.dead
        )

    def lane_pid(self, lane: int) -> Optional[int]:
        return self._lanes[lane].process.pid

    def submit(self, task: ChunkTask) -> int:
        for index, entry in enumerate(self._lanes):
            if entry.busy or entry.dead:
                continue
            try:
                entry.conn.send(
                    (task.key, task.faults, task.backend, task.attempt)
                )
            except (OSError, ValueError) as error:
                entry.dead = True
                raise SubmitFailed(
                    index, f"worker unreachable at assignment: {error}"
                )
            entry.busy = True
            self._tasks[index] = task
            return index
        raise RuntimeError("no free lane")  # pragma: no cover - defended

    def poll(self, timeout: float) -> List[ChunkResult]:
        from multiprocessing import connection as mp_connection

        busy = [
            (i, entry)
            for i, entry in enumerate(self._lanes)
            if entry.busy and not entry.dead
        ]
        if not busy:
            time.sleep(min(timeout, 0.005))
            return []
        ready = mp_connection.wait(
            [entry.conn for _i, entry in busy], timeout=timeout
        )
        results: List[ChunkResult] = []
        for index, entry in busy:
            if entry.conn in ready:
                results.extend(self._drain(index, entry))
            elif entry.process.poll() is not None:
                results.append(self._death(index, entry))
        return results

    def _drain(self, index: int, entry: _Lane) -> List[ChunkResult]:
        try:
            message = entry.conn.recv()
        except (EOFError, OSError):
            return [self._death(index, entry)]
        kind, key, payload, shm_ok, events = message
        entry.busy = False
        self._tasks[index] = None
        return [
            ChunkResult(
                kind, key, index, payload=payload, shm_ok=shm_ok,
                events=events,
            )
        ]

    def _death(self, index: int, entry: _Lane) -> ChunkResult:
        entry.dead = True
        entry.busy = False
        task, self._tasks[index] = self._tasks[index], None
        return ChunkResult(
            "died", task.key if task else None, index,
            payload="worker died mid-chunk",
        )


# ----------------------------------------------------------------------
# worker entry point (``python -m repro worker``)
# ----------------------------------------------------------------------
def _connect(spec: str):
    """Dial a ``unix:PATH`` or ``tcp:HOST:PORT`` connection spec."""
    kind, _, rest = spec.partition(":")
    if kind == "unix":
        sock = _socket.socket(_socket.AF_UNIX)
        sock.connect(rest)
    elif kind == "tcp":
        host, _, port = rest.rpartition(":")
        sock = _socket.socket(_socket.AF_INET)
        sock.connect((host, int(port)))
    else:
        raise ValueError(
            f"bad --connect spec {spec!r}; use unix:PATH or tcp:HOST:PORT"
        )
    return _wrap(sock)


def run_worker(spec: str, token: Optional[str] = None) -> int:
    """Serve campaign chunks to the supervisor at ``spec`` until it
    hangs up.  The shared secret comes from ``token`` or the
    ``REPRO_WORKER_TOKEN`` environment variable.

    Returns a process exit code (0 on a clean hangup).
    """
    global CURRENT_CONNECTION

    token = token if token is not None else os.environ.get(TOKEN_ENV)
    if not token:
        print(
            f"repro worker: no connection token; set {TOKEN_ENV}",
            file=sys.stderr,
        )
        return 2
    try:
        conn = _connect(spec)
    except (OSError, ValueError) as error:
        print(f"repro worker: cannot connect {spec!r}: {error}",
              file=sys.stderr)
        return 2
    CURRENT_CONNECTION = conn

    from ...qa.chaos import install_env_sabotage

    install_env_sabotage()  # spawned workers read chaos arming from env

    try:
        conn.send(("hello", token))
        if not conn.poll(CONNECT_TIMEOUT):
            raise EOFError("no init from supervisor")
        message = conn.recv()
    except (EOFError, OSError) as error:
        print(f"repro worker: handshake failed: {error}", file=sys.stderr)
        return 2
    if not (isinstance(message, tuple) and message[:1] == ("init",)):
        print(f"repro worker: bad init message: {message!r}",
              file=sys.stderr)
        return 2
    _kind, network, tracing = message

    from ... import obs
    from .. import NetworkEngine

    engine = NetworkEngine(network)
    drain = obs.drain_child_events
    if tracing:
        # A spawned worker inherits no recorder: install a local one and
        # ship its events back with each chunk result.
        recorder = obs.MemoryRecorder()
        obs.set_recorder(recorder)

        def drain() -> list:
            events, recorder.events = recorder.events, []
            return events

    conn.send(("ready", os.getpid()))
    run_chunk_jobs(conn, engine, drain=drain)
    return 0
