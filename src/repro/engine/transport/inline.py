"""The in-process transport: zero dependencies, one synchronous lane.

The ``serial`` and ``scalar`` rungs of the degradation ladder run here:
:meth:`poll` classifies the submitted chunk immediately in the calling
process through the :func:`repro.engine.supervisor.chunk_statuses` seam
(looked up late, so the chaos suite's ``block-backend-broken`` patch on
the supervisor module is honoured).  A chunk that raises comes back as
an ``error`` result carrying the original exception — the supervisor
decides whether that means "step down to the scalar rung" or "re-raise"
(the bitmask path has nowhere lower to go).
"""

from __future__ import annotations

from typing import List, Optional

from .base import ChunkResult, ChunkTask, Transport


class InlineTransport(Transport):
    """One synchronous lane inside the supervising process."""

    name = "inline"
    lanes = 1
    in_process = True

    def __init__(self, engine) -> None:
        self.engine = engine
        self._task: Optional[ChunkTask] = None

    def start(self) -> None:
        pass

    def submit(self, task: ChunkTask) -> int:
        if self._task is not None:  # pragma: no cover - defended invariant
            raise RuntimeError("inline lane is busy")
        self._task = task
        return 0

    def poll(self, timeout: float) -> List[ChunkResult]:
        task, self._task = self._task, None
        if task is None:
            return []
        # Late lookup keeps the supervisor module the single patch point
        # for chunk classification across every rung.
        from .. import supervisor as _sup

        try:
            statuses = _sup.chunk_statuses(
                self.engine, task.faults, task.backend
            )
        except Exception as error:
            return [
                ChunkResult(
                    "error",
                    task.key,
                    0,
                    payload=f"{type(error).__name__}: {error}",
                    error=error,
                )
            ]
        return [ChunkResult("ok", task.key, 0, payload=statuses)]

    def replace(self, lane: int) -> None:  # pragma: no cover - no lanes
        pass

    def shutdown(self) -> None:
        self._task = None

    @property
    def free_lanes(self) -> int:
        return 0 if self._task is not None else 1
