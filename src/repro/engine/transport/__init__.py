"""Pluggable execution transports for the supervised campaign runtime.

The supervisor owns *policy* — timeouts, backoff, splitting, work
stealing, the degradation ladder, checkpoints, flight merging.  A
:class:`Transport` owns *mechanics* — where chunks actually run and how
their results travel back.  Four implementations ship:

============  =====================================================
``inline``    one synchronous lane in the supervising process
``fork``      forked worker processes over duplex pipes
``fork+shm``  fork + shared-memory baseline fan-out (the default)
``socket``    ``python -m repro worker`` subprocesses over a socket
============  =====================================================

``create_transport(rung, sweep, lanes)`` builds the implementation
serving a ladder rung; the registry is the single place new fabrics
(remote hosts, batch schedulers) plug in.
"""

from __future__ import annotations

from .base import (
    ChunkResult,
    ChunkTask,
    SubmitFailed,
    Transport,
    TransportError,
    TransportFailure,
    TransportUnavailable,
)
from .fork import ForkTransport
from .inline import InlineTransport
from .socket import SocketTransport

#: Worker rungs of the degradation ladder, strongest first.  The serial
#: rungs (``serial`` / ``scalar``) run on :class:`InlineTransport` and
#: are always available, so they are not listed here.
WORKER_RUNGS = ("socket", "fork+shm", "fork")


def create_transport(rung: str, sweep, lanes: int, on_degrade=None,
                     tracing: bool = False) -> Transport:
    """The transport serving ladder rung ``rung`` for ``sweep``."""
    if rung == "socket":
        return SocketTransport(sweep, lanes, tracing=tracing)
    if rung == "fork+shm":
        return ForkTransport(sweep, lanes, use_shm=True,
                             on_degrade=on_degrade)
    if rung == "fork":
        return ForkTransport(sweep, lanes, use_shm=False)
    if rung == "inline":
        return InlineTransport(sweep.engine)
    raise ValueError(f"unknown transport rung: {rung!r}")


__all__ = [
    "ChunkResult",
    "ChunkTask",
    "ForkTransport",
    "InlineTransport",
    "SocketTransport",
    "SubmitFailed",
    "Transport",
    "TransportError",
    "TransportFailure",
    "TransportUnavailable",
    "WORKER_RUNGS",
    "create_transport",
]
