"""The formal transport seam of the supervised campaign runtime.

A :class:`Transport` owns *execution mechanics* — where chunk tasks run
(in-process, fork workers, socket workers) and how their results come
back — and nothing else.  All *policy* (timeouts, backoff, splitting,
work stealing, the degradation ladder, checkpoints, flight-recorder
merging) stays in :mod:`repro.engine.supervisor`, which drives any
transport through the same four calls::

    transport.start()
    lane = transport.submit(task)      # place one chunk on a free lane
    for result in transport.poll(t):   # completed / failed / died chunks
        ...
    transport.replace(lane)            # kill + respawn one lane
    transport.shutdown()

Lanes are integer slots (0..lanes-1); every result names the lane it
came from so the supervisor can enforce per-chunk deadlines and the
worker-replacement cap without knowing what a lane *is*.  Results use
one message shape across all transports: ``ok`` carries the statuses
list, ``error`` carries the reason text (the chunk is retryable), and
``died`` means the lane vanished mid-chunk (process killed, pipe EOF,
socket dropped) and must be replaced before it can serve again.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence


class TransportError(RuntimeError):
    """Base class for transport-layer failures."""


class TransportUnavailable(TransportError):
    """The transport cannot start at all (no fork start method, socket
    bind denied, workers never connected); the ladder steps down to the
    next rung with this reason recorded."""


class TransportFailure(TransportError):
    """A running transport cannot make progress (a replacement lane
    cannot be spawned); completed chunks are salvaged on a lower rung."""


class SubmitFailed(TransportError):
    """A task could not be placed on the chosen lane (the worker died
    while idle).  The supervisor requeues the task and replaces the
    lane."""

    def __init__(self, lane: int, reason: str) -> None:
        super().__init__(reason)
        self.lane = lane
        self.reason = reason


@dataclasses.dataclass
class ChunkTask:
    """One unit of transportable work: classify ``faults`` on a resolved
    block backend.  ``key`` is the supervisor's chunk identity (the
    ``"start:stop"`` index range); transports treat it as opaque."""

    key: str
    faults: List
    backend: str
    attempt: int = 0


@dataclasses.dataclass
class ChunkResult:
    """One message back from a lane.

    ``kind`` is ``"ok"`` (``payload`` is the statuses list), ``"error"``
    (``payload`` is the reason text; the chunk is retryable), or
    ``"died"`` (the lane is gone; ``key`` names the chunk it was
    carrying, or ``None`` if it was idle).  ``shm_ok`` is ``False`` when
    a fork worker could not attach the shared-memory baseline and
    re-derived it locally; ``events`` carries the worker's buffered
    flight-recorder events for the parent to merge.
    """

    kind: str
    key: Optional[str]
    lane: int
    payload: object = None
    shm_ok: bool = True
    events: Sequence[dict] = ()
    error: Optional[BaseException] = None  #: in-process transports only


class Transport:
    """Abstract execution fabric for chunk tasks (see module docstring).

    Attributes set by every implementation:

    * ``name`` — registry name (``inline`` / ``fork`` / ``fork+shm`` /
      ``socket``);
    * ``lanes`` — parallel lane count;
    * ``in_process`` — ``True`` when :meth:`poll` computes results
      synchronously in the caller (no deadline enforcement, no
      replacement, errors carry the original exception).
    """

    name: str = "?"
    lanes: int = 1
    in_process: bool = False

    @property
    def rung(self) -> str:
        """The degradation-ladder rung this transport currently serves
        (``fork+shm`` may step to ``fork`` internally)."""
        return self.name

    def start(self) -> None:
        """Bring the lanes up; raises :class:`TransportUnavailable` when
        the fabric cannot be used at all."""
        raise NotImplementedError

    def submit(self, task: ChunkTask) -> int:
        """Place ``task`` on a free lane; returns the lane id.  Raises
        :class:`SubmitFailed` when the chosen lane is unreachable."""
        raise NotImplementedError

    def poll(self, timeout: float) -> List[ChunkResult]:
        """Results that became available within ``timeout`` seconds
        (possibly none)."""
        raise NotImplementedError

    def replace(self, lane: int) -> None:
        """Tear down and respawn one lane; raises
        :class:`TransportFailure` when a replacement cannot be built."""
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release every lane and any shared resources (idempotent)."""
        raise NotImplementedError

    @property
    def free_lanes(self) -> int:
        raise NotImplementedError

    def lane_pid(self, lane: int) -> Optional[int]:
        """The OS pid serving ``lane`` (``None`` for in-process lanes)."""
        return None
