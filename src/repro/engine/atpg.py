"""Fault-dropping ATPG campaigns: guided PODEM + block-simulation drops.

The scalar :class:`~repro.core.atpg.Podem` answers one fault at a time;
the block backends classify whole fault universes per pass.  This driver
fuses them into the classic fault-dropping loop:

1. **Target** the first remaining collapsed fault with a budgeted PODEM
   search (guided by the SCOAP-weighted backtrace in ``core/atpg``).
2. **Complete** the returned partial assignment several ways — PODEM
   only decides the inputs the search needed, so the free inputs are a
   candidate space; each completion detects the target but drops a
   different slice of the rest of the universe.
3. **Simulate** every candidate against the *entire remaining* fault
   universe in one word-packed pass (:func:`chunk_pattern_bits`: the
   candidates live on the pattern axis, the faults on the block axis).
4. **Drop** everything the best candidate detects and keep that pattern;
   redundant/aborted targets are classified and removed directly.

A final reverse-greedy **compaction** pass re-simulates the kept
patterns against the detected set and discards every pattern whose
coverage is subsumed — conservation is machine-checked by the
``atpg-compaction-conservation`` QA property.

Pattern simulation runs down a vectorized → packed-fallback → pointwise
degradation ladder (each step recorded as a
:class:`~repro.engine.supervisor.Degradation`, mirroring the campaign
supervisor's serial→scalar rung), per-target deadlines reuse
``generate_test_ex``'s monotonic-deadline seam, and the whole run is
instrumented through :mod:`repro.obs` (``atpg.target`` / ``atpg.chunk``
spans, drop counters, a closing ``atpg.report`` event).

In ``pairs`` mode every candidate is an alternating pair ``(X, X̄)``
simulated as two adjacent pattern bits; a fault is dropped only when the
good pair alternates and the faulty pair does not — Theorem 3.2's test
condition, so the kept schedule is directly a SCAL test sequence.
"""

from __future__ import annotations

import dataclasses
import random
import time
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..core.atpg import Podem, PodemResult
from ..core.collapse import collapse_stem_faults
from ..logic.faults import Fault, StuckAt
from ..logic.network import Network
from .supervisor import Degradation
from .vectorized import chunk_pattern_bits

_REG = obs.REGISTRY
_M_TARGETS = _REG.counter(
    "repro_atpg_targets_total", "PODEM targets attempted, by status"
)
_M_DROPPED = _REG.counter(
    "repro_atpg_dropped_total",
    "Faults dropped by pattern simulation without their own PODEM run",
)
_M_PATTERNS = _REG.counter(
    "repro_atpg_patterns_total", "ATPG patterns, by stage (generated/kept)"
)
_M_CANDIDATES = _REG.counter(
    "repro_atpg_candidates_total", "Candidate completions simulated"
)

#: Ladder of pattern-simulation rungs, fastest first.
_RUNGS = ("vectorized", "fallback", "pointwise")

#: Below this many targets, ``backend="auto"`` starts on the packed
#: fallback: NumPy's fixed per-call overhead beats its fault-axis
#: throughput on small universes.  Re-measured against the PR-8 engine
#: (the kernel tier made baseline derivation and block set-up cheaper):
#: the crossover on candidate-batch pattern simulation is now ~8-16
#: targets at 10-14 inputs, so the old 48 cutoff kept mid-sized
#: universes on the slow rung.
AUTO_FALLBACK_MAX_FAULTS = 16


@dataclasses.dataclass(frozen=True)
class AtpgReport:
    """Outcome of one fault-dropping ATPG run.

    ``classifications`` maps ``fault.describe()`` to ``"detected"`` /
    ``"redundant"`` / ``"aborted"``; ``detected_by`` maps each detected
    fault to the index (into ``patterns``) of the kept pattern that
    detects it.  In ``pairs`` mode each entry of ``patterns`` is the
    anchor ``X`` of an alternating pair ``(X, X̄)``.
    """

    circuit: str
    backend: str
    pairs: bool
    requested: int
    detected: int
    redundant: int
    aborted: int
    dropped: int
    targets: int
    patterns_generated: int
    patterns_kept: int
    candidates_evaluated: int
    wall_seconds: float
    patterns: Tuple[int, ...]
    classifications: Dict[str, str]
    detected_by: Dict[str, int]
    degradations: Tuple[Degradation, ...] = ()
    #: The resolved simulation rung ``backend="auto"`` chose to *start*
    #: on (``"vectorized"`` / ``"fallback"``); for explicit backends,
    #: the requested rung after availability resolution.
    auto_rung: str = ""

    def coverage(self) -> float:
        """Detected fraction of the requested fault universe."""
        return self.detected / self.requested if self.requested else 1.0

    def to_dict(self) -> Dict[str, object]:
        data = dataclasses.asdict(self)
        data["coverage"] = self.coverage()
        return data

    def summary(self) -> str:
        kind = "pairs" if self.pairs else "patterns"
        lines = [
            f"atpg {self.circuit}: {self.detected}/{self.requested} "
            f"detected ({self.coverage():.1%}), "
            f"{self.redundant} redundant, {self.aborted} aborted",
            f"  {self.patterns_kept} {kind} kept "
            f"(of {self.patterns_generated} generated), "
            f"{self.targets} PODEM targets, {self.dropped} dropped "
            f"without a search, "
            f"{self.candidates_evaluated} candidates simulated",
            f"  backend {self.backend}"
            + (
                f" (auto started on {self.auto_rung})"
                if self.auto_rung and self.auto_rung != self.backend
                else ""
            )
            + f", {self.wall_seconds:.3f}s",
        ]
        for d in self.degradations:
            lines.append(f"  degraded {d.frm} -> {d.to}: {d.reason}")
        return "\n".join(lines)


def _default_universe(network: Network, collapse: bool) -> List[StuckAt]:
    """The deterministic target list: collapsed stem representatives, or
    every stem fault when collapsing is off."""
    if collapse:
        faults = collapse_stem_faults(network)
    else:
        faults = [
            StuckAt(line, value)
            for line in network.lines()
            for value in (0, 1)
        ]
    return sorted(faults, key=lambda f: (f.line, f.value))


def _candidate_patterns(
    result: PodemResult,
    input_names: Sequence[str],
    budget: int,
    rng: random.Random,
) -> List[int]:
    """Distinct completions of a PODEM result's free inputs, as points.

    The first candidate is always the zero-fill — byte-identical to
    ``result.test`` — so a driver run with ``candidates=1`` reproduces
    the scalar generator's pattern exactly.
    """
    assigned = result.assignment or {}
    free = [name for name in input_names if name not in assigned]

    def point(fill) -> int:
        p = 0
        for i, name in enumerate(input_names):
            value = assigned.get(name)
            if value is None:
                value = fill(i, name)
            if value:
                p |= 1 << i
        return p

    candidates: List[int] = []
    seen = set()

    def add(p: int) -> None:
        if p not in seen and len(candidates) < budget:
            seen.add(p)
            candidates.append(p)

    add(point(lambda i, name: 0))
    add(point(lambda i, name: 1))
    add(point(lambda i, name: i & 1))
    space = 1 << len(free)
    for _ in range(4 * budget):
        if len(candidates) >= budget or len(seen) >= space:
            break
        fills = {name: rng.randrange(2) for name in free}
        add(point(lambda i, name: fills[name]))
    return candidates


def _detected_candidates(
    base: Sequence[int], row: Sequence[int], n_candidates: int, pairs: bool
) -> set:
    """Indices of the candidates whose response differs under the fault.

    Single-pattern mode: any output bit differs.  Pairs mode (candidate
    ``j`` occupies pattern bits ``2j``/``2j+1``): the good pair
    alternates while the faulty pair does not — Theorem 3.2's
    nonalternating-output test condition.
    """
    diff = 0
    for pos in range(len(row)):
        if pairs:
            diff |= (base[pos] ^ (base[pos] >> 1)) & ~(row[pos] ^ (row[pos] >> 1))
        else:
            diff |= base[pos] ^ row[pos]
    if pairs:
        return {j for j in range(n_candidates) if (diff >> (2 * j)) & 1}
    return {j for j in range(n_candidates) if (diff >> j) & 1}


def run_atpg(
    network: Network,
    faults: Optional[Sequence[Fault]] = None,
    *,
    collapse: bool = True,
    drop: bool = True,
    compact: bool = True,
    candidates: int = 8,
    pairs: bool = False,
    backend: str = "auto",
    target_timeout: Optional[float] = None,
    max_backtracks: int = 2000,
    seed: int = 0,
    engine=None,
) -> AtpgReport:
    """Run the fault-dropping ATPG campaign and report classifications.

    ``faults`` overrides the target universe (default: collapsed stem
    representatives, or all stem faults with ``collapse=False``).
    ``drop=False`` disables fault dropping (every fault gets its own
    PODEM search and keeps the scalar zero-fill completion — the
    scalar-parity reference mode), ``compact=False`` keeps every
    generated pattern.  ``candidates`` bounds the completion
    batch per target; ``pairs`` generates alternating SCAL pairs.
    ``backend`` picks the top simulation rung (``auto`` / ``vectorized``
    / ``fallback`` / ``pointwise``); failures degrade down the ladder.
    ``target_timeout`` is a per-target PODEM deadline in seconds.
    """
    from . import engine_for

    if backend not in ("auto",) + _RUNGS:
        raise ValueError(f"unknown atpg backend {backend!r}")
    if candidates < 1:
        raise ValueError("candidates must be >= 1")
    eng = engine if engine is not None else engine_for(network)

    degradations: List[Degradation] = []

    def degrade(frm: str, to: str, reason: str) -> None:
        degradations.append(Degradation(frm=frm, to=to, reason=reason))
        obs.event("atpg.degradation", frm=frm, to=to, reason=reason)

    universe = (
        list(faults)
        if faults is not None
        else _default_universe(network, collapse)
    )

    if backend == "auto":
        if (
            eng.vectorized is not None
            and len(universe) >= AUTO_FALLBACK_MAX_FAULTS
        ):
            start = "vectorized"
        else:
            start = "fallback"
    else:
        start = backend
        if start == "vectorized" and eng.vectorized is None:
            degrade("vectorized", "fallback", "numpy unavailable")
            start = "fallback"
    ladder = _RUNGS[_RUNGS.index(start):]
    rung = [0]

    def simulate(patterns, fault_list):
        while True:
            name = ladder[rung[0]]
            try:
                return chunk_pattern_bits(eng, patterns, fault_list, name)
            except Exception as exc:  # degrade on any rung failure
                if rung[0] + 1 >= len(ladder):
                    raise
                degrade(name, ladder[rung[0] + 1], f"{type(exc).__name__}: {exc}")
                rung[0] += 1

    input_names = list(network.inputs)
    full_point = (1 << len(input_names)) - 1
    podem = Podem(network, max_backtracks=max_backtracks)
    rng = random.Random(f"atpg:{seed}")

    t_start = time.monotonic()
    remaining = list(universe)
    classifications: Dict[Fault, str] = {}
    pattern_of: Dict[Fault, int] = {}
    patterns: List[int] = []
    targets = 0
    dropped = 0
    candidates_evaluated = 0

    while remaining:
        target = remaining[0]
        deadline = (
            time.monotonic() + target_timeout if target_timeout else None
        )
        with obs.span("atpg.target", fault=target.describe()):
            result = podem.generate_test_ex(target, deadline)
            targets += 1
            if _REG.enabled:
                _M_TARGETS.inc(1, status=result.status)
            if result.status != "test":
                classifications[target] = result.status
                remaining.pop(0)
                continue
            cands = _candidate_patterns(result, input_names, candidates, rng)
            if not drop:
                # Candidate completions only buy extra drops; without
                # dropping, keep the zero-fill (scalar) completion and
                # charge it against the target alone.
                cands = cands[:1]
            if pairs:
                sim_patterns: List[int] = []
                for c in cands:
                    sim_patterns.extend((c, c ^ full_point))
            else:
                sim_patterns = cands
            base = simulate(sim_patterns, None)
            rows = simulate(sim_patterns, remaining if drop else remaining[:1])
            candidates_evaluated += len(cands)
            detects = [
                _detected_candidates(base, row, len(cands), pairs)
                for row in rows
            ]
            # Best candidate: must detect the target (index 0 in
            # `remaining`), then maximal drop count; ties break to the
            # lowest candidate index (candidate 0 == the scalar test).
            best, best_count = None, -1
            for j in range(len(cands)):
                if j not in detects[0]:
                    continue
                count = sum(1 for d in detects if j in d)
                if count > best_count:
                    best, best_count = j, count
            if best is None:
                # The simulated response contradicts PODEM's detection
                # claim — never expected; classify conservatively rather
                # than drop a fault the block backend cannot confirm.
                obs.event("atpg.anomaly", fault=target.describe())
                classifications[target] = "aborted"
                remaining.pop(0)
                continue
            index = len(patterns)
            patterns.append(cands[best])
            to_drop = (
                {fi for fi, d in enumerate(detects) if best in d}
                if drop
                else {0}
            )
            for fi in to_drop:
                classifications[remaining[fi]] = "detected"
                pattern_of[remaining[fi]] = index
            dropped += len(to_drop) - 1
            remaining = [
                f for fi, f in enumerate(remaining) if fi not in to_drop
            ]

    patterns_generated = len(patterns)

    detected_faults = [
        f for f in universe if classifications.get(f) == "detected"
    ]
    if compact and len(patterns) > 1 and detected_faults:
        if pairs:
            sim_patterns = []
            for p in patterns:
                sim_patterns.extend((p, p ^ full_point))
        else:
            sim_patterns = list(patterns)
        base = simulate(sim_patterns, None)
        rows = simulate(sim_patterns, detected_faults)
        cover = [
            _detected_candidates(base, row, len(patterns), pairs)
            for row in rows
        ]
        if all(cover):
            kept = set(range(len(patterns)))
            # Reverse-greedy: later patterns were generated for the
            # rarely-detected tail, so try discarding early, broadly
            # subsumed ones first.
            for j in range(len(patterns)):
                if all(j not in c or len(c & kept) > 1 for c in cover):
                    kept.discard(j)
            order = sorted(kept)
            remap = {old: new for new, old in enumerate(order)}
            patterns = [patterns[j] for j in order]
            for fault, c in zip(detected_faults, cover):
                pattern_of[fault] = remap[min(c & kept)]
        else:
            obs.event("atpg.anomaly", reason="uncovered detected fault")

    wall = time.monotonic() - t_start
    detected = sum(1 for s in classifications.values() if s == "detected")
    redundant = sum(1 for s in classifications.values() if s == "redundant")
    aborted = sum(1 for s in classifications.values() if s == "aborted")
    if _REG.enabled:
        _M_DROPPED.inc(dropped)
        _M_PATTERNS.inc(patterns_generated, stage="generated")
        _M_PATTERNS.inc(len(patterns), stage="kept")
        _M_CANDIDATES.inc(candidates_evaluated)
    report = AtpgReport(
        circuit=network.name,
        backend=ladder[rung[0]],
        pairs=pairs,
        requested=len(universe),
        detected=detected,
        redundant=redundant,
        aborted=aborted,
        dropped=dropped,
        targets=targets,
        patterns_generated=patterns_generated,
        patterns_kept=len(patterns),
        candidates_evaluated=candidates_evaluated,
        wall_seconds=wall,
        patterns=tuple(patterns),
        classifications={
            f.describe(): classifications[f] for f in universe
        },
        detected_by={
            f.describe(): pattern_of[f]
            for f in universe
            if f in pattern_of
        },
        degradations=tuple(degradations),
        auto_rung=start,
    )
    obs.event(
        "atpg.report",
        circuit=report.circuit,
        backend=report.backend,
        faults=report.requested,
        detected=report.detected,
        redundant=report.redundant,
        aborted=report.aborted,
        dropped=report.dropped,
        patterns_kept=report.patterns_kept,
        wall_seconds=report.wall_seconds,
    )
    return report
