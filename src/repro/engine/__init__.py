"""Unified compiled fault-simulation engine.

The single execution seam behind every evaluation path in the repo: the
exhaustive Chapter-3 conditions, the Definition-2.4 SCAL oracle, PODEM's
validation runs, and the Chapter-4 sequential campaigns all compile
their :class:`~repro.logic.network.Network` once (into the flat,
integer-indexed op program of :mod:`repro.engine.compiled`) and then
simulate many times through one of three interchangeable backends:

* **bitmask** — word-parallel truth-table masks (exhaustive sweeps),
* **pointwise** — one assignment at a time with a baseline-point cache
  (sequential clocked simulation),
* **sampled** — pointwise over explicit truth-table points (spaces too
  wide to enumerate).

All backends share the cached fault-free baseline (an immutable tuple —
engines are shared across sweeps and across ``serve`` requests, so
in-place mutation must raise) and re-simulate only the injected fault's
output cone; :mod:`repro.engine.campaign` batches that into multi-fault
sweep drivers with optional fan-out across pluggable execution
transports (:mod:`repro.engine.transport`), and the content-addressed
:data:`repro.engine.store.STORE` lets identical compiled programs share
derived artifacts across requests.

Usage::

    from repro.engine import engine_for

    eng = engine_for(network)          # compiled once, weakly cached
    bits = eng.bitmask.line_bits(StuckAt("g", 1))   # cone-pruned
    vals = eng.pointwise.line_values((0, 1, 1))     # baseline-cached
"""

from __future__ import annotations

import weakref
from typing import Optional

from ..logic.network import Network
from .backends import BitmaskBackend, PointwiseBackend, SampledBackend
from .campaign import FaultSweep, ResponseBits
from .supervisor import (
    CampaignCancelled,
    CampaignCheckpoint,
    CampaignInterrupted,
    CampaignReport,
    CancelToken,
    CheckpointError,
    Degradation,
    RetryEvent,
    run_campaign,
    run_generation_batch,
    universe_fingerprint,
)
from .compiled import (
    CompiledNetwork,
    FaultPlan,
    Op,
    compile_network,
    reflect_bits,
)
from .store import STORE, ArtifactStore, program_fingerprint
from .transport import (
    ForkTransport,
    InlineTransport,
    SocketTransport,
    Transport,
    TransportError,
    TransportFailure,
    TransportUnavailable,
    create_transport,
)
from .vectorized import (
    HAVE_NUMPY,
    KERNEL_MAX_INPUTS,
    PackedFallbackBackend,
    VectorizedBackend,
    select_backend,
)


class NetworkEngine:
    """One network's compiled form plus its shared backends.

    The pointwise/sampled scalar backends are always built; the
    exhaustive :attr:`bitmask` backend and the fault-batched block
    backends (:attr:`packed`, :attr:`vectorized`, :attr:`kernel`) are
    constructed lazily on first use — so engines for small one-off
    queries pay nothing, and engines for circuits beyond the
    :data:`~repro.engine.backends.MAX_BITMASK_INPUTS` exhaustive
    ceiling can still serve the sampled/vectorized paths (touching
    ``.bitmask`` there raises ``ValueError`` instead of attempting the
    2^n-bit allocation).
    """

    def __init__(self, network: Network) -> None:
        self.compiled = compile_network(network)
        self.pointwise = PointwiseBackend(self.compiled)
        self.sampled = SampledBackend(self.pointwise)
        self._bitmask: Optional[BitmaskBackend] = None
        self._packed: Optional[PackedFallbackBackend] = None
        self._vectorized: Optional[VectorizedBackend] = None
        self._kernel: Optional["KernelBackend"] = None

    @property
    def bitmask(self) -> BitmaskBackend:
        """The exhaustive big-int truth-table backend.

        Raises ``ValueError`` for circuits wider than
        :data:`~repro.engine.backends.MAX_BITMASK_INPUTS` inputs (the
        eager 2^n-bit mask would be an OOM attempt, not a slow path).
        """
        if self._bitmask is None:
            self._bitmask = BitmaskBackend(self.compiled)
        return self._bitmask

    @property
    def packed(self) -> PackedFallbackBackend:
        """The pure-Python packed-word block backend (shares the bitmask
        backend's baseline — always available)."""
        if self._packed is None:
            self._packed = PackedFallbackBackend(self.compiled, self.bitmask)
        return self._packed

    @property
    def vectorized(self) -> Optional["VectorizedBackend"]:
        """The NumPy PPSFP block backend, or ``None`` without NumPy."""
        if self._vectorized is None and HAVE_NUMPY:
            self._vectorized = VectorizedBackend(self.compiled)
        return self._vectorized

    @property
    def kernel(self) -> Optional["KernelBackend"]:
        """The codegen'd specialized-kernel tier, or ``None`` when NumPy
        is absent or the circuit exceeds its full-table input ceiling
        (:data:`~repro.engine.vectorized.KERNEL_MAX_INPUTS`)."""
        if self._kernel is None and HAVE_NUMPY:
            from .kernels import KernelBackend

            if self.compiled.n_inputs <= KERNEL_MAX_INPUTS:
                self._kernel = KernelBackend(
                    self.compiled, vectorized=self.vectorized
                )
        return self._kernel


_engine_cache: "weakref.WeakKeyDictionary[Network, NetworkEngine]" = (
    weakref.WeakKeyDictionary()
)


def engine_for(network: Network) -> NetworkEngine:
    """The shared engine of ``network`` (compile once, simulate many).

    Cached weakly per network instance — networks are immutable, so every
    caller sharing a network also shares its baselines and fault plans.
    """
    engine = _engine_cache.get(network)
    if engine is None:
        engine = NetworkEngine(network)
        _engine_cache[network] = engine
    return engine


from .vectorized import chunk_pattern_bits  # noqa: E402


def __getattr__(name: str):
    # Lazy re-export: engine.atpg pulls in core.atpg, which imports the
    # logic package, which imports this package — resolving it at first
    # attribute access instead of import time keeps the cycle open.
    if name in ("AtpgReport", "run_atpg"):
        from . import atpg

        return getattr(atpg, name)
    if name in ("KernelBackend", "HAVE_NUMBA"):
        from . import kernels

        return getattr(kernels, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ArtifactStore",
    "AtpgReport",
    "BitmaskBackend",
    "CampaignCancelled",
    "CampaignCheckpoint",
    "CampaignInterrupted",
    "CampaignReport",
    "CancelToken",
    "CheckpointError",
    "CompiledNetwork",
    "Degradation",
    "FaultPlan",
    "FaultSweep",
    "ForkTransport",
    "HAVE_NUMBA",
    "HAVE_NUMPY",
    "InlineTransport",
    "KERNEL_MAX_INPUTS",
    "KernelBackend",
    "NetworkEngine",
    "Op",
    "PackedFallbackBackend",
    "PointwiseBackend",
    "ResponseBits",
    "RetryEvent",
    "STORE",
    "SampledBackend",
    "SocketTransport",
    "Transport",
    "TransportError",
    "TransportFailure",
    "TransportUnavailable",
    "VectorizedBackend",
    "chunk_pattern_bits",
    "compile_network",
    "create_transport",
    "engine_for",
    "program_fingerprint",
    "reflect_bits",
    "run_atpg",
    "run_campaign",
    "run_generation_batch",
    "select_backend",
    "universe_fingerprint",
]
