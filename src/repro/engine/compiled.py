"""Compiled netlist form: a flat, integer-indexed op program.

Every evaluation path in this repository — the Chapter-3 conditions, the
Definition-2.4 oracle, PODEM's validation runs, and the Chapter-4
sequential campaigns — reduces to "evaluate this netlist under this
fault, many times".  The name-keyed :class:`~repro.logic.network.Network`
is the right *modelling* structure (the thesis reasons per named line),
but re-walking its dicts once per fault is the wrong *execution*
structure.

A :class:`CompiledNetwork` is built once per network: lines become dense
integer indices (primary inputs first, then gates in topological order),
gates become a flat tuple of :class:`Op` records, and two derived indices
make incremental fault simulation cheap:

* ``readers[line]`` — the op positions that read a line (the fanout
  adjacency), and
* :meth:`cone_ops` — the transitive *output cone* of a line: exactly the
  ops whose value can change when that line changes.

:meth:`fault_plan` turns any stem/pin single or multiple fault into a
pre-resolved plan: forced line values, per-op pin overrides, and the
minimal ascending op list to re-evaluate on top of a cached fault-free
baseline.  The backends in :mod:`repro.engine.backends` execute these
plans pointwise, word-parallel, or over sampled points.
"""

from __future__ import annotations

import dataclasses
import weakref
from typing import Dict, List, Optional, Tuple, Union

from ..logic.faults import Fault, MultipleFault, fault_overrides
from ..logic.gates import GateKind
from ..logic.network import Network
from ..logic.truthtable import _complement_permutation

FaultLike = Union[Fault, MultipleFault]


@dataclasses.dataclass(frozen=True)
class Op:
    """One gate as an executable record: drive line ``out`` from ``srcs``."""

    out: int
    kind: GateKind
    srcs: Tuple[int, ...]


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """A fault pre-resolved against one compiled network.

    ``stems`` forces line values; ``pins`` maps an op position to the
    ``(operand slot, value)`` overrides of that op; ``ops`` is the
    ascending (hence topological) list of op positions whose value can
    differ from the fault-free baseline and must be re-evaluated.
    """

    stems: Tuple[Tuple[int, int], ...]
    pins: Dict[int, Tuple[Tuple[int, int], ...]]
    ops: Tuple[int, ...]


class CompiledNetwork:
    """The flat op program of one :class:`Network`.

    Holds no strong reference to the source network so the per-network
    compile cache (a :class:`weakref.WeakKeyDictionary`) can release both
    together.
    """

    def __init__(self, network: Network) -> None:
        self.name = network.name
        self.input_names: Tuple[str, ...] = tuple(network.inputs)
        self.n_inputs = len(self.input_names)
        names: List[str] = list(self.input_names)
        index: Dict[str, int] = {name: i for i, name in enumerate(names)}
        ops: List[Op] = []
        for gate in network.gates:  # already topologically ordered
            out = len(names)
            index[gate.name] = out
            names.append(gate.name)
            ops.append(
                Op(out, gate.kind, tuple(index[src] for src in gate.inputs))
            )
        self.names: Tuple[str, ...] = tuple(names)
        self.index = index
        self.ops: Tuple[Op, ...] = tuple(ops)
        self.output_names: Tuple[str, ...] = tuple(network.outputs)
        self.out_idx: Tuple[int, ...] = tuple(
            index[out] for out in network.outputs
        )
        readers: List[List[int]] = [[] for _ in names]
        for pos, op in enumerate(ops):
            for src in set(op.srcs):
                readers[src].append(pos)
        self.readers: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(r) for r in readers
        )
        self._cones: Dict[int, Tuple[int, ...]] = {}
        self._plans: Dict[FaultLike, FaultPlan] = {}

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def cone_ops(self, line: int) -> Tuple[int, ...]:
        """Ascending op positions in the output cone of line ``line`` —
        the ops whose value can change when that line's value changes."""
        cached = self._cones.get(line)
        if cached is not None:
            return cached
        seen_ops: set = set()
        stack = [line]
        while stack:
            src = stack.pop()
            for pos in self.readers[src]:
                if pos not in seen_ops:
                    seen_ops.add(pos)
                    stack.append(self.ops[pos].out)
        cone = tuple(sorted(seen_ops))
        self._cones[line] = cone
        return cone

    def fault_plan(self, fault: FaultLike) -> FaultPlan:
        """Resolve a fault into forced values plus the minimal re-simulation
        schedule over the fault's output cone(s)."""
        plan = self._plans.get(fault)
        if plan is not None:
            return plan
        stem_names, pin_keys = fault_overrides(fault)
        # Faults naming lines absent from this network are ignored, matching
        # the legacy evaluators' dict-lookup semantics.
        stems: Dict[int, int] = {
            self.index[name]: value
            for name, value in stem_names.items()
            if name in self.index
        }
        pins: Dict[int, List[Tuple[int, int]]] = {}
        affected: set = set()
        for (gate, pin), value in pin_keys.items():
            idx = self.index.get(gate)
            if idx is None or idx < self.n_inputs:
                continue
            pos = idx - self.n_inputs
            if pin >= len(self.ops[pos].srcs):
                continue
            pins.setdefault(pos, []).append((pin, value))
            affected.add(pos)
            affected.update(self.cone_ops(idx))
        for idx in stems:
            affected.update(self.cone_ops(idx))
        # Ops whose output line is stem-forced never run: the forced value
        # wins (and shadows any pin override on the same gate, exactly as
        # the legacy evaluators resolved the conflict).
        ops = tuple(
            pos
            for pos in sorted(affected)
            if self.ops[pos].out not in stems
        )
        plan = FaultPlan(
            stems=tuple(sorted(stems.items())),
            pins={pos: tuple(overrides) for pos, overrides in pins.items()},
            ops=ops,
        )
        self._plans[fault] = plan
        return plan


_compile_cache: "weakref.WeakKeyDictionary[Network, CompiledNetwork]" = (
    weakref.WeakKeyDictionary()
)


def compile_network(network: Network) -> CompiledNetwork:
    """The compiled form of ``network``, cached per network instance.

    Networks are immutable once constructed, so identity caching is safe:
    ``logic.evaluate``, the Chapter-3 conditions, ``scal.verify`` and the
    campaign drivers all hit this memo and share one compile (and, via
    :func:`repro.engine.engine_for`, one baseline) per netlist.  The
    cache holds the network weakly and the compiled form keeps no
    reference back, so both are released together.

    **Mutation caveat**: the memo is keyed on *identity*, not content.
    Code that mutates a ``Network`` in place after first evaluation
    (nothing in this repository does — the design/repair flows build new
    networks) would keep receiving the stale compiled form; rebuild the
    network instead of mutating it.
    """
    compiled = _compile_cache.get(network)
    if compiled is None:
        compiled = CompiledNetwork(network)
        _compile_cache[network] = compiled
    return compiled


def reflect_bits(bits: int, n: int) -> int:
    """Permute a ``2**n``-bit truth-table mask by complementing indices.

    The raw-integer form of :meth:`TruthTable.co_reflect` — the SCAL
    ``X → X̄`` pairing — for engine paths that avoid table objects.
    """
    perm = _complement_permutation(n)
    out = 0
    m = bits
    while m:
        low = m & -m
        out |= 1 << perm[low.bit_length() - 1]
        m ^= low
    return out
