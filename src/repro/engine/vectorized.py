"""Vectorized fault-batched simulation: PPSFP over packed truth tables.

The scalar backends pay Python interpreter overhead *per fault per op*:
a campaign over F faults re-runs each fault's cone schedule one big-int
operation at a time, and the SCAL pair classification spends most of its
time in :func:`~repro.engine.compiled.reflect_bits` (a Python loop over
set bits).  This module removes both costs with parallel-pattern,
parallel-fault simulation (PPSFP):

* every line's ``2**n``-point truth table is packed into ``uint64``
  words (bit ``p & 63`` of word ``p >> 6`` is input point ``p`` — the
  repo-wide bit-order convention, just re-chunked), and
* a whole **block of faults** is simulated at once along a second axis:
  line values become ``(faults, words)`` arrays, one vectorized pass
  over the union of the block's cone-pruned op schedules replaces
  ``faults × ops`` interpreted steps with ``ops`` NumPy calls.

Fault injection composes exactly as in the scalar backends: stem
overrides force whole rows of a line's array (forced values win over
pin overrides on the driving gate), pin overrides force rows of one
operand copy.  Re-evaluating an op for rows whose fault does not reach
it simply reproduces the baseline, so the union schedule is sound.

The SCAL pair pairing ``X ↔ X̄`` is an index complement, i.e. a reversal
of the whole table's bit order; on packed words that is "reverse the
word order, bit-reverse each word", which vectorizes as a byte-table
lookup — no per-bit Python loop.

For wide input spaces the word axis is processed in **mirror chunk
pairs** (words ``[lo, lo+K)`` together with ``[W-lo-K, W-lo)``) so the
alternation test stays local while memory is bounded by
``faults × 2K × lines`` words instead of the full table.

When NumPy is missing, :class:`PackedFallbackBackend` offers the same
block API over Python big ints (a big int *is* a packed word array —
CPython already stores it as 30-bit digits and runs mask ops in C), so
callers never branch on NumPy availability; :func:`select_backend`
performs that selection automatically.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from .backends import BitmaskBackend
from .compiled import CompiledNetwork, FaultLike, reflect_bits
from .. import obs
from ..logic.gates import GateKind

# Telemetry: block-backend work counters and the per-chunk span.  The
# enabled check is hoisted (`_REG.enabled`) so disabled telemetry costs
# one branch per block, never per op.
_REG = obs.REGISTRY
_M_OPS = _REG.counter(
    "repro_engine_ops_total", "Compiled ops evaluated, by backend"
)
_M_WORDS = _REG.counter(
    "repro_engine_words_total", "64-bit truth-table words simulated, by backend"
)
_M_BLOCK = _REG.histogram(
    "repro_engine_block_faults",
    "Faults simulated per vectorized block",
    buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
)
_M_CHUNKS = _REG.counter(
    "repro_campaign_chunk_faults_total",
    "Faults classified through chunk_statuses, by backend",
)

try:  # NumPy is optional: the packed fallback keeps every path alive.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the no-numpy CI job
    _np = None

HAVE_NUMPY = _np is not None

#: Fault batches below this size cannot amortize block set-up; the
#: scalar bitmask path wins.
VECTOR_MIN_FAULTS = 8

#: Faults simulated per block (the PPSFP fault axis).
DEFAULT_BLOCK_FAULTS = 64

#: Word-axis chunk size for wide input spaces: tables wider than
#: ``2 * DEFAULT_CHUNK_WORDS`` words are processed in mirror chunk
#: pairs of this many words each (bounding live memory to roughly
#: ``block_faults * 2 * chunk_words * lines`` words).
DEFAULT_CHUNK_WORDS = 256

#: Input counts beyond this make even one packed truth table heavy;
#: the heuristic recommends sampling instead of exhaustion.
EXHAUSTIVE_INPUT_LIMIT = 16

#: Word counts of 128+ (``n_inputs > 12``) are where the codegen kernel
#: tier beats the vectorized interpreter even cold, compile time
#: included (see BENCH_kernels.json); below that it only wins once its
#: per-signature kernels are warm, so auto keeps the vectorized rung.
KERNEL_AUTO_MIN_INPUTS = 12

#: Input counts beyond this would materialize full-table baselines too
#: large for the kernel form (:class:`~repro.engine.kernels.KernelBackend`
#: refuses them); auto routes wider circuits to the chunked vectorized
#: path.
KERNEL_MAX_INPUTS = 20

_FULL64 = 0xFFFFFFFFFFFFFFFF

#: Packed-word pattern of input variable ``i`` (i < 6) inside one word:
#: bit ``p`` is set iff bit ``i`` of the point index ``p`` is set.
_LOW_PATTERNS = (
    0xAAAAAAAAAAAAAAAA,
    0xCCCCCCCCCCCCCCCC,
    0xF0F0F0F0F0F0F0F0,
    0xFF00FF00FF00FF00,
    0xFFFF0000FFFF0000,
    0xFFFFFFFF00000000,
)

if HAVE_NUMPY:
    #: Per-byte bit reversal table; combined with a byteswap this
    #: reverses all 64 bits of a word.
    _REV8 = _np.array(
        [int(f"{b:08b}"[::-1], 2) for b in range(256)], dtype=_np.uint8
    )


def select_backend(
    n_inputs: int,
    n_faults: int,
    numpy_available: Optional[bool] = None,
    n_points: Optional[int] = None,
) -> str:
    """Pick an execution backend from the campaign's shape.

    ==================  =============  =========================================
    input space         fault count    backend
    ==================  =============  =========================================
    explicit points     —              ``pointwise`` (one) / ``sampled`` (many)
    ``n ≤ 16``          ``< 8``        ``bitmask`` (big-int masks, per fault)
    ``n ≤ 12``          ``≥ 8``        ``vectorized`` (NumPy) or ``fallback``
    ``12 < n ≤ 20``     ``≥ 8``        ``kernel`` (codegen) or ``fallback``
    ``n > 20``          any            ``vectorized`` (chunked) or ``fallback``
    ==================  =============  =========================================

    ``fallback`` is the pure-Python packed-word path — selected
    automatically whenever NumPy is absent.  The ``kernel`` rung only
    engages where its codegen cost wins even on a cold one-shot sweep
    (``n_inputs > KERNEL_AUTO_MIN_INPUTS``); narrower circuits still
    reach it explicitly via ``backend="kernel"``.
    """
    if numpy_available is None:
        numpy_available = HAVE_NUMPY
    if n_points is not None:
        return "pointwise" if n_points == 1 else "sampled"
    if n_inputs <= EXHAUSTIVE_INPUT_LIMIT and n_faults < VECTOR_MIN_FAULTS:
        return "bitmask"
    if not numpy_available:
        return "fallback"
    if KERNEL_AUTO_MIN_INPUTS < n_inputs <= KERNEL_MAX_INPUTS:
        return "kernel"
    return "vectorized"


def classify_status(detected: int, violations: int) -> str:
    """``dangerous`` | ``detected`` | ``silent`` from pair-level masks
    (or any truthy stand-ins for them)."""
    if violations:
        return "dangerous"
    if detected:
        return "detected"
    return "silent"


class PackedFallbackBackend:
    """The pure-Python packed-word executor (and the scalar classifier).

    A Python big int already is a packed word array — CPython runs
    ``&``/``|``/``^`` over its digits in C — so this backend simply
    drives the shared :class:`BitmaskBackend` per fault and performs
    the SCAL pair classification with :func:`reflect_bits`.  It exposes
    the same block API as :class:`VectorizedBackend` so callers select
    by name, never by ``try: import numpy``.
    """

    name = "fallback"

    def __init__(
        self,
        compiled: CompiledNetwork,
        bitmask: Optional[BitmaskBackend] = None,
    ) -> None:
        self.compiled = compiled
        self.bitmask = bitmask if bitmask is not None else BitmaskBackend(compiled)
        self.n = compiled.n_inputs
        self.full = self.bitmask.full
        self._normal_out: Optional[Tuple[int, ...]] = None
        self._normal_alt: Optional[Tuple[int, ...]] = None

    def normals(self) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Fault-free output masks and their alternation masks (cached)."""
        if self._normal_out is None:
            baseline = self.bitmask.baseline()
            self._normal_out = tuple(
                baseline[i] for i in self.compiled.out_idx
            )
            self._normal_alt = tuple(
                bits ^ reflect_bits(bits, self.n) for bits in self._normal_out
            )
        return self._normal_out, self._normal_alt

    # ------------------------------------------------------------------
    # per-fault queries (delegate to the shared bitmask backend)
    # ------------------------------------------------------------------
    def line_bits(self, fault: Optional[FaultLike] = None) -> List[int]:
        return self.bitmask.line_bits(fault)

    def output_bits(self, fault: Optional[FaultLike] = None) -> Tuple[int, ...]:
        return self.bitmask.output_bits(fault)

    def response_triple(self, fault: FaultLike) -> Tuple[int, int, int]:
        """``(affected, detected, violations)`` pair-level masks for one
        fault — the raw-integer SCAL classification."""
        normal_out, normal_alt = self.normals()
        values = self.bitmask.line_bits(fault)
        n = self.n
        full = self.full
        wrong = 0
        detected = 0
        all_alternate = full
        for pos, idx in enumerate(self.compiled.out_idx):
            t_fault = values[idx]
            t_normal = normal_out[pos]
            if t_fault == t_normal:
                alternates = normal_alt[pos]
            else:
                alternates = t_fault ^ reflect_bits(t_fault, n)
                wrong |= t_normal ^ t_fault
            detected |= alternates ^ full  # nonalternating pairs
            all_alternate &= alternates
        # Close point sets under the X ↔ X̄ pairing (alternation masks
        # are already pair-symmetric, so `detected` needs no closing).
        affected = wrong | reflect_bits(wrong, n)
        violations = affected & all_alternate
        return affected, detected, violations

    # ------------------------------------------------------------------
    # block API (shared with VectorizedBackend)
    # ------------------------------------------------------------------
    def response_block(
        self, faults: Sequence[FaultLike]
    ) -> List[Tuple[int, int, int]]:
        return [self.response_triple(fault) for fault in faults]

    def sweep_statuses(
        self,
        faults: Iterable[FaultLike],
        block_faults: Optional[int] = None,
    ) -> List[str]:
        return [
            classify_status(det, vio)
            for _aff, det, vio in (self.response_triple(f) for f in faults)
        ]

    def pattern_bits(
        self,
        patterns: Sequence[int],
        faults: Optional[Sequence[FaultLike]] = None,
    ):
        """Output masks over an explicit pattern list (pure-int path).

        ``patterns`` is a sequence of point encodings (bit ``i`` = value
        of input ``i``, the repo-wide convention); bit ``j`` of each
        returned output mask is that output's value under pattern ``j``.
        Returns the fault-free tuple when ``faults`` is ``None``, else a
        list with one tuple per fault (stem forcing wins over pin
        overrides, exactly as the truth-table plans resolve it).
        """
        from . import backends as _backends

        comp = self.compiled
        n_patterns = len(patterns)
        full = (1 << n_patterns) - 1 if n_patterns else 0
        var = pack_pattern_masks(patterns, comp.n_inputs)
        if _REG.enabled:
            words = max(1, (n_patterns + 63) >> 6)
            runs = 1 if faults is None else len(faults)
            _M_OPS.inc(len(comp.ops) * runs, backend="fallback")
            _M_WORDS.inc(len(comp.ops) * words * runs, backend="fallback")

        def run(plan) -> Tuple[int, ...]:
            values: List[Optional[int]] = [None] * len(comp.names)
            stems = dict(plan.stems) if plan is not None else {}
            for i in range(comp.n_inputs):
                forced = stems.get(i)
                values[i] = (
                    var[i] if forced is None else (full if forced else 0)
                )
            pins = plan.pins if plan is not None else {}
            for pos, op in enumerate(comp.ops):
                forced = stems.get(op.out)
                if forced is not None:
                    values[op.out] = full if forced else 0
                    continue
                masks = [values[s] for s in op.srcs]
                for slot, value in pins.get(pos, ()):
                    masks[slot] = full if value else 0
                values[op.out] = _backends.evaluate_mask(
                    op.kind, masks, full
                )
            return tuple(values[i] for i in comp.out_idx)

        if faults is None:
            return run(None)
        return [run(comp.fault_plan(fault)) for fault in faults]


class VectorizedBackend:
    """NumPy PPSFP executor over ``(faults, words)`` ``uint64`` arrays."""

    name = "vectorized"

    def __init__(
        self,
        compiled: CompiledNetwork,
        block_faults: int = DEFAULT_BLOCK_FAULTS,
        chunk_words: int = DEFAULT_CHUNK_WORDS,
    ) -> None:
        if not HAVE_NUMPY:
            raise RuntimeError(
                "NumPy is unavailable; use PackedFallbackBackend instead"
            )
        self.compiled = compiled
        self.n = compiled.n_inputs
        self.total_bits = 1 << self.n
        self.words = max(1, self.total_bits >> 6)
        self.full_word = _np.uint64(
            (1 << min(self.total_bits, 64)) - 1
        )
        self.block_faults = max(1, block_faults)
        self.chunk_words = max(1, chunk_words)
        #: Tables wider than two chunks are swept in mirror chunk pairs.
        self.chunked = self.words > 2 * self.chunk_words
        self._base: Optional[List] = None  # full-table baseline (unchunked)

    # ------------------------------------------------------------------
    # packed building blocks
    # ------------------------------------------------------------------
    def _var_words(self, i: int, widx) -> "object":
        """Packed words of input variable ``i`` over word indices ``widx``."""
        if i < 6:
            return _np.full(
                widx.shape,
                _np.uint64(_LOW_PATTERNS[i]) & self.full_word,
                dtype=_np.uint64,
            )
        # Bit i of point p = 64*w + b (i >= 6) is bit i-6 of the word index.
        bit = (widx >> _np.uint64(i - 6)) & _np.uint64(1)
        return _np.where(bit != 0, _np.uint64(_FULL64), _np.uint64(0))

    def _baseline_words(self, w0: int, w1: int) -> List:
        """Fault-free packed values of every line over words ``[w0, w1)``."""
        comp = self.compiled
        widx = _np.arange(w0, w1, dtype=_np.uint64)
        values: List = [None] * len(comp.names)
        for i in range(comp.n_inputs):
            values[i] = self._var_words(i, widx)
        for op in comp.ops:
            values[op.out] = _eval_words(
                op.kind, [values[s] for s in op.srcs], self.full_word
            )
        if _REG.enabled:
            _M_OPS.inc(len(comp.ops), backend="vectorized")
            _M_WORDS.inc(len(comp.ops) * (w1 - w0), backend="vectorized")
        k = w1 - w0
        return [
            _np.broadcast_to(_np.asarray(v, dtype=_np.uint64), (k,))
            for v in values
        ]

    def _full_baseline(self) -> List:
        if self._base is None:
            self._base = self._baseline_words(0, self.words)
        return self._base

    def _reflect_full(self, arr):
        """The ``X ↔ X̄`` index complement of a full packed table:
        reverse the word order and bit-reverse each word (for tables
        narrower than one word, reverse just the low ``2**n`` bits)."""
        if self.total_bits < 64:
            return _bitrev64(arr) >> _np.uint64(64 - self.total_bits)
        return _bitrev64(arr)[..., ::-1]

    # ------------------------------------------------------------------
    # fault-block evaluation
    # ------------------------------------------------------------------
    def _block_outputs(self, plans, w0: int, w1: int, base, full=None):
        """Faulty packed values over words ``[w0, w1)`` for a block.

        Returns ``get(line) -> ndarray`` where rows are faults.  Lines
        untouched by every fault in the block resolve to the shared
        baseline row; the union of the block's cone schedules is
        evaluated once, vectorized over the fault axis (re-evaluating an
        op for rows whose fault does not reach it reproduces the
        baseline, so the union schedule is exact).

        ``full`` is the valid-bit word for forcing and complements; it
        defaults to the truth-table word but pattern-space callers
        (:meth:`pattern_bits`) pass all 64 bits — their word axis packs
        an explicit pattern list, not the ``2**n`` point space.
        """
        np = _np
        block = len(plans)
        k = w1 - w0
        if full is None:
            full = self.full_word
        comp = self.compiled
        stem_rows: dict = {}
        pin_rows: dict = {}
        schedule: set = set()
        for row, plan in enumerate(plans):
            for idx, forced in plan.stems:
                stem_rows.setdefault(idx, []).append((row, forced))
            for pos, overrides in plan.pins.items():
                for slot, forced in overrides:
                    pin_rows.setdefault(pos, []).append((row, slot, forced))
            schedule.update(plan.ops)
        values: dict = {}

        def get(idx: int):
            arr = values.get(idx)
            return base[idx] if arr is None else arr

        def force(idx: int, rows) -> None:
            arr = values.get(idx)
            if arr is None:
                arr = base[idx]
            arr = np.array(np.broadcast_to(arr, (block, k)))
            for row, forced in rows:
                arr[row, :] = full if forced else np.uint64(0)
            values[idx] = arr

        if _REG.enabled:
            _M_OPS.inc(len(schedule), backend="vectorized")
            _M_WORDS.inc(len(schedule) * block * k, backend="vectorized")
            _M_BLOCK.observe(block)

        # Stem-forced lines hold their forced rows from the start (and
        # again after their driving op runs: forced values win, exactly
        # as the scalar plans resolve stem-over-pin conflicts).
        for idx, rows in stem_rows.items():
            force(idx, rows)
        for pos in sorted(schedule):
            op = comp.ops[pos]
            operands = [get(src) for src in op.srcs]
            overrides = pin_rows.get(pos)
            if overrides:
                by_slot: dict = {}
                for row, slot, forced in overrides:
                    by_slot.setdefault(slot, []).append((row, forced))
                for slot, rows in by_slot.items():
                    forced_arr = np.array(
                        np.broadcast_to(operands[slot], (block, k))
                    )
                    for row, forced in rows:
                        forced_arr[row, :] = full if forced else np.uint64(0)
                    operands[slot] = forced_arr
            result = _eval_words(op.kind, operands, full)
            rows = stem_rows.get(op.out)
            if rows:
                force_src = np.array(np.broadcast_to(result, (block, k)))
                for row, forced in rows:
                    force_src[row, :] = full if forced else np.uint64(0)
                values[op.out] = force_src
            else:
                values[op.out] = result
        return get

    def _block_masks(self, faults: Sequence[FaultLike]):
        """Full-table ``(affected, detected, violations)`` arrays, shape
        ``(len(faults), words)`` each.  Unchunked tables only."""
        np = _np
        comp = self.compiled
        plans = [comp.fault_plan(fault) for fault in faults]
        base = self._full_baseline()
        get = self._block_outputs(plans, 0, self.words, base)
        block = len(plans)
        shape = (block, self.words)
        full = self.full_word
        wrong = np.zeros(shape, dtype=np.uint64)
        detected = np.zeros(shape, dtype=np.uint64)
        all_alt = np.full(shape, full, dtype=np.uint64)
        for pos, idx in enumerate(comp.out_idx):
            t_fault = np.broadcast_to(
                np.asarray(get(idx), dtype=np.uint64), shape
            )
            wrong |= t_fault ^ base[idx]
            alt = t_fault ^ self._reflect_full(t_fault)
            detected |= ~alt & full
            all_alt &= alt
        affected = wrong | self._reflect_full(wrong)
        violations = affected & all_alt
        return affected, detected, violations

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def line_bits(self, fault: Optional[FaultLike] = None) -> List[int]:
        """Every line's truth-table mask as a big int, optionally under a
        fault — byte-identical to :meth:`BitmaskBackend.line_bits`."""
        comp = self.compiled
        plans = [comp.fault_plan(fault)] if fault is not None else []
        pieces: List[List[bytes]] = [[] for _ in comp.names]
        for w0, w1 in self._ranges():
            base = (
                self._full_baseline()
                if not self.chunked
                else self._baseline_words(w0, w1)
            )
            if plans:
                get = self._block_outputs(plans, w0, w1, base)
            else:
                def get(idx, _base=base):  # noqa: E731 - closure per range
                    return _base[idx]
            for idx in range(len(comp.names)):
                arr = _np.asarray(get(idx), dtype=_np.uint64)
                if arr.ndim == 2:  # single-fault block: one row
                    arr = arr[0]
                row = _np.broadcast_to(arr, (w1 - w0,))
                pieces[idx].append(row.astype("<u8").tobytes())
        return [
            int.from_bytes(b"".join(parts), "little") for parts in pieces
        ]

    def output_bits(self, fault: Optional[FaultLike] = None) -> Tuple[int, ...]:
        bits = self.line_bits(fault)
        return tuple(bits[i] for i in self.compiled.out_idx)

    def response_block(
        self, faults: Sequence[FaultLike]
    ) -> List[Tuple[int, int, int]]:
        """``(affected, detected, violations)`` big-int masks per fault,
        byte-identical to the scalar classification."""
        out: List[Tuple[int, int, int]] = []
        for start in range(0, len(faults), self.block_faults):
            block = faults[start : start + self.block_faults]
            if self.chunked:
                out.extend(self._response_block_chunked(block))
                continue
            affected, detected, violations = self._block_masks(block)
            for row in range(len(block)):
                out.append(
                    (
                        _words_to_int(affected[row]),
                        _words_to_int(detected[row]),
                        _words_to_int(violations[row]),
                    )
                )
        return out

    def sweep_statuses(
        self,
        faults: Sequence[FaultLike],
        block_faults: Optional[int] = None,
    ) -> List[str]:
        """Classify every fault (``dangerous``/``detected``/``silent``)."""
        universe = list(faults)
        if self.chunked:
            return self._sweep_statuses_chunked(universe)
        block_size = block_faults or self.block_faults
        statuses: List[str] = []
        for start in range(0, len(universe), block_size):
            block = universe[start : start + block_size]
            _affected, detected, violations = self._block_masks(block)
            has_det = _np.any(detected != 0, axis=1)
            has_vio = _np.any(violations != 0, axis=1)
            statuses.extend(
                classify_status(bool(d), bool(v))
                for d, v in zip(has_det, has_vio)
            )
        return statuses

    def pattern_bits(
        self,
        patterns: Sequence[int],
        faults: Optional[Sequence[FaultLike]] = None,
    ):
        """Output masks over an explicit pattern list (NumPy path).

        Same contract as :meth:`PackedFallbackBackend.pattern_bits`,
        but the pattern list is packed onto the ``uint64`` word axis and
        whole fault blocks ride one :meth:`_block_outputs` pass — this
        is the word axis the fault-dropping ATPG driver batches its
        candidate patterns along.  Because the word axis holds patterns
        (possibly more than ``2**n`` of them), forcing uses all 64 bits
        per word, not the truth-table ``full_word``.
        """
        np = _np
        comp = self.compiled
        n_patterns = len(patterns)
        n_words = max(1, (n_patterns + 63) >> 6)
        valid = (1 << n_patterns) - 1 if n_patterns else 0
        full64 = np.uint64(_FULL64)
        bits = np.zeros((comp.n_inputs, n_words * 64), dtype=np.uint8)
        for j, point in enumerate(patterns):
            p = int(point)
            i = 0
            while p and i < comp.n_inputs:
                if p & 1:
                    bits[i, j] = 1
                p >>= 1
                i += 1
        base: List = [None] * len(comp.names)
        for i in range(comp.n_inputs):
            packed = np.packbits(bits[i], bitorder="little")
            base[i] = np.frombuffer(packed.tobytes(), dtype="<u8").astype(
                np.uint64
            )
        for op in comp.ops:
            base[op.out] = _eval_words(
                op.kind, [base[s] for s in op.srcs], full64
            )
        base = [
            np.broadcast_to(np.asarray(v, dtype=np.uint64), (n_words,))
            for v in base
        ]
        if _REG.enabled:
            _M_OPS.inc(len(comp.ops), backend="vectorized")
            _M_WORDS.inc(len(comp.ops) * n_words, backend="vectorized")

        def row_ints(get, row: Optional[int] = None) -> Tuple[int, ...]:
            out: List[int] = []
            for idx in comp.out_idx:
                arr = np.asarray(get(idx), dtype=np.uint64)
                if row is not None and arr.ndim == 2:
                    arr = arr[row]
                arr = np.broadcast_to(arr, (n_words,))
                out.append(_words_to_int(arr) & valid)
            return tuple(out)

        if faults is None:
            return row_ints(lambda idx: base[idx])
        results: List[Tuple[int, ...]] = []
        for start in range(0, len(faults), self.block_faults):
            chunk = faults[start : start + self.block_faults]
            plans = [comp.fault_plan(fault) for fault in chunk]
            get = self._block_outputs(plans, 0, n_words, base, full=full64)
            # One bulk numpy->python conversion per output column beats
            # a per-(row, output) broadcast + int round trip — this is
            # the driver's hot loop (every target simulates candidates
            # against the whole remaining universe).
            cols = []
            for idx in comp.out_idx:
                arr = np.asarray(get(idx), dtype=np.uint64)
                if arr.ndim == 1:
                    arr = np.broadcast_to(arr, (len(plans), n_words))
                cols.append(arr)
            if n_words == 1:
                col_lists = [col[:, 0].tolist() for col in cols]
                for row in range(len(plans)):
                    results.append(
                        tuple(cl[row] & valid for cl in col_lists)
                    )
            else:
                for row in range(len(plans)):
                    results.append(
                        tuple(
                            _words_to_int(col[row]) & valid for col in cols
                        )
                    )
        return results

    # ------------------------------------------------------------------
    # chunked (wide-input) path: mirror chunk pairs bound memory
    # ------------------------------------------------------------------
    def _ranges(self) -> List[Tuple[int, int]]:
        """Word ranges to evaluate: the full table, or successive chunks."""
        if not self.chunked:
            return [(0, self.words)]
        k = self.chunk_words
        return [(lo, lo + k) for lo in range(0, self.words, k)]

    def _pair_masks(self, plans, lo: int):
        """Pair-classification arrays for mirror chunks ``[lo, lo+K)``
        and ``[W-lo-K, W-lo)``.  The complement of a word in one chunk
        lands in the other, so alternation is local to the pair."""
        np = _np
        k = self.chunk_words
        w = self.words
        full = self.full_word
        comp = self.compiled
        base_a = self._baseline_words(lo, lo + k)
        base_b = self._baseline_words(w - lo - k, w - lo)
        get_a = self._block_outputs(plans, lo, lo + k, base_a)
        get_b = self._block_outputs(plans, w - lo - k, w - lo, base_b)
        shape = (len(plans), k)
        wrong_a = np.zeros(shape, dtype=np.uint64)
        wrong_b = np.zeros(shape, dtype=np.uint64)
        det = np.zeros(shape, dtype=np.uint64)
        det_b = np.zeros(shape, dtype=np.uint64)
        alt_all_a = np.full(shape, full, dtype=np.uint64)
        alt_all_b = np.full(shape, full, dtype=np.uint64)
        for pos, idx in enumerate(comp.out_idx):
            t_a = np.broadcast_to(np.asarray(get_a(idx), np.uint64), shape)
            t_b = np.broadcast_to(np.asarray(get_b(idx), np.uint64), shape)
            wrong_a |= t_a ^ base_a[idx]
            wrong_b |= t_b ^ base_b[idx]
            # Reflection of the table restricted to chunk A reads the
            # mirror chunk B with words reversed and bits reversed.
            alt_a = t_a ^ _bitrev64(t_b)[..., ::-1]
            alt_b = t_b ^ _bitrev64(t_a)[..., ::-1]
            det |= ~alt_a & full
            det_b |= ~alt_b & full
            alt_all_a &= alt_a
            alt_all_b &= alt_b
        aff_a = wrong_a | _bitrev64(wrong_b)[..., ::-1]
        aff_b = wrong_b | _bitrev64(wrong_a)[..., ::-1]
        vio_a = aff_a & alt_all_a
        vio_b = aff_b & alt_all_b
        return (aff_a, det, vio_a), (aff_b, det_b, vio_b)

    def _sweep_statuses_chunked(self, universe: List[FaultLike]) -> List[str]:
        np = _np
        comp = self.compiled
        total = len(universe)
        has_det = np.zeros(total, dtype=bool)
        has_vio = np.zeros(total, dtype=bool)
        k = self.chunk_words
        for lo in range(0, self.words // 2, k):
            for start in range(0, total, self.block_faults):
                block = universe[start : start + self.block_faults]
                plans = [comp.fault_plan(fault) for fault in block]
                masks_a, masks_b = self._pair_masks(plans, lo)
                for _aff, det, vio in (masks_a, masks_b):
                    has_det[start : start + len(block)] |= np.any(
                        det != 0, axis=1
                    )
                    has_vio[start : start + len(block)] |= np.any(
                        vio != 0, axis=1
                    )
        return [
            classify_status(bool(d), bool(v))
            for d, v in zip(has_det, has_vio)
        ]

    def _response_block_chunked(
        self, block: Sequence[FaultLike]
    ) -> List[Tuple[int, int, int]]:
        """Full masks in chunked mode (assembled per chunk pair; meant
        for tests and spot checks, not bulk sweeps)."""
        comp = self.compiled
        plans = [comp.fault_plan(fault) for fault in block]
        k = self.chunk_words
        parts: dict = {}
        for lo in range(0, self.words // 2, k):
            masks_a, masks_b = self._pair_masks(plans, lo)
            parts[lo] = masks_a
            parts[self.words - lo - k] = masks_b
        out: List[Tuple[int, int, int]] = []
        for row in range(len(block)):
            triple: List[int] = []
            for which in range(3):
                chunks = [
                    parts[lo][which][row].astype("<u8").tobytes()
                    for lo in sorted(parts)
                ]
                triple.append(int.from_bytes(b"".join(chunks), "little"))
            out.append(tuple(triple))
        return out


def chunk_statuses(engine, faults: Sequence[FaultLike], backend: str) -> List[str]:
    """Classify one chunk of faults on a resolved block backend.

    This is the single chunk-level entry point shared by the serial
    campaign driver and every execution transport's worker loop
    (:func:`repro.engine.transport.fork.run_chunk_jobs` resolves it
    late, so chaos patches land everywhere), which is why every rung of
    the degradation ladder classifies byte-identically.  ``engine``
    is a :class:`~repro.engine.NetworkEngine`; ``backend`` is a resolved
    name (``kernel`` / ``vectorized`` / ``fallback`` / ``bitmask``) —
    ``kernel`` and ``vectorized`` quietly degrade down the ladder when
    NumPy is absent or the circuit exceeds the kernel ceiling (the
    selection already happened upstream).
    """
    universe = list(faults)
    if backend == "synth":
        # Synthesis fitness chunks ride the same transport plumbing: each
        # "fault" is a candidate-evaluation task dict and each "status" a
        # JSON-encoded fitness record.  The host engine is deliberately
        # ignored — every candidate compiles its own engine, so fork and
        # socket workers (which pin the host network at spawn) still
        # evaluate the right circuits.
        from ..synth.fitness import evaluate_chunk

        with obs.span("sweep.chunk", faults=len(universe), backend=backend):
            payloads = evaluate_chunk(universe)
        if _REG.enabled:
            _M_CHUNKS.inc(len(universe), backend=backend)
        return payloads
    if backend == "kernel" and getattr(engine, "kernel", None) is None:
        backend = "vectorized"
    if backend == "vectorized" and engine.vectorized is None:
        backend = "fallback"
    if backend not in ("kernel", "vectorized", "fallback", "bitmask"):
        raise ValueError(f"unknown chunk backend {backend!r}")
    # Every rung classifies through this span: the flight's count of
    # successful "sweep.chunk" spans equals the report's chunk ledger.
    with obs.span("sweep.chunk", faults=len(universe), backend=backend):
        if backend == "kernel":
            statuses = engine.kernel.sweep_statuses(universe)
        elif backend == "vectorized":
            statuses = engine.vectorized.sweep_statuses(universe)
        elif backend == "fallback":
            statuses = engine.packed.sweep_statuses(universe)
        else:
            # "bitmask": the scalar per-fault big-int path.
            packed = engine.packed
            statuses = [
                classify_status(det, vio)
                for _aff, det, vio in (
                    packed.response_triple(f) for f in universe
                )
            ]
    if _REG.enabled:
        _M_CHUNKS.inc(len(universe), backend=backend)
    return statuses


def pack_pattern_masks(
    patterns: Sequence[int], n_inputs: int
) -> List[int]:
    """Per-input big-int masks of an explicit pattern list.

    Bit ``j`` of mask ``i`` is input ``i``'s value under pattern ``j``
    (patterns are point encodings: bit ``i`` = input ``i``) — the
    pattern-space analogue of the truth-table variable masks.
    """
    masks = [0] * n_inputs
    for j, point in enumerate(patterns):
        p = int(point)
        bit = 1 << j
        i = 0
        while p and i < n_inputs:
            if p & 1:
                masks[i] |= bit
            p >>= 1
            i += 1
    return masks


def _pointwise_pattern_bits(engine, patterns, faults):
    """Scalar rung of :func:`chunk_pattern_bits`: one cone-pruned point
    evaluation per (pattern, fault) through the pointwise backend."""
    comp = engine.compiled
    n = comp.n_inputs
    points = [
        tuple((int(p) >> i) & 1 for i in range(n)) for p in patterns
    ]

    def run(fault):
        masks = [0] * len(comp.out_idx)
        for j, point in enumerate(points):
            values = engine.pointwise.output_values(point, fault)
            for pos, value in enumerate(values):
                if value:
                    masks[pos] |= 1 << j
        return tuple(masks)

    if faults is None:
        return run(None)
    return [run(fault) for fault in faults]


def chunk_pattern_bits(
    engine,
    patterns: Sequence[int],
    faults: Optional[Sequence[FaultLike]],
    backend: str,
):
    """Output masks over an explicit pattern list on a resolved backend.

    The pattern-space analogue of :func:`chunk_statuses` — the single
    chunk-level entry the fault-dropping ATPG driver (and its QA
    properties) use, so every rung of its degradation ladder evaluates
    patterns identically.  ``patterns`` is a list of point encodings;
    ``faults`` is a fault sequence (one output-mask tuple per fault,
    bit ``j`` = the output value under pattern ``j``) or ``None`` for
    the fault-free baseline tuple.  ``backend`` is a resolved name
    (``vectorized`` / ``fallback`` / ``pointwise``); ``vectorized``
    quietly serves on the packed fallback when NumPy is absent.
    """
    if backend == "vectorized" and engine.vectorized is None:
        backend = "fallback"
    if backend not in ("vectorized", "fallback", "pointwise"):
        raise ValueError(f"unknown pattern backend {backend!r}")
    with obs.span(
        "atpg.chunk",
        patterns=len(patterns),
        faults=0 if faults is None else len(faults),
        backend=backend,
    ):
        if backend == "vectorized":
            return engine.vectorized.pattern_bits(patterns, faults)
        if backend == "fallback":
            return engine.packed.pattern_bits(patterns, faults)
        return _pointwise_pattern_bits(engine, patterns, faults)


def vectorized_backend_for(
    compiled: CompiledNetwork,
    bitmask: Optional[BitmaskBackend] = None,
    prefer_numpy: bool = True,
):
    """The best available block backend: NumPy when importable (and
    preferred), the pure-Python packed fallback otherwise."""
    if prefer_numpy and HAVE_NUMPY:
        return VectorizedBackend(compiled)
    return PackedFallbackBackend(compiled, bitmask)


# ----------------------------------------------------------------------
# word-level primitives (NumPy path)
# ----------------------------------------------------------------------
def _bitrev64(arr):
    """Element-wise 64-bit reversal: per-byte table + byteswap."""
    a = _np.ascontiguousarray(arr, dtype=_np.uint64)
    return _REV8[a.view(_np.uint8)].view(_np.uint64).byteswap()


def _words_to_int(row) -> int:
    """One packed row back to the repo's big-int truth-table form."""
    return int.from_bytes(
        _np.ascontiguousarray(row).astype("<u8").tobytes(), "little"
    )


def _eval_words(kind: GateKind, masks, full):
    """One gate over packed-word arrays (the vector analogue of
    :func:`repro.logic.gates.evaluate_mask`); ``full`` masks the unused
    high bits of sub-word tables after complements."""
    np = _np
    if kind is GateKind.CONST0:
        return np.uint64(0)
    if kind is GateKind.CONST1:
        return full
    if kind is GateKind.BUF:
        return masks[0]
    if kind is GateKind.NOT:
        return ~masks[0] & full
    if kind is GateKind.AND or kind is GateKind.NAND:
        out = masks[0]
        for m in masks[1:]:
            out = out & m
        return (~out & full) if kind is GateKind.NAND else out
    if kind is GateKind.OR or kind is GateKind.NOR:
        out = masks[0]
        for m in masks[1:]:
            out = out | m
        return (~out & full) if kind is GateKind.NOR else out
    if kind is GateKind.XOR or kind is GateKind.XNOR:
        out = masks[0]
        for m in masks[1:]:
            out = out ^ m
        return (~out & full) if kind is GateKind.XNOR else out
    if kind in (GateKind.MAJ, GateKind.MIN):
        return _threshold_words(kind, masks, full)
    raise ValueError(f"gate kind {kind} has no packed-word evaluation")


def _threshold_words(kind: GateKind, masks, full):
    """Vectorized bit-sliced population count, thresholded against
    ``len(masks)/2`` — the array form of ``gates._threshold_mask``."""
    np = _np
    counter: List = []
    for m in masks:
        carry = m
        for i in range(len(counter)):
            current = counter[i]
            counter[i] = current ^ carry
            carry = current & carry
        if np.any(carry):
            counter.append(carry)
    n = len(masks)
    out = np.uint64(0)
    for count in range(n + 1):
        if kind is GateKind.MAJ and not 2 * count > n:
            continue
        if kind is GateKind.MIN and not 2 * count < n:
            continue
        if count >> len(counter):
            continue  # count not representable in the counter width
        sel = full
        for bit, slice_mask in enumerate(counter):
            if (count >> bit) & 1:
                sel = sel & slice_mask
            else:
                sel = sel & (~slice_mask & full)
        out = out | sel
    return out
