"""Program-specialized kernel tier: codegen'd fused sweep kernels.

The vectorized backend removed the *per-fault* interpreter cost, but its
inner loop still pays per-gate dispatch: every scheduled op walks the
``GateKind`` ladder in :func:`~repro.engine.vectorized._eval_words`,
rebuilds operand lists, and consults fanout bookkeeping dicts — on every
pass of every sweep.  This module removes that layer too.

For each **block signature** — the union of a fault block's cone-pruned
schedules, the set of stem-forced lines, and the set of forced
``(op, slot)`` pins — a specialized straight-line Python function is
*generated as source* and ``exec``'d once:

* gate dispatch is resolved at generation time (an AND gate becomes the
  literal expression ``v13 & v17``),
* fault-injection branching is resolved at generation time: each forced
  line becomes one ``value & sa | so`` line over per-row ``(B, 1)``
  forcing columns (stem forcing re-applied after the driving op, so stem
  values win over pin overrides exactly as the scalar plans resolve it),
* **dead-line elimination** drops every scheduled op (and forced line)
  that cannot reach an output, and **constant folding** collapses
  CONST-fed subexpressions (an AND with a constant-0 side input folds to
  a constant, all the way through the cone), and
* the SCAL pair classification is fused into the same function: baseline
  contributions of the outputs the block cannot touch are folded into
  per-signature seed constants (their detection mask, if nonzero, makes
  detection constant-true for the whole block — no per-output work).

The generated kernel takes the cached fault-free baseline line arrays as
inputs and computes *only* the block's live cone, so a whole-circuit
pass is one chain of native NumPy calls.  Kernels are cached per
``(program fingerprint, signature)`` — in-process and, when the
content-addressed :data:`~repro.engine.store.STORE` is enabled, across
engines of identical programs.  Prepared per-block argument tuples are
cached too, so steady-state sweeps (the synthesis-campaign fitness shape:
the same universe swept millions of times) skip all set-up.

When Numba is importable the exec'd function is additionally
``njit(nopython, parallel)``-wrapped behind a feature probe; a kernel
whose typing Numba rejects (the bit-reversal helper is a Python closure)
falls back permanently to the exec'd-NumPy tier on first call, recorded
in ``repro_kernel_numba_fallbacks_total`` — the bench gate is held by
the NumPy tier alone, the Numba rung is opportunistic.

Wide tables are blocked into L2-sized **mirror tiles** on the word axis
(words ``[lo, lo+K)`` together with ``[W-lo-K, W-lo)`` — a set closed
under the ``X ↔ X̄`` word reflection, so alternation stays local to the
tile) and tiles run on a shared :class:`ThreadPoolExecutor` (NumPy
releases the GIL on large array ops).
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
import os
import threading
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs
from ..logic.gates import GateKind
from .compiled import CompiledNetwork, FaultLike
from .store import STORE, program_fingerprint
from .vectorized import (
    HAVE_NUMPY,
    KERNEL_MAX_INPUTS,
    VectorizedBackend,
    _threshold_words,
    classify_status,
)

try:  # NumPy is required for this tier; selection happens upstream.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the no-numpy CI job
    _np = None

if HAVE_NUMPY:
    from .vectorized import _REV8

try:  # Numba is optional: probe, never require.
    import numba as _numba

    HAVE_NUMBA = True
except Exception:  # pragma: no cover - numba absent in the default env
    _numba = None
    HAVE_NUMBA = False

_REG = obs.REGISTRY
_M_COMPILES = _REG.counter(
    "repro_kernel_compiles_total", "Specialized kernels generated, by tier"
)
_M_HITS = _REG.counter(
    "repro_kernel_cache_hits_total", "Kernel cache hits, by source"
)
_M_MISSES = _REG.counter(
    "repro_kernel_cache_misses_total", "Kernel cache misses (compiles)"
)
_M_BLOCKS = _REG.counter(
    "repro_kernel_blocks_total", "Fault blocks executed by the kernel tier"
)
_M_FAULTS = _REG.counter(
    "repro_kernel_faults_total", "Faults classified by the kernel tier"
)
_M_JIT_FALLBACK = _REG.counter(
    "repro_kernel_numba_fallbacks_total",
    "Kernels that fell back from njit to the exec'd NumPy tier",
)
_M_OPS = _REG.counter(
    "repro_engine_ops_total", "Compiled ops evaluated, by backend"
)
_M_WORDS = _REG.counter(
    "repro_engine_words_total", "64-bit truth-table words simulated, by backend"
)

#: Faults per kernel block.  Smaller than the vectorized default (64):
#: a specialized kernel has no per-op dispatch to amortize, so smaller
#: blocks win on cache locality (measured best 16 on the randlogic
#: sweep).
DEFAULT_KERNEL_BLOCK_FAULTS = 16

#: Words per mirror half-tile.  One tile is ``2 * tile_words`` words:
#: a ``(16, 4096)``-word block row set stays within a typical L2 slice.
DEFAULT_TILE_WORDS = 2048

_FULL64 = 0xFFFFFFFFFFFFFFFF


def _rev_contiguous(a):
    """Full bit-string reversal of each row of a **contiguous** packed
    array: reversing all ``64 * W`` bits at once is "reverse the byte
    order, then bit-reverse each byte" — one fancy-indexed lookup
    instead of the word-reverse + byteswap chain.  Codegen guarantees
    contiguity: the kernel only reflects freshly computed ufunc
    results."""
    return _REV8[a.view(_np.uint8)[..., ::-1]].view(_np.uint64)


class _TierFn:
    """Callable wrapper that tries the njit-compiled tier first and
    falls back permanently to the exec'd function when Numba rejects
    the kernel's typing at first call."""

    __slots__ = ("py", "jit")

    def __init__(self, py, jit) -> None:
        self.py = py
        self.jit = jit

    def __call__(self, *args):
        jit = self.jit
        if jit is not None:
            try:
                return jit(*args)
            except Exception:
                self.jit = None
                if _REG.enabled:
                    _M_JIT_FALLBACK.inc()
        return self.py(*args)


class _Kernel:
    """One compiled signature: the exec'd function plus its arg spec."""

    __slots__ = (
        "fn",
        "tier",
        "source",
        "digest",
        "base_args",
        "stem_args",
        "pin_args",
        "touched",
        "det_const",
        "alt_seed",
        "const_status",
        "n_ops",
    )


class _PreparedBlock:
    """One fault block bound to its kernel: ready-to-call arg tuples."""

    __slots__ = ("size", "const_status", "det_const", "kern", "slab_args")


class KernelBackend:
    """Codegen'd fused-sweep executor (the ``kernel`` backend).

    Serves the same :meth:`sweep_statuses` contract as the other block
    backends — statuses are byte-identical to the scalar bitmask path —
    but each block runs as one specialized straight-line function
    instead of an interpreted union schedule.
    """

    name = "kernel"

    def __init__(
        self,
        compiled: CompiledNetwork,
        vectorized: Optional[VectorizedBackend] = None,
        block_faults: int = DEFAULT_KERNEL_BLOCK_FAULTS,
        tile_words: int = DEFAULT_TILE_WORDS,
        threads: Optional[int] = None,
        use_numba: bool = True,
        max_cached_blocks: int = 4096,
    ) -> None:
        if not HAVE_NUMPY:
            raise RuntimeError(
                "NumPy is unavailable; the kernel tier needs it "
                "(use PackedFallbackBackend instead)"
            )
        if compiled.n_inputs > KERNEL_MAX_INPUTS:
            raise ValueError(
                f"kernel backend supports at most {KERNEL_MAX_INPUTS} "
                f"inputs (got {compiled.n_inputs}); use the vectorized "
                f"or sampled backends for wider input spaces"
            )
        self.compiled = compiled
        self.vec = (
            vectorized
            if vectorized is not None
            else VectorizedBackend(compiled)
        )
        self.n = compiled.n_inputs
        self.total_bits = 1 << self.n
        self.words = max(1, self.total_bits >> 6)
        self.full_word = _np.uint64((1 << min(self.total_bits, 64)) - 1)
        self.block_faults = max(1, block_faults)
        self.tile_words = max(1, tile_words)
        self.threads = (
            threads if threads is not None else (os.cpu_count() or 1)
        )
        self.use_numba = use_numba and HAVE_NUMBA
        self.max_cached_blocks = max_cached_blocks
        self._fingerprint = program_fingerprint(compiled)
        self._kernels: Dict[str, _Kernel] = {}
        self._blocks: "OrderedDict[Tuple, _PreparedBlock]" = OrderedDict()
        self._lock = threading.Lock()
        self._base: Optional[List] = None
        self._base_alt: Dict[int, object] = {}
        self._seed_cache: Dict[Tuple[int, ...], Tuple[bool, object]] = {}
        self._slab_base: Dict[int, Dict[int, object]] = {}
        self._pool: Optional[ThreadPoolExecutor] = None
        # Mirror tiles: each slab's word set is closed under the
        # reflection w -> W-1-w, so rev(slab) = bit-reverse + reverse
        # the slab's word order.
        if self.words <= 2 * self.tile_words:
            self._slabs: Tuple[Tuple[Tuple[int, int], ...], ...] = (
                ((0, self.words),),
            )
        else:
            half = self.words // 2
            k = 1 << (min(self.tile_words, half).bit_length() - 1)
            self._slabs = tuple(
                ((lo, lo + k), (self.words - lo - k, self.words - lo))
                for lo in range(0, half, k)
            )
        if self.total_bits < 64:
            shift = _np.uint64(64 - self.total_bits)

            def rev(a, _s=shift):
                return _rev_contiguous(a) >> _s

        else:
            rev = _rev_contiguous
        self._rev = rev

    # ------------------------------------------------------------------
    # baseline material
    # ------------------------------------------------------------------
    def _baseline(self) -> List:
        if self._base is None:
            self._base = self.vec._full_baseline()
        return self._base

    def _base_alt_of(self, out: int):
        """Baseline alternation mask of output line ``out`` (cached)."""
        cached = self._base_alt.get(out)
        if cached is None:
            base = self._baseline()
            row = _np.ascontiguousarray(
                _np.broadcast_to(
                    _np.asarray(base[out], dtype=_np.uint64), (self.words,)
                )
            )
            cached = row ^ self._rev(row)
            self._base_alt[out] = cached
        return cached

    def _seeds(self, untouched: Tuple[int, ...]) -> Tuple[bool, object]:
        """``(det_const, alt_seed)`` for a signature's untouched outputs.

        Outputs a block cannot touch contribute their *baseline* masks to
        the classification: any nonalternating baseline pair makes every
        fault in the block "detected" (``det_const``), and their
        alternation masks AND into the violation test (``alt_seed``;
        ``None`` when they alternate everywhere, i.e. the seed is full).
        """
        cached = self._seed_cache.get(untouched)
        if cached is not None:
            return cached
        full = self.full_word
        det_const = False
        alt_seed = None
        for out in untouched:
            alt = self._base_alt_of(out)
            if not det_const and bool(_np.any(alt != full)):
                det_const = True
            alt_seed = alt if alt_seed is None else (alt_seed & alt)
        if alt_seed is not None and bool(_np.all(alt_seed == full)):
            alt_seed = None
        result = (det_const, alt_seed)
        self._seed_cache[untouched] = result
        return result

    # ------------------------------------------------------------------
    # signature + codegen
    # ------------------------------------------------------------------
    def _signature(self, plans):
        """Dead-line-eliminated block signature: kept schedule, live
        stem-forced lines, live forced pins, and the cache digest."""
        comp = self.compiled
        ops = comp.ops
        stems: set = set()
        pins: set = set()
        sched: set = set()
        for plan in plans:
            stems.update(idx for idx, _ in plan.stems)
            for pos, overrides in plan.pins.items():
                for slot, _ in overrides:
                    pins.add((pos, slot))
            sched.update(plan.ops)
        order = sorted(sched)
        outs = _dedupe(comp.out_idx)
        driven = {ops[pos].out for pos in order}
        touched = [o for o in outs if o in stems or o in driven]
        # Dead-line elimination: walk the schedule backwards from the
        # touched outputs; ops that cannot reach one are dropped, and
        # with them their pin overrides and unread stem forcings.
        need = set(touched)
        kept: List[int] = []
        for pos in reversed(order):
            if ops[pos].out in need:
                kept.append(pos)
                need.update(ops[pos].srcs)
        kept.reverse()
        kept_set = set(kept)
        stems_kept = tuple(sorted(stems & need))
        pins_kept = tuple(
            sorted(key for key in pins if key[0] in kept_set)
        )
        digest = hashlib.sha256(
            "|".join(
                (
                    self._fingerprint,
                    ",".join(map(str, stems_kept)),
                    ",".join(f"{p}.{s}" for p, s in pins_kept),
                    ",".join(map(str, kept)),
                )
            ).encode()
        ).hexdigest()
        return digest, stems_kept, pins_kept, tuple(kept)

    def _kernel_for(self, digest, stems, pins, sched) -> _Kernel:
        kern = self._kernels.get(digest)
        if kern is not None:
            if _REG.enabled:
                _M_HITS.inc(source="memory")
            return kern
        if STORE.enabled:
            cached = STORE.get("kernel", self._fingerprint, digest)
            if cached is not None:
                self._kernels[digest] = cached
                if _REG.enabled:
                    _M_HITS.inc(source="store")
                return cached
        if _REG.enabled:
            _M_MISSES.inc()
        with obs.span(
            "kernel.compile",
            digest=digest[:12],
            ops=len(sched),
            stems=len(stems),
            pins=len(pins),
        ):
            kern = self._generate(digest, stems, pins, sched)
            if _REG.enabled:
                _M_COMPILES.inc(tier=kern.tier)
        self._kernels[digest] = kern
        if STORE.enabled:
            STORE.put("kernel", self._fingerprint, digest, value=kern)
        return kern

    def _generate(self, digest, stem_lines, pin_keys, sched) -> _Kernel:
        """Generate, ``exec``, and (optionally) njit one signature."""
        comp = self.compiled
        ops = comp.ops
        stem_set = set(stem_lines)
        stem_arg = {ln: k for k, ln in enumerate(stem_lines)}
        pin_arg = {key: j for j, key in enumerate(pin_keys)}
        driven_by = {ops[pos].out: pos for pos in sched}
        const_lines = {
            op.out: (1 if op.kind is GateKind.CONST1 else 0)
            for op in ops
            if op.kind in (GateKind.CONST0, GateKind.CONST1)
        }
        computed: set = set()
        lit: Dict[int, int] = {}
        base_args: List[int] = []
        base_seen: set = set()
        body: List[str] = []

        def base_ref(idx: int) -> str:
            cv = const_lines.get(idx)
            if cv is not None:
                return "F" if cv else "ZW"
            if idx not in base_seen:
                base_seen.add(idx)
                base_args.append(idx)
            return f"b{idx}"

        def ref(idx: int):
            """Operand as (expression, literal-or-None)."""
            if idx in computed:
                return f"v{idx}", None
            lv = lit.get(idx)
            if lv is None and idx not in stem_set:
                lv = const_lines.get(idx)
            if lv is not None:
                return ("F" if lv else "ZW"), lv
            return base_ref(idx), None

        # Stem-forced lines whose driving op is not scheduled force on
        # top of the baseline; scheduled ones re-force after their op
        # (forced values win over pin overrides, as in the scalar plans).
        for ln in stem_lines:
            if ln not in driven_by:
                k = stem_arg[ln]
                body.append(f"v{ln} = {base_ref(ln)} & sa{k} | so{k}")
                computed.add(ln)
        for pos in sched:
            op = ops[pos]
            rendered = []
            for slot, src in enumerate(op.srcs):
                expr, lv = ref(src)
                j = pin_arg.get((pos, slot))
                if j is not None:
                    expr, lv = f"({expr} & pa{j} | po{j})", None
                rendered.append((expr, lv))
            folded = _gate_fold(op.kind, rendered, masked=self.total_bits < 64)
            if folded[0] == "lit" and op.out not in stem_set:
                lit[op.out] = folded[1]
                continue
            expr = (
                folded[1]
                if folded[0] == "expr"
                else ("F" if folded[1] else "ZW")
            )
            if op.out in stem_set:
                k = stem_arg[op.out]
                body.append(f"v{op.out} = ({expr}) & sa{k} | so{k}")
            else:
                body.append(f"v{op.out} = {expr}")
            computed.add(op.out)

        outs = _dedupe(comp.out_idx)
        touched = tuple(o for o in outs if o in computed)
        untouched = tuple(o for o in outs if o not in computed)
        det_const, alt_seed = self._seeds(untouched)

        kern = _Kernel()
        kern.digest = digest
        kern.stem_args = stem_lines
        kern.pin_args = pin_keys
        kern.touched = touched
        kern.det_const = det_const
        kern.alt_seed = alt_seed
        kern.n_ops = len(body)
        if not touched:
            # The block cannot reach any output: every fault's status is
            # decided by the baseline seeds alone.
            kern.fn = None
            kern.tier = "const"
            kern.source = ""
            kern.base_args = ()
            kern.const_status = "detected" if det_const else "silent"
            return kern
        kern.const_status = None

        masked = self.total_bits < 64
        inv = "~a & F" if masked else "~a"
        first = touched[0]
        body.append(f"w = v{first} ^ {base_ref(first)}")
        body.append(f"a = v{first} ^ R(v{first})")
        body.append("alt = AS & a" if alt_seed is not None else "alt = a")
        if not det_const:
            body.append(f"det = {inv}")
        for o in touched[1:]:
            body.append(f"w = w | (v{o} ^ {base_ref(o)})")
            body.append(f"a = v{o} ^ R(v{o})")
            body.append("alt = alt & a")
            if not det_const:
                body.append(f"det = det | ({inv})")
        # Statuses only need "any violation per fault", and alternation
        # masks are symmetric under the pair reflection (R(alt) == alt),
        # so any((w | R(w)) & alt) == any(w & alt): the affected-set
        # pair closure drops out of the fused classification entirely.
        body.append("vio = w & alt")
        body.append("return (" + ("None" if det_const else "det") + ", vio)")

        args = ["F", "R"]
        if alt_seed is not None:
            args.append("AS")
        args.extend(f"b{i}" for i in base_args)
        for k in range(len(stem_lines)):
            args.extend((f"sa{k}", f"so{k}"))
        for j in range(len(pin_keys)):
            args.extend((f"pa{j}", f"po{j}"))
        source = (
            f"def _kernel({', '.join(args)}):\n"
            + "".join(f"    {line}\n" for line in body)
        )
        globs = {
            "ZW": _np.uint64(0),
            "TH": _threshold_words,
            "_MAJ": GateKind.MAJ,
            "_MIN": GateKind.MIN,
        }
        code = compile(source, f"<repro-kernel-{digest[:12]}>", "exec")
        exec(code, globs)
        pyfn = globs["_kernel"]
        kern.base_args = tuple(base_args)
        kern.source = source
        if self.use_numba and _numba is not None:
            try:
                jit = _numba.njit(nogil=True, parallel=True)(pyfn)
                kern.fn = _TierFn(pyfn, jit)
                kern.tier = "numba"
            except Exception:  # pragma: no cover - needs numba installed
                kern.fn = pyfn
                kern.tier = "numpy"
                if _REG.enabled:
                    _M_JIT_FALLBACK.inc()
        else:
            kern.fn = pyfn
            kern.tier = "numpy"
        return kern

    # ------------------------------------------------------------------
    # block preparation + execution
    # ------------------------------------------------------------------
    def _slab_baseline(self, slab_i: int) -> Dict[int, object]:
        per = self._slab_base.get(slab_i)
        if per is None:
            per = {}
            self._slab_base[slab_i] = per
        return per

    def _slab_slice(self, slab_i: int, arr):
        """``arr`` restricted to slab ``slab_i`` (identity when the slab
        covers the whole table)."""
        ranges = self._slabs[slab_i]
        if len(ranges) == 1 and ranges[0] == (0, self.words):
            return arr
        pieces = [arr[r0:r1] for r0, r1 in ranges]
        return pieces[0] if len(pieces) == 1 else _np.concatenate(pieces)

    def _slab_base_arg(self, slab_i: int, idx: int):
        per = self._slab_baseline(slab_i)
        arr = per.get(idx)
        if arr is None:
            base = self._baseline()
            row = _np.broadcast_to(
                _np.asarray(base[idx], dtype=_np.uint64), (self.words,)
            )
            arr = self._slab_slice(slab_i, row)
            per[idx] = arr
        return arr

    def _prepare(self, block: Tuple[FaultLike, ...]) -> _PreparedBlock:
        # Engines are shared across server threads; one lock covers both
        # the prepared-block LRU and the kernel cache (the hit path is a
        # single dict probe, so contention stays negligible).
        with self._lock:
            return self._prepare_locked(block)

    def _prepare_locked(self, block: Tuple[FaultLike, ...]) -> _PreparedBlock:
        prep = self._blocks.get(block)
        if prep is not None:
            self._blocks.move_to_end(block)
            return prep
        comp = self.compiled
        plans = [comp.fault_plan(fault) for fault in block]
        digest, stems, pins, sched = self._signature(plans)
        kern = self._kernel_for(digest, stems, pins, sched)
        prep = _PreparedBlock()
        prep.size = len(block)
        prep.kern = kern
        prep.const_status = kern.const_status
        prep.det_const = kern.det_const
        prep.slab_args = None
        if kern.const_status is None:
            B = len(block)
            full = self.full_word
            zero = _np.uint64(0)
            forcing: List = []
            for ln in kern.stem_args:
                sa = _np.full((B, 1), full, dtype=_np.uint64)
                so = _np.zeros((B, 1), dtype=_np.uint64)
                for row, plan in enumerate(plans):
                    for idx, value in plan.stems:
                        if idx == ln:
                            sa[row, 0] = zero
                            so[row, 0] = full if value else zero
                forcing.extend((sa, so))
            for pos, slot in kern.pin_args:
                pa = _np.full((B, 1), full, dtype=_np.uint64)
                po = _np.zeros((B, 1), dtype=_np.uint64)
                for row, plan in enumerate(plans):
                    for pslot, value in plan.pins.get(pos, ()):
                        if pslot == slot:
                            pa[row, 0] = zero
                            po[row, 0] = full if value else zero
                forcing.extend((pa, po))
            slab_args = []
            for slab_i in range(len(self._slabs)):
                args: List = [full, self._rev]
                if kern.alt_seed is not None:
                    args.append(self._slab_slice(slab_i, kern.alt_seed))
                args.extend(
                    self._slab_base_arg(slab_i, idx)
                    for idx in kern.base_args
                )
                args.extend(forcing)
                slab_args.append(tuple(args))
            prep.slab_args = slab_args
        self._blocks[block] = prep
        while len(self._blocks) > self.max_cached_blocks:
            self._blocks.popitem(last=False)
        return prep

    def _run_block(self, prep: _PreparedBlock):
        """``(det_any, vio_any)`` per fault row; ``det_any`` is ``None``
        when detection is constant-true for the block (baseline seeds)."""
        fn = prep.kern.fn
        n_slabs = len(prep.slab_args)
        if n_slabs == 1:  # the common full-table tile: no reduce loop
            det, vio = fn(*prep.slab_args[0])
            d = None if det is None else _np.any(det, axis=-1)
            return d, _np.any(vio, axis=-1)
        det_b = None if prep.det_const else _np.zeros(prep.size, dtype=bool)
        vio_b = _np.zeros(prep.size, dtype=bool)

        def one(slab_i: int):
            det, vio = fn(*prep.slab_args[slab_i])
            d = None if det is None else _np.any(det, axis=-1)
            return d, _np.any(vio, axis=-1)

        if self.threads > 1:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=min(self.threads, len(self._slabs)),
                    thread_name_prefix="repro-kernel",
                )
            results = list(self._pool.map(one, range(n_slabs)))
        else:
            results = [one(i) for i in range(n_slabs)]
        for d, v in results:
            if d is not None and det_b is not None:
                det_b |= d
            vio_b |= v
        return det_b, vio_b

    # ------------------------------------------------------------------
    # public API (the chunk_statuses contract)
    # ------------------------------------------------------------------
    def sweep_statuses(
        self,
        faults: Sequence[FaultLike],
        block_faults: Optional[int] = None,
    ) -> List[str]:
        """Classify every fault — byte-identical to the scalar path."""
        universe = list(faults)
        block_size = block_faults or self.block_faults
        statuses: List[str] = []
        enabled = _REG.enabled
        for start in range(0, len(universe), block_size):
            block = tuple(universe[start : start + block_size])
            prep = self._prepare(block)
            if enabled:
                _M_BLOCKS.inc()
                _M_FAULTS.inc(len(block))
                _M_OPS.inc(prep.kern.n_ops, backend="kernel")
                _M_WORDS.inc(
                    prep.kern.n_ops * len(block) * self.words,
                    backend="kernel",
                )
            if prep.const_status is not None:
                statuses.extend([prep.const_status] * len(block))
                continue
            det_b, vio_b = self._run_block(prep)
            if det_b is None:  # detection constant-true for the block
                statuses.extend(
                    "dangerous" if v else "detected"
                    for v in vio_b.tolist()
                )
            else:
                statuses.extend(
                    classify_status(d, v)
                    for d, v in zip(det_b.tolist(), vio_b.tolist())
                )
        return statuses

    def cache_stats(self) -> dict:
        """Codegen/blocks cache occupancy (tests and `repro stats`)."""
        return {
            "kernels": len(self._kernels),
            "blocks": len(self._blocks),
            "tiles": len(self._slabs),
        }


def _dedupe(seq) -> Tuple[int, ...]:
    seen: set = set()
    out: List[int] = []
    for item in seq:
        if item not in seen:
            seen.add(item)
            out.append(item)
    return tuple(out)


def _gate_fold(kind: GateKind, rendered, masked: bool):
    """Fold one gate over rendered operands ``(expr, lit)`` where ``lit``
    is 0/1 for compile-time constants, ``None`` for arrays.  Returns
    ``("lit", 0/1)`` or ``("expr", text)``.  ``masked`` is True for
    sub-word tables, whose complements must clear the unused high bits;
    full-word tables fold the ``& F`` away (F is all ones)."""

    def complemented(expr: str) -> str:
        return f"~({expr}) & F" if masked else f"~({expr})"

    if kind is GateKind.CONST0:
        return ("lit", 0)
    if kind is GateKind.CONST1:
        return ("lit", 1)
    if kind is GateKind.BUF:
        expr, lv = rendered[0]
        return ("lit", lv) if lv is not None else ("expr", expr)
    if kind is GateKind.NOT:
        expr, lv = rendered[0]
        if lv is not None:
            return ("lit", 1 - lv)
        return ("expr", complemented(expr))
    if kind in (GateKind.AND, GateKind.NAND, GateKind.OR, GateKind.NOR):
        is_or = kind in (GateKind.OR, GateKind.NOR)
        invert = kind in (GateKind.NAND, GateKind.NOR)
        absorbing = 1 if is_or else 0  # OR with 1 / AND with 0
        arrays = [expr for expr, lv in rendered if lv is None]
        if any(lv == absorbing for _, lv in rendered):
            value = absorbing
        elif not arrays:
            value = 1 - absorbing
        else:
            joined = (" | " if is_or else " & ").join(arrays)
            if invert:
                return ("expr", complemented(joined))
            return (
                "expr", joined if len(arrays) > 1 else arrays[0]
            )
        return ("lit", 1 - value if invert else value)
    if kind in (GateKind.XOR, GateKind.XNOR):
        flip = sum(lv for _, lv in rendered if lv) & 1
        if kind is GateKind.XNOR:
            flip ^= 1
        arrays = [expr for expr, lv in rendered if lv is None]
        if not arrays:
            return ("lit", flip)
        joined = " ^ ".join(arrays)
        if flip:
            return ("expr", complemented(joined))
        return ("expr", joined if len(arrays) > 1 else arrays[0])
    if kind in (GateKind.MAJ, GateKind.MIN):
        name = "_MAJ" if kind is GateKind.MAJ else "_MIN"
        exprs = ", ".join(expr for expr, _ in rendered)
        return ("expr", f"TH({name}, ({exprs},), F)")
    raise ValueError(f"gate kind {kind} has no kernel codegen")
