"""Interchangeable execution backends over a compiled netlist.

Three backends share one :class:`~repro.engine.compiled.CompiledNetwork`
and one discipline: compute the fault-free **baseline** once, cache it,
and answer each faulty query by copying the baseline and re-evaluating
only the ops in the fault's output cone (the
:meth:`~repro.engine.compiled.CompiledNetwork.fault_plan` schedule).

* :class:`BitmaskBackend` — word-parallel: every line is a ``2**n``-bit
  truth-table mask, one pass covers the whole input space.  This is the
  exhaustive-oracle backend (Definition 2.4, conditions A–E).
* :class:`PointwiseBackend` — one input assignment at a time, with a
  bounded per-point baseline cache.  Sequential campaigns revisit the
  same few (input, state, clock) points thousands of times across
  faults, so the cache turns most steps into a cone-sized update.
* :class:`SampledBackend` — pointwise over an explicit list of
  truth-table points, for input spaces too wide to enumerate.

All three return plain ``list``/``tuple`` values; the name-keyed wrappers
in :mod:`repro.logic.evaluate` re-attach line names for callers that
want them.
"""

from __future__ import annotations

import threading
from typing import Iterable, List, Optional, Tuple

from ..logic.gates import evaluate as eval_gate
from ..logic.gates import evaluate_mask
from .. import obs
from .compiled import CompiledNetwork, FaultLike

#: Pointwise baseline caches stop growing beyond this many distinct
#: input points (2**16 — larger spaces should use the sampled backend).
POINT_CACHE_LIMIT = 1 << 16

#: Exhaustive big-int masks are ``2**n`` bits *per line*; beyond this
#: many inputs even the all-ones ``full`` mask is a multi-gigabyte
#: allocation, so :class:`BitmaskBackend` refuses with ``ValueError``
#: instead of attempting the OOM.  Wider circuits use the sampled /
#: vectorized (chunked) paths, which never materialize ``2**n`` bits
#: at once.
MAX_BITMASK_INPUTS = 25

# Telemetry: per-backend work counters.  Hot paths hoist the enabled
# check (`_REG.enabled`) so a disabled registry costs one branch per
# query, not one call per op.
_REG = obs.REGISTRY
_M_OPS = _REG.counter(
    "repro_engine_ops_total", "Compiled ops evaluated, by backend"
)
_M_WORDS = _REG.counter(
    "repro_engine_words_total", "64-bit truth-table words simulated, by backend"
)


class BitmaskBackend:
    """Word-parallel evaluation: one integer mask per line."""

    def __init__(self, compiled: CompiledNetwork) -> None:
        if compiled.n_inputs > MAX_BITMASK_INPUTS:
            raise ValueError(
                f"BitmaskBackend: {compiled.n_inputs} inputs exceeds the "
                f"{MAX_BITMASK_INPUTS}-input exhaustive ceiling (a "
                f"2**{compiled.n_inputs}-bit mask per line); use the "
                "sampled or vectorized backends for wide circuits"
            )
        self.compiled = compiled
        self.full = (1 << (1 << compiled.n_inputs)) - 1
        self._baseline: Optional[Tuple[int, ...]] = None
        self._baseline_lock = threading.Lock()
        self._words_per_line = max(1, (1 << compiled.n_inputs) >> 6)

    def baseline(self) -> Tuple[int, ...]:
        """Fault-free masks for every line.

        Cached as an **immutable tuple**: engines are shared across
        concurrently constructed sweeps (``engine_for``) and held across
        ``serve`` requests, so an accidental in-place write by any
        consumer must raise instead of silently corrupting every other
        sweep on the same network.  Faulty queries copy it
        (:meth:`line_bits`); the lock makes first-derivation safe under
        the server's worker threads.  When the process-wide artifact
        store is enabled, identical compiled programs (by content
        fingerprint) share one derivation.
        """
        if self._baseline is None:
            with self._baseline_lock:
                if self._baseline is None:
                    self._baseline = self._derive_baseline()
        return self._baseline

    def _derive_baseline(self) -> Tuple[int, ...]:
        from .store import STORE, program_fingerprint

        fingerprint = None
        if STORE.enabled:
            fingerprint = program_fingerprint(self.compiled)
            cached = STORE.get("baseline", fingerprint)
            if cached is not None:
                return cached
        comp = self.compiled
        n = comp.n_inputs
        values: List[int] = [0] * len(comp.names)
        total = 1 << n
        for i in range(n):
            # Variable mask: bit p of the table is bit i of point p.
            # Mask doubling: start from one period (2**i zeros then
            # 2**i ones) and double the covered span until it fills
            # the table — O(n) big-int ops instead of O(2**n) shifts.
            mask = ((1 << (1 << i)) - 1) << (1 << i)
            span = 1 << (i + 1)
            while span < total:
                mask |= mask << span
                span <<= 1
            values[i] = mask
        for op in comp.ops:
            values[op.out] = evaluate_mask(
                op.kind, [values[s] for s in op.srcs], self.full
            )
        if _REG.enabled:
            _M_OPS.inc(len(comp.ops), backend="bitmask")
            _M_WORDS.inc(
                len(comp.ops) * self._words_per_line, backend="bitmask"
            )
        frozen = tuple(values)
        if fingerprint is not None:
            STORE.put("baseline", fingerprint, value=frozen)
        return frozen

    def line_bits(self, fault: Optional[FaultLike] = None) -> List[int]:
        """Masks for every line under ``fault`` (cone-pruned re-simulation
        on top of the cached baseline).  Always returns a fresh list —
        the cached baseline itself stays immutable behind
        :meth:`baseline`."""
        baseline = self.baseline()
        if fault is None:
            return list(baseline)
        comp = self.compiled
        plan = comp.fault_plan(fault)
        values = list(baseline)
        full = self.full
        for idx, forced in plan.stems:
            values[idx] = full if forced else 0
        pins = plan.pins
        ops = comp.ops
        for pos in plan.ops:
            op = ops[pos]
            operands = [values[s] for s in op.srcs]
            overrides = pins.get(pos)
            if overrides:
                for slot, forced in overrides:
                    operands[slot] = full if forced else 0
            values[op.out] = evaluate_mask(op.kind, operands, full)
        if _REG.enabled:
            _M_OPS.inc(len(plan.ops), backend="bitmask")
            _M_WORDS.inc(
                len(plan.ops) * self._words_per_line, backend="bitmask"
            )
        return values

    def output_bits(self, fault: Optional[FaultLike] = None) -> Tuple[int, ...]:
        values = self.line_bits(fault)
        return tuple(values[i] for i in self.compiled.out_idx)


class PointwiseBackend:
    """One assignment at a time, with a per-point baseline cache."""

    def __init__(
        self, compiled: CompiledNetwork, cache_limit: int = POINT_CACHE_LIMIT
    ) -> None:
        self.compiled = compiled
        self.cache_limit = cache_limit
        self._cache: dict = {}

    def baseline(self, point: Tuple[int, ...]) -> List[int]:
        """Fault-free line values for one input tuple (cached; do not
        mutate the returned list)."""
        values = self._cache.get(point)
        if values is None:
            comp = self.compiled
            values = list(point) + [0] * len(comp.ops)
            for op in comp.ops:
                values[op.out] = eval_gate(
                    op.kind, [values[s] for s in op.srcs]
                )
            if len(self._cache) < self.cache_limit:
                self._cache[point] = values
        return values

    def line_values(
        self, point: Tuple[int, ...], fault: Optional[FaultLike] = None
    ) -> List[int]:
        """Line values under ``fault`` at one input point."""
        baseline = self.baseline(point)
        if fault is None:
            return baseline
        comp = self.compiled
        plan = comp.fault_plan(fault)
        values = baseline.copy()
        for idx, forced in plan.stems:
            values[idx] = forced
        pins = plan.pins
        ops = comp.ops
        for pos in plan.ops:
            op = ops[pos]
            operands = [values[s] for s in op.srcs]
            overrides = pins.get(pos)
            if overrides:
                for slot, forced in overrides:
                    operands[slot] = forced
            values[op.out] = eval_gate(op.kind, operands)
        return values

    def output_values(
        self, point: Tuple[int, ...], fault: Optional[FaultLike] = None
    ) -> Tuple[int, ...]:
        values = self.line_values(point, fault)
        return tuple(values[i] for i in self.compiled.out_idx)


class SampledBackend:
    """Pointwise evaluation over an explicit list of truth-table points."""

    def __init__(self, pointwise: PointwiseBackend) -> None:
        self.pointwise = pointwise
        self.compiled = pointwise.compiled

    def point_tuple(self, point: int) -> Tuple[int, ...]:
        """Decode a truth-table index into the engine's input tuple
        (bit *i* of ``point`` is input *i* — the repo-wide convention)."""
        n = self.compiled.n_inputs
        return tuple((point >> i) & 1 for i in range(n))

    def output_vectors(
        self, points: Iterable[int], fault: Optional[FaultLike] = None
    ) -> List[Tuple[int, ...]]:
        return [
            self.pointwise.output_values(self.point_tuple(p), fault)
            for p in points
        ]
