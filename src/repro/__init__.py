"""repro — Self-Checking Alternating Logic (SCAL).

A full reproduction of Woodard & Metze's ISCA 1978 work on designing
self-checking digital systems with alternating logic (time-redundant
single-stuck-at fault detection), built from the 1977 thesis text.

Package map
-----------
``repro.logic``     gate-level substrate: netlists, truth tables, faults,
                    self-duality, two-level synthesis.
``repro.core``      the paper's contribution: the SCAL oracle, conditions
                    A–E, Algorithm 3.1, test generation, redundancy.
``repro.engine``    compiled fault-simulation engine: flat op programs,
                    word-parallel / pointwise / sampled backends,
                    batched fault sweeps with cone-pruned re-simulation.
``repro.seq``       sequential machines and Kohavi-style synthesis.
``repro.scal``      dual flip-flop and code-conversion SCAL machines,
                    ALPT/PALT translators, Table 4.1 cost model.
``repro.checkers``  dual-rail TSCC, XOR checkers, mixed checker design,
                    hardcore clock-disable analysis (Theorem 5.2).
``repro.modules``   minority modules (Theorems 6.2/6.3), self-dual
                    adder/shifter/status storage.
``repro.system``    parity memory, the SCAL CPU and Figure 7.3 computer,
                    ADR / TMR / Figure 7.5 comparisons, reliability.
``repro.workloads`` thesis example circuits and random populations.

Quickstart
----------
>>> from repro.logic import parse_expression, network_is_self_dual
>>> from repro.core import analyze_network, is_scal_network
>>> net = parse_expression("a b | b c | a c", inputs=["a", "b", "c"])
>>> network_is_self_dual(net)       # majority is self-dual
True
>>> analyze_network(net).is_self_checking
True
"""

from . import checkers, core, engine, logic, modules, scal, seq, system, workloads
from .core import ScalSimulator, analyze_network, is_scal_network
from .logic import (
    GateKind,
    Network,
    NetworkBuilder,
    StuckAt,
    TruthTable,
    parse_expression,
    parse_expressions,
)

__version__ = "1.0.0"

__all__ = [
    "GateKind",
    "Network",
    "NetworkBuilder",
    "ScalSimulator",
    "StuckAt",
    "TruthTable",
    "analyze_network",
    "checkers",
    "core",
    "engine",
    "is_scal_network",
    "logic",
    "modules",
    "parse_expression",
    "parse_expressions",
    "scal",
    "seq",
    "system",
    "workloads",
]
